#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace manet {
namespace {

TEST(TextTable, RejectsEmptyHeadersAndBadRows) {
  EXPECT_THROW(TextTable({}), ContractViolation);
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), ContractViolation);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();

  // Header, separator, two rows.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);

  // Both value cells start at the same column.
  std::istringstream lines(text);
  std::string header;
  std::string separator;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, separator);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("value"), row1.find("1"));
  EXPECT_EQ(header.find("value"), row2.find("22"));
}

TEST(TextTable, CsvOutput) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"x", "y"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\nx,y\n");
}

TEST(TextTable, RowCount) {
  TextTable table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(1.0, 3), "1.000");
  EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::num(2.5, 0), "2");  // round-half-to-even at 0 digits
}

TEST(TextTable, EmptyTablePrintsHeaderOnly) {
  TextTable table({"h1", "h2"});
  std::ostringstream out;
  table.print(out);
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 2);  // header + separator
}

}  // namespace
}  // namespace manet
