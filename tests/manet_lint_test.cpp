// Fixture suite for manet-lint (tools/lint): one positive and one negative
// snippet per determinism rule, the comment/string-awareness of the lexer,
// inline-suppression handling (reason mandatory), and policy-file validation
// through support/json.hpp. The snippets are deliberately tiny — the linter
// is token-based, so a fragment is as good as a full translation unit.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace manet::lint {
namespace {

std::vector<Diagnostic> lint(const std::string& path, const std::string& text,
                             const Policy& policy = {}) {
  return lint_source(path, text, policy);
}

/// All diagnostics with the given rule id.
std::size_t count_rule(const std::vector<Diagnostic>& diagnostics, const std::string& rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) ++n;
  }
  return n;
}

TEST(LintRuleTable, IsWellFormed) {
  std::set<std::string> ids;
  for (const Rule& rule : rules()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule id " << rule.id;
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    EXPECT_FALSE(rule.scopes.empty()) << rule.id;
    EXPECT_FALSE(rule.patterns.empty()) << rule.id;
    EXPECT_EQ(find_rule(rule.id), &rule);
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
  // The rules the determinism contract documents must all exist.
  for (const char* id : {"locale-parse", "locale-format", "nondet-random", "nondet-time",
                         "nondet-ordering", "thread-confinement", "simd-confinement",
                         "process-control", "socket-confinement"}) {
    EXPECT_NE(find_rule(id), nullptr) << id;
  }
}

// ----- locale-parse -------------------------------------------------------

TEST(LintLocaleParse, FlagsStdStodAndBareAtof) {
  const auto diags = lint("src/core/foo.cpp",
                          "double a = std::stod(text);\n"
                          "double b = atof(text.c_str());\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "locale-parse");
  EXPECT_EQ(diags[0].line, 1u);
  EXPECT_EQ(diags[1].line, 2u);
}

TEST(LintLocaleParse, CleanOnParseDoubleAndSimilarNames) {
  const auto diags = lint("src/core/foo.cpp",
                          "auto a = parse_double(text);\n"
                          "auto b = my_atof_like(text);\n"
                          "int stod = 3;  // a variable, not a call\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintLocaleParse, AllowedInsideNumericHpp) {
  EXPECT_TRUE(lint("src/support/numeric.hpp", "double a = std::stod(text);\n").empty());
}

// ----- locale-format ------------------------------------------------------

TEST(LintLocaleFormat, FlagsSetprecisionAndStdFixed) {
  const auto diags =
      lint("bench/fig2.cpp", "out << std::fixed << std::setprecision(3) << value;\n");
  EXPECT_EQ(count_rule(diags, "locale-format"), 2u);
}

TEST(LintLocaleFormat, CleanOnCharsFormatFixedAndSetw) {
  const auto diags = lint("src/support/x.cpp",
                          "auto r = std::to_chars(b, e, v, std::chars_format::fixed, 3);\n"
                          "out << std::setw(12) << cell;\n");
  EXPECT_TRUE(diags.empty());
}

// ----- nondet-random ------------------------------------------------------

TEST(LintNondetRandom, FlagsRandomDeviceAndRandCalls) {
  const auto diags = lint("src/sim/foo.cpp",
                          "std::random_device rd;\n"
                          "int r = rand();\n"
                          "srand(42);\n");
  EXPECT_EQ(count_rule(diags, "nondet-random"), 3u);
}

TEST(LintNondetRandom, CleanOnSeededEngineAndMemberRand) {
  const auto diags = lint("src/sim/foo.cpp",
                          "Xoshiro256StarStar gen(substream_seed(root, trial));\n"
                          "int r = model.rand();  // member, not ::rand\n"
                          "int rand = 3;          // variable, no call\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintNondetRandom, FlagsStdDistributionAdaptors) {
  // std::*_distribution draw sequences are implementation-defined, so they
  // break the same-seed-same-result contract across standard libraries.
  // Fading/deviate draws must go through support/rng substreams instead.
  const auto diags = lint("src/graph/foo.cpp",
                          "std::normal_distribution<double> z(0.0, 1.0);\n"
                          "std::lognormal_distribution<double> g(0.0, sigma);\n"
                          "std::uniform_real_distribution<double> u(0.0, 1.0);\n"
                          "std::exponential_distribution<double> e(lambda);\n");
  EXPECT_EQ(count_rule(diags, "nondet-random"), 4u);
}

TEST(LintNondetRandom, DistributionBanCoversTestsAndBenches) {
  EXPECT_EQ(count_rule(lint("tests/foo_test.cpp",
                            "std::uniform_int_distribution<int> d(0, 9);\n"),
                       "nondet-random"),
            1u);
  EXPECT_EQ(count_rule(lint("bench/foo.cpp",
                            "std::poisson_distribution<int> d(4.0);\n"),
                       "nondet-random"),
            1u);
}

TEST(LintNondetRandom, CleanOnDistributionLikeIdentifiers) {
  // Substring matches must not fire: only the exact component names are
  // banned, not words that merely contain "distribution".
  const auto diags = lint("src/occupancy/foo.cpp",
                          "auto empty_cells_distribution = histogram();\n"
                          "double distribution = 0.5;\n"
                          "// prose: the critical-range distribution is sampled\n");
  EXPECT_TRUE(diags.empty());
}

// ----- nondet-time --------------------------------------------------------

TEST(LintNondetTime, FlagsClockReadsAndChrono) {
  const auto diags = lint("src/core/foo.cpp",
                          "auto t0 = std::chrono::steady_clock::now();\n"
                          "std::time_t t1 = time(nullptr);\n");
  EXPECT_EQ(count_rule(diags, "nondet-time"), 2u);
  EXPECT_EQ(diags[0].line, 1u);
}

TEST(LintNondetTime, CleanOnTimeVariablesMembersAndTestScope) {
  EXPECT_TRUE(lint("src/core/foo.cpp",
                   "double time = 3.0;\n"
                   "advance(time);\n"
                   "auto d = trace.time();  // member access\n")
                  .empty());
  // Tests are outside the rule's scope: gtest timeouts may read clocks.
  EXPECT_TRUE(lint("tests/foo_test.cpp", "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  // The metrics layer is the designated seam.
  EXPECT_TRUE(lint("src/support/metrics.hpp", "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

// ----- nondet-ordering ----------------------------------------------------

TEST(LintNondetOrdering, FlagsUnorderedContainersIncludingTheInclude) {
  const auto diags = lint("src/graph/foo.cpp",
                          "#include <unordered_map>\n"
                          "std::unordered_map<int, int> degree;\n");
  EXPECT_EQ(count_rule(diags, "nondet-ordering"), 2u);
}

TEST(LintNondetOrdering, CleanOnOrderedContainersAndOutsideSrc) {
  EXPECT_TRUE(lint("src/graph/foo.cpp", "std::map<int, int> degree;\n").empty());
  // Scope is src/ only: a test may hash-bucket scratch data.
  EXPECT_TRUE(lint("tests/foo_test.cpp", "std::unordered_set<int> seen;\n").empty());
}

// ----- thread-confinement -------------------------------------------------

TEST(LintThreadConfinement, FlagsPrimitivesOutsideTheEngine) {
  const auto diags = lint("src/core/foo.cpp",
                          "#include <thread>\n"
                          "std::mutex lock;\n"
                          "std::atomic<int> counter{0};\n");
  EXPECT_EQ(count_rule(diags, "thread-confinement"), 3u);
}

TEST(LintThreadConfinement, CleanInsideParallelAndOutsideSrc) {
  EXPECT_TRUE(lint("src/support/parallel.cpp", "std::mutex lock;\n").empty());
  EXPECT_TRUE(lint("tests/foo_test.cpp", "std::thread t([] {});\n").empty());
  EXPECT_TRUE(lint("src/core/foo.cpp", "int progress_mutex_count = 0;\n").empty());
}

// ----- simd-confinement ---------------------------------------------------

TEST(LintSimdConfinement, FlagsIntrinsicsHeadersAndProbesOutsideTheKernelSeam) {
  const auto diags = lint("src/core/foo.cpp",
                          "#include <immintrin.h>\n"
                          "__m256d acc = _mm256_setzero_pd();\n"
                          "bool ok = __builtin_cpu_supports(\"avx2\");\n");
  // Line 2 carries two banned runs (__m256d and the _mm256_ call); one
  // diagnostic each.
  EXPECT_EQ(count_rule(diags, "simd-confinement"), 4u);
}

TEST(LintSimdConfinement, PrefixMatchCoversTheOpenEndedIntrinsicFamily) {
  const auto diags = lint("bench/foo.cpp",
                          "auto a = _mm512_add_pd(x, y);\n"
                          "__m128i v = _mm_set1_epi32(1);\n");
  EXPECT_EQ(count_rule(diags, "simd-confinement"), 3u);
}

TEST(LintSimdConfinement, AllowedInsideDistanceKernelsHpp) {
  EXPECT_TRUE(lint("src/geometry/distance_kernels.hpp",
                   "#include <immintrin.h>\n"
                   "__m256d q0 = _mm256_set1_pd(q[0]);\n")
                  .empty());
}

TEST(LintSimdConfinement, CleanOnLookAlikeIdentifiers) {
  // Names that merely *contain* an intrinsic-looking substring, or banned
  // components reached as member accesses, must not flag.
  EXPECT_TRUE(lint("src/core/foo.cpp",
                   "int comm_count = 0;\n"
                   "double ommitted = simd_width_free_name;\n"
                   "obj._mm_like_member();\n")
                  .empty());
}

// ----- process-control ----------------------------------------------------

TEST(LintProcessControl, FlagsExitAndAbortCalls) {
  const auto diags = lint("src/sim/foo.cpp",
                          "if (bad) std::exit(1);\n"
                          "if (worse) abort();\n");
  EXPECT_EQ(count_rule(diags, "process-control"), 2u);
}

TEST(LintProcessControl, CleanOnKillHookSeamAndPlainIdentifiers) {
  EXPECT_TRUE(lint("src/campaign/campaign.cpp", "std::_Exit(kKillExitCode);\n").empty());
  EXPECT_TRUE(lint("src/sim/foo.cpp",
                   "int exit_code = run();\n"
                   "throw ConfigError(\"fail\");  // exceptions, not exit()\n")
                  .empty());
}

// ----- socket-confinement -------------------------------------------------

TEST(LintSocketConfinement, FlagsSocketAndProcessSpawnSyscalls) {
  const auto diags = lint("src/service/server.cpp",
                          "int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n"
                          "::connect(fd, address, length);\n"
                          "FILE* p = popen(\"uname\", \"r\");\n");
  EXPECT_EQ(count_rule(diags, "socket-confinement"), 3u);
}

TEST(LintSocketConfinement, CoversToolsAndTests) {
  EXPECT_EQ(count_rule(lint("tools/manetd/main.cpp", "::socketpair(d, t, 0, fds);\n"),
                       "socket-confinement"),
            1u);
  EXPECT_EQ(count_rule(lint("tests/manetd_test.cpp", "fork();\n"), "socket-confinement"),
            1u);
}

TEST(LintSocketConfinement, AllowedInsideTheSocketSeam) {
  EXPECT_TRUE(lint("src/service/socket.cpp",
                   "int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n"
                   "::bind(fd, address, length);\n"
                   "::listen(fd, 16);\n")
                  .empty());
}

TEST(LintSocketConfinement, CleanOnWrapperNamesAndNonCallUses) {
  EXPECT_TRUE(lint("src/service/server.cpp",
                   "Socket client = listener.wait_client();\n"
                   "client.send_all(response);\n"
                   "int socket_count = 3;  // a variable, not the syscall\n"
                   "auto stream = dial_unix(path);\n")
                  .empty());
}

// ----- lexer: comments, strings, raw strings ------------------------------

TEST(LintLexer, BannedNamesInCommentsAndLiteralsAreIgnored) {
  const auto diags = lint("src/core/foo.cpp",
                          "// std::stod(text) would be wrong here\n"
                          "/* std::mutex guard; rand(); */\n"
                          "const char* msg = \"call srand() then time(nullptr)\";\n"
                          "const char* raw = R\"(std::random_device rd;)\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintLexer, DigitSeparatorsDoNotDesyncTheLexer) {
  // If 1'000'000 were taken for a char literal, everything after it would be
  // swallowed as literal text and the violation on line 2 would vanish.
  const auto diags = lint("src/core/foo.cpp",
                          "constexpr int kBig = 1'000'000;\n"
                          "std::mutex lock;\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "thread-confinement");
  EXPECT_EQ(diags[0].line, 2u);
}

// ----- suppressions -------------------------------------------------------

TEST(LintSuppression, TrailingCommentSuppressesItsLine) {
  const auto diags = lint(
      "src/core/foo.cpp",
      "std::mutex lock;  // manet-lint: allow(thread-confinement) — scratch demo state\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, WholeLineCommentSuppressesTheNextLine) {
  const auto diags = lint("src/core/foo.cpp",
                          "// manet-lint: allow(nondet-time) — demo telemetry only\n"
                          "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, CommentBlockReachesTheNextCodeLine) {
  // The marker may open a multi-line comment block: the shield lands on the
  // first line that actually carries code.
  const auto diags = lint("src/core/foo.cpp",
                          "// manet-lint: allow(thread-confinement) — counter names\n"
                          "// temp files only and never reaches persisted bytes.\n"
                          "\n"
                          "std::atomic<int> counter{0};\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, SuppressesOnlyTheNamedRuleAndLine) {
  const auto diags = lint(
      "src/core/foo.cpp",
      "std::mutex lock;  // manet-lint: allow(nondet-time) — wrong rule on purpose\n"
      "std::mutex other;\n");
  EXPECT_EQ(count_rule(diags, "thread-confinement"), 2u);
}

TEST(LintSuppression, MultipleRulesInOneComment) {
  const auto diags = lint("src/core/foo.cpp",
                          "// manet-lint: allow(thread-confinement, nondet-time) — both demo\n"
                          "std::atomic<int> c{int(std::chrono::steady_clock::now()"
                          ".time_since_epoch().count())};\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, MissingReasonIsAViolationAndDoesNotSuppress) {
  const auto diags =
      lint("src/core/foo.cpp", "std::mutex lock;  // manet-lint: allow(thread-confinement)\n");
  EXPECT_EQ(count_rule(diags, "lint-suppression"), 1u);
  EXPECT_EQ(count_rule(diags, "thread-confinement"), 1u);
}

TEST(LintSuppression, UnknownRuleIsReported) {
  const auto diags = lint("src/core/foo.cpp",
                          "int x = 0;  // manet-lint: allow(no-such-rule) — because\n");
  EXPECT_EQ(count_rule(diags, "lint-suppression"), 1u);
}

TEST(LintSuppression, MalformedAllowIsReported) {
  const auto diags = lint("src/core/foo.cpp", "int x = 0;  // manet-lint: allow mutex\n");
  EXPECT_EQ(count_rule(diags, "lint-suppression"), 1u);
}

// ----- policy file --------------------------------------------------------

TEST(LintPolicy, ValidPolicyParsesAndAllows) {
  const Policy policy = parse_policy(
      "{\"schema_version\": 1, \"allow\": [{\"rule\": \"thread-confinement\", "
      "\"file\": \"src/core/foo.cpp\", \"reason\": \"fixture\"}]}");
  ASSERT_EQ(policy.allow.size(), 1u);
  EXPECT_EQ(policy.allow[0].rule, "thread-confinement");
  EXPECT_TRUE(lint("src/core/foo.cpp", "std::mutex lock;\n", policy).empty());
  // The grant is per (rule, file): other files and rules stay enforced.
  EXPECT_EQ(lint("src/core/bar.cpp", "std::mutex lock;\n", policy).size(), 1u);
  EXPECT_EQ(lint("src/core/foo.cpp", "std::exit(1);\n", policy).size(), 1u);
}

TEST(LintPolicy, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_policy("not json"), ConfigError);
  EXPECT_THROW(parse_policy("{\"allow\": []}"), ConfigError);  // no schema_version
  EXPECT_THROW(parse_policy("{\"schema_version\": 2, \"allow\": []}"), ConfigError);
  EXPECT_THROW(parse_policy("{\"schema_version\": 1, \"allow\": [], \"extra\": 1}"),
               ConfigError);
  // Unknown rule id.
  EXPECT_THROW(parse_policy("{\"schema_version\": 1, \"allow\": [{\"rule\": \"nope\", "
                            "\"file\": \"src/a.cpp\", \"reason\": \"x\"}]}"),
               ConfigError);
  // Missing reason.
  EXPECT_THROW(parse_policy("{\"schema_version\": 1, \"allow\": [{\"rule\": "
                            "\"nondet-time\", \"file\": \"src/a.cpp\"}]}"),
               ConfigError);
  // Unknown entry key.
  EXPECT_THROW(parse_policy("{\"schema_version\": 1, \"allow\": [{\"rule\": "
                            "\"nondet-time\", \"file\": \"src/a.cpp\", \"reason\": \"x\", "
                            "\"why\": \"y\"}]}"),
               ConfigError);
}

}  // namespace
}  // namespace manet::lint
