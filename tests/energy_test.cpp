#include "core/energy.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "support/error.hpp"

namespace manet {
namespace {

TEST(EnergyModel, DefaultIsQuadratic) {
  const EnergyModel model;
  EXPECT_DOUBLE_EQ(model.alpha(), 2.0);
  EXPECT_DOUBLE_EQ(model.transmit_power(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.transmit_power(1.0), 1.0);
  EXPECT_DOUBLE_EQ(model.transmit_power(3.0), 9.0);
}

TEST(EnergyModel, CustomPathLossExponent) {
  const EnergyModel model(4.0);
  EXPECT_DOUBLE_EQ(model.transmit_power(2.0), 16.0);
}

TEST(EnergyModel, RejectsAlphaBelowOne) {
  EXPECT_THROW(EnergyModel(0.5), ConfigError);
}

TEST(EnergyModel, NetworkPowerScalesWithNodes) {
  const EnergyModel model;
  EXPECT_DOUBLE_EQ(model.network_power(10, 2.0), 40.0);
  EXPECT_DOUBLE_EQ(model.network_power(0, 2.0), 0.0);
}

TEST(EnergyModel, SavingsMatchPaperScenarios) {
  const EnergyModel model;
  // Section 4.2: r90 is "about 35-40% smaller" than r100 -> at 0.62 of
  // r100 the energy drops by ~62%.
  EXPECT_NEAR(model.savings(1.0, 0.62), 1.0 - 0.62 * 0.62, 1e-12);
  // r10 ~55-60% smaller -> at 0.42 the saving is ~82%.
  EXPECT_NEAR(model.savings(1.0, 0.42), 1.0 - 0.42 * 0.42, 1e-12);
}

TEST(EnergyModel, SavingsBounds) {
  const EnergyModel model;
  EXPECT_DOUBLE_EQ(model.savings(5.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(model.savings(5.0, 0.0), 1.0);
  // ConfigError, not a contract: these are user-facing measured quantities,
  // and the validation must fire in Release builds too (this test runs in
  // every CI build mode — it is the Release regression, not a death test).
  EXPECT_THROW(model.savings(0.0, 0.0), ConfigError);
  EXPECT_THROW(model.savings(0.0, 1.0), ConfigError);
  EXPECT_THROW(model.savings(1.0, 2.0), ConfigError);
  EXPECT_THROW(model.savings(1.0, -0.1), ConfigError);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(model.savings(nan, 0.5), ConfigError);
  EXPECT_THROW(model.savings(1.0, nan), ConfigError);
}

TEST(EnergyModel, TransmitPowerRejectsNegativeRange) {
  const EnergyModel model;
  EXPECT_THROW(model.transmit_power(-1.0), ConfigError);
  EXPECT_THROW(model.transmit_power(std::numeric_limits<double>::quiet_NaN()), ConfigError);
}

}  // namespace
}  // namespace manet
