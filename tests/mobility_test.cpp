#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

constexpr double kEps = 1e-9;

std::vector<Point2> deploy(std::size_t n, const Box2& box, Rng& rng) {
  return uniform_deployment(n, box, rng);
}

double total_displacement(const std::vector<Point2>& before,
                          const std::vector<Point2>& after) {
  double total = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) total += distance(before[i], after[i]);
  return total;
}

// ---------------------------------------------------------------- waypoint

TEST(RandomWaypoint, NodesStayInRegion) {
  Rng rng(1);
  const Box2 box(100.0);
  RandomWaypointParams params;
  params.v_min = 0.1;
  params.v_max = 5.0;
  params.pause_steps = 3;
  RandomWaypointModel<2> model(box, params);

  auto positions = deploy(30, box, rng);
  model.initialize(positions, rng);
  for (int s = 0; s < 500; ++s) {
    model.step(positions, rng);
    for (const auto& p : positions) ASSERT_TRUE(box.contains(p));
  }
}

TEST(RandomWaypoint, SpeedNeverExceedsVmax) {
  Rng rng(2);
  const Box2 box(100.0);
  RandomWaypointParams params;
  params.v_min = 1.0;
  params.v_max = 4.0;
  RandomWaypointModel<2> model(box, params);

  auto positions = deploy(20, box, rng);
  model.initialize(positions, rng);
  auto previous = positions;
  for (int s = 0; s < 200; ++s) {
    model.step(positions, rng);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      ASSERT_LE(distance(previous[i], positions[i]), params.v_max + kEps);
    }
    previous = positions;
  }
}

TEST(RandomWaypoint, AllStationaryWhenProbabilityIsOne) {
  Rng rng(3);
  const Box2 box(50.0);
  RandomWaypointParams params;
  params.p_stationary = 1.0;
  RandomWaypointModel<2> model(box, params);

  auto positions = deploy(25, box, rng);
  const auto initial = positions;
  model.initialize(positions, rng);
  EXPECT_EQ(model.stationary_node_count(), 25u);
  for (int s = 0; s < 50; ++s) model.step(positions, rng);
  EXPECT_DOUBLE_EQ(total_displacement(initial, positions), 0.0);
}

TEST(RandomWaypoint, StationaryFractionMatchesProbability) {
  Rng rng(4);
  const Box2 box(50.0);
  RandomWaypointParams params;
  params.p_stationary = 0.4;
  RandomWaypointModel<2> model(box, params);

  std::size_t stationary = 0;
  const std::size_t n = 200;
  const int rounds = 50;
  for (int round = 0; round < rounds; ++round) {
    auto positions = deploy(n, box, rng);
    model.initialize(positions, rng);
    stationary += model.stationary_node_count();
  }
  const double fraction = static_cast<double>(stationary) / (n * rounds);
  EXPECT_NEAR(fraction, 0.4, 0.02);
}

TEST(RandomWaypoint, PauseFreezesNodeAfterArrival) {
  Rng rng(5);
  const Box2 box(10.0);
  RandomWaypointParams params;
  params.v_min = 100.0;  // any destination reached in one step
  params.v_max = 100.0;
  params.pause_steps = 5;
  RandomWaypointModel<2> model(box, params);

  std::vector<Point2> positions = {{{5.0, 5.0}}};
  model.initialize(positions, rng);
  model.step(positions, rng);  // arrives at destination, enters pause
  const Point2 arrival = positions[0];
  for (int s = 0; s < 4; ++s) {  // pause_remaining 5 -> 1: node frozen
    model.step(positions, rng);
    EXPECT_EQ(positions[0], arrival) << "node moved during pause";
  }
  // Pause expires and a new leg starts; within a few steps it must move.
  model.step(positions, rng);
  model.step(positions, rng);
  EXPECT_NE(positions[0], arrival);
}

TEST(RandomWaypoint, ZeroPauseKeepsNodesMoving) {
  Rng rng(6);
  const Box2 box(100.0);
  RandomWaypointParams params;
  params.v_min = 0.5;
  params.v_max = 2.0;
  params.pause_steps = 0;
  RandomWaypointModel<2> model(box, params);

  auto positions = deploy(10, box, rng);
  model.initialize(positions, rng);
  int frozen_steps = 0;
  auto previous = positions;
  for (int s = 0; s < 100; ++s) {
    model.step(positions, rng);
    if (total_displacement(previous, positions) < kEps) ++frozen_steps;
    previous = positions;
  }
  EXPECT_EQ(frozen_steps, 0);
}

TEST(RandomWaypoint, RejectsInvalidParameters) {
  const Box2 box(10.0);
  RandomWaypointParams bad_vmin;
  bad_vmin.v_min = 0.0;
  EXPECT_THROW(RandomWaypointModel<2>(box, bad_vmin), ConfigError);

  RandomWaypointParams inverted;
  inverted.v_min = 2.0;
  inverted.v_max = 1.0;
  EXPECT_THROW(RandomWaypointModel<2>(box, inverted), ConfigError);

  RandomWaypointParams bad_p;
  bad_p.v_max = 1.0;
  bad_p.p_stationary = 1.5;
  EXPECT_THROW(RandomWaypointModel<2>(box, bad_p), ConfigError);
}

TEST(RandomWaypoint, StepBeforeInitializeRejectsSizeMismatch) {
  Rng rng(7);
  const Box2 box(10.0);
  RandomWaypointParams params;
  params.v_max = 1.0;
  RandomWaypointModel<2> model(box, params);
  std::vector<Point2> positions = {{{1.0, 1.0}}};
  EXPECT_THROW(model.step(positions, rng), ContractViolation);
}

// ---------------------------------------------------------------- drunkard

TEST(Drunkard, NodesStayInRegion) {
  Rng rng(8);
  const Box2 box(100.0);
  DrunkardParams params;
  params.step_radius = 10.0;
  DrunkardModel<2> model(box, params);

  auto positions = deploy(30, box, rng);
  model.initialize(positions, rng);
  for (int s = 0; s < 500; ++s) {
    model.step(positions, rng);
    for (const auto& p : positions) ASSERT_TRUE(box.contains(p));
  }
}

TEST(Drunkard, StepNeverExceedsRadius) {
  Rng rng(9);
  const Box2 box(100.0);
  DrunkardParams params;
  params.step_radius = 3.0;
  DrunkardModel<2> model(box, params);

  auto positions = deploy(20, box, rng);
  model.initialize(positions, rng);
  auto previous = positions;
  for (int s = 0; s < 200; ++s) {
    model.step(positions, rng);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      ASSERT_LE(distance(previous[i], positions[i]), params.step_radius + kEps);
    }
    previous = positions;
  }
}

TEST(Drunkard, PauseProbabilityOneFreezesNetwork) {
  Rng rng(10);
  const Box2 box(50.0);
  DrunkardParams params;
  params.p_pause = 1.0;
  params.step_radius = 5.0;
  DrunkardModel<2> model(box, params);

  auto positions = deploy(15, box, rng);
  const auto initial = positions;
  model.initialize(positions, rng);
  for (int s = 0; s < 50; ++s) model.step(positions, rng);
  EXPECT_DOUBLE_EQ(total_displacement(initial, positions), 0.0);
}

TEST(Drunkard, PauseProbabilityFreezesExpectedFraction) {
  Rng rng(11);
  const Box2 box(50.0);
  DrunkardParams params;
  params.p_pause = 0.3;
  params.step_radius = 1.0;
  DrunkardModel<2> model(box, params);

  const std::size_t n = 500;
  auto positions = deploy(n, box, rng);
  model.initialize(positions, rng);

  std::size_t paused_node_steps = 0;
  const int steps = 100;
  auto previous = positions;
  for (int s = 0; s < steps; ++s) {
    model.step(positions, rng);
    for (std::size_t i = 0; i < n; ++i) {
      if (distance(previous[i], positions[i]) < kEps) ++paused_node_steps;
    }
    previous = positions;
  }
  const double fraction = static_cast<double>(paused_node_steps) / (n * steps);
  EXPECT_NEAR(fraction, 0.3, 0.02);
}

TEST(Drunkard, StationaryNodesNeverMove) {
  Rng rng(12);
  const Box2 box(50.0);
  DrunkardParams params;
  params.p_stationary = 0.5;
  params.step_radius = 5.0;
  DrunkardModel<2> model(box, params);

  auto positions = deploy(100, box, rng);
  const auto initial = positions;
  model.initialize(positions, rng);
  const std::size_t expected_stationary = model.stationary_node_count();
  for (int s = 0; s < 100; ++s) model.step(positions, rng);

  std::size_t still = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (distance(initial[i], positions[i]) < kEps) ++still;
  }
  EXPECT_GE(still, expected_stationary);  // stationary nodes never moved
}

TEST(Drunkard, RejectsInvalidParameters) {
  const Box2 box(10.0);
  DrunkardParams bad_radius;
  bad_radius.step_radius = 0.0;
  EXPECT_THROW(DrunkardModel<2>(box, bad_radius), ConfigError);

  DrunkardParams bad_pause;
  bad_pause.p_pause = -0.1;
  EXPECT_THROW(DrunkardModel<2>(box, bad_pause), ConfigError);
}

// -------------------------------------------------------------- stationary

TEST(Stationary, NeverMovesAnything) {
  Rng rng(13);
  const Box2 box(20.0);
  StationaryModel<2> model;
  auto positions = deploy(10, box, rng);
  const auto initial = positions;
  model.initialize(positions, rng);
  EXPECT_EQ(model.node_count(), 10u);
  for (int s = 0; s < 20; ++s) model.step(positions, rng);
  EXPECT_DOUBLE_EQ(total_displacement(initial, positions), 0.0);
}

// -------------------------------------------------- random direction (ext)

TEST(RandomDirection, NodesStayInRegionAndMove) {
  Rng rng(14);
  const Box2 box(100.0);
  RandomDirectionParams params;
  params.v_min = 0.5;
  params.v_max = 2.0;
  params.p_turn = 0.05;
  RandomDirectionModel<2> model(box, params);

  auto positions = deploy(20, box, rng);
  const auto initial = positions;
  model.initialize(positions, rng);
  for (int s = 0; s < 500; ++s) {
    model.step(positions, rng);
    for (const auto& p : positions) ASSERT_TRUE(box.contains(p));
  }
  EXPECT_GT(total_displacement(initial, positions), 0.0);
}

TEST(RandomDirection, ReflectionPreservesSpeed) {
  Rng rng(15);
  const Box2 box(10.0);
  RandomDirectionParams params;
  params.v_min = 3.0;
  params.v_max = 3.0;
  params.p_turn = 0.0;  // course never changes except by reflection
  RandomDirectionModel<2> model(box, params);

  auto positions = deploy(5, box, rng);
  model.initialize(positions, rng);
  auto previous = positions;
  for (int s = 0; s < 200; ++s) {
    model.step(positions, rng);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      // Reflection can shorten the displayed displacement at the wall but
      // never lengthen it beyond the speed.
      ASSERT_LE(distance(previous[i], positions[i]), 3.0 + kEps);
    }
    previous = positions;
  }
}

// ------------------------------------------------------------------ factory

TEST(Factory, CreatesEveryKind) {
  const Box2 box(100.0);
  MobilityConfig config;

  config.kind = MobilityKind::kStationary;
  EXPECT_EQ(make_mobility_model<2>(config, box)->name(), "stationary");

  config = MobilityConfig::paper_waypoint(100.0);
  EXPECT_EQ(make_mobility_model<2>(config, box)->name(), "random-waypoint");

  config = MobilityConfig::paper_drunkard(100.0);
  EXPECT_EQ(make_mobility_model<2>(config, box)->name(), "drunkard");

  config.kind = MobilityKind::kRandomDirection;
  config.direction.v_max = 1.0;
  EXPECT_EQ(make_mobility_model<2>(config, box)->name(), "random-direction");
}

TEST(Factory, PaperDefaultsMatchSection42) {
  const MobilityConfig waypoint = MobilityConfig::paper_waypoint(4096.0);
  EXPECT_EQ(waypoint.kind, MobilityKind::kRandomWaypoint);
  EXPECT_DOUBLE_EQ(waypoint.waypoint.p_stationary, 0.0);
  EXPECT_DOUBLE_EQ(waypoint.waypoint.v_min, 0.1);
  EXPECT_DOUBLE_EQ(waypoint.waypoint.v_max, 40.96);
  EXPECT_EQ(waypoint.waypoint.pause_steps, 2000u);

  const MobilityConfig drunkard = MobilityConfig::paper_drunkard(4096.0);
  EXPECT_EQ(drunkard.kind, MobilityKind::kDrunkard);
  EXPECT_DOUBLE_EQ(drunkard.drunkard.p_stationary, 0.1);
  EXPECT_DOUBLE_EQ(drunkard.drunkard.p_pause, 0.3);
  EXPECT_DOUBLE_EQ(drunkard.drunkard.step_radius, 40.96);
}

TEST(Factory, ParsesKindNames) {
  EXPECT_EQ(parse_mobility_kind("stationary"), MobilityKind::kStationary);
  EXPECT_EQ(parse_mobility_kind("waypoint"), MobilityKind::kRandomWaypoint);
  EXPECT_EQ(parse_mobility_kind("random-waypoint"), MobilityKind::kRandomWaypoint);
  EXPECT_EQ(parse_mobility_kind("drunkard"), MobilityKind::kDrunkard);
  EXPECT_EQ(parse_mobility_kind("direction"), MobilityKind::kRandomDirection);
  EXPECT_THROW(parse_mobility_kind("teleport"), ConfigError);
}

TEST(Factory, KindNamesRoundTrip) {
  for (MobilityKind kind :
       {MobilityKind::kStationary, MobilityKind::kRandomWaypoint, MobilityKind::kDrunkard,
        MobilityKind::kRandomDirection}) {
    EXPECT_EQ(parse_mobility_kind(mobility_kind_name(kind)), kind);
  }
}

}  // namespace
}  // namespace manet
