#include "occupancy/occupancy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

using namespace occupancy;

/// Monte-Carlo estimate of the empty-cell distribution for cross-checks.
std::vector<double> simulate_empty_cell_pmf(std::uint64_t n, std::uint64_t C,
                                            std::size_t trials, Rng& rng) {
  std::vector<double> pmf(C + 1, 0.0);
  std::vector<bool> occupied(C);
  for (std::size_t t = 0; t < trials; ++t) {
    std::fill(occupied.begin(), occupied.end(), false);
    for (std::uint64_t b = 0; b < n; ++b) occupied[rng.uniform_index(C)] = true;
    std::uint64_t empty = 0;
    for (bool o : occupied) {
      if (!o) ++empty;
    }
    pmf[empty] += 1.0;
  }
  for (double& p : pmf) p /= static_cast<double>(trials);
  return pmf;
}

TEST(LogBinomial, SmallValues) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(log_binomial(7, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(7, 7), 0.0, 1e-12);
}

TEST(LogBinomial, RejectsKGreaterThanN) {
  EXPECT_THROW(log_binomial(3, 4), ContractViolation);
}

TEST(EmptyCellsPmf, SumsToOne) {
  for (const auto [n, C] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {5, 3}, {10, 10}, {30, 12}, {100, 40}}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= C; ++k) total += empty_cells_pmf(n, C, k);
    EXPECT_NEAR(total, 1.0, 1e-8) << "n=" << n << " C=" << C;
  }
}

TEST(EmptyCellsPmf, HandDerivedTwoCells) {
  // n balls in 2 cells: both occupied with prob 1 - 2^{1-n}; one empty with
  // prob 2^{1-n}; both empty impossible for n >= 1.
  for (std::uint64_t n : {1u, 2u, 3u, 5u, 10u}) {
    const double p_one_empty = std::pow(2.0, 1.0 - static_cast<double>(n));
    EXPECT_NEAR(empty_cells_pmf(n, 2, 1), p_one_empty, 1e-12) << "n=" << n;
    EXPECT_NEAR(empty_cells_pmf(n, 2, 0), 1.0 - p_one_empty, 1e-12) << "n=" << n;
    EXPECT_DOUBLE_EQ(empty_cells_pmf(n, 2, 2), 0.0);
  }
}

TEST(EmptyCellsPmf, ZeroBallsLeavesAllCellsEmpty) {
  EXPECT_DOUBLE_EQ(empty_cells_pmf(0, 5, 5), 1.0);
  EXPECT_DOUBLE_EQ(empty_cells_pmf(0, 5, 4), 0.0);
  EXPECT_DOUBLE_EQ(empty_cells_pmf(0, 5, 0), 0.0);
}

TEST(EmptyCellsPmf, FewerBallsThanCellsForcesEmptyCells) {
  // With n < C, at most n cells are occupied, so fewer than C - n empty
  // cells is impossible.
  const std::uint64_t n = 3;
  const std::uint64_t C = 8;
  for (std::uint64_t k = 0; k < C - n; ++k) {
    EXPECT_NEAR(empty_cells_pmf(n, C, k), 0.0, 1e-12) << "k=" << k;
  }
  EXPECT_GT(empty_cells_pmf(n, C, C - n), 0.0);
}

TEST(EmptyCellsPmf, MatchesMonteCarlo) {
  Rng rng(1);
  const std::uint64_t n = 20;
  const std::uint64_t C = 10;
  const auto simulated = simulate_empty_cell_pmf(n, C, 200000, rng);
  for (std::uint64_t k = 0; k <= C; ++k) {
    EXPECT_NEAR(empty_cells_pmf(n, C, k), simulated[k], 0.005) << "k=" << k;
  }
}

TEST(EmptyCellsDistribution, AgreesWithPerKPmf) {
  const std::uint64_t n = 18;
  const std::uint64_t C = 9;
  const auto pmf = empty_cells_distribution(n, C);
  ASSERT_EQ(pmf.size(), C + 1);
  for (std::uint64_t k = 0; k <= C; ++k) {
    EXPECT_DOUBLE_EQ(pmf[k], empty_cells_pmf(n, C, k)) << "k=" << k;
  }
}

TEST(EmptyCellsDistribution, IsExactForLargeParameters) {
  // The positive-term DP stays a probability distribution even where the
  // naive inclusion-exclusion would be destroyed by cancellation.
  const std::uint64_t C = 400;
  const std::uint64_t n = 1200;
  const auto pmf = empty_cells_distribution(n, C);
  double total = 0.0;
  for (double p : pmf) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(EmptyCellsDistribution, SingleCellIsAlwaysOccupied) {
  const auto pmf = empty_cells_distribution(5, 1);
  ASSERT_EQ(pmf.size(), 2u);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
  EXPECT_DOUBLE_EQ(pmf[1], 0.0);
}

TEST(ExpectedEmptyCells, MatchesPmfExpectation) {
  for (const auto [n, C] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {10, 5}, {25, 20}, {60, 30}}) {
    double from_pmf = 0.0;
    for (std::uint64_t k = 0; k <= C; ++k) {
      from_pmf += static_cast<double>(k) * empty_cells_pmf(n, C, k);
    }
    EXPECT_NEAR(expected_empty_cells(n, C), from_pmf, 1e-8) << "n=" << n << " C=" << C;
  }
}

TEST(VarianceEmptyCells, MatchesPmfVariance) {
  for (const auto [n, C] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {10, 5}, {25, 20}, {60, 30}}) {
    double mean = 0.0;
    double second = 0.0;
    for (std::uint64_t k = 0; k <= C; ++k) {
      const double p = empty_cells_pmf(n, C, k);
      mean += static_cast<double>(k) * p;
      second += static_cast<double>(k) * static_cast<double>(k) * p;
    }
    const double var_from_pmf = second - mean * mean;
    EXPECT_NEAR(variance_empty_cells(n, C), var_from_pmf, 1e-7) << "n=" << n << " C=" << C;
  }
}

TEST(ExpectedEmptyCells, UpperBoundOfTheorem1Holds) {
  // E[mu] <= C e^{-n/C} for every n and C.
  for (std::uint64_t C : {2u, 5u, 17u, 100u, 1000u}) {
    for (std::uint64_t n : {0u, 1u, 5u, 50u, 500u, 5000u}) {
      EXPECT_LE(expected_empty_cells(n, C),
                expected_empty_cells_upper_bound(n, C) + 1e-12)
          << "n=" << n << " C=" << C;
    }
  }
}

TEST(AsymptoticMoments, ConvergeToExactAsCGrows) {
  // In the central domain (n = 2C) the relative error of the Theorem 1
  // asymptotics must shrink as C grows.
  double previous_error = 1.0;
  for (std::uint64_t C : {10u, 100u, 1000u, 10000u}) {
    const std::uint64_t n = 2 * C;
    const double exact = expected_empty_cells(n, C);
    const double asym = expected_empty_cells_asymptotic(n, C);
    const double error = std::abs(exact - asym) / exact;
    EXPECT_LT(error, previous_error);
    previous_error = error;
  }
  EXPECT_LT(previous_error, 1e-3);
}

TEST(AsymptoticVariance, CloseToExactForLargeC) {
  const std::uint64_t C = 10000;
  const std::uint64_t n = 2 * C;
  const double exact = variance_empty_cells(n, C);
  const double asym = variance_empty_cells_asymptotic(n, C);
  EXPECT_NEAR(asym / exact, 1.0, 0.01);
}

TEST(ClassifyDomain, RecognizesTheFiveRegimes) {
  const std::uint64_t C = 1u << 20;  // ~1e6
  const auto sqrt_c = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(C)));
  const auto c_log_c =
      static_cast<std::uint64_t>(static_cast<double>(C) * std::log(static_cast<double>(C)));

  EXPECT_EQ(classify_domain(sqrt_c, C), Domain::kLeftHand);
  EXPECT_EQ(classify_domain(C / 100, C), Domain::kLeftIntermediate);
  EXPECT_EQ(classify_domain(C, C), Domain::kCentral);
  EXPECT_EQ(classify_domain(2 * C, C), Domain::kCentral);
  EXPECT_EQ(classify_domain(6 * C, C), Domain::kRightIntermediate);
  EXPECT_EQ(classify_domain(c_log_c, C), Domain::kRightHand);
}

TEST(ClassifyDomain, NamesAreStable) {
  EXPECT_STREQ(domain_name(Domain::kLeftHand), "LHD");
  EXPECT_STREQ(domain_name(Domain::kLeftIntermediate), "LHID");
  EXPECT_STREQ(domain_name(Domain::kCentral), "CD");
  EXPECT_STREQ(domain_name(Domain::kRightIntermediate), "RHID");
  EXPECT_STREQ(domain_name(Domain::kRightHand), "RHD");
}

TEST(LimitLaw, NormalInCentralDomain) {
  const std::uint64_t C = 1u << 16;
  const std::uint64_t n = C;
  const LimitLaw law = limit_law(n, C);
  EXPECT_EQ(law.kind, LimitLaw::Kind::kNormal);
  EXPECT_NEAR(law.location, expected_empty_cells(n, C), 1e-9);
  EXPECT_NEAR(law.scale, std::sqrt(variance_empty_cells(n, C)), 1e-9);
}

TEST(LimitLaw, PoissonInRightHandDomain) {
  const std::uint64_t C = 1u << 16;
  const auto n = static_cast<std::uint64_t>(
      static_cast<double>(C) * std::log(static_cast<double>(C)));
  const LimitLaw law = limit_law(n, C);
  EXPECT_EQ(law.kind, LimitLaw::Kind::kPoisson);
  EXPECT_NEAR(law.location, expected_empty_cells(n, C), 1e-9);
}

TEST(LimitLaw, ShiftedPoissonInLeftHandDomain) {
  const std::uint64_t C = 1u << 16;
  const auto n = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(C)));
  const LimitLaw law = limit_law(n, C);
  EXPECT_EQ(law.kind, LimitLaw::Kind::kShiftedPoisson);
  EXPECT_NEAR(law.shift, static_cast<double>(C - n), 1e-9);
  EXPECT_NEAR(law.location, variance_empty_cells(n, C), 1e-9);
}

TEST(LimitLaw, NormalLawPredictsSimulatedDistribution) {
  // Central domain: empirical mean/stddev of mu should match the law.
  Rng rng(2);
  const std::uint64_t C = 500;
  const std::uint64_t n = 500;
  const LimitLaw law = limit_law(n, C);
  ASSERT_EQ(law.kind, LimitLaw::Kind::kNormal);

  double sum = 0.0;
  double sum2 = 0.0;
  const int trials = 20000;
  std::vector<bool> occupied(C);
  for (int t = 0; t < trials; ++t) {
    std::fill(occupied.begin(), occupied.end(), false);
    for (std::uint64_t b = 0; b < n; ++b) occupied[rng.uniform_index(C)] = true;
    std::uint64_t empty = 0;
    for (bool o : occupied) {
      if (!o) ++empty;
    }
    sum += static_cast<double>(empty);
    sum2 += static_cast<double>(empty) * static_cast<double>(empty);
  }
  const double mean = sum / trials;
  const double stddev = std::sqrt(sum2 / trials - mean * mean);
  EXPECT_NEAR(mean, law.location, 3.0 * law.scale / std::sqrt(trials) + 0.5);
  EXPECT_NEAR(stddev, law.scale, 0.05 * law.scale + 0.2);
}

}  // namespace
}  // namespace manet
