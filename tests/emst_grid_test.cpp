#include "topology/emst_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "geometry/torus.hpp"
#include "graph/union_find.hpp"
#include "sim/deployment.hpp"
#include "sim/trace_workspace.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"
#include "topology/mst.hpp"

namespace manet {
namespace {

std::vector<double> sorted_weights(std::span<const WeightedEdge> edges) {
  std::vector<double> weights;
  weights.reserve(edges.size());
  for (const auto& edge : edges) weights.push_back(edge.weight);
  std::sort(weights.begin(), weights.end());
  return weights;
}

// The grid engine may pick a different (equally minimal) tree than dense
// Prim when edge weights tie, so trees are compared through the quantities
// the simulator actually consumes — all of which are invariant across every
// MST of the same graph and must match BITWISE (EXPECT_EQ on doubles):
// the sorted edge-weight multiset, the bottleneck, and the full
// largest-component breakpoint curve.
void expect_value_identical(std::size_t n, std::span<const WeightedEdge> dense,
                            std::span<const WeightedEdge> grid) {
  ASSERT_EQ(dense.size(), grid.size());
  ASSERT_EQ(grid.size(), n <= 1 ? 0u : n - 1);

  const auto dense_weights = sorted_weights(dense);
  const auto grid_weights = sorted_weights(grid);
  for (std::size_t i = 0; i < dense_weights.size(); ++i) {
    EXPECT_EQ(dense_weights[i], grid_weights[i]) << "weight multiset differs at rank " << i;
  }
  EXPECT_EQ(tree_bottleneck(dense), tree_bottleneck(grid));

  // The grid tree must genuinely span.
  UnionFind dsu(n);
  for (const auto& edge : grid) {
    ASSERT_LT(edge.u, n);
    ASSERT_LT(edge.v, n);
    EXPECT_TRUE(dsu.unite(edge.u, edge.v)) << "cycle edge (" << edge.u << ", " << edge.v << ")";
  }
  if (n > 0) {
    EXPECT_EQ(dsu.largest_component_size(), n);
  }

  // The engine's output contract: edges sorted ascending by weight.
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end(),
                             [](const WeightedEdge& a, const WeightedEdge& b) {
                               return a.weight < b.weight;
                             }));

  const LargestComponentCurve dense_curve(n, {dense.begin(), dense.end()});
  const LargestComponentCurve grid_curve(n, {grid.begin(), grid.end()});
  const auto dense_bps = dense_curve.breakpoints();
  const auto grid_bps = grid_curve.breakpoints();
  ASSERT_EQ(dense_bps.size(), grid_bps.size());
  for (std::size_t i = 0; i < dense_bps.size(); ++i) {
    EXPECT_EQ(dense_bps[i].range, grid_bps[i].range) << "breakpoint range differs at " << i;
    EXPECT_EQ(dense_bps[i].size, grid_bps[i].size) << "breakpoint size differs at " << i;
  }
}

// Independent O(n^2 log n) reference: Kruskal over all pairs, no shared code
// with either dense Prim or the grid engine beyond the distance helpers.
template <int D>
std::vector<double> kruskal_reference_weights(const std::vector<Point<D>>& points) {
  struct Edge {
    double d2;
    std::size_t u, v;
  };
  std::vector<Edge> all;
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      all.push_back({squared_distance(points[i], points[j]), i, j});
    }
  }
  std::sort(all.begin(), all.end(), [](const Edge& a, const Edge& b) { return a.d2 < b.d2; });
  UnionFind dsu(n);
  std::vector<double> weights;
  for (const Edge& e : all) {
    if (dsu.unite(e.u, e.v)) weights.push_back(covering_radius(e.d2));
  }
  std::sort(weights.begin(), weights.end());
  return weights;
}

// Points packed into a few tight clusters separated by empty space: the
// initial connectivity-threshold radius finds no spanning candidate graph,
// so the adaptive doubling loop must run several rounds.
template <int D>
std::vector<Point<D>> clustered_deployment(std::size_t n, const Box<D>& box,
                                           std::size_t clusters, double spread, Rng& rng) {
  const auto centers = uniform_deployment(clusters, box, rng);
  std::vector<Point<D>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point<D> p = centers[i % clusters];
    for (int axis = 0; axis < D; ++axis) {
      const double offset = rng.uniform(-spread, spread);
      p.coords[axis] = std::clamp(p.coords[axis] + offset, 0.0, box.side());
    }
    points.push_back(p);
  }
  return points;
}

template <int D>
void check_uniform_configs() {
  Rng rng(0x9E3779B9u + static_cast<unsigned>(D));
  for (std::size_t n : {2u, 3u, 7u, 31u, 32u, 33u, 100u, 300u}) {
    for (double side : {1.0, 50.0, 2000.0}) {
      const Box<D> box(side);
      const auto points = uniform_deployment(n, box, rng);
      EmstEngine<D> engine;
      const auto grid = engine.euclidean(points, box);
      const auto dense = euclidean_mst<D>(points);
      expect_value_identical(n, dense, grid);
      const auto reference = kruskal_reference_weights(points);
      const auto grid_sorted = sorted_weights(grid);
      ASSERT_EQ(reference.size(), grid_sorted.size()) << "n=" << n << " side=" << side;
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i], grid_sorted[i]) << "n=" << n << " side=" << side << " rank=" << i;
      }
    }
  }
}

TEST(EmstGrid, MatchesDenseAndKruskalUniform1D) { check_uniform_configs<1>(); }
TEST(EmstGrid, MatchesDenseAndKruskalUniform2D) { check_uniform_configs<2>(); }
TEST(EmstGrid, MatchesDenseAndKruskalUniform3D) { check_uniform_configs<3>(); }

TEST(EmstGrid, MatchesDenseOnClusteredConfigs) {
  Rng rng(42);
  const Box2 box(1000.0);
  for (std::size_t clusters : {2u, 5u}) {
    for (double spread : {0.5, 10.0}) {
      const auto points = clustered_deployment<2>(160, box, clusters, spread, rng);
      EmstEngine<2> engine;
      const auto grid = engine.euclidean(points, box);
      expect_value_identical(points.size(), euclidean_mst<2>(points), grid);
      // Clusters force the doubling loop past its first round.
      EXPECT_FALSE(engine.stats().dense_fallback);
      EXPECT_GE(engine.stats().rounds, 2u) << "clusters=" << clusters << " spread=" << spread;
    }
  }
}

TEST(EmstGrid, CollinearAndDuplicatePointsAreHandled) {
  // Collinear points with duplicates: many exactly-tied candidate edges.
  std::vector<Point2> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back({{static_cast<double>(i % 16), 5.0}});  // 4 copies of each of 16 spots
  }
  const Box2 box(20.0);
  EmstEngine<2> engine;
  expect_value_identical(points.size(), euclidean_mst<2>(points),
                         engine.euclidean(points, box));

  // All points coincident: every MST edge has weight 0.
  const std::vector<Point2> coincident(40, Point2{{3.0, 3.0}});
  const auto grid = engine.euclidean(coincident, box);
  ASSERT_EQ(grid.size(), coincident.size() - 1);
  for (const auto& edge : grid) EXPECT_EQ(edge.weight, 0.0);
  expect_value_identical(coincident.size(), euclidean_mst<2>(coincident), grid);
}

TEST(EmstGrid, EmptyAndSingletonInputs) {
  EmstEngine<2> engine;
  const Box2 box(10.0);
  const std::vector<Point2> none;
  const std::vector<Point2> one = {{{5.0, 5.0}}};
  EXPECT_TRUE(engine.euclidean(none, box).empty());
  EXPECT_TRUE(engine.euclidean(one, box).empty());
  EXPECT_TRUE(engine.torus(none, 10.0).empty());
  EXPECT_TRUE(engine.torus(one, 10.0).empty());
}

template <int D>
void check_torus_configs() {
  Rng rng(7u + static_cast<unsigned>(D));
  const auto torus_d2 = [](double side) {
    return [side](const Point<D>& a, const Point<D>& b) {
      return torus_squared_distance(a, b, side);
    };
  };
  for (std::size_t n : {2u, 16u, 40u, 200u}) {
    for (double side : {1.0, 100.0}) {
      const Box<D> box(side);
      const auto points = uniform_deployment(n, box, rng);
      EmstEngine<D> engine;
      const auto grid = engine.torus(points, side);
      const auto dense = mst_with_metric<D>(points, torus_d2(side));
      expect_value_identical(n, dense, grid);
      EXPECT_EQ(torus_critical_range<D>(points, side), tree_bottleneck(dense));
    }
  }
}

TEST(EmstGrid, TorusMatchesDenseTorusMetric1D) { check_torus_configs<1>(); }
TEST(EmstGrid, TorusMatchesDenseTorusMetric2D) { check_torus_configs<2>(); }
TEST(EmstGrid, TorusMatchesDenseTorusMetric3D) { check_torus_configs<3>(); }

TEST(EmstGrid, TorusClusteredConfigsWrapAcrossBoundary) {
  // Clusters hugging opposite edges of the region: the torus MST must cross
  // the wrap seam, which only the wrap-aware neighbor scan can see.
  Rng rng(11);
  const double side = 100.0;
  std::vector<Point2> points;
  for (std::size_t i = 0; i < 60; ++i) {
    const double y = rng.uniform(0.0, side);
    points.push_back({{rng.uniform(0.0, 2.0), y}});
    points.push_back({{rng.uniform(side - 2.0, side), y}});
  }
  EmstEngine<2> engine;
  const auto grid = engine.torus(points, side);
  const auto dense = mst_with_metric<2>(points, [side](const Point2& a, const Point2& b) {
    return torus_squared_distance(a, b, side);
  });
  expect_value_identical(points.size(), dense, grid);
  // Wrap distances across the seam (~<= 4) are far below the Euclidean gap
  // (~96), so the torus bottleneck must be much smaller.
  EXPECT_LT(tree_bottleneck(grid), 0.5 * tree_bottleneck(euclidean_mst<2>(points)));
}

TEST(EmstGrid, EngineReuseIsBitIdenticalToFreshEngines) {
  Rng rng(123);
  const Box2 box(300.0);
  EmstEngine<2> reused;
  // Descending sizes so reuse shrinks the live ranges inside pooled buffers.
  for (std::size_t n : {500u, 128u, 40u, 8u, 200u}) {
    const auto points = uniform_deployment(n, box, rng);
    const auto from_reused = reused.euclidean(points, box);
    EmstEngine<2> fresh;
    const auto from_fresh = fresh.euclidean(points, box);
    ASSERT_EQ(from_reused.size(), from_fresh.size());
    for (std::size_t i = 0; i < from_fresh.size(); ++i) {
      EXPECT_EQ(from_reused[i].u, from_fresh[i].u);
      EXPECT_EQ(from_reused[i].v, from_fresh[i].v);
      EXPECT_EQ(from_reused[i].weight, from_fresh[i].weight);
    }
    // Alternate metric between solves: no state may leak across calls.
    const auto torus_reused = reused.torus(points, box.side());
    EmstEngine<2> torus_fresh;
    const auto torus_expected = torus_fresh.torus(points, box.side());
    ASSERT_EQ(torus_reused.size(), torus_expected.size());
    for (std::size_t i = 0; i < torus_expected.size(); ++i) {
      EXPECT_EQ(torus_reused[i].weight, torus_expected[i].weight);
    }
  }
}

TEST(EmstGrid, StatsReflectChosenPath) {
  Rng rng(5);
  const Box2 box(100.0);

  const auto tiny = uniform_deployment(EmstEngine<2>::kDenseCutoff - 1, box, rng);
  EmstEngine<2> engine;
  engine.euclidean(tiny, box);
  EXPECT_TRUE(engine.stats().dense_fallback);

  const auto large = uniform_deployment(512, box, rng);
  engine.euclidean(large, box);
  EXPECT_FALSE(engine.stats().dense_fallback);
  EXPECT_GE(engine.stats().rounds, 1u);
  EXPECT_GT(engine.stats().final_radius, 0.0);
  EXPECT_GE(engine.stats().candidate_edges, large.size() - 1);
}

template <int D>
double brute_force_isolation(const std::vector<Point<D>>& points) {
  double worst = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double nn2 = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j) nn2 = std::min(nn2, squared_distance(points[i], points[j]));
    }
    worst = std::max(worst, nn2);
  }
  return covering_radius(worst);
}

TEST(EmstGrid, NearestNeighborRangeMatchesBruteForce) {
  Rng rng(99);
  for (std::size_t n : {2u, 10u, 33u, 150u}) {
    const Box2 box(80.0);
    const auto points = uniform_deployment(n, box, rng);
    EmstEngine<2> engine;
    EXPECT_EQ(engine.max_nearest_neighbor_range(points, box), brute_force_isolation(points))
        << "n=" << n;
    EXPECT_EQ(isolation_range<2>(points, box), brute_force_isolation(points));
    EXPECT_EQ(isolation_range<2>(points), brute_force_isolation(points));
  }
  // Clustered sets: a lone far cluster forces extra doubling rounds in the
  // nearest-neighbor search too.
  const Box2 box(1000.0);
  const auto clustered = clustered_deployment<2>(120, box, 3, 1.0, rng);
  EmstEngine<2> engine;
  EXPECT_EQ(engine.max_nearest_neighbor_range(clustered, box), brute_force_isolation(clustered));
}

TEST(EmstGrid, IsolationRangeWithoutBoxHandlesNegativeCoordinates) {
  // Negative coordinates fall outside every deployment box, so the box-less
  // overload must take its dense path and still be exact.
  const std::vector<Point2> points = {
      {{-5.0, -5.0}}, {{-4.0, -5.0}}, {{3.0, 2.0}}, {{3.5, 2.0}}, {{10.0, -1.0}}};
  EXPECT_EQ(isolation_range<2>(points), brute_force_isolation(points));
}

TEST(EmstGrid, CriticalRangeOverloadsAgree) {
  Rng rng(77);
  for (int rep = 0; rep < 5; ++rep) {
    const Box2 box(60.0);
    const auto points = uniform_deployment(90, box, rng);
    EXPECT_EQ(critical_range<2>(points, box), critical_range<2>(points));
    const Box3 box3(30.0);
    const auto points3 = uniform_deployment(64, box3, rng);
    EXPECT_EQ(critical_range<3>(points3, box3), critical_range<3>(points3));
  }
}

TEST(EmstGrid, WorkspaceCurveBuilderMatchesLegacyBuilder) {
  Rng rng(31337);
  const Box2 box(200.0);
  TraceWorkspace<2> workspace;
  for (std::size_t n : {2u, 33u, 120u}) {
    const auto points = uniform_deployment(n, box, rng);
    const auto legacy = largest_component_curve<2>(points);
    const auto one_shot = largest_component_curve<2>(points, box);
    const auto pooled = largest_component_curve<2>(points, box, workspace);
    for (const auto* curve : {&one_shot, &pooled}) {
      const auto expected = legacy.breakpoints();
      const auto actual = curve->breakpoints();
      ASSERT_EQ(expected.size(), actual.size()) << "n=" << n;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].range, actual[i].range);
        EXPECT_EQ(expected[i].size, actual[i].size);
      }
    }
  }
}

}  // namespace
}  // namespace manet
