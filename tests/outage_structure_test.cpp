#include <gtest/gtest.h>

#include "core/availability.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

MtrmConfig outage_config() {
  MtrmConfig config;
  config.node_count = 12;
  config.side = 144.0;
  config.steps = 120;
  config.iterations = 4;
  config.mobility = MobilityConfig::paper_drunkard(144.0);
  config.time_fractions = {1.0, 0.9, 0.5};
  return config;
}

TEST(SolveOutageStructure, OneAggregatePerTimeFraction) {
  Rng rng(1);
  const MtrmConfig config = outage_config();
  const auto aggregates = solve_outage_structure<2>(config, rng);
  ASSERT_EQ(aggregates.size(), 3u);
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    EXPECT_DOUBLE_EQ(aggregates[i].time_fraction, config.time_fractions[i]);
    EXPECT_EQ(aggregates[i].availability.count(), config.iterations);
    EXPECT_EQ(aggregates[i].outage_count.count(), config.iterations);
  }
}

TEST(SolveOutageStructure, AvailabilityMeetsEachTimeFraction) {
  Rng rng(2);
  const auto aggregates = solve_outage_structure<2>(outage_config(), rng);
  for (const OutageAggregate& aggregate : aggregates) {
    // Operating at r_f guarantees availability >= f within every iteration.
    EXPECT_GE(aggregate.availability.min(), aggregate.time_fraction - 1e-12);
  }
}

TEST(SolveOutageStructure, FullConnectivityHasNoOutages) {
  Rng rng(3);
  const auto aggregates = solve_outage_structure<2>(outage_config(), rng);
  const OutageAggregate& at_r100 = aggregates[0];
  EXPECT_DOUBLE_EQ(at_r100.availability.mean(), 1.0);
  EXPECT_DOUBLE_EQ(at_r100.outage_count.mean(), 0.0);
  EXPECT_DOUBLE_EQ(at_r100.longest_outage.mean(), 0.0);
}

TEST(SolveOutageStructure, LowerFractionMeansSmallerRangeMoreDowntime) {
  Rng rng(4);
  const auto aggregates = solve_outage_structure<2>(outage_config(), rng);
  EXPECT_GE(aggregates[0].operating_range.mean(), aggregates[1].operating_range.mean());
  EXPECT_GE(aggregates[1].operating_range.mean(), aggregates[2].operating_range.mean());
  EXPECT_GE(aggregates[1].availability.mean(), aggregates[2].availability.mean());
  EXPECT_LE(aggregates[1].longest_outage.mean(), aggregates[2].longest_outage.mean());
}

TEST(SolveOutageStructure, DeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  const auto ra = solve_outage_structure<2>(outage_config(), a);
  const auto rb = solve_outage_structure<2>(outage_config(), b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].availability.mean(), rb[i].availability.mean());
    EXPECT_DOUBLE_EQ(ra[i].longest_outage.mean(), rb[i].longest_outage.mean());
  }
}

TEST(SolveOutageStructure, ValidatesConfig) {
  Rng rng(6);
  MtrmConfig config = outage_config();
  config.node_count = 0;
  EXPECT_THROW(solve_outage_structure<2>(config, rng), ConfigError);
}

}  // namespace
}  // namespace manet
