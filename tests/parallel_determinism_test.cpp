// The parallel engine's headline guarantee, tested adversarially: every
// simulation result is BIT-IDENTICAL at any thread count — serial (1),
// 2 threads and 8 threads must agree to the last bit for MTRM, stationary
// sampling and Monte-Carlo threshold search, because trial substreams are
// pure functions of (seed, trial index) and reductions run in trial order
// (support/parallel.hpp). Run under the tsan preset these tests double as
// the race-detection workload of CI (`MANET_THREADS=8`).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "core/paper_simulator.hpp"
#include "geometry/box.hpp"
#include "graph/link_model.hpp"
#include "sim/stationary_sample.hpp"
#include "sim/threshold_search.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

/// Restores the process-wide thread-count override on scope exit so a
/// failing assertion cannot leak a parallelism setting into later tests.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t threads) { set_max_parallelism(threads); }
  ~ScopedThreads() { set_max_parallelism(0); }
};

const std::vector<std::size_t> kThreadCounts = {1, 2, 8};

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << a << " and " << b << " differ in bits";
}

MtrmConfig mtrm_config(bool drunkard) {
  MtrmConfig config;
  config.node_count = 16;
  config.side = 256.0;
  config.steps = 60;
  config.iterations = 6;
  config.mobility = drunkard ? MobilityConfig::paper_drunkard(config.side)
                             : MobilityConfig::paper_waypoint(config.side);
  return config;
}

std::vector<double> flatten(const MtrmResult& result) {
  std::vector<double> values;
  for (const RunningStats& stats : result.range_for_time) {
    values.push_back(stats.mean());
    values.push_back(stats.variance());
  }
  values.push_back(result.range_never_connected.mean());
  values.push_back(result.lcc_at_range_never.mean());
  for (const RunningStats& stats : result.range_for_component) values.push_back(stats.mean());
  for (const RunningStats& stats : result.lcc_at_range_for_time) values.push_back(stats.mean());
  for (const RunningStats& stats : result.min_lcc_at_range_for_time) {
    values.push_back(stats.mean());
  }
  values.push_back(result.mean_critical_range.mean());
  return values;
}

TEST(ParallelDeterminism, MtrmIsBitIdenticalAcrossThreadCounts) {
  for (bool drunkard : {false, true}) {
    std::vector<std::vector<double>> per_thread_count;
    for (std::size_t threads : kThreadCounts) {
      ScopedThreads scoped(threads);
      Rng rng(2002);
      per_thread_count.push_back(flatten(solve_mtrm<2>(mtrm_config(drunkard), rng)));
    }
    for (std::size_t i = 1; i < per_thread_count.size(); ++i) {
      ASSERT_EQ(per_thread_count[0].size(), per_thread_count[i].size());
      for (std::size_t v = 0; v < per_thread_count[0].size(); ++v) {
        EXPECT_TRUE(bits_equal(per_thread_count[0][v], per_thread_count[i][v]))
            << (drunkard ? "drunkard" : "waypoint") << " value " << v << " at "
            << kThreadCounts[i] << " threads";
      }
    }
  }
}

TEST(ParallelDeterminism, StationarySamplingIsBitIdenticalAcrossThreadCounts) {
  const Box2 box(512.0);
  std::vector<std::vector<double>> samples;
  for (std::size_t threads : kThreadCounts) {
    ScopedThreads scoped(threads);
    Rng rng(777);
    const auto sample = sample_stationary_critical_ranges<2>(24, box, 64, rng);
    samples.emplace_back(sample.sorted_radii().begin(), sample.sorted_radii().end());
  }
  for (std::size_t i = 1; i < samples.size(); ++i) {
    ASSERT_EQ(samples[0].size(), samples[i].size());
    EXPECT_EQ(std::memcmp(samples[0].data(), samples[i].data(),
                          samples[0].size() * sizeof(double)),
              0)
        << "sample differs at " << kThreadCounts[i] << " threads";
  }
}

TEST(ParallelDeterminism, LinkModelSamplingIsBitIdenticalAcrossThreadCounts) {
  // The LinkModel seam's determinism contract (DESIGN.md §17): shadowing
  // fading and heterogeneous per-node ranges are keyed by pure-function
  // substreams, so the sampled critical-scale distribution is bit-identical
  // at any thread count — for every family, not just the unit disk.
  const Box2 box(256.0);
  for (const std::string& name : link_model_family_names()) {
    const auto family = make_link_model_family(name);
    std::vector<std::vector<double>> samples;
    for (std::size_t threads : kThreadCounts) {
      ScopedThreads scoped(threads);
      Rng rng(888);
      const auto sample = sample_link_model_critical_ranges<2>(20, box, 48, rng, *family);
      samples.emplace_back(sample.sorted_radii().begin(), sample.sorted_radii().end());
    }
    for (std::size_t i = 1; i < samples.size(); ++i) {
      ASSERT_EQ(samples[0].size(), samples[i].size());
      EXPECT_EQ(std::memcmp(samples[0].data(), samples[i].data(),
                            samples[0].size() * sizeof(double)),
                0)
          << name << " sample differs at " << kThreadCounts[i] << " threads";
    }
  }
}

TEST(ParallelDeterminism, LinkModelTradeoffIsBitIdenticalAcrossThreadCounts) {
  experiments::LinkModelTradeoffConfig config;
  config.node_count = 16;
  config.side = 256.0;
  config.trials = 32;

  std::vector<std::unique_ptr<LinkModelFamily>> owned;
  std::vector<const LinkModelFamily*> families;
  for (const std::string& name : link_model_family_names()) {
    owned.push_back(make_link_model_family(name));
    families.push_back(owned.back().get());
  }

  std::vector<std::vector<experiments::LinkModelTradeoffRow>> runs;
  for (std::size_t threads : kThreadCounts) {
    ScopedThreads scoped(threads);
    runs.push_back(experiments::link_model_energy_tradeoff(config, families, 2002));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[0].size(), runs[i].size());
    for (std::size_t row = 0; row < runs[0].size(); ++row) {
      EXPECT_EQ(runs[0][row].model, runs[i][row].model);
      EXPECT_TRUE(bits_equal(runs[0][row].r_full, runs[i][row].r_full))
          << runs[0][row].model << " at " << kThreadCounts[i] << " threads";
      EXPECT_TRUE(bits_equal(runs[0][row].r_tolerant, runs[i][row].r_tolerant));
      EXPECT_TRUE(bits_equal(runs[0][row].mean_critical_range,
                             runs[i][row].mean_critical_range));
      EXPECT_TRUE(bits_equal(runs[0][row].energy_savings, runs[i][row].energy_savings));
    }
  }
}

TEST(ParallelDeterminism, McThresholdSearchIsBitIdenticalAcrossThreadCounts) {
  // The classical simulate-per-candidate-range search: the predicate is the
  // fraction of random 12-node deployments connected at r.
  const Box2 box(128.0);
  BisectionOptions options;
  options.lo = 0.0;
  options.hi = 128.0 * 1.5;
  options.tolerance = 1e-4;
  McPredicateOptions mc;
  mc.trials = 48;
  mc.seed = 4242;
  mc.target_mean = 0.9;
  const TrialStatistic connected_indicator = [&box](double range, std::size_t, Rng& rng) {
    const auto points = uniform_deployment(12, box, rng);
    return critical_range<2>(points) <= range ? 1.0 : 0.0;
  };

  std::vector<BisectionResult> results;
  for (std::size_t threads : kThreadCounts) {
    ScopedThreads scoped(threads);
    results.push_back(bisect_min_range_mc(options, mc, connected_indicator));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(bits_equal(results[0].range, results[i].range))
        << "range differs at " << kThreadCounts[i] << " threads";
    EXPECT_EQ(results[0].evaluations, results[i].evaluations)
        << "evaluation count differs at " << kThreadCounts[i] << " threads";
  }
}

TEST(ParallelDeterminism, PaperSimulatorIsBitIdenticalAcrossThreadCounts) {
  PaperSimulatorInput input;
  input.r = 40.0;
  input.n = 20;
  input.l = 200.0;
  input.iterations = 5;
  input.steps = 30;
  input.mobility = MobilityConfig::paper_waypoint(input.l);

  std::vector<PaperSimulatorOutput> outputs;
  for (std::size_t threads : kThreadCounts) {
    ScopedThreads scoped(threads);
    Rng rng(31337);
    outputs.push_back(run_paper_simulator<2>(input, rng));
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[0].per_iteration.size(), outputs[i].per_iteration.size());
    for (std::size_t it = 0; it < outputs[0].per_iteration.size(); ++it) {
      EXPECT_TRUE(bits_equal(outputs[0].per_iteration[it].connected_fraction,
                             outputs[i].per_iteration[it].connected_fraction));
      EXPECT_TRUE(bits_equal(outputs[0].per_iteration[it].mean_largest_when_disconnected,
                             outputs[i].per_iteration[it].mean_largest_when_disconnected));
    }
    EXPECT_TRUE(bits_equal(outputs[0].overall.connected_fraction,
                           outputs[i].overall.connected_fraction));
    EXPECT_TRUE(
        bits_equal(outputs[0].overall.min_largest, outputs[i].overall.min_largest));
  }
}

TEST(ParallelDeterminism, ParallelAdvancesCallerRngExactlyLikeSerial) {
  // The engine consumes exactly one draw from the caller's stream regardless
  // of thread count, so code after a solver sees the same stream state.
  std::vector<std::uint64_t> next_draws;
  for (std::size_t threads : kThreadCounts) {
    ScopedThreads scoped(threads);
    Rng rng(5150);
    (void)solve_mtrm<2>(mtrm_config(false), rng);
    next_draws.push_back(rng.next_u64());
  }
  for (std::size_t i = 1; i < next_draws.size(); ++i) {
    EXPECT_EQ(next_draws[0], next_draws[i]);
  }
}

TEST(ParallelContention, ManyTinyTrialsWithThreadsFarAboveCores) {
  // Contention stress: thousands of near-empty trials over far more threads
  // than any test machine has cores. The result must still be the exact
  // serial fold, and nothing may deadlock under scheduler churn.
  const std::size_t trials = 4096;
  const std::uint64_t seed = 99;
  const auto tiny_trial = [](std::size_t trial, Rng& rng) {
    return rng.uniform() + static_cast<double>(trial) * 1e-9;
  };

  ParallelOptions serial;
  serial.threads = 1;
  const auto expected = parallel_for_trials(trials, seed, tiny_trial, serial);

  for (std::size_t threads : {16ul, 64ul}) {
    ParallelOptions stress;
    stress.threads = threads;
    const auto actual = parallel_for_trials(trials, seed, tiny_trial, stress);
    ASSERT_EQ(expected.size(), actual.size());
    EXPECT_EQ(std::memcmp(expected.data(), actual.data(), trials * sizeof(double)), 0)
        << "diverged at " << threads << " threads";
  }

  // Serial fold of an order-sensitive reduction, repeated under stress.
  const auto noncommutative = [](double acc, double value) { return acc * 0.5 + value; };
  double serial_fold = 0.0;
  for (double v : expected) serial_fold = noncommutative(serial_fold, v);
  ParallelOptions stress;
  stress.threads = 64;
  const double parallel_fold =
      parallel_reduce_trials(trials, seed, tiny_trial, 0.0, noncommutative, stress);
  EXPECT_TRUE(bits_equal(serial_fold, parallel_fold));
}

TEST(ParallelContention, RepeatedSmallBatchesDoNotAccumulateState) {
  // Back-to-back batches reuse the pool; every batch must stay independent.
  for (int round = 0; round < 50; ++round) {
    ParallelOptions options;
    options.threads = 8;
    const auto values = parallel_for_trials(
        17, 1234, [](std::size_t, Rng& rng) { return rng.uniform(); }, options);
    const auto again = parallel_for_trials(
        17, 1234, [](std::size_t, Rng& rng) { return rng.uniform(); }, options);
    ASSERT_EQ(values, again) << "round " << round;
  }
}

}  // namespace
}  // namespace manet
