#include "core/mtrm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

MtrmConfig small_config() {
  MtrmConfig config;
  config.node_count = 12;
  config.side = 144.0;
  config.steps = 60;
  config.iterations = 4;
  config.mobility = MobilityConfig::paper_drunkard(144.0);
  return config;
}

TEST(MtrmConfig, Validation) {
  MtrmConfig config = small_config();
  EXPECT_NO_THROW(config.validate());

  config.node_count = 1;
  EXPECT_THROW(config.validate(), ConfigError);
  config = small_config();

  config.side = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = small_config();

  config.steps = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = small_config();

  config.iterations = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = small_config();

  config.time_fractions = {1.5};
  EXPECT_THROW(config.validate(), ConfigError);
  config = small_config();

  config.component_fractions = {0.0};
  EXPECT_THROW(config.validate(), ConfigError);
  config = small_config();

  config.time_fractions.clear();
  config.component_fractions.clear();
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(SolveMtrm, PopulatesEveryRequestedStatistic) {
  Rng rng(1);
  const MtrmConfig config = small_config();
  const MtrmResult result = solve_mtrm<2>(config, rng);

  ASSERT_EQ(result.range_for_time.size(), 3u);
  ASSERT_EQ(result.range_for_component.size(), 3u);
  ASSERT_EQ(result.lcc_at_range_for_time.size(), 3u);
  ASSERT_EQ(result.min_lcc_at_range_for_time.size(), 3u);
  for (const auto& stats : result.range_for_time) {
    EXPECT_EQ(stats.count(), config.iterations);
  }
  EXPECT_EQ(result.range_never_connected.count(), config.iterations);
  EXPECT_EQ(result.mean_critical_range.count(), config.iterations);
  EXPECT_EQ(result.time_fractions, config.time_fractions);
  EXPECT_EQ(result.component_fractions, config.component_fractions);
}

TEST(SolveMtrm, RangeOrderingMatchesTimeFractions) {
  // r100 >= r90 >= r10 >= r0 must hold per construction.
  Rng rng(2);
  const MtrmResult result = solve_mtrm<2>(small_config(), rng);
  const double r100 = result.range_for_time[0].mean();
  const double r90 = result.range_for_time[1].mean();
  const double r10 = result.range_for_time[2].mean();
  const double r0 = result.range_never_connected.mean();
  EXPECT_GE(r100, r90);
  EXPECT_GE(r90, r10);
  EXPECT_GE(r10, r0);
  EXPECT_GT(r0, 0.0);
}

TEST(SolveMtrm, ComponentRangesOrderedByFraction) {
  Rng rng(3);
  const MtrmResult result = solve_mtrm<2>(small_config(), rng);
  const double rl90 = result.range_for_component[0].mean();
  const double rl75 = result.range_for_component[1].mean();
  const double rl50 = result.range_for_component[2].mean();
  EXPECT_GE(rl90, rl75);
  EXPECT_GE(rl75, rl50);
  EXPECT_GT(rl50, 0.0);
}

TEST(SolveMtrm, ComponentRangesBelowFullConnectivityRange) {
  // Keeping 90% of nodes connected on average never needs more range than
  // keeping 100% connected 100% of the time.
  Rng rng(4);
  const MtrmResult result = solve_mtrm<2>(small_config(), rng);
  EXPECT_LE(result.range_for_component[0].mean(), result.range_for_time[0].mean());
}

TEST(SolveMtrm, IsDeterministicPerSeed) {
  const MtrmConfig config = small_config();
  Rng a(5);
  Rng b(5);
  const MtrmResult ra = solve_mtrm<2>(config, a);
  const MtrmResult rb = solve_mtrm<2>(config, b);
  EXPECT_DOUBLE_EQ(ra.range_for_time[0].mean(), rb.range_for_time[0].mean());
  EXPECT_DOUBLE_EQ(ra.range_never_connected.mean(), rb.range_never_connected.mean());
  EXPECT_DOUBLE_EQ(ra.range_for_component[2].mean(), rb.range_for_component[2].mean());
}

TEST(SolveMtrm, StationaryMobilityCollapsesTimeFractions) {
  // Without movement every step has the same critical radius, so
  // r100 == r90 == r10 == r0 within each iteration.
  MtrmConfig config = small_config();
  config.mobility = MobilityConfig::stationary();
  Rng rng(6);
  const MtrmResult result = solve_mtrm<2>(config, rng);
  EXPECT_DOUBLE_EQ(result.range_for_time[0].mean(), result.range_for_time[2].mean());
  EXPECT_DOUBLE_EQ(result.range_for_time[0].mean(), result.range_never_connected.mean());
}

TEST(SolveMtrm, LccFractionsAreInUnitInterval) {
  Rng rng(7);
  const MtrmResult result = solve_mtrm<2>(small_config(), rng);
  for (const auto& stats : result.lcc_at_range_for_time) {
    EXPECT_GE(stats.mean(), 0.0);
    EXPECT_LE(stats.mean(), 1.0);
  }
  EXPECT_GE(result.lcc_at_range_never.mean(), 0.0);
  EXPECT_LE(result.lcc_at_range_never.mean(), 1.0);
  for (const auto& stats : result.min_lcc_at_range_for_time) {
    EXPECT_GE(stats.mean(), 0.0);
    EXPECT_LE(stats.mean(), 1.0);
  }
}

TEST(SolveMtrm, WaypointModelRuns) {
  MtrmConfig config = small_config();
  config.mobility = MobilityConfig::paper_waypoint(config.side);
  // Speed up arrival for the small test region.
  config.mobility.waypoint.pause_steps = 5;
  Rng rng(8);
  const MtrmResult result = solve_mtrm<2>(config, rng);
  EXPECT_GT(result.range_for_time[0].mean(), 0.0);
}

TEST(SolveMtrm, CustomFractionsAreHonored) {
  MtrmConfig config = small_config();
  config.time_fractions = {0.5};
  config.component_fractions = {0.25, 1.0};
  Rng rng(9);
  const MtrmResult result = solve_mtrm<2>(config, rng);
  ASSERT_EQ(result.range_for_time.size(), 1u);
  ASSERT_EQ(result.range_for_component.size(), 2u);
  // rl at phi=1.0 requires the mean LCC to be n: at least the per-iteration
  // r100, hence >= rl at 0.25.
  EXPECT_GE(result.range_for_component[1].mean(), result.range_for_component[0].mean());
}

TEST(MtrmTest, FlattenLabelsMatchFlattenLayout) {
  MtrmConfig config = small_config();
  config.time_fractions = {1.0, 0.9, 0.1};
  config.component_fractions = {0.5, 0.9};
  Rng rng(10);
  const MtrmResult result = solve_mtrm<2>(config, rng);
  const std::vector<double> flattened = flatten_mtrm_result(result);
  const std::vector<std::string> labels =
      flatten_mtrm_labels(config.time_fractions.size(), config.component_fractions.size());

  // One label per slot, no duplicates — the addressing manetd relies on.
  ASSERT_EQ(labels.size(), flattened.size());
  EXPECT_EQ(std::set<std::string>(labels.begin(), labels.end()).size(), labels.size());

  // Spot-check the anchors of the layout against the struct fields.
  const auto index_of = [&](const std::string& label) {
    const auto it = std::find(labels.begin(), labels.end(), label);
    EXPECT_NE(it, labels.end()) << label;
    return static_cast<std::size_t>(it - labels.begin());
  };
  EXPECT_EQ(index_of("range_for_time[0].mean"), 0u);
  EXPECT_EQ(flattened[index_of("range_for_time[1].mean")], result.range_for_time[1].mean());
  EXPECT_EQ(flattened[index_of("range_never_connected.mean")],
            result.range_never_connected.mean());
  EXPECT_EQ(flattened[index_of("range_for_component[1].mean")],
            result.range_for_component[1].mean());
  EXPECT_EQ(flattened[index_of("lcc_at_range_for_time[2].mean")],
            result.lcc_at_range_for_time[2].mean());
  EXPECT_EQ(flattened[index_of("mean_critical_range.mean")],
            result.mean_critical_range.mean());
  EXPECT_EQ(index_of("mean_critical_range.mean"), labels.size() - 1);
}

}  // namespace
}  // namespace manet
