// Tests for the run-metrics layer (support/metrics.hpp): handle semantics,
// snapshot ordering, the per-thread-sink merge at the parallel engine's
// reduction barrier, and the layer's central promise — enabling metrics
// never moves the deterministic result stream. The whole file also compiles
// (and the determinism tests still run) with MANET_METRICS=0; value
// assertions on the metrics themselves are gated on metrics::compiled_in().

#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "sim/threshold_search.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

#if MANET_METRICS

TEST(RunMetrics, CounterAccumulatesAndSurvivesSnapshot) {
  metrics::reset();
  metrics::Counter counter = metrics::counter("test.counter_basic");
  counter.increment();
  counter.add(41);
  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.counter_value("test.counter_basic"), 42u);
  // snapshot() does not consume: a second snapshot sees the same total.
  EXPECT_EQ(metrics::snapshot().counter_value("test.counter_basic"), 42u);
  // Unknown names read as 0, not an error.
  EXPECT_EQ(snap.counter_value("test.never_registered"), 0u);
}

TEST(RunMetrics, HandlesForTheSameNameShareOneSlot) {
  metrics::reset();
  metrics::Counter a = metrics::counter("test.shared_name");
  metrics::Counter b = metrics::counter("test.shared_name");
  a.add(2);
  b.add(3);
  EXPECT_EQ(metrics::snapshot().counter_value("test.shared_name"), 5u);
}

TEST(RunMetrics, GaugeIsLastWriteWins) {
  metrics::reset();
  metrics::Gauge gauge = metrics::gauge("test.gauge_basic");
  gauge.set(7);
  gauge.set(3);
  const metrics::Snapshot snap = metrics::snapshot();
  bool found = false;
  for (const metrics::SnapshotGauge& entry : snap.gauges) {
    if (entry.name == "test.gauge_basic") {
      found = true;
      EXPECT_EQ(entry.value, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RunMetrics, TimerBucketsByLog2Nanoseconds) {
  metrics::reset();
  metrics::Timer timer = metrics::timer("test.timer_basic");
  timer.record_ns(0);     // bucket 0
  timer.record_ns(1);     // bucket 1: [1, 2)
  timer.record_ns(1024);  // bucket 11: [1024, 2048)
  timer.record_ns(1500);  // bucket 11 as well
  const metrics::Snapshot snap = metrics::snapshot();
  bool found = false;
  for (const metrics::SnapshotTiming& entry : snap.timings) {
    if (entry.name != "test.timer_basic") continue;
    found = true;
    EXPECT_EQ(entry.count, 4u);
    EXPECT_EQ(entry.total_ns, 0u + 1u + 1024u + 1500u);
    ASSERT_EQ(entry.buckets.size(), 3u);  // only non-empty buckets render
    EXPECT_EQ(entry.buckets[0].log2_ns, 0u);
    EXPECT_EQ(entry.buckets[0].count, 1u);
    EXPECT_EQ(entry.buckets[1].log2_ns, 1u);
    EXPECT_EQ(entry.buckets[1].count, 1u);
    EXPECT_EQ(entry.buckets[2].log2_ns, 11u);
    EXPECT_EQ(entry.buckets[2].count, 2u);
  }
  EXPECT_TRUE(found);
}

TEST(RunMetrics, TimerScopeRecordsOnDestruction) {
  metrics::reset();
  metrics::Timer timer = metrics::timer("test.timer_scope");
  { const metrics::Timer::Scope scope = timer.measure(); }
  const metrics::Snapshot snap = metrics::snapshot();
  bool found = false;
  for (const metrics::SnapshotTiming& entry : snap.timings) {
    if (entry.name == "test.timer_scope") {
      found = true;
      EXPECT_EQ(entry.count, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RunMetrics, SnapshotIsSortedByName) {
  metrics::reset();
  // Register in anti-alphabetical order; the snapshot must not care.
  metrics::counter("test.z_last").increment();
  metrics::counter("test.a_first").increment();
  const metrics::Snapshot snap = metrics::snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST(RunMetrics, ResetZeroesValuesButKeepsNames) {
  metrics::reset();
  metrics::Counter counter = metrics::counter("test.reset_me");
  counter.add(9);
  metrics::reset();
  EXPECT_EQ(metrics::snapshot().counter_value("test.reset_me"), 0u);
  counter.add(1);  // the old handle still works after reset
  EXPECT_EQ(metrics::snapshot().counter_value("test.reset_me"), 1u);
}

TEST(RunMetrics, ParallelTasksMergeAtTheReductionBarrier) {
  metrics::reset();
  metrics::Counter per_task = metrics::counter("test.parallel_merge");
  constexpr std::size_t kTasks = 64;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    metrics::reset();
    set_max_parallelism(threads);
    const auto values = parallel_for_trials(
        kTasks, /*seed=*/1, [&per_task](std::size_t trial, Rng& rng) {
          per_task.add(trial + 1);
          return rng.uniform();
        });
    set_max_parallelism(0);
    ASSERT_EQ(values.size(), kTasks);
    // Sum 1..kTasks, fully visible the moment parallel_for_trials returns.
    EXPECT_EQ(metrics::snapshot().counter_value("test.parallel_merge"),
              kTasks * (kTasks + 1) / 2)
        << "threads=" << threads;
  }
}

#endif  // MANET_METRICS

TEST(RunMetricsJson, SchemaCarriesEnabledFlagAndSections) {
  const JsonValue document = metrics::collect_json();
  ASSERT_EQ(document.type(), JsonValue::Type::kObject);
  EXPECT_EQ(document.at("enabled").as_bool(), metrics::compiled_in());
  EXPECT_EQ(document.at("counters").type(), JsonValue::Type::kObject);
  EXPECT_EQ(document.at("gauges").type(), JsonValue::Type::kObject);
  EXPECT_EQ(document.at("timings").type(), JsonValue::Type::kObject);
}

// ---------------------------------------------------------------------------
// The determinism contract (ISSUE 5 satellite: golden checksums at 1 and 8
// threads with metrics enabled). These helpers intentionally mirror
// tests/determinism_test.cpp so both files pin the *same* golden values.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a_bits(const std::vector<double>& values) {
  std::uint64_t hash = 1469598103934665603ull;
  for (double value : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

std::vector<double> flatten_mtrm(const MtrmResult& result) {
  std::vector<double> values;
  for (const RunningStats& stats : result.range_for_time) {
    values.push_back(stats.mean());
    values.push_back(stats.variance());
  }
  values.push_back(result.range_never_connected.mean());
  values.push_back(result.lcc_at_range_never.mean());
  for (const RunningStats& stats : result.range_for_component) values.push_back(stats.mean());
  for (const RunningStats& stats : result.lcc_at_range_for_time) values.push_back(stats.mean());
  for (const RunningStats& stats : result.min_lcc_at_range_for_time) {
    values.push_back(stats.mean());
  }
  values.push_back(result.mean_critical_range.mean());
  return values;
}

std::uint64_t mtrm_checksum(const MtrmConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  return fnv1a_bits(flatten_mtrm(solve_mtrm<2>(config, rng)));
}

/// True for metric families whose values are functions of the workload alone
/// (engine/solver work counters). pool.* is excluded by construction: it
/// records how work was scheduled and legitimately varies with threads.
bool deterministic_metric(std::string_view name) {
  return name.starts_with("emst.") || name.starts_with("threshold.");
}

TEST(RunMetricsDeterminism, GoldenChecksumsUnmovedAndCountersThreadInvariant) {
  const MtrmConfig waypoint = experiments::waypoint_experiment(256.0, Preset::kQuick);
  const MtrmConfig drunkard = experiments::drunkard_experiment(256.0, Preset::kQuick);

  const auto run_at = [&](std::size_t threads) {
    metrics::reset();
    set_max_parallelism(threads);
    const std::uint64_t w = mtrm_checksum(waypoint, 20020623);
    const std::uint64_t d = mtrm_checksum(drunkard, 20020623);
    // The MTRM path never bisects (its thresholds are exact order
    // statistics); run a small MC bisection too so the threshold.* counters
    // are exercised at both thread counts.
    BisectionOptions options;
    McPredicateOptions mc;
    mc.trials = 32;
    mc.seed = 7;
    mc.target_mean = 0.5;
    bisect_min_range_mc(options, mc,
                        [](double range, std::size_t /*trial*/, Rng& trial_rng) {
                          return trial_rng.uniform() < range ? 1.0 : 0.0;
                        });
    set_max_parallelism(0);
    return std::tuple{w, d, metrics::snapshot()};
  };

  const auto [w1, d1, snap1] = run_at(1);
  const auto [w8, d8, snap8] = run_at(8);

  // The golden digests from tests/determinism_test.cpp, with metrics enabled
  // (when compiled in) and at both the serial and the sharded engine path:
  // instrumentation must not perturb a single bit of the result stream.
  EXPECT_EQ(hex64(w1), hex64(0x7f15b5b64209b3a3ull));
  EXPECT_EQ(hex64(d1), hex64(0xca0fd93f2a6598c4ull));
  EXPECT_EQ(hex64(w8), hex64(0x7f15b5b64209b3a3ull));
  EXPECT_EQ(hex64(d8), hex64(0xca0fd93f2a6598c4ull));

  if (!metrics::compiled_in()) return;  // MANET_METRICS=0: nothing to compare

  // Work counters are sums of deterministic per-trial contributions, so the
  // merged totals must be identical at any thread count.
  std::size_t compared = 0;
  for (const metrics::SnapshotCounter& counter : snap1.counters) {
    if (!deterministic_metric(counter.name)) continue;
    EXPECT_EQ(counter.value, snap8.counter_value(counter.name)) << counter.name;
    ++compared;
  }
  EXPECT_GT(compared, 0u) << "instrumented counters should have fired";
  // And the workload really did exercise the instrumented subsystems.
  EXPECT_GT(snap1.counter_value("emst.solves"), 0u);
  EXPECT_GT(snap1.counter_value("threshold.searches"), 0u);
  EXPECT_GT(snap1.counter_value("threshold.mc_trials"), 0u);
}

}  // namespace
}  // namespace manet
