// Differential suite of the LinkModel seam (graph/link_model.hpp):
//  - UnitDiskLinkModel is pinned bitwise-identical to the legacy
//    proximity_edges / analyze_components path across dimensions,
//    duplicates and exact-boundary configurations;
//  - shadowing links are deterministic in the fading seed and degenerate
//    exactly to the unit disk at sigma = 0;
//  - the SCC engine is checked against a brute-force reachability oracle;
//  - heterogeneous ranges produce the documented directed semantics, and
//    their symmetric projection agrees with symmetric_graph_connected —
//    boundary ties included;
//  - link_model_critical_range reduces to the exact EMST bottleneck for the
//    unit disk and bisects correctly otherwise.

#include "graph/link_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "graph/proximity.hpp"
#include "graph/scc.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"
#include "topology/link_critical_range.hpp"
#include "topology/range_assignment.hpp"

namespace manet {
namespace {

void expect_summary_equal(const ComponentSummary& a, const ComponentSummary& b) {
  EXPECT_EQ(a.node_count, b.node_count);
  EXPECT_EQ(a.component_count, b.component_count);
  EXPECT_EQ(a.largest_size, b.largest_size);
  EXPECT_EQ(a.isolated_count, b.isolated_count);
  EXPECT_EQ(a.scc_count, b.scc_count);
  EXPECT_EQ(a.largest_scc_size, b.largest_scc_size);
}

template <int D>
void expect_unit_disk_matches_legacy(std::span<const Point<D>> points, const Box<D>& box,
                                     double radius) {
  const UnitDiskLinkModel model(radius);
  // Bitwise-identical edge sets in identical order (same grid enumeration).
  EXPECT_EQ(link_model_edges<D>(points, box, model),
            proximity_edges<D>(points, box, radius));
  expect_summary_equal(analyze_link_components<D>(points, box, model),
                       analyze_components<D>(points, box, radius));
  // Every symmetric model's arcs are the edges, both orientations.
  const auto edges = proximity_edges<D>(points, box, radius);
  const auto arcs = link_model_arcs<D>(points, box, model);
  ASSERT_EQ(arcs.size(), 2 * edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    EXPECT_EQ(arcs[2 * e], (DirectedEdge{edges[e].first, edges[e].second}));
    EXPECT_EQ(arcs[2 * e + 1], (DirectedEdge{edges[e].second, edges[e].first}));
  }
}

TEST(UnitDiskLinkModel, MatchesLegacyAcrossDimensionsAndRadii) {
  Rng rng(101);
  for (std::size_t n : {0ul, 1ul, 2ul, 7ul, 60ul}) {
    {
      const Box<1> box(50.0);
      const auto points = uniform_deployment<1>(n, box, rng);
      for (double radius : {0.5, 3.0, 60.0}) {
        expect_unit_disk_matches_legacy<1>(points, box, radius);
      }
    }
    {
      const Box<2> box(50.0);
      const auto points = uniform_deployment<2>(n, box, rng);
      for (double radius : {0.5, 8.0, 80.0}) {
        expect_unit_disk_matches_legacy<2>(points, box, radius);
      }
    }
    {
      const Box<3> box(30.0);
      const auto points = uniform_deployment<3>(n, box, rng);
      for (double radius : {0.5, 10.0, 60.0}) {
        expect_unit_disk_matches_legacy<3>(points, box, radius);
      }
    }
  }
}

TEST(UnitDiskLinkModel, MatchesLegacyOnDuplicatesAndBoundaryTies) {
  // Duplicate points (distance 0) and a pair at exactly the radius: the tie
  // must land on the same side in both paths (<=, compared in squared
  // space).
  const Box<2> box(20.0);
  const std::vector<Point2> points = {
      {{1.0, 1.0}}, {{1.0, 1.0}},   // duplicates
      {{4.0, 1.0}}, {{4.0, 5.0}},   // 3-4-5 triangle with the first pair
      {{19.0, 19.0}},               // far corner
  };
  for (double radius : {3.0, 4.0, 5.0, std::nextafter(5.0, 0.0), 25.5}) {
    expect_unit_disk_matches_legacy<2>(points, box, radius);
  }
}

TEST(UnitDiskLinkModel, ExactBoundaryTieIsAnEdge) {
  // dist((0,0), (3,4)) = 5 exactly in floating point: dist2 = 25.0. The
  // documented rule is inclusive (dist <= r), so radius 5 has the edge and
  // the next double below 5 does not.
  const Box<2> box(10.0);
  const std::vector<Point2> pair = {{{0.0, 0.0}}, {{3.0, 4.0}}};
  const UnitDiskLinkModel at(5.0);
  const UnitDiskLinkModel below(std::nextafter(5.0, 0.0));
  EXPECT_EQ(link_model_edges<2>(pair, box, at).size(), 1u);
  EXPECT_EQ(link_model_edges<2>(pair, box, below).size(), 0u);
  EXPECT_TRUE(analyze_link_components<2>(pair, box, at).connected());
  EXPECT_FALSE(analyze_link_components<2>(pair, box, below).connected());
}

TEST(UnitDiskLinkModel, RejectsNonPositiveRadius) {
  EXPECT_THROW(UnitDiskLinkModel(0.0), ConfigError);
  EXPECT_THROW(UnitDiskLinkModel(-1.0), ConfigError);
  EXPECT_THROW(UnitDiskLinkModel(std::numeric_limits<double>::quiet_NaN()), ConfigError);
}

TEST(LinkModelAnalyses, EmptyAndSingletonSemantics) {
  // Documented empty-deployment behavior: all-zero census, vacuous
  // connectivity, largest_fraction == 1.
  const Box<2> box(10.0);
  const UnitDiskLinkModel model(1.0);
  const std::vector<Point2> none;
  const ComponentSummary empty = analyze_link_components<2>(none, box, model);
  EXPECT_EQ(empty.node_count, 0u);
  EXPECT_EQ(empty.component_count, 0u);
  EXPECT_EQ(empty.largest_size, 0u);
  EXPECT_EQ(empty.scc_count, 0u);
  EXPECT_EQ(empty.largest_scc_size, 0u);
  EXPECT_TRUE(empty.connected());
  EXPECT_TRUE(empty.strongly_connected());
  EXPECT_DOUBLE_EQ(empty.largest_fraction(), 1.0);
  EXPECT_TRUE(link_model_edges<2>(none, box, model).empty());
  EXPECT_TRUE(link_model_arcs<2>(none, box, model).empty());

  const std::vector<Point2> one = {{{5.0, 5.0}}};
  const ComponentSummary single = analyze_link_components<2>(one, box, model);
  EXPECT_EQ(single.component_count, 1u);
  EXPECT_EQ(single.scc_count, 1u);
  EXPECT_EQ(single.isolated_count, 1u);
  EXPECT_TRUE(single.connected());
  EXPECT_TRUE(single.strongly_connected());
}

// ---------------------------------------------------------------------------
// Shadowing
// ---------------------------------------------------------------------------

TEST(ShadowingLinkModel, SameSeedSameGraphDifferentSeedUsuallyNot) {
  Rng rng(202);
  const Box<2> box(100.0);
  const auto points = uniform_deployment<2>(40, box, rng);
  ShadowingParams params;
  params.reference_range = 18.0;
  params.fading_seed = 77;

  const ShadowingLinkModel a(params);
  const ShadowingLinkModel b(params);
  EXPECT_EQ(link_model_edges<2>(points, box, a), link_model_edges<2>(points, box, b));

  params.fading_seed = 78;
  const ShadowingLinkModel c(params);
  EXPECT_NE(link_model_edges<2>(points, box, a), link_model_edges<2>(points, box, c));
}

TEST(ShadowingLinkModel, PairGainIsSymmetricAndOrderIndependent) {
  ShadowingParams params;
  params.fading_seed = 5;
  const ShadowingLinkModel model(params);
  for (std::size_t u = 0; u < 10; ++u) {
    for (std::size_t v = u + 1; v < 10; ++v) {
      EXPECT_DOUBLE_EQ(model.pair_gain(u, v), model.pair_gain(v, u));
      EXPECT_GT(model.pair_gain(u, v), 0.0);
      EXPECT_LE(model.pair_gain(u, v) * params.reference_range,
                model.max_link_distance() * (1.0 + 1e-12));
    }
  }
  // Distinct pairs should not share a gain (substream decorrelation).
  EXPECT_NE(model.pair_gain(0, 1), model.pair_gain(0, 2));
  EXPECT_NE(model.pair_gain(0, 1), model.pair_gain(1, 2));
}

TEST(ShadowingLinkModel, SigmaZeroDegeneratesToUnitDisk) {
  Rng rng(203);
  const Box<2> box(60.0);
  const auto points = uniform_deployment<2>(50, box, rng);
  ShadowingParams params;
  params.reference_range = 12.0;
  params.sigma_db = 0.0;
  const ShadowingLinkModel shadowing(params);
  EXPECT_DOUBLE_EQ(shadowing.pair_gain(3, 9), 1.0);
  EXPECT_DOUBLE_EQ(shadowing.max_link_distance(), 12.0);
  EXPECT_EQ(link_model_edges<2>(points, box, shadowing),
            proximity_edges<2>(points, box, 12.0));
  expect_summary_equal(analyze_link_components<2>(points, box, shadowing),
                       analyze_components<2>(points, box, 12.0));
}

TEST(ShadowingLinkModel, NoLinkBeyondMaxLinkDistance) {
  // The enumeration-bound contract: a pair farther apart than
  // max_link_distance() can never link, whatever the fading draw.
  ShadowingParams params;
  params.reference_range = 10.0;
  params.sigma_db = 8.0;
  params.path_loss_exponent = 2.0;
  const ShadowingLinkModel model(params);
  const double beyond = model.max_link_distance() * 1.0000001;
  for (std::size_t u = 0; u < 50; ++u) {
    EXPECT_FALSE(model.symmetric_link(u, u + 1, beyond * beyond));
  }
}

TEST(ShadowingParams, Validation) {
  ShadowingParams params;
  params.reference_range = 0.0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = {};
  params.sigma_db = -1.0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = {};
  params.path_loss_exponent = 0.0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = {};
  params.z_clip = 0.0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = {};
  EXPECT_NO_THROW(params.validate());
  EXPECT_GT(params.max_gain_factor(), 1.0);
}

// ---------------------------------------------------------------------------
// SCC vs brute-force reachability oracle
// ---------------------------------------------------------------------------

std::vector<std::vector<bool>> reachability_closure(std::size_t n,
                                                    std::span<const DirectedEdge> arcs) {
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t v = 0; v < n; ++v) reach[v][v] = true;
  for (const DirectedEdge& arc : arcs) reach[arc.from][arc.to] = true;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  return reach;
}

void expect_scc_matches_oracle(std::size_t n, std::span<const DirectedEdge> arcs) {
  const SccPartition scc = strongly_connected_components(n, arcs);
  const auto reach = reachability_closure(n, arcs);
  ASSERT_EQ(scc.component_of.size(), n);

  std::vector<std::size_t> size_of(scc.component_count, 0);
  std::size_t largest = 0;
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_LT(scc.component_of[v], scc.component_count);
    largest = std::max(largest, ++size_of[scc.component_of[v]]);
  }
  EXPECT_EQ(scc.largest_size, largest);
  for (std::size_t s : size_of) EXPECT_GE(s, 1u);  // no empty component ids

  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      const bool mutual = reach[u][v] && reach[v][u];
      EXPECT_EQ(scc.component_of[u] == scc.component_of[v], mutual)
          << "vertices " << u << ", " << v;
    }
  }
}

TEST(Scc, MatchesReachabilityOracleOnRandomDigraphs) {
  Rng rng(303);
  for (std::size_t n : {0ul, 1ul, 2ul, 3ul, 6ul, 12ul, 20ul}) {
    for (double p : {0.0, 0.05, 0.15, 0.4, 1.0}) {
      std::vector<DirectedEdge> arcs;
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = 0; v < n; ++v) {
          if (u != v && rng.bernoulli(p)) arcs.push_back({u, v});
        }
      }
      expect_scc_matches_oracle(n, arcs);
    }
  }
}

TEST(Scc, HandCheckedShapes) {
  // Directed 3-cycle: one component.
  EXPECT_EQ(strongly_connected_components(3, std::vector<DirectedEdge>{{0, 1}, {1, 2}, {2, 0}})
                .component_count,
            1u);
  // Directed path: all singletons, numbered in reverse topological order.
  const SccPartition path =
      strongly_connected_components(3, std::vector<DirectedEdge>{{0, 1}, {1, 2}});
  EXPECT_EQ(path.component_count, 3u);
  EXPECT_EQ(path.largest_size, 1u);
  EXPECT_TRUE(path.component_of[2] < path.component_of[1] &&
              path.component_of[1] < path.component_of[0]);
  // Self-loops and parallel arcs are harmless.
  const SccPartition loops = strongly_connected_components(
      2, std::vector<DirectedEdge>{{0, 0}, {0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(loops.component_count, 1u);
  // Empty graph: vacuously strongly connected.
  EXPECT_TRUE(strongly_connected_components(0, {}).strongly_connected());
  EXPECT_EQ(strongly_connected_components(0, {}).largest_size, 0u);
}

TEST(Scc, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(strongly_connected_components(2, std::vector<DirectedEdge>{{0, 2}}),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Heterogeneous ranges / directed semantics
// ---------------------------------------------------------------------------

TEST(HeterogeneousRangeLinkModel, DirectedRuleAndSymmetricProjection) {
  const HeterogeneousRangeLinkModel model(RangeAssignment({6.0, 2.0}));
  bool fwd = false;
  bool back = false;
  model.directed_link(0, 1, 25.0, fwd, back);  // dist 5: only node 0 reaches
  EXPECT_TRUE(fwd);
  EXPECT_FALSE(back);
  EXPECT_FALSE(model.symmetric_link(0, 1, 25.0));  // projection needs both
  model.directed_link(0, 1, 4.0, fwd, back);  // dist 2 == min range: mutual
  EXPECT_TRUE(fwd && back);
  EXPECT_TRUE(model.symmetric_link(0, 1, 4.0));
  EXPECT_EQ(model.symmetry(), LinkSymmetry::kDirected);
  EXPECT_DOUBLE_EQ(model.max_link_distance(), 6.0);
}

TEST(HeterogeneousRangeLinkModel, BoundaryTieMatchesSymmetricGraphConnected) {
  // Nodes at exactly min(r_u, r_v) apart: both the O(n^2) RangeAssignment
  // path and the grid path must call the tie an edge (inclusive <=, squared
  // comparison in both). 3-4-5 triangle, ranges pinning dist == 5 == min.
  const Box<2> box(10.0);
  const std::vector<Point2> points = {{{0.0, 0.0}}, {{3.0, 4.0}}};
  const RangeAssignment at({5.0, 7.0});
  EXPECT_TRUE(symmetric_graph_connected<2>(points, at));
  const HeterogeneousRangeLinkModel model_at(RangeAssignment({5.0, 7.0}));
  EXPECT_TRUE(analyze_link_components<2>(points, box, model_at).connected());
  EXPECT_TRUE(analyze_link_components<2>(points, box, model_at).strongly_connected());

  const double below = std::nextafter(5.0, 0.0);
  const RangeAssignment under({below, 7.0});
  EXPECT_FALSE(symmetric_graph_connected<2>(points, under));
  const HeterogeneousRangeLinkModel model_under(RangeAssignment({below, 7.0}));
  EXPECT_FALSE(analyze_link_components<2>(points, box, model_under).connected());
  EXPECT_FALSE(analyze_link_components<2>(points, box, model_under).strongly_connected());
}

TEST(HeterogeneousRangeLinkModel, ProjectionAgreesWithSymmetricGraphConnected) {
  // Random deployments, random per-node ranges: the grid-based symmetric
  // projection and the O(n^2) oracle must agree on connectivity every time.
  Rng rng(404);
  const Box<2> box(40.0);
  for (int trial = 0; trial < 25; ++trial) {
    const auto points = uniform_deployment<2>(18, box, rng);
    std::vector<double> ranges;
    for (std::size_t i = 0; i < points.size(); ++i) ranges.push_back(rng.uniform(0.0, 25.0));
    const RangeAssignment assignment(ranges);
    const HeterogeneousRangeLinkModel model{RangeAssignment(ranges)};
    EXPECT_EQ(analyze_link_components<2>(points, box, model).connected(),
              symmetric_graph_connected<2>(points, assignment))
        << "trial " << trial;
  }
}

TEST(HeterogeneousRangeLinkModel, EqualRangesMatchUnitDisk) {
  Rng rng(405);
  const Box<2> box(50.0);
  const auto points = uniform_deployment<2>(30, box, rng);
  const double r = 14.0;
  const HeterogeneousRangeLinkModel hetero(
      RangeAssignment(std::vector<double>(points.size(), r)));
  EXPECT_EQ(link_model_edges<2>(points, box, hetero), proximity_edges<2>(points, box, r));
  const ComponentSummary summary = analyze_link_components<2>(points, box, hetero);
  expect_summary_equal(summary, analyze_components<2>(points, box, r));
}

TEST(HeterogeneousRangeLinkModel, OneWayBridgeGadgetIsStrongButNotWeak) {
  // Two mutual pairs bridged by opposite one-way long arcs: strongly
  // connected, bidirectionally split. This is the configuration that forces
  // the directed census to differ from the undirected one.
  const Box<2> box(30.0);
  const std::vector<Point2> points = {
      {{0.0, 0.0}}, {{2.0, 0.0}}, {{22.0, 0.0}}, {{20.0, 0.0}}};
  const HeterogeneousRangeLinkModel model(RangeAssignment({20.0, 2.0, 20.0, 2.0}));
  const ComponentSummary summary = analyze_link_components<2>(points, box, model);
  EXPECT_FALSE(summary.connected());
  EXPECT_EQ(summary.component_count, 2u);
  EXPECT_EQ(summary.largest_size, 2u);
  EXPECT_TRUE(summary.strongly_connected());
  EXPECT_EQ(summary.scc_count, 1u);
  EXPECT_EQ(summary.largest_scc_size, 4u);
  EXPECT_EQ(summary.isolated_count, 0u);  // every node has a mutual neighbor
}

TEST(HeterogeneousRangeLinkModel, ValidateForRejectsSizeMismatch) {
  const HeterogeneousRangeLinkModel model(RangeAssignment({1.0, 1.0}));
  EXPECT_NO_THROW(model.validate_for(2));
  EXPECT_THROW(model.validate_for(3), ConfigError);
  const Box<2> box(10.0);
  const std::vector<Point2> three = {{{1.0, 1.0}}, {{2.0, 2.0}}, {{3.0, 3.0}}};
  EXPECT_THROW(link_model_edges<2>(three, box, model), ConfigError);
  EXPECT_THROW(analyze_link_components<2>(three, box, model), ConfigError);
}

// ---------------------------------------------------------------------------
// Families, factory, critical-range search
// ---------------------------------------------------------------------------

TEST(LinkModelFamily, FactoryNamesAndErrors) {
  for (const std::string& name : link_model_family_names()) {
    const auto family = make_link_model_family(name);
    EXPECT_EQ(family->name(), name);
  }
  EXPECT_THROW(make_link_model_family("quasi-unit-disk"), ConfigError);
  EXPECT_THROW(make_link_model_family(""), ConfigError);

  LinkModelMenu bad;
  bad.min_range_factor = 0.0;
  EXPECT_THROW(make_link_model_family("heterogeneous", bad), ConfigError);
  bad = {};
  bad.min_range_factor = 2.0;
  bad.max_range_factor = 1.0;
  EXPECT_THROW(make_link_model_family("heterogeneous", bad), ConfigError);
  bad = {};
  bad.shadowing.sigma_db = -3.0;
  EXPECT_THROW(make_link_model_family("shadowing", bad), ConfigError);
}

TEST(LinkModelFamily, AtRangeRejectsNonPositiveRange) {
  for (const std::string& name : link_model_family_names()) {
    const auto family = make_link_model_family(name);
    EXPECT_THROW(family->at_range(0.0, 4, 1), ConfigError) << name;
    EXPECT_THROW(family->at_range(-2.0, 4, 1), ConfigError) << name;
  }
}

TEST(LinkModelCriticalRange, UnitDiskTakesTheExactPath) {
  Rng rng(505);
  const Box<2> box(64.0);
  const UnitDiskLinkFamily family;
  EXPECT_TRUE(family.exact_bottleneck());
  for (int trial = 0; trial < 10; ++trial) {
    const auto points = uniform_deployment<2>(25, box, rng);
    // Bit-identical to the EMST bottleneck — no tolerance.
    EXPECT_EQ(link_model_critical_range<2>(points, box, family, 7),
              critical_range<2>(points, box));
  }
}

TEST(LinkModelCriticalRange, BisectionConvergesToTheExactAnswerAtSigmaZero) {
  // sigma = 0 shadowing is the unit disk, but the family does not declare
  // exact_bottleneck, so this exercises the bisection fallback against a
  // known answer.
  Rng rng(506);
  const Box<2> box(64.0);
  ShadowingParams base;
  base.sigma_db = 0.0;
  const ShadowingLinkFamily family(base);
  for (int trial = 0; trial < 5; ++trial) {
    const auto points = uniform_deployment<2>(20, box, rng);
    const double exact = critical_range<2>(points, box);
    const double bisected = link_model_critical_range<2>(points, box, family, 7);
    EXPECT_GE(bisected, exact);  // upper bracket: always connected at result
    EXPECT_NEAR(bisected, exact, 1e-6 * box.diagonal() + 1e-9);
  }
}

TEST(LinkModelCriticalRange, ResultIsConnectedAndDeterministic) {
  Rng rng(507);
  const Box<2> box(100.0);
  const auto points = uniform_deployment<2>(30, box, rng);
  LinkModelMenu menu;
  for (const std::string& name : link_model_family_names()) {
    const auto family = make_link_model_family(name, menu);
    const double rc = link_model_critical_range<2>(points, box, *family, 99);
    // The returned scale connects the deployment; repeated calls agree
    // bitwise (the fading seed pins all randomness).
    const auto model = family->at_range(rc, points.size(), 99);
    EXPECT_TRUE(analyze_link_components<2>(points, box, *model).strongly_connected()) << name;
    EXPECT_EQ(rc, link_model_critical_range<2>(points, box, *family, 99)) << name;
    EXPECT_GT(rc, 0.0) << name;
  }
}

TEST(LinkModelCriticalRange, TrivialDeployments) {
  const Box<2> box(10.0);
  const UnitDiskLinkFamily family;
  const std::vector<Point2> none;
  EXPECT_DOUBLE_EQ(link_model_critical_range<2>(none, box, family, 1), 0.0);
  const std::vector<Point2> one = {{{5.0, 5.0}}};
  EXPECT_DOUBLE_EQ(link_model_critical_range<2>(one, box, family, 1), 0.0);
}

TEST(LinkModelCriticalRange, OptionsValidation) {
  const Box<2> box(10.0);
  const std::vector<Point2> pair = {{{1.0, 1.0}}, {{2.0, 2.0}}};
  const UnitDiskLinkFamily family;
  LinkRangeSearchOptions bad;
  bad.relative_tolerance = 0.0;
  EXPECT_THROW(link_model_critical_range<2>(pair, box, family, 1, bad), ConfigError);
  bad = {};
  bad.max_iterations = 0;
  EXPECT_THROW(link_model_critical_range<2>(pair, box, family, 1, bad), ConfigError);
}

TEST(HeterogeneousRangeLinkFamily, PerNodeFactorsAreSeedDeterministic) {
  const HeterogeneousRangeLinkFamily family(0.5, 1.0);
  const auto a = family.at_range(10.0, 20, 42);
  const auto b = family.at_range(10.0, 20, 42);
  const auto* ha = dynamic_cast<const HeterogeneousRangeLinkModel*>(a.get());
  const auto* hb = dynamic_cast<const HeterogeneousRangeLinkModel*>(b.get());
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  ASSERT_EQ(ha->assignment().node_count(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(ha->assignment().range(i), hb->assignment().range(i));
    EXPECT_GE(ha->assignment().range(i), 10.0 * 0.5);
    EXPECT_LE(ha->assignment().range(i), 10.0 * 1.0);
  }
  EXPECT_DOUBLE_EQ(family.hi_factor(), 2.0);
}

}  // namespace
}  // namespace manet
