// Differential suite for the batched SoA kernels (geometry/
// distance_kernels.hpp). The library's bit-identity story rests on one
// claim: every batched kernel reproduces the scalar core's exact per-element
// floating-point operation sequence, on whichever path (portable loop or
// AVX2) the dispatcher picks at runtime. These tests pin that claim
// bitwise — EXPECT_EQ on doubles here means "same 64 bits", not "close" —
// across D in {1, 2, 3}, randomized coordinates, torus seam cases, exact
// duplicates, and odd batch lengths that exercise the vector tails.

#include "geometry/distance_kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/point_store.hpp"
#include "geometry/torus.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

/// Bitwise double equality (distinguishes +0/-0, compares NaNs by pattern).
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

/// Batch lengths covering empty, sub-vector, exact-vector and tail cases.
const std::vector<std::size_t> kCounts = {0, 1, 2, 3, 4, 5, 7, 8, 64, 67, 251};

template <int D>
PointStore<D> random_store(std::size_t n, double lo, double hi, Rng& rng) {
  PointStore<D> store;
  store.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    Point<D> p;
    for (int i = 0; i < D; ++i) p.coords[static_cast<std::size_t>(i)] = rng.uniform(lo, hi);
    store.set(k, p);
  }
  return store;
}

// ----- batch_squared_distance ---------------------------------------------

template <int D>
void check_squared_distance() {
  Rng rng(20260807u + static_cast<std::uint64_t>(D));
  for (const std::size_t n : kCounts) {
    PointStore<D> store = random_store<D>(n, -3.0, 7.0, rng);
    Point<D> q;
    for (int i = 0; i < D; ++i) q.coords[static_cast<std::size_t>(i)] = rng.uniform(-3.0, 7.0);
    if (n >= 2) store.set(1, q);  // an exact duplicate lane must give exactly 0

    std::vector<double> dispatched(n), portable(n);
    kernels::batch_squared_distance<D>(store.axes(), n, q.coords.data(), dispatched.data());
    kernels::batch_squared_distance_portable<D>(store.axes(), n, q.coords.data(),
                                                portable.data());
    for (std::size_t k = 0; k < n; ++k) {
      const double scalar = squared_distance(store.get(k), q);
      EXPECT_TRUE(bits_equal(dispatched[k], scalar)) << "D=" << D << " n=" << n << " k=" << k;
      EXPECT_TRUE(bits_equal(dispatched[k], portable[k]))
          << "dispatch vs portable, D=" << D << " n=" << n << " k=" << k;
    }
  }
}

TEST(BatchSquaredDistance, BitIdenticalToScalar1D) { check_squared_distance<1>(); }
TEST(BatchSquaredDistance, BitIdenticalToScalar2D) { check_squared_distance<2>(); }
TEST(BatchSquaredDistance, BitIdenticalToScalar3D) { check_squared_distance<3>(); }

// ----- batch_torus_squared_distance ---------------------------------------

template <int D>
void check_torus_squared_distance() {
  Rng rng(777u + static_cast<std::uint64_t>(D));
  const double side = 10.0;
  for (const std::size_t n : kCounts) {
    PointStore<D> store = random_store<D>(n, 0.0, side, rng);
    Point<D> q;
    for (int i = 0; i < D; ++i) q.coords[static_cast<std::size_t>(i)] = rng.uniform(0.0, side);
    // Seam cases: a duplicate of q, a point hugging the far edge (wraps), and
    // the antipode (|d| == side - |d| tie, where min must pick the second
    // operand exactly like std::min).
    if (n >= 1) store.set(0, q);
    if (n >= 3) {
      Point<D> far = q;
      far.coords[0] = side - 1e-9;
      store.set(2, far);
      Point<D> antipode = q;
      antipode.coords[0] = q.coords[0] < side / 2 ? q.coords[0] + side / 2
                                                  : q.coords[0] - side / 2;
      store.set(3 % n, antipode);
    }

    std::vector<double> dispatched(n), portable(n);
    kernels::batch_torus_squared_distance<D>(store.axes(), n, q.coords.data(), side,
                                             dispatched.data());
    kernels::batch_torus_squared_distance_portable<D>(store.axes(), n, q.coords.data(), side,
                                                      portable.data());
    for (std::size_t k = 0; k < n; ++k) {
      const double scalar = torus_squared_distance(store.get(k), q, side);
      EXPECT_TRUE(bits_equal(dispatched[k], scalar)) << "D=" << D << " n=" << n << " k=" << k;
      EXPECT_TRUE(bits_equal(dispatched[k], portable[k]))
          << "dispatch vs portable, D=" << D << " n=" << n << " k=" << k;
    }
  }
}

TEST(BatchTorusSquaredDistance, BitIdenticalToScalar1D) { check_torus_squared_distance<1>(); }
TEST(BatchTorusSquaredDistance, BitIdenticalToScalar2D) { check_torus_squared_distance<2>(); }
TEST(BatchTorusSquaredDistance, BitIdenticalToScalar3D) { check_torus_squared_distance<3>(); }

// ----- batch_tuple_not_equal ----------------------------------------------

template <int D>
void check_tuple_not_equal() {
  Rng rng(99u + static_cast<std::uint64_t>(D));
  for (const std::size_t n : kCounts) {
    PointStore<D> a = random_store<D>(n, 0.0, 1.0, rng);
    PointStore<D> b = a;  // start equal everywhere
    // Perturb a random subset, sometimes only in the last axis.
    for (std::size_t k = 0; k < n; ++k) {
      if (rng.bernoulli(0.4)) {
        Point<D> p = b.get(k);
        p.coords[static_cast<std::size_t>(D - 1)] += 1e-12;
        b.set(k, p);
      }
    }
    std::vector<std::uint8_t> dispatched(n, 2), portable(n, 2);
    kernels::batch_tuple_not_equal<D>(a.axes(), b.axes(), n, dispatched.data());
    kernels::batch_tuple_not_equal_portable<D>(a.axes(), b.axes(), n, portable.data());
    for (std::size_t k = 0; k < n; ++k) {
      const bool neq = !(a.get(k) == b.get(k));
      EXPECT_EQ(dispatched[k], neq ? 1 : 0) << "D=" << D << " n=" << n << " k=" << k;
      EXPECT_EQ(dispatched[k], portable[k]) << "D=" << D << " n=" << n << " k=" << k;
    }
  }
}

TEST(BatchTupleNotEqual, MatchesPointInequality1D) { check_tuple_not_equal<1>(); }
TEST(BatchTupleNotEqual, MatchesPointInequality2D) { check_tuple_not_equal<2>(); }
TEST(BatchTupleNotEqual, MatchesPointInequality3D) { check_tuple_not_equal<3>(); }

TEST(BatchTupleNotEqual, SignedZeroLanesCompareEqual) {
  // IEEE `!=` says -0.0 == +0.0; the kernel must agree (vcmppd does).
  PointStore<2> a, b;
  a.resize(5);
  b.resize(5);
  for (std::size_t k = 0; k < 5; ++k) {
    a.set(k, Point<2>{{+0.0, 1.0}});
    b.set(k, Point<2>{{-0.0, 1.0}});
  }
  std::vector<std::uint8_t> out(5, 2);
  kernels::batch_tuple_not_equal<2>(a.axes(), b.axes(), 5, out.data());
  for (std::size_t k = 0; k < 5; ++k) EXPECT_EQ(out[k], 0u) << k;
}

// ----- batch_pair_distance ------------------------------------------------

template <int D>
void check_pair_distance() {
  Rng rng(4242u + static_cast<std::uint64_t>(D));
  for (const std::size_t n : kCounts) {
    PointStore<D> a = random_store<D>(n, -5.0, 5.0, rng);
    PointStore<D> b = random_store<D>(n, -5.0, 5.0, rng);
    if (n >= 2) b.set(1, a.get(1));  // a zero-distance lane
    std::vector<double> dispatched(n), portable(n);
    kernels::batch_pair_distance<D>(a.axes(), b.axes(), n, dispatched.data());
    kernels::batch_pair_distance_portable<D>(a.axes(), b.axes(), n, portable.data());
    for (std::size_t k = 0; k < n; ++k) {
      const double scalar = distance(a.get(k), b.get(k));
      EXPECT_TRUE(bits_equal(dispatched[k], scalar)) << "D=" << D << " n=" << n << " k=" << k;
      EXPECT_TRUE(bits_equal(dispatched[k], portable[k]))
          << "dispatch vs portable, D=" << D << " n=" << n << " k=" << k;
    }
  }
}

TEST(BatchPairDistance, BitIdenticalToScalar1D) { check_pair_distance<1>(); }
TEST(BatchPairDistance, BitIdenticalToScalar2D) { check_pair_distance<2>(); }
TEST(BatchPairDistance, BitIdenticalToScalar3D) { check_pair_distance<3>(); }

// ----- batch_masked_advance -----------------------------------------------

template <int D>
void check_masked_advance() {
  Rng rng(1717u + static_cast<std::uint64_t>(D));
  for (const std::size_t n : kCounts) {
    PointStore<D> pos = random_store<D>(n, 0.0, 10.0, rng);
    PointStore<D> dest = random_store<D>(n, 0.0, 10.0, rng);
    std::vector<double> scale(n);
    std::vector<std::uint8_t> mask(n);
    for (std::size_t k = 0; k < n; ++k) {
      mask[k] = rng.bernoulli(0.5) ? 1 : 0;
      // Masked-off lanes get a poisonous scale on purpose: a select-based
      // kernel never reads it, a multiply-by-zero one would produce NaN.
      scale[k] = mask[k] != 0 ? rng.uniform(0.0, 1.0)
                              : std::numeric_limits<double>::quiet_NaN();
    }

    // Scalar reference on a copy.
    PointStore<D> expected = pos;
    for (std::size_t k = 0; k < n; ++k) {
      if (mask[k] == 0) continue;
      Point<D> p = expected.get(k);
      const Point<D> t = dest.get(k);
      for (int i = 0; i < D; ++i) {
        const std::size_t a = static_cast<std::size_t>(i);
        p.coords[a] = p.coords[a] + (t.coords[a] - p.coords[a]) * scale[k];
      }
      expected.set(k, p);
    }

    PointStore<D> portable = pos;
    kernels::batch_masked_advance<D>(pos.mutable_axes(), dest.axes(), scale.data(), mask.data(),
                                     n);
    kernels::batch_masked_advance_portable<D>(portable.mutable_axes(), dest.axes(), scale.data(),
                                              mask.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      for (int i = 0; i < D; ++i) {
        const std::size_t a = static_cast<std::size_t>(i);
        EXPECT_TRUE(bits_equal(pos.get(k).coords[a], expected.get(k).coords[a]))
            << "D=" << D << " n=" << n << " k=" << k << " axis=" << i;
        EXPECT_TRUE(bits_equal(pos.get(k).coords[a], portable.get(k).coords[a]))
            << "dispatch vs portable, D=" << D << " n=" << n << " k=" << k << " axis=" << i;
      }
    }
  }
}

TEST(BatchMaskedAdvance, BitIdenticalToScalarAndLeavesMaskedLanesUntouched1D) {
  check_masked_advance<1>();
}
TEST(BatchMaskedAdvance, BitIdenticalToScalarAndLeavesMaskedLanesUntouched2D) {
  check_masked_advance<2>();
}
TEST(BatchMaskedAdvance, BitIdenticalToScalarAndLeavesMaskedLanesUntouched3D) {
  check_masked_advance<3>();
}

// ----- scalar cores are the public metrics --------------------------------

TEST(ScalarCores, PointAndTorusMetricsDelegateToTheKernelHeader) {
  const Point<3> a{{1.0, 2.0, 3.0}};
  const Point<3> b{{4.0, 6.0, 3.0}};
  EXPECT_TRUE(bits_equal(squared_distance(a, b),
                         kernels::squared_distance_scalar<3>(a.coords.data(), b.coords.data())));
  EXPECT_TRUE(bits_equal(
      torus_squared_distance(a, b, 10.0),
      kernels::torus_squared_distance_scalar<3>(a.coords.data(), b.coords.data(), 10.0)));
}

}  // namespace
}  // namespace manet
