#include <gtest/gtest.h>

#include <cmath>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "geometry/sampling.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace manet {
namespace {

TEST(Point, ArithmeticOperators) {
  const Point2 a{{1.0, 2.0}};
  const Point2 b{{3.0, 5.0}};
  const Point2 sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 7.0);

  const Point2 diff = b - a;
  EXPECT_DOUBLE_EQ(diff[0], 2.0);
  EXPECT_DOUBLE_EQ(diff[1], 3.0);

  const Point2 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);

  const Point2 scaled_left = 0.5 * b;
  EXPECT_DOUBLE_EQ(scaled_left[0], 1.5);
  EXPECT_DOUBLE_EQ(scaled_left[1], 2.5);
}

TEST(Point, DistanceMatchesPythagoras) {
  const Point2 origin{{0.0, 0.0}};
  const Point2 p{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(squared_distance(origin, p), 25.0);
  EXPECT_DOUBLE_EQ(distance(origin, p), 5.0);
}

TEST(Point, DistanceIn1DAnd3D) {
  const Point1 a{{1.0}};
  const Point1 b{{4.5}};
  EXPECT_DOUBLE_EQ(distance(a, b), 3.5);

  const Point3 u{{0.0, 0.0, 0.0}};
  const Point3 v{{1.0, 2.0, 2.0}};
  EXPECT_DOUBLE_EQ(distance(u, v), 3.0);
}

TEST(Point, NormAndEquality) {
  const Point2 p{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(norm(p), 5.0);
  EXPECT_DOUBLE_EQ(squared_norm(p), 25.0);
  EXPECT_EQ(p, (Point2{{3.0, 4.0}}));
  EXPECT_NE(p, (Point2{{3.0, 4.0001}}));
}

TEST(Box, BasicProperties) {
  const Box2 box(10.0);
  EXPECT_DOUBLE_EQ(box.side(), 10.0);
  EXPECT_DOUBLE_EQ(box.volume(), 100.0);
  EXPECT_DOUBLE_EQ(box.diagonal(), 10.0 * std::sqrt(2.0));

  const Box3 cube(2.0);
  EXPECT_DOUBLE_EQ(cube.volume(), 8.0);
  EXPECT_DOUBLE_EQ(cube.diagonal(), 2.0 * std::sqrt(3.0));
}

TEST(Box, RejectsNonPositiveSide) {
  EXPECT_THROW(Box2(0.0), ContractViolation);
  EXPECT_THROW(Box2(-1.0), ContractViolation);
}

TEST(Box, ContainsAndClamp) {
  const Box2 box(5.0);
  EXPECT_TRUE(box.contains({{0.0, 0.0}}));
  EXPECT_TRUE(box.contains({{5.0, 5.0}}));
  EXPECT_TRUE(box.contains({{2.5, 4.9}}));
  EXPECT_FALSE(box.contains({{-0.1, 1.0}}));
  EXPECT_FALSE(box.contains({{1.0, 5.1}}));

  const Point2 clamped = box.clamp({{-2.0, 7.0}});
  EXPECT_DOUBLE_EQ(clamped[0], 0.0);
  EXPECT_DOUBLE_EQ(clamped[1], 5.0);
}

TEST(Box, SampleStaysInsideAndIsUniform) {
  const Box2 box(8.0);
  Rng rng(1);
  RunningStats xs;
  RunningStats ys;
  for (int i = 0; i < 20000; ++i) {
    const Point2 p = box.sample(rng);
    ASSERT_TRUE(box.contains(p));
    xs.add(p[0]);
    ys.add(p[1]);
  }
  EXPECT_NEAR(xs.mean(), 4.0, 0.1);
  EXPECT_NEAR(ys.mean(), 4.0, 0.1);
  EXPECT_NEAR(xs.variance(), 64.0 / 12.0, 0.2);
}

TEST(UniformInBall, StaysInBall) {
  Rng rng(2);
  const Point2 center{{5.0, 5.0}};
  for (int i = 0; i < 5000; ++i) {
    const Point2 p = uniform_in_ball(center, 2.0, rng);
    EXPECT_LE(distance(p, center), 2.0 + 1e-12);
  }
}

TEST(UniformInBall, MeanIsCenter) {
  Rng rng(3);
  const Point2 center{{1.0, -2.0}};
  RunningStats xs;
  RunningStats ys;
  for (int i = 0; i < 20000; ++i) {
    const Point2 p = uniform_in_ball(center, 3.0, rng);
    xs.add(p[0]);
    ys.add(p[1]);
  }
  EXPECT_NEAR(xs.mean(), 1.0, 0.05);
  EXPECT_NEAR(ys.mean(), -2.0, 0.05);
}

TEST(UniformInBall, RejectsNonPositiveRadius) {
  Rng rng(4);
  EXPECT_THROW(uniform_in_ball(Point2{{0.0, 0.0}}, 0.0, rng), ContractViolation);
}

TEST(UniformInBallInBox, StaysInIntersection) {
  Rng rng(5);
  const Box2 box(10.0);
  const Point2 corner{{0.1, 0.1}};  // near a corner: ~3/4 of the ball is outside
  for (int i = 0; i < 5000; ++i) {
    const Point2 p = uniform_in_ball_in_box(corner, 2.0, box, rng);
    EXPECT_TRUE(box.contains(p));
    EXPECT_LE(distance(p, corner), 2.0 + 1e-12);
  }
}

TEST(UniformInBallInBox, RadiusLargerThanBoxWorks) {
  Rng rng(6);
  const Box2 box(1.0);
  const Point2 center{{0.5, 0.5}};
  for (int i = 0; i < 1000; ++i) {
    const Point2 p = uniform_in_ball_in_box(center, 100.0, box, rng);
    EXPECT_TRUE(box.contains(p));
  }
}

TEST(UniformInBallInBox, RequiresCenterInsideBox) {
  Rng rng(7);
  const Box2 box(1.0);
  EXPECT_THROW(uniform_in_ball_in_box(Point2{{2.0, 0.5}}, 1.0, box, rng),
               ContractViolation);
}

TEST(UniformDirection, UnitNormAndZeroMean) {
  Rng rng(8);
  RunningStats xs;
  RunningStats ys;
  for (int i = 0; i < 20000; ++i) {
    const Point2 v = uniform_direction<2>(rng);
    EXPECT_NEAR(norm(v), 1.0, 1e-9);
    xs.add(v[0]);
    ys.add(v[1]);
  }
  EXPECT_NEAR(xs.mean(), 0.0, 0.02);
  EXPECT_NEAR(ys.mean(), 0.0, 0.02);
}

TEST(UniformDirection, WorksIn1DAnd3D) {
  Rng rng(9);
  int negative = 0;
  for (int i = 0; i < 1000; ++i) {
    const Point1 v = uniform_direction<1>(rng);
    EXPECT_NEAR(std::abs(v[0]), 1.0, 1e-9);
    if (v[0] < 0) ++negative;
  }
  EXPECT_GT(negative, 400);
  EXPECT_LT(negative, 600);

  const Point3 w = uniform_direction<3>(rng);
  EXPECT_NEAR(norm(w), 1.0, 1e-9);
}

}  // namespace
}  // namespace manet
