#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/mtr.hpp"
#include "core/mtrm.hpp"
#include "core/theory.hpp"
#include "geometry/box.hpp"
#include "graph/proximity.hpp"
#include "mobility/factory.hpp"
#include "occupancy/exact_1d.hpp"
#include "occupancy/gap_pattern.hpp"
#include "occupancy/occupancy.hpp"
#include "sim/deployment.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/threshold_search.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace manet {
namespace {

/// Cross-validation: the exact critical-radius engine must agree with the
/// brute-force approach of re-simulating connectivity per candidate range
/// (the paper's original methodology).
TEST(Integration, ExactCriticalRangeMatchesBisectionOnStationaryDeployments) {
  Rng rng(1);
  const Box2 box(200.0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto points = uniform_deployment(30, box, rng);
    const double exact = critical_range<2>(points);

    BisectionOptions options;
    options.lo = 0.0;
    options.hi = box.diagonal();
    options.tolerance = 1e-9;
    options.max_iterations = 128;
    const auto bisected = bisect_min_range(options, [&](double r) {
      return r > 0.0 && analyze_components<2>(points, box, r).connected();
    });
    EXPECT_NEAR(bisected.range, exact, 1e-6) << "trial " << trial;
  }
}

/// The r_f order statistic must agree with bisecting "fraction of connected
/// steps >= f" over a replayed trace.
TEST(Integration, TimeFractionRangeMatchesBisectionOverTrace) {
  Rng rng(2);
  const Box2 box(100.0);
  auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(100.0), box);
  const auto trace = run_mobile_trace<2>(15, box, 80, *model, rng);

  for (double f : {0.25, 0.5, 0.9, 1.0}) {
    const double exact = trace.range_for_time_fraction(f);
    BisectionOptions options;
    options.lo = 0.0;
    options.hi = box.diagonal();
    options.tolerance = 1e-9;
    options.max_iterations = 128;
    const auto bisected = bisect_min_range(options, [&](double r) {
      return trace.fraction_of_time_connected(r) >= f;
    });
    EXPECT_NEAR(bisected.range, exact, 1e-6) << "f=" << f;
  }
}

/// Equation (1) route: the unconditional 10*1-pattern probability computed
/// by conditioning on mu must match direct placement simulation that uses
/// the geometric pipeline end to end (points -> bits -> pattern).
TEST(Integration, GapPatternProbabilityConsistentAcrossThreeRoutes) {
  Rng rng(3);
  const std::uint64_t n = 14;
  const std::size_t C = 12;
  const double l = 120.0;
  const double r = l / static_cast<double>(C);

  const double closed_form = gap_pattern::pattern_probability(n, C);
  const double cell_mc = gap_pattern::pattern_probability_monte_carlo(n, C, 60000, rng);

  const Box1 line(l);
  int hits = 0;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    const auto points = uniform_deployment(n, line, rng);
    const auto bits = gap_pattern::occupancy_bits(points, l, C);
    if (gap_pattern::has_gap_pattern(bits)) ++hits;
  }
  const double geometric_mc = static_cast<double>(hits) / trials;

  EXPECT_NEAR(closed_form, cell_mc, 0.01);
  EXPECT_NEAR(closed_form, geometric_mc, 0.01);
  (void)r;
}

/// Lemma 1 is a *sufficient* condition: every placement showing the pattern
/// at cell width r must be disconnected at range r.
TEST(Integration, GapPatternImpliesDisconnection) {
  Rng rng(4);
  const double l = 100.0;
  const std::size_t C = 10;
  const double r = l / static_cast<double>(C);
  const Box1 line(l);

  int pattern_count = 0;
  for (int t = 0; t < 2000; ++t) {
    const auto points = uniform_deployment(8, line, rng);
    const auto bits = gap_pattern::occupancy_bits(points, l, C);
    if (gap_pattern::has_gap_pattern(bits)) {
      ++pattern_count;
      EXPECT_GT(critical_range<1>(points), r)
          << "pattern present but graph connected at r";
    }
  }
  EXPECT_GT(pattern_count, 100);  // the regime actually exercises the check
}

/// ... but NOT necessary: disconnected placements without the pattern exist
/// (the paper notes the converse fails).
TEST(Integration, DisconnectionWithoutGapPatternExists) {
  Rng rng(5);
  const double l = 100.0;
  const std::size_t C = 10;
  const double r = l / static_cast<double>(C);
  const Box1 line(l);

  int found = 0;
  for (int t = 0; t < 5000 && found == 0; ++t) {
    const auto points = uniform_deployment(6, line, rng);
    const auto bits = gap_pattern::occupancy_bits(points, l, C);
    if (!gap_pattern::has_gap_pattern(bits) && critical_range<1>(points) > r) ++found;
  }
  EXPECT_GT(found, 0);
}

/// Theorem 5 in action: sweeping the constant beta in r = beta * l ln l / n,
/// connectivity probability must rise steeply through the threshold.
TEST(Integration, Theorem5ThresholdDirection1D) {
  Rng rng(6);
  const double l = 4096.0;
  const auto n = static_cast<std::size_t>(std::sqrt(l));
  const Box1 line(l);

  const auto p_connected = [&](double beta) {
    const double r = theory::connectivity_threshold_range_1d(l, static_cast<double>(n), beta);
    int connected = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
      const auto points = uniform_deployment(n, line, rng);
      if (critical_range<1>(points) <= r) ++connected;
    }
    return static_cast<double>(connected) / trials;
  };

  const double far_below = p_connected(0.1);
  const double below = p_connected(0.4);
  const double above = p_connected(1.2);
  EXPECT_LT(far_below, 0.05);
  EXPECT_LT(below, above);
  EXPECT_GT(above, 0.9);
}

/// The stationary MTR estimate for the paper's 2-D setup feeds the mobile
/// benches; sanity-check its magnitude against the region size and the
/// trivial bounds.
TEST(Integration, StationaryRangeWithinTheoreticalBrackets) {
  Rng rng(7);
  const double l = 256.0;
  const auto n = static_cast<std::size_t>(std::sqrt(l));
  const Box2 box(l);
  MtrOptions options;
  options.trials = 300;
  const MtrEstimate estimate = estimate_mtr<2>(n, box, options, rng);

  EXPECT_GT(estimate.range, theory::best_case_range_1d(l, static_cast<double>(n)));
  EXPECT_LT(estimate.range, theory::worst_case_range(l, 2));
}

std::size_t experiments_node_count(double l) {
  return static_cast<std::size_t>(std::sqrt(l));
}

/// End-to-end Figure 2 shape at toy scale: r100 exceeds r_stationary (motion
/// can only hurt the worst step), and r90 is well below r100.
TEST(Integration, MobileRatiosReproducePaperOrdering) {
  Rng rng(8);
  const double l = 256.0;
  const auto n = experiments_node_count(l);
  const Box2 box(l);

  MtrOptions stationary_options;
  stationary_options.trials = 300;
  const double r_stationary = estimate_mtr<2>(n, box, stationary_options, rng).range;

  MtrmConfig config;
  config.node_count = n;
  config.side = l;
  config.steps = 400;
  config.iterations = 6;
  config.mobility = MobilityConfig::paper_waypoint(l);
  const MtrmResult result = solve_mtrm<2>(config, rng);

  const double r100 = result.range_for_time[0].mean();
  const double r90 = result.range_for_time[1].mean();
  const double r10 = result.range_for_time[2].mean();

  // At this toy scale (400 steps, 6 iterations) both r100 and r_stationary
  // are extreme statistics with real sampling noise: require only that they
  // have the same magnitude. The figure benches check the ratio at scale.
  EXPECT_GT(r100, r_stationary * 0.7);
  EXPECT_LT(r90, r100);                 // large saving from 10% slack
  EXPECT_LT(r10, r90);
  // Figure 4 behaviour: at r90 the disconnected steps still hold most nodes.
  EXPECT_GT(result.lcc_at_range_for_time[1].mean(), 0.7);
}

/// The exact 1-D connectivity law must agree with the empirical quantile
/// machinery end to end: the closed-form range for probability p matches
/// the p-th order statistic of sampled critical radii.
TEST(Integration, ExactOneDimensionalLawMatchesEmpiricalQuantiles) {
  Rng rng(10);
  const double l = 500.0;
  const std::size_t n = 24;
  const Box1 line(l);
  const auto sample = sample_stationary_critical_ranges<1>(n, line, 4000, rng);

  for (double p : {0.25, 0.5, 0.75, 0.9}) {
    const double exact = exact_1d::range_for_probability(n, p, l);
    const double empirical = sample.range_for_probability(p);
    EXPECT_NEAR(exact / empirical, 1.0, 0.06) << "p=" << p;
    // And the CDF direction: empirical P(connected) at the exact range ~ p.
    EXPECT_NEAR(sample.probability_connected(exact), p, 0.04) << "p=" << p;
  }
}

/// Occupancy moments validated through the geometric pipeline: cut [0,l]
/// into C cells, count empties over many deployments.
TEST(Integration, OccupancyMomentsMatchGeometricSimulation) {
  Rng rng(9);
  const double l = 60.0;
  const std::size_t C = 12;
  const std::size_t n = 30;
  const Box1 line(l);

  RunningStats empties;
  for (int t = 0; t < 20000; ++t) {
    const auto points = uniform_deployment(n, line, rng);
    const auto bits = gap_pattern::occupancy_bits(points, l, C);
    std::size_t empty = 0;
    for (bool b : bits) {
      if (!b) ++empty;
    }
    empties.add(static_cast<double>(empty));
  }
  EXPECT_NEAR(empties.mean(), occupancy::expected_empty_cells(n, C), 0.05);
  EXPECT_NEAR(empties.variance(), occupancy::variance_empty_cells(n, C), 0.1);
}

}  // namespace
}  // namespace manet
