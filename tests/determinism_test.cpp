// Determinism regression tests: the library guarantees that every simulation
// is reproducible from its single 64-bit seed (see support/rng.hpp). Two runs
// with the same seed must produce *bit-identical* results — not merely close:
// threshold estimates are order statistics, so a one-ulp divergence can move
// a reported r90 by a whole sample.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/stationary_sample.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

/// Bitwise equality of double sequences (EXPECT_EQ on doubles compares
/// values, which would treat -0.0 == 0.0 and miss payload differences).
::testing::AssertionResult bit_identical(std::span<const double> a,
                                         std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << " differs: " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(Determinism, RngStreamsAreReproducible) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  // split() derives the substream deterministically too.
  Rng sa = a.split();
  Rng sb = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(sa.next_u64(), sb.next_u64());
  }
}

TEST(Determinism, StationarySampleIsBitIdenticalAcrossRuns) {
  const Box2 box(100.0);
  const std::size_t n = 32;
  const std::size_t trials = 50;

  Rng rng1(12345);
  const auto sample1 = sample_stationary_critical_ranges<2>(n, box, trials, rng1);
  Rng rng2(12345);
  const auto sample2 = sample_stationary_critical_ranges<2>(n, box, trials, rng2);

  EXPECT_TRUE(bit_identical(sample1.sorted_radii(), sample2.sorted_radii()));
  EXPECT_EQ(std::memcmp(&sample1.sorted_radii()[0], &sample2.sorted_radii()[0],
                        trials * sizeof(double)),
            0);
}

TEST(Determinism, StationarySampleDiffersAcrossSeeds) {
  const Box2 box(100.0);
  Rng rng1(1);
  const auto sample1 = sample_stationary_critical_ranges<2>(32, box, 20, rng1);
  Rng rng2(2);
  const auto sample2 = sample_stationary_critical_ranges<2>(32, box, 20, rng2);
  EXPECT_FALSE(bit_identical(sample1.sorted_radii(), sample2.sorted_radii()));
}

TEST(Determinism, MobileTraceIsBitIdenticalAcrossRuns) {
  const double side = 200.0;
  const Box2 box(side);
  const std::size_t n = 24;
  const std::size_t steps = 40;

  const auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    auto model = make_mobility_model<2>(MobilityConfig::paper_waypoint(side), box);
    const auto trace = run_mobile_trace<2>(n, box, steps, *model, rng);
    const auto timeline = trace.critical_radius_timeline();
    return std::vector<double>(timeline.begin(), timeline.end());
  };

  const auto first = run(777);
  const auto second = run(777);
  EXPECT_TRUE(bit_identical(first, second));

  const auto drunkard_run = [&](std::uint64_t seed) {
    Rng rng(seed);
    auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(side), box);
    const auto trace = run_mobile_trace<2>(n, box, steps, *model, rng);
    const auto timeline = trace.critical_radius_timeline();
    return std::vector<double>(timeline.begin(), timeline.end());
  };
  EXPECT_TRUE(bit_identical(drunkard_run(9001), drunkard_run(9001)));
}

TEST(Determinism, SplitStreamsAreInsensitiveToSiblingConsumption) {
  // The documented substream guarantee: drawing more values from one split
  // stream never perturbs a stream split off *earlier*.
  Rng base1(5);
  Rng split_a1 = base1.split();
  Rng base2(5);
  Rng split_a2 = base2.split();
  // Consume different amounts from the parents after splitting.
  for (int i = 0; i < 10; ++i) base1.next_u64();
  for (int i = 0; i < 1000; ++i) base2.next_u64();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(split_a1.next_u64(), split_a2.next_u64());
  }
}

}  // namespace
}  // namespace manet
