// Determinism regression tests: the library guarantees that every simulation
// is reproducible from its single 64-bit seed (see support/rng.hpp). Two runs
// with the same seed must produce *bit-identical* results — not merely close:
// threshold estimates are order statistics, so a one-ulp divergence can move
// a reported r90 by a whole sample.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/stationary_sample.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

/// Bitwise equality of double sequences (EXPECT_EQ on doubles compares
/// values, which would treat -0.0 == 0.0 and miss payload differences).
::testing::AssertionResult bit_identical(std::span<const double> a,
                                         std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << " differs: " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(Determinism, RngStreamsAreReproducible) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  // split() derives the substream deterministically too.
  Rng sa = a.split();
  Rng sb = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(sa.next_u64(), sb.next_u64());
  }
}

TEST(Determinism, StationarySampleIsBitIdenticalAcrossRuns) {
  const Box2 box(100.0);
  const std::size_t n = 32;
  const std::size_t trials = 50;

  Rng rng1(12345);
  const auto sample1 = sample_stationary_critical_ranges<2>(n, box, trials, rng1);
  Rng rng2(12345);
  const auto sample2 = sample_stationary_critical_ranges<2>(n, box, trials, rng2);

  EXPECT_TRUE(bit_identical(sample1.sorted_radii(), sample2.sorted_radii()));
  EXPECT_EQ(std::memcmp(&sample1.sorted_radii()[0], &sample2.sorted_radii()[0],
                        trials * sizeof(double)),
            0);
}

TEST(Determinism, StationarySampleDiffersAcrossSeeds) {
  const Box2 box(100.0);
  Rng rng1(1);
  const auto sample1 = sample_stationary_critical_ranges<2>(32, box, 20, rng1);
  Rng rng2(2);
  const auto sample2 = sample_stationary_critical_ranges<2>(32, box, 20, rng2);
  EXPECT_FALSE(bit_identical(sample1.sorted_radii(), sample2.sorted_radii()));
}

TEST(Determinism, MobileTraceIsBitIdenticalAcrossRuns) {
  const double side = 200.0;
  const Box2 box(side);
  const std::size_t n = 24;
  const std::size_t steps = 40;

  const auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    auto model = make_mobility_model<2>(MobilityConfig::paper_waypoint(side), box);
    const auto trace = run_mobile_trace<2>(n, box, steps, *model, rng);
    const auto timeline = trace.critical_radius_timeline();
    return std::vector<double>(timeline.begin(), timeline.end());
  };

  const auto first = run(777);
  const auto second = run(777);
  EXPECT_TRUE(bit_identical(first, second));

  const auto drunkard_run = [&](std::uint64_t seed) {
    Rng rng(seed);
    auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(side), box);
    const auto trace = run_mobile_trace<2>(n, box, steps, *model, rng);
    const auto timeline = trace.critical_radius_timeline();
    return std::vector<double>(timeline.begin(), timeline.end());
  };
  EXPECT_TRUE(bit_identical(drunkard_run(9001), drunkard_run(9001)));
}

/// FNV-1a over the raw bit patterns of a double sequence. A one-ulp change
/// in any value changes the digest, so a drifting golden value pinpoints a
/// stream-structure or arithmetic change immediately.
std::uint64_t fnv1a_bits(const std::vector<double>& values) {
  std::uint64_t hash = 1469598103934665603ull;
  for (double value : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

std::vector<double> flatten_mtrm(const MtrmResult& result) {
  std::vector<double> values;
  for (const RunningStats& stats : result.range_for_time) {
    values.push_back(stats.mean());
    values.push_back(stats.variance());
  }
  values.push_back(result.range_never_connected.mean());
  values.push_back(result.lcc_at_range_never.mean());
  for (const RunningStats& stats : result.range_for_component) values.push_back(stats.mean());
  for (const RunningStats& stats : result.lcc_at_range_for_time) values.push_back(stats.mean());
  for (const RunningStats& stats : result.min_lcc_at_range_for_time) {
    values.push_back(stats.mean());
  }
  values.push_back(result.mean_critical_range.mean());
  return values;
}

std::uint64_t mtrm_checksum(const MtrmConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  return fnv1a_bits(flatten_mtrm(solve_mtrm<2>(config, rng)));
}

// Golden end-to-end digests at the quick preset (l = 256, n = 16). These pin
// the full stream structure — deployment draws, mobility trajectories,
// per-trial substream derivation (support/parallel.hpp) and the ordered
// reduction — across compilers and platforms: the hot path uses only
// IEEE-exact arithmetic (+,-,*,/,sqrt) plus correctly-rounded pow, no libm
// trig, so the digests are stable wherever doubles are IEEE 754 binary64.
// If a deliberate stream-structure change moves them, re-pin BOTH values and
// note the break in CHANGES.md; a drift in only one model points at that
// model's sampling code instead.
TEST(Determinism, GoldenChecksumWaypointMtrmQuickPreset) {
  const MtrmConfig config = experiments::waypoint_experiment(256.0, Preset::kQuick);
  const std::uint64_t checksum = mtrm_checksum(config, 20020623);
  EXPECT_EQ(hex64(checksum), hex64(0x7f15b5b64209b3a3ull));
}

TEST(Determinism, GoldenChecksumDrunkardMtrmQuickPreset) {
  const MtrmConfig config = experiments::drunkard_experiment(256.0, Preset::kQuick);
  const std::uint64_t checksum = mtrm_checksum(config, 20020623);
  EXPECT_EQ(hex64(checksum), hex64(0xca0fd93f2a6598c4ull));
}

TEST(Determinism, SplitStreamsAreInsensitiveToSiblingConsumption) {
  // The documented substream guarantee: drawing more values from one split
  // stream never perturbs a stream split off *earlier*.
  Rng base1(5);
  Rng split_a1 = base1.split();
  Rng base2(5);
  Rng split_a2 = base2.split();
  // Consume different amounts from the parents after splitting.
  for (int i = 0; i < 10; ++i) base1.next_u64();
  for (int i = 0; i < 1000; ++i) base2.next_u64();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(split_a1.next_u64(), split_a2.next_u64());
  }
}

}  // namespace
}  // namespace manet
