#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <array>

#include "support/error.hpp"

namespace manet {
namespace {

CliParser make_parser() {
  CliParser parser("test tool");
  parser.add_option("count", "number of things", "10");
  parser.add_option("rate", "a rate", "0.5");
  parser.add_option("name", "a label", "alpha");
  parser.add_flag("verbose", "talk more");
  return parser;
}

TEST(CliParser, DefaultsApplyWhenUnset) {
  CliParser parser = make_parser();
  const std::array argv = {"prog"};
  parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(parser.int_value("count"), 10);
  EXPECT_DOUBLE_EQ(parser.double_value("rate"), 0.5);
  EXPECT_EQ(parser.string_value("name"), "alpha");
  EXPECT_FALSE(parser.flag("verbose"));
  EXPECT_FALSE(parser.was_set("count"));
}

TEST(CliParser, SpaceSeparatedValues) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--count", "42", "--name", "beta"};
  parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(parser.int_value("count"), 42);
  EXPECT_EQ(parser.string_value("name"), "beta");
  EXPECT_TRUE(parser.was_set("count"));
}

TEST(CliParser, EqualsSeparatedValues) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--rate=0.25", "--count=7"};
  parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(parser.double_value("rate"), 0.25);
  EXPECT_EQ(parser.uint_value("count"), 7u);
}

TEST(CliParser, FlagsAreDetected) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--verbose"};
  parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parser.flag("verbose"));
}

TEST(CliParser, HelpIsReported) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--help"};
  parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parser.help_requested());
  const std::string help = parser.help_text();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("number of things"), std::string::npos);
  EXPECT_NE(help.find("default: 10"), std::string::npos);
}

TEST(CliParser, UnknownOptionThrows) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--bogus", "1"};
  EXPECT_THROW(parser.parse(static_cast<int>(argv.size()), argv.data()), ConfigError);
}

TEST(CliParser, PositionalArgumentThrows) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "stray"};
  EXPECT_THROW(parser.parse(static_cast<int>(argv.size()), argv.data()), ConfigError);
}

TEST(CliParser, MissingValueThrows) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--count"};
  EXPECT_THROW(parser.parse(static_cast<int>(argv.size()), argv.data()), ConfigError);
}

TEST(CliParser, FlagWithValueThrows) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--verbose=yes"};
  EXPECT_THROW(parser.parse(static_cast<int>(argv.size()), argv.data()), ConfigError);
}

TEST(CliParser, MalformedNumbersThrow) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--count", "ten", "--rate", "fast"};
  parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(parser.int_value("count"), ConfigError);
  EXPECT_THROW(parser.double_value("rate"), ConfigError);
}

TEST(CliParser, NegativeIntoUnsignedThrows) {
  CliParser parser = make_parser();
  const std::array argv = {"prog", "--count", "-3"};
  parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(parser.int_value("count"), -3);
  EXPECT_THROW(parser.uint_value("count"), ConfigError);
}

TEST(CliParser, DuplicateRegistrationThrows) {
  CliParser parser("x");
  parser.add_option("a", "", "1");
  EXPECT_THROW(parser.add_option("a", "", "2"), ContractViolation);
  EXPECT_THROW(parser.add_flag("a", ""), ContractViolation);
}

TEST(CliParser, UnregisteredLookupThrows) {
  CliParser parser("x");
  const std::array argv = {"prog"};
  parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(parser.string_value("nope"), ConfigError);
}

}  // namespace
}  // namespace manet
