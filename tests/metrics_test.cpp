#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace manet {
namespace {

using Edge = std::pair<std::size_t, std::size_t>;

TEST(DegreeStats, EmptyGraph) {
  const AdjacencyGraph graph(0, std::vector<Edge>{});
  const DegreeStats stats = degree_stats(graph);
  EXPECT_EQ(stats.min_degree, 0u);
  EXPECT_EQ(stats.max_degree, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 0.0);
  EXPECT_EQ(stats.isolated_count, 0u);
}

TEST(DegreeStats, StarGraph) {
  const std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  const AdjacencyGraph star(5, edges);
  const DegreeStats stats = degree_stats(star);
  EXPECT_EQ(stats.min_degree, 1u);
  EXPECT_EQ(stats.max_degree, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 8.0 / 5.0);
  EXPECT_EQ(stats.isolated_count, 0u);
}

TEST(DegreeStats, IsolatedNodesAreCounted) {
  const std::vector<Edge> edges = {{0, 1}};
  const AdjacencyGraph graph(4, edges);
  const DegreeStats stats = degree_stats(graph);
  EXPECT_EQ(stats.min_degree, 0u);
  EXPECT_EQ(stats.isolated_count, 2u);
}

TEST(DegreeHistogram, MatchesDegrees) {
  const std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}};
  const AdjacencyGraph graph(5, edges);  // degrees: 3,1,1,1,0
  const auto hist = degree_histogram(graph);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(DegreeHistogram, EmptyGraphGivesEmptyHistogram) {
  const AdjacencyGraph graph(0, std::vector<Edge>{});
  EXPECT_TRUE(degree_histogram(graph).empty());
}

TEST(ComponentSizes, SortedDescending) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  const AdjacencyGraph graph(6, edges);  // components: {0,1,2}, {3,4}, {5}
  const auto sizes = component_sizes(graph);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 1u);
}

TEST(ComponentSizes, ConnectedGraphHasOneComponent) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i + 1 < 7; ++i) edges.emplace_back(i, i + 1);
  const AdjacencyGraph path(7, edges);
  const auto sizes = component_sizes(path);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 7u);
}

TEST(ComponentSizes, SizesSumToVertexCount) {
  const std::vector<Edge> edges = {{0, 2}, {4, 5}, {6, 7}, {7, 8}};
  const AdjacencyGraph graph(10, edges);
  const auto sizes = component_sizes(graph);
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace manet
