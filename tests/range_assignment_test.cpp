#include "topology/range_assignment.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "geometry/box.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"

namespace manet {
namespace {

TEST(RangeAssignment, CostAndMaxRange) {
  const RangeAssignment assignment({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(assignment.cost(2.0), 1.0 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(assignment.cost(1.0), 6.0);
  EXPECT_DOUBLE_EQ(assignment.max_range(), 3.0);
  EXPECT_EQ(assignment.node_count(), 3u);
  EXPECT_DOUBLE_EQ(assignment.range(1), 2.0);
}

TEST(RangeAssignment, RejectsNegativeRangesAndBadAlpha) {
  // ConfigError (thrown in every build mode): ranges and alpha arrive
  // straight from user configuration. This is the Release-build regression
  // for the validation — no death tests involved.
  EXPECT_THROW(RangeAssignment({1.0, -0.5}), ConfigError);
  EXPECT_THROW(RangeAssignment({-1.0}), ConfigError);
  EXPECT_THROW(RangeAssignment({std::numeric_limits<double>::quiet_NaN()}), ConfigError);
  const RangeAssignment ok({1.0});
  EXPECT_THROW(ok.cost(0.5), ConfigError);
  // Out-of-bounds node index stays a programmer contract, not user config.
  EXPECT_THROW(ok.range(1), ContractViolation);
}

TEST(RangeAssignment, EmptyAssignment) {
  const RangeAssignment empty{std::vector<double>{}};
  EXPECT_EQ(empty.node_count(), 0u);
  EXPECT_DOUBLE_EQ(empty.cost(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max_range(), 0.0);
}

TEST(HomogeneousAssignment, EveryNodeGetsTheCriticalRange) {
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}, {{4.0}}};
  const RangeAssignment assignment = homogeneous_assignment<1>(points);
  ASSERT_EQ(assignment.node_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(assignment.range(i), 3.0);
}

TEST(MstAssignment, HandComputedLine) {
  // Points at 0, 1, 4: MST edges (0-1, w=1), (1-2, w=3).
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}, {{4.0}}};
  const RangeAssignment assignment = mst_assignment<1>(points);
  EXPECT_DOUBLE_EQ(assignment.range(0), 1.0);  // incident: edge of weight 1
  EXPECT_DOUBLE_EQ(assignment.range(1), 3.0);  // incident: weights 1 and 3
  EXPECT_DOUBLE_EQ(assignment.range(2), 3.0);
}

TEST(MstAssignment, SymmetricGraphIsAlwaysConnected) {
  Rng rng(1);
  const Box2 box(100.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto points = uniform_deployment(30, box, rng);
    const RangeAssignment assignment = mst_assignment<2>(points);
    EXPECT_TRUE(symmetric_graph_connected<2>(points, assignment)) << "trial " << trial;
  }
}

TEST(MstAssignment, NeverCostsMoreThanHomogeneous) {
  Rng rng(2);
  const Box2 box(100.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto points = uniform_deployment(25, box, rng);
    const double homogeneous = homogeneous_assignment<2>(points).cost();
    const double per_node = mst_assignment<2>(points).cost();
    EXPECT_LE(per_node, homogeneous + 1e-9);
  }
}

TEST(MstAssignment, MaxRangeEqualsCriticalRange) {
  Rng rng(3);
  const Box2 box(80.0);
  const auto points = uniform_deployment(20, box, rng);
  const RangeAssignment assignment = mst_assignment<2>(points);
  EXPECT_NEAR(assignment.max_range(), critical_range<2>(points), 1e-12);
}

TEST(SymmetricGraphConnected, ShrinkingOneRangeBreaksConnectivity) {
  // Chain 0-1-2: shrink the middle node's range below the long edge.
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}, {{4.0}}};
  RangeAssignment ok({1.0, 3.0, 3.0});
  EXPECT_TRUE(symmetric_graph_connected<1>(points, ok));

  RangeAssignment broken({1.0, 2.0, 3.0});  // min(2,3) = 2 < 3 on edge 1-2
  EXPECT_FALSE(symmetric_graph_connected<1>(points, broken));
}

TEST(SymmetricGraphConnected, TrivialSizes) {
  const std::vector<Point2> none;
  EXPECT_TRUE(symmetric_graph_connected<2>(none, RangeAssignment{std::vector<double>{}}));
  const std::vector<Point2> one = {{{1.0, 1.0}}};
  EXPECT_TRUE(symmetric_graph_connected<2>(one, RangeAssignment({0.0})));
}

TEST(SymmetricGraphConnected, RejectsSizeMismatch) {
  const std::vector<Point2> two = {{{0.0, 0.0}}, {{1.0, 1.0}}};
  EXPECT_THROW(symmetric_graph_connected<2>(two, RangeAssignment({1.0})),
               ContractViolation);
}

struct SavingsAccumulator {
  double sum;
  int count;
};

TEST(PerNodeAssignmentSavings, PositiveForRandomDeployments) {
  Rng rng(4);
  const Box2 box(100.0);
  SavingsAccumulator total{0.0, 0};
  for (int trial = 0; trial < 20; ++trial) {
    const auto points = uniform_deployment(30, box, rng);
    const double savings = per_node_assignment_savings<2>(points);
    EXPECT_GE(savings, 0.0);
    EXPECT_LT(savings, 1.0);
    total.sum += savings;
    ++total.count;
  }
  // Per-node ranges should save a substantial fraction of the homogeneous
  // energy on average (typically 40-70% at alpha = 2).
  EXPECT_GT(total.sum / total.count, 0.2);
}

TEST(PerNodeAssignmentSavings, ZeroForTrivialInputs) {
  const std::vector<Point2> one = {{{1.0, 1.0}}};
  EXPECT_DOUBLE_EQ(per_node_assignment_savings<2>(one), 0.0);
}

TEST(PerNodeAssignmentSavings, GrowWithPathLossExponent) {
  Rng rng(5);
  const Box2 box(100.0);
  const auto points = uniform_deployment(30, box, rng);
  const double at_2 = per_node_assignment_savings<2>(points, 2.0);
  const double at_4 = per_node_assignment_savings<2>(points, 4.0);
  EXPECT_GT(at_4, at_2);
}

}  // namespace
}  // namespace manet
