#include "sim/stationary_sample.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geometry/box.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

TEST(StationaryRangeSample, RejectsEmptySample) {
  EXPECT_THROW(StationaryRangeSample({}), ContractViolation);
}

TEST(StationaryRangeSample, ProbabilityConnectedIsEmpiricalCdf) {
  const StationaryRangeSample sample({3.0, 1.0, 2.0, 4.0});  // sorted: 1,2,3,4
  EXPECT_DOUBLE_EQ(sample.probability_connected(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sample.probability_connected(1.0), 0.25);
  EXPECT_DOUBLE_EQ(sample.probability_connected(2.5), 0.5);
  EXPECT_DOUBLE_EQ(sample.probability_connected(4.0), 1.0);
  EXPECT_DOUBLE_EQ(sample.probability_connected(100.0), 1.0);
}

TEST(StationaryRangeSample, RangeForProbabilityIsOrderStatistic) {
  const StationaryRangeSample sample({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(sample.range_for_probability(0.25), 1.0);
  EXPECT_DOUBLE_EQ(sample.range_for_probability(0.5), 2.0);
  EXPECT_DOUBLE_EQ(sample.range_for_probability(0.75), 3.0);
  EXPECT_DOUBLE_EQ(sample.range_for_probability(1.0), 4.0);
  // Between order statistics: round up (ensure at least the fraction).
  EXPECT_DOUBLE_EQ(sample.range_for_probability(0.6), 3.0);
  EXPECT_DOUBLE_EQ(sample.range_for_probability(0.01), 1.0);
}

TEST(StationaryRangeSample, RangeAndProbabilityAreConsistent) {
  Rng rng(1);
  const Box2 box(100.0);
  const auto sample = sample_stationary_critical_ranges<2>(20, box, 200, rng);
  for (double p : {0.5, 0.9, 0.99, 1.0}) {
    const double r = sample.range_for_probability(p);
    EXPECT_GE(sample.probability_connected(r), p - 1e-12);
  }
}

TEST(StationaryRangeSample, RejectsBadProbability) {
  const StationaryRangeSample sample({1.0});
  EXPECT_THROW(sample.range_for_probability(0.0), ContractViolation);
  EXPECT_THROW(sample.range_for_probability(1.1), ContractViolation);
}

TEST(StationaryRangeSample, MeanCriticalRange) {
  const StationaryRangeSample sample({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(sample.mean_critical_range(), 2.0);
}

TEST(SampleStationaryCriticalRanges, TrialsAndDeterminism) {
  const Box2 box(50.0);
  Rng a(7);
  Rng b(7);
  const auto sa = sample_stationary_critical_ranges<2>(15, box, 50, a);
  const auto sb = sample_stationary_critical_ranges<2>(15, box, 50, b);
  EXPECT_EQ(sa.trials(), 50u);
  ASSERT_EQ(sa.sorted_radii().size(), sb.sorted_radii().size());
  for (std::size_t i = 0; i < sa.sorted_radii().size(); ++i) {
    EXPECT_EQ(sa.sorted_radii()[i], sb.sorted_radii()[i]);
  }
}

TEST(SampleStationaryCriticalRanges, MoreNodesNeedSmallerRanges) {
  // With more nodes in the same region, the typical critical radius shrinks.
  Rng rng(2);
  const Box2 box(100.0);
  const auto sparse = sample_stationary_critical_ranges<2>(10, box, 150, rng);
  const auto dense = sample_stationary_critical_ranges<2>(80, box, 150, rng);
  EXPECT_LT(dense.mean_critical_range(), sparse.mean_critical_range());
}

TEST(SampleStationaryCriticalRanges, RadiiAreBoundedByDiagonal) {
  Rng rng(3);
  const Box2 box(30.0);
  const auto sample = sample_stationary_critical_ranges<2>(8, box, 100, rng);
  for (double r : sample.sorted_radii()) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, box.diagonal());
  }
}

}  // namespace
}  // namespace manet
