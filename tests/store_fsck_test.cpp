// Tests of the store integrity audit (src/service/fsck.hpp, surfaced as
// `manet-store --fsck`): a store populated by a real campaign run passes,
// every way an entry can lie about itself — torn bytes, foreign JSON, an
// entry renamed to the wrong address — is reported, quarantine moves the
// offenders aside without touching good entries, and a rerun of the
// campaign heals the store back to a clean audit with byte-identical
// results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/experiments.hpp"
#include "service/fsck.hpp"
#include "support/fs.hpp"

namespace manet {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignRunner;
using service::fsck_store;
using service::FsckReport;

constexpr std::uint64_t kSeed = 20020623;

/// Fresh scratch directories per test, wiped on entry so reruns start clean.
struct FsckDirs {
  explicit FsckDirs(const std::string& tag)
      : root(std::filesystem::path(::testing::TempDir()) / ("fsck_test_" + tag)) {
    std::filesystem::remove_all(root);
    campaign_dir = (root / "campaign").string();
    store_dir = root / "store";
  }
  ~FsckDirs() { std::filesystem::remove_all(root); }

  CampaignOptions options() const {
    CampaignOptions opts;
    opts.dir = campaign_dir;
    opts.store_dir = store_dir.string();
    opts.quiet = true;
    return opts;
  }

  std::filesystem::path root;
  std::string campaign_dir;
  std::filesystem::path store_dir;
};

/// One-point sweep: enough store entries to corrupt selectively, cheap
/// enough to rerun for the heal check.
std::vector<MtrmConfig> tiny_sweep() {
  return {experiments::waypoint_experiment(256.0, Preset::kQuick)};
}

/// Runs the campaign, returning the result.json bytes.
std::string populate(const FsckDirs& dirs, const std::vector<MtrmConfig>& configs) {
  CampaignRunner runner("fsck_test", dirs.options());
  (void)experiments::solve_mtrm_sweep(configs, kSeed, &runner);
  return read_text_file(std::filesystem::path(dirs.campaign_dir) / "result.json");
}

std::vector<std::filesystem::path> store_entries(const std::filesystem::path& store_dir) {
  std::vector<std::filesystem::path> entries;
  for (const auto& entry : std::filesystem::directory_iterator(store_dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      entries.push_back(entry.path());
    }
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

TEST(StoreFsck, CleanStorePasses) {
  const FsckDirs dirs("clean");
  (void)populate(dirs, tiny_sweep());

  const FsckReport report = fsck_store(dirs.store_dir, /*quarantine=*/false);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.scanned, 0u);
  EXPECT_EQ(report.ok, report.scanned);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.scanned, store_entries(dirs.store_dir).size());
}

TEST(StoreFsck, MissingStoreDirectoryIsClean) {
  const FsckDirs dirs("missing");
  const FsckReport report = fsck_store(dirs.store_dir / "never_created", false);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.scanned, 0u);
}

TEST(StoreFsck, DetectsTornForeignAndMisaddressedEntries) {
  const FsckDirs dirs("detect");
  (void)populate(dirs, tiny_sweep());
  const auto entries = store_entries(dirs.store_dir);
  ASSERT_GE(entries.size(), 2u);

  // Torn/tampered bytes at a valid address.
  write_text_file_atomic(entries[0], "{\"schema_version\": 1, \"kind\": \"manet-ca");
  // A valid entry copied to the wrong address (renamed by hand).
  const std::string moved_content = read_text_file(entries[1]);
  const std::filesystem::path misaddressed =
      dirs.store_dir / "00112233445566ff.json";
  write_text_file_atomic(misaddressed, moved_content);
  // Foreign JSON dropped into the store.
  const std::filesystem::path foreign = dirs.store_dir / "deadbeefdeadbeef.json";
  write_text_file_atomic(foreign, "{\"hello\": 1}\n");

  const FsckReport report = fsck_store(dirs.store_dir, /*quarantine=*/false);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.issues.size(), 3u);
  EXPECT_EQ(report.ok + report.issues.size(), report.scanned);
  // Without quarantine nothing moves.
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_TRUE(std::filesystem::exists(entries[0]));
  EXPECT_TRUE(std::filesystem::exists(misaddressed));
  EXPECT_TRUE(std::filesystem::exists(foreign));
}

TEST(StoreFsck, QuarantineMovesOffendersAndRerunHeals) {
  const FsckDirs dirs("heal");
  const auto configs = tiny_sweep();
  const std::string reference_bytes = populate(dirs, configs);
  const auto entries = store_entries(dirs.store_dir);
  ASSERT_FALSE(entries.empty());

  write_text_file_atomic(entries[0], "garbage, not even json");

  const FsckReport report = fsck_store(dirs.store_dir, /*quarantine=*/true);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(entries[0]));
  EXPECT_TRUE(std::filesystem::exists(dirs.store_dir / "quarantine" /
                                      entries[0].filename()));

  // The next campaign run recomputes the quarantined unit; the store audits
  // clean again and the result is byte-identical to the pre-corruption run.
  const std::string healed_bytes = populate(dirs, configs);
  EXPECT_EQ(healed_bytes, reference_bytes);
  const FsckReport after = fsck_store(dirs.store_dir, /*quarantine=*/false);
  EXPECT_TRUE(after.clean());
}

TEST(StoreFsck, SkipsClaimsTempSiblingsAndQuarantine) {
  const FsckDirs dirs("skips");
  (void)populate(dirs, tiny_sweep());
  const std::size_t baseline = fsck_store(dirs.store_dir, false).scanned;

  // Simulated drain-worker droppings: a lease, a temp sibling mid-write,
  // and a previously quarantined entry. None are store entries.
  std::filesystem::create_directories(dirs.store_dir / "claims");
  write_text_file_atomic(dirs.store_dir / "claims" / "feedfacecafebeef.lease",
                         "{\"owner\": \"w0\"}");
  write_text_file_atomic(dirs.store_dir / "0123456789abcdef.json.tmp.1234.1",
                         "half-written");
  std::filesystem::create_directories(dirs.store_dir / "quarantine");
  write_text_file_atomic(dirs.store_dir / "quarantine" / "deadbeefdeadbeef.json",
                         "previously quarantined");

  const FsckReport report = fsck_store(dirs.store_dir, false);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.scanned, baseline);
}

}  // namespace
}  // namespace manet
