#include "topology/critical_range.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geometry/box.hpp"
#include "graph/proximity.hpp"
#include "sim/deployment.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

TEST(CriticalRange, TrivialPointSets) {
  const std::vector<Point2> none;
  EXPECT_DOUBLE_EQ(critical_range<2>(none), 0.0);
  const std::vector<Point2> one = {{{3.0, 3.0}}};
  EXPECT_DOUBLE_EQ(critical_range<2>(one), 0.0);
}

TEST(CriticalRange, OneDimensionEqualsLargestGap) {
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}, {{4.0}}, {{4.5}}, {{10.0}}};
  EXPECT_DOUBLE_EQ(critical_range<1>(points), 5.5);  // gap 4.5 -> 10.0
}

TEST(CriticalRange, OneDimensionUnsortedInput) {
  const std::vector<Point1> points = {{{10.0}}, {{0.0}}, {{4.5}}, {{4.0}}, {{1.0}}};
  EXPECT_DOUBLE_EQ(critical_range<1>(points), 5.5);
}

TEST(CriticalRange, TwoDimensionHandComputed) {
  // Three collinear points: critical range is the larger adjacent distance.
  const std::vector<Point2> points = {{{0.0, 0.0}}, {{2.0, 0.0}}, {{7.0, 0.0}}};
  EXPECT_DOUBLE_EQ(critical_range<2>(points), 5.0);
}

TEST(CriticalRange, ConnectivityFlipsExactlyAtCriticalRange) {
  Rng rng(1);
  const Box2 box(100.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto points = uniform_deployment(40, box, rng);
    const double rc = critical_range<2>(points);
    EXPECT_TRUE(analyze_components<2>(points, box, rc).connected());
    EXPECT_FALSE(analyze_components<2>(points, box, rc * (1.0 - 1e-9)).connected());
  }
}

TEST(CriticalRange, InvariantUnderTranslationWithinBox) {
  const std::vector<Point2> points = {{{1.0, 1.0}}, {{2.0, 3.0}}, {{5.0, 2.0}}};
  const double rc = critical_range<2>(points);
  std::vector<Point2> shifted;
  for (const auto& p : points) shifted.push_back(p + Point2{{10.0, 20.0}});
  EXPECT_NEAR(critical_range<2>(shifted), rc, 1e-12);
}

TEST(CriticalRange, MatchesMstBottleneckIn1D) {
  Rng rng(2);
  const Box1 line(1000.0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto points = uniform_deployment(50, line, rng);
    const auto mst = euclidean_mst<1>(points);
    EXPECT_NEAR(critical_range<1>(points), tree_bottleneck(mst), 1e-9);
  }
}

TEST(IsolationRange, TrivialPointSets) {
  const std::vector<Point2> none;
  EXPECT_DOUBLE_EQ(isolation_range<2>(none), 0.0);
  const std::vector<Point2> one = {{{1.0, 1.0}}};
  EXPECT_DOUBLE_EQ(isolation_range<2>(one), 0.0);
}

TEST(IsolationRange, HandComputed) {
  // Points at 0, 1, 5: nearest-neighbor distances are 1, 1, 4.
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}, {{5.0}}};
  EXPECT_DOUBLE_EQ(isolation_range<1>(points), 4.0);
}

TEST(IsolationRange, IsALowerBoundOnCriticalRange) {
  Rng rng(7);
  const Box2 box(100.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto points = uniform_deployment(30, box, rng);
    EXPECT_LE(isolation_range<2>(points), critical_range<2>(points) + 1e-12);
  }
}

TEST(IsolationRange, NoIsolatedNodeAtThatRange) {
  Rng rng(8);
  const Box2 box(100.0);
  const auto points = uniform_deployment(25, box, rng);
  const double iso = isolation_range<2>(points);
  const ComponentSummary at = analyze_components<2>(points, box, iso);
  EXPECT_EQ(at.isolated_count, 0u);
  // Just below, at least one node is isolated.
  const ComponentSummary below = analyze_components<2>(points, box, iso * (1.0 - 1e-9));
  EXPECT_GE(below.isolated_count, 1u);
}

TEST(IsolationRange, EqualsCriticalRangeWhenLastObstacleIsALoneNode) {
  // Chain plus one distant node: the critical range is set by reaching the
  // stray node, which is also the isolation range.
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}, {{2.0}}, {{10.0}}};
  EXPECT_DOUBLE_EQ(isolation_range<1>(points), 8.0);
  EXPECT_DOUBLE_EQ(critical_range<1>(points), 8.0);
}

TEST(IsolationRange, StrictlyBelowCriticalRangeForSplitClusters) {
  // Two pairs far apart: nobody is isolated at range 1, but connectivity
  // needs the big bridge.
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}, {{50.0}}, {{51.0}}};
  EXPECT_DOUBLE_EQ(isolation_range<1>(points), 1.0);
  EXPECT_DOUBLE_EQ(critical_range<1>(points), 49.0);
}

TEST(LargestComponentCurve, SingletonAndEmpty) {
  const LargestComponentCurve empty(0, {});
  EXPECT_EQ(empty.largest_component_at(1.0), 0u);
  EXPECT_DOUBLE_EQ(empty.largest_fraction_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(empty.critical_range(), 0.0);

  const LargestComponentCurve single(1, {});
  EXPECT_EQ(single.largest_component_at(0.0), 1u);
  EXPECT_DOUBLE_EQ(single.critical_range(), 0.0);
  EXPECT_DOUBLE_EQ(single.range_for_size(1), 0.0);
}

TEST(LargestComponentCurve, RejectsWrongEdgeCount) {
  const std::vector<WeightedEdge> one_edge = {{0, 1, 1.0}};
  EXPECT_THROW(LargestComponentCurve(5, one_edge), ContractViolation);
}

TEST(LargestComponentCurve, StepFunctionOfCollinearPoints) {
  // Points at 0, 1, 3, 6 on a line: MST edges 1, 2, 3.
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}, {{3.0}}, {{6.0}}};
  const auto curve = largest_component_curve<1>(points);

  EXPECT_EQ(curve.largest_component_at(0.0), 1u);
  EXPECT_EQ(curve.largest_component_at(0.99), 1u);
  EXPECT_EQ(curve.largest_component_at(1.0), 2u);
  EXPECT_EQ(curve.largest_component_at(2.0), 3u);
  EXPECT_EQ(curve.largest_component_at(2.5), 3u);
  EXPECT_EQ(curve.largest_component_at(3.0), 4u);
  EXPECT_EQ(curve.largest_component_at(100.0), 4u);

  EXPECT_DOUBLE_EQ(curve.range_for_size(1), 0.0);
  EXPECT_DOUBLE_EQ(curve.range_for_size(2), 1.0);
  EXPECT_DOUBLE_EQ(curve.range_for_size(3), 2.0);
  EXPECT_DOUBLE_EQ(curve.range_for_size(4), 3.0);
  EXPECT_DOUBLE_EQ(curve.critical_range(), 3.0);
}

TEST(LargestComponentCurve, EqualWeightMergesCollapse) {
  // Equally spaced points: all MST edges have the same weight; the curve
  // must jump straight from 1 to n at that weight.
  const std::vector<Point1> points = {{{0.0}}, {{2.0}}, {{4.0}}, {{6.0}}};
  const auto curve = largest_component_curve<1>(points);
  EXPECT_EQ(curve.largest_component_at(1.999), 1u);
  EXPECT_EQ(curve.largest_component_at(2.0), 4u);
  ASSERT_EQ(curve.breakpoints().size(), 2u);
}

TEST(LargestComponentCurve, MatchesDirectComponentAnalysis) {
  Rng rng(3);
  const Box2 box(100.0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto points = uniform_deployment(35, box, rng);
    const auto curve = largest_component_curve<2>(points);
    for (double r : {5.0, 10.0, 20.0, 40.0, 80.0}) {
      const ComponentSummary summary = analyze_components<2>(points, box, r);
      EXPECT_EQ(curve.largest_component_at(r), summary.largest_size)
          << "trial=" << trial << " r=" << r;
    }
  }
}

TEST(LargestComponentCurve, RangeForSizeIsExactThreshold) {
  Rng rng(4);
  const Box2 box(50.0);
  const auto points = uniform_deployment(30, box, rng);
  const auto curve = largest_component_curve<2>(points);
  for (std::size_t target : {5u, 15u, 25u, 30u}) {
    const double r = curve.range_for_size(target);
    EXPECT_GE(curve.largest_component_at(r), target);
    if (r > 0.0) {
      EXPECT_LT(curve.largest_component_at(r * (1.0 - 1e-9)), target);
    }
  }
}

TEST(LargestComponentCurve, RangeForSizeRejectsBadTargets) {
  const std::vector<Point1> points = {{{0.0}}, {{1.0}}};
  const auto curve = largest_component_curve<1>(points);
  EXPECT_THROW(curve.range_for_size(0), ContractViolation);
  EXPECT_THROW(curve.range_for_size(3), ContractViolation);
}

TEST(LargestComponentCurve, CriticalRangeMatchesStandalone) {
  Rng rng(5);
  const Box2 box(80.0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto points = uniform_deployment(25, box, rng);
    const auto curve = largest_component_curve<2>(points);
    EXPECT_NEAR(curve.critical_range(), critical_range<2>(points), 1e-9);
  }
}

TEST(LargestComponentCurve, BreakpointsAreMonotone) {
  Rng rng(6);
  const Box2 box(60.0);
  const auto points = uniform_deployment(40, box, rng);
  const auto curve = largest_component_curve<2>(points);
  const auto bps = curve.breakpoints();
  for (std::size_t i = 1; i < bps.size(); ++i) {
    EXPECT_GT(bps[i].range, bps[i - 1].range);
    EXPECT_GT(bps[i].size, bps[i - 1].size);
  }
  EXPECT_EQ(bps.back().size, 40u);
}

}  // namespace
}  // namespace manet
