#include "graph/proximity.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geometry/box.hpp"
#include "sim/deployment.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

TEST(ProximityEdges, TriangleAtVaryingRadius) {
  const Box2 box(10.0);
  const std::vector<Point2> points = {{{0.0, 0.0}}, {{3.0, 0.0}}, {{0.0, 4.0}}};
  // Pairwise distances: 3 (0-1), 4 (0-2), 5 (1-2).
  EXPECT_EQ(proximity_edges<2>(points, box, 2.9).size(), 0u);
  EXPECT_EQ(proximity_edges<2>(points, box, 3.0).size(), 1u);
  EXPECT_EQ(proximity_edges<2>(points, box, 4.5).size(), 2u);
  EXPECT_EQ(proximity_edges<2>(points, box, 5.0).size(), 3u);
}

TEST(ProximityEdges, FewerThanTwoPoints) {
  const Box2 box(10.0);
  const std::vector<Point2> none;
  const std::vector<Point2> one = {{{1.0, 1.0}}};
  EXPECT_TRUE(proximity_edges<2>(none, box, 1.0).empty());
  EXPECT_TRUE(proximity_edges<2>(one, box, 1.0).empty());
}

TEST(BuildCommunicationGraph, DegreesMatchGeometry) {
  const Box2 box(10.0);
  const std::vector<Point2> points = {{{0.0, 0.0}}, {{1.0, 0.0}}, {{2.0, 0.0}}, {{9.0, 9.0}}};
  const AdjacencyGraph graph = build_communication_graph<2>(points, box, 1.5);
  EXPECT_EQ(graph.vertex_count(), 4u);
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_EQ(graph.degree(0), 1u);
  EXPECT_EQ(graph.degree(1), 2u);
  EXPECT_EQ(graph.degree(2), 1u);
  EXPECT_EQ(graph.degree(3), 0u);
}

TEST(AnalyzeComponents, ChainTopology) {
  const Box2 box(10.0);
  const std::vector<Point2> points = {{{0.0, 0.0}}, {{1.0, 0.0}}, {{2.0, 0.0}}, {{3.0, 0.0}}};
  const ComponentSummary summary = analyze_components<2>(points, box, 1.0);
  EXPECT_EQ(summary.node_count, 4u);
  EXPECT_EQ(summary.component_count, 1u);
  EXPECT_EQ(summary.largest_size, 4u);
  EXPECT_EQ(summary.isolated_count, 0u);
  EXPECT_TRUE(summary.connected());
  EXPECT_DOUBLE_EQ(summary.largest_fraction(), 1.0);
}

TEST(AnalyzeComponents, SplitTopologyWithIsolatedNode) {
  const Box2 box(100.0);
  const std::vector<Point2> points = {
      {{0.0, 0.0}}, {{1.0, 0.0}},   // pair
      {{50.0, 50.0}},               // isolated
      {{90.0, 90.0}}, {{91.0, 90.0}}, {{92.0, 90.0}}};  // triple
  const ComponentSummary summary = analyze_components<2>(points, box, 1.2);
  EXPECT_EQ(summary.component_count, 3u);
  EXPECT_EQ(summary.largest_size, 3u);
  EXPECT_EQ(summary.isolated_count, 1u);
  EXPECT_FALSE(summary.connected());
  EXPECT_DOUBLE_EQ(summary.largest_fraction(), 0.5);
}

TEST(AnalyzeComponents, EmptyAndSingleNode) {
  const Box2 box(10.0);
  const std::vector<Point2> none;
  const ComponentSummary empty = analyze_components<2>(none, box, 1.0);
  EXPECT_TRUE(empty.connected());
  EXPECT_DOUBLE_EQ(empty.largest_fraction(), 1.0);

  const std::vector<Point2> one = {{{5.0, 5.0}}};
  const ComponentSummary single = analyze_components<2>(one, box, 1.0);
  EXPECT_TRUE(single.connected());
  EXPECT_EQ(single.component_count, 1u);
  EXPECT_EQ(single.largest_size, 1u);
  EXPECT_EQ(single.isolated_count, 1u);
}

TEST(AnalyzeComponents, AgreesWithAdjacencyGraphOnRandomInputs) {
  Rng rng(1);
  const Box2 box(50.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto points = uniform_deployment(60, box, rng);
    const double radius = rng.uniform(2.0, 25.0);
    const ComponentSummary summary = analyze_components<2>(points, box, radius);
    const AdjacencyGraph graph = build_communication_graph<2>(points, box, radius);

    // Cross-check against BFS reachability.
    std::size_t isolated = 0;
    for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
      if (graph.degree(v) == 0) ++isolated;
    }
    EXPECT_EQ(summary.isolated_count, isolated);
    EXPECT_EQ(summary.connected(), reachable_count(graph, 0) == points.size());
  }
}

TEST(AnalyzeComponents, WorksIn1DAnd3D) {
  const Box1 line(10.0);
  const std::vector<Point1> on_line = {{{0.0}}, {{1.0}}, {{2.5}}, {{9.0}}};
  const ComponentSummary line_summary = analyze_components<1>(on_line, line, 1.6);
  EXPECT_EQ(line_summary.component_count, 2u);
  EXPECT_EQ(line_summary.largest_size, 3u);

  const Box3 cube(10.0);
  const std::vector<Point3> in_cube = {{{0, 0, 0}}, {{1, 1, 1}}, {{9, 9, 9}}};
  const ComponentSummary cube_summary = analyze_components<3>(in_cube, cube, 2.0);
  EXPECT_EQ(cube_summary.component_count, 2u);
  EXPECT_EQ(cube_summary.isolated_count, 1u);
}

}  // namespace
}  // namespace manet
