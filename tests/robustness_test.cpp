#include "graph/robustness.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "geometry/box.hpp"
#include "graph/proximity.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"

namespace manet {
namespace {

using Edge = std::pair<std::size_t, std::size_t>;

AdjacencyGraph make_graph(std::size_t n, std::vector<Edge> edges) {
  return AdjacencyGraph(n, edges);
}

/// Brute-force articulation check: remove v, count components among the
/// rest.
bool is_articulation_naive(const AdjacencyGraph& graph, std::size_t removed) {
  const std::size_t n = graph.vertex_count();
  std::vector<bool> visited(n, false);
  visited[removed] = true;

  std::size_t components = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++components;
    std::vector<std::size_t> stack = {start};
    visited[start] = true;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      for (std::size_t w : graph.neighbors(v)) {
        if (!visited[w]) {
          visited[w] = true;
          stack.push_back(w);
        }
      }
    }
  }

  // Components among the full graph (without removal).
  std::vector<bool> visited2(n, false);
  std::size_t base_components = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (visited2[start]) continue;
    ++base_components;
    std::vector<std::size_t> stack = {start};
    visited2[start] = true;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      for (std::size_t w : graph.neighbors(v)) {
        if (!visited2[w]) {
          visited2[w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  // Removing an isolated vertex reduces component count by one; it is not
  // an articulation point.
  const std::size_t base_without_v =
      graph.degree(removed) == 0 ? base_components - 1 : base_components;
  return components > base_without_v;
}

TEST(ArticulationPoints, PathGraphInteriorVertices) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  const auto graph = make_graph(4, edges);
  const auto points = articulation_points(graph);
  EXPECT_EQ(points, (std::vector<std::size_t>{1, 2}));
}

TEST(ArticulationPoints, CycleHasNone) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const auto graph = make_graph(4, edges);
  EXPECT_TRUE(articulation_points(graph).empty());
}

TEST(ArticulationPoints, StarCenter) {
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}};
  const auto graph = make_graph(4, edges);
  EXPECT_EQ(articulation_points(graph), (std::vector<std::size_t>{0}));
}

TEST(ArticulationPoints, TwoTrianglesSharingAVertex) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}};
  const auto graph = make_graph(5, edges);
  EXPECT_EQ(articulation_points(graph), (std::vector<std::size_t>{2}));
}

TEST(ArticulationPoints, DisconnectedGraphHandledPerComponent) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  const auto graph = make_graph(5, edges);
  EXPECT_EQ(articulation_points(graph), (std::vector<std::size_t>{1}));
}

TEST(ArticulationPoints, MatchesNaiveOnRandomGeometricGraphs) {
  Rng rng(1);
  const Box2 box(50.0);
  for (int trial = 0; trial < 15; ++trial) {
    const auto points = uniform_deployment(25, box, rng);
    const double radius = rng.uniform(8.0, 30.0);
    const AdjacencyGraph graph = build_communication_graph<2>(points, box, radius);
    const auto fast = articulation_points(graph);
    std::vector<std::size_t> naive;
    for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
      if (is_articulation_naive(graph, v)) naive.push_back(v);
    }
    EXPECT_EQ(fast, naive) << "trial " << trial << " radius " << radius;
  }
}

/// Brute-force bridge check: remove the edge, test reachability.
bool is_bridge_naive(std::size_t n, std::vector<Edge> edges, const Edge& removed) {
  std::vector<Edge> remaining;
  for (const Edge& e : edges) {
    if (e != removed && Edge{removed.second, removed.first} != e) remaining.push_back(e);
  }
  const AdjacencyGraph without(n, remaining);
  // Components increase iff the endpoints separate.
  const auto dist = bfs_distances(without, removed.first);
  return dist[removed.second] == std::numeric_limits<std::size_t>::max();
}

TEST(Bridges, MatchesNaiveOnRandomGeometricGraphs) {
  Rng rng(11);
  const Box2 box(50.0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto points = uniform_deployment(20, box, rng);
    const double radius = rng.uniform(10.0, 30.0);
    const AdjacencyGraph graph = build_communication_graph<2>(points, box, radius);

    // Rebuild the edge list from adjacency for the naive check.
    std::vector<Edge> edges;
    for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
      for (std::size_t w : graph.neighbors(v)) {
        if (v < w) edges.emplace_back(v, w);
      }
    }

    const auto fast = bridges(graph);
    std::vector<Edge> naive;
    for (const Edge& e : edges) {
      if (is_bridge_naive(graph.vertex_count(), edges, e)) naive.push_back(e);
    }
    std::sort(naive.begin(), naive.end());
    EXPECT_EQ(fast, naive) << "trial " << trial;
  }
}

TEST(Bridges, PathGraphAllEdges) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  const auto graph = make_graph(4, edges);
  const auto result = bridges(graph);
  EXPECT_EQ(result, (std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}}));
}

TEST(Bridges, CycleHasNone) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  const auto graph = make_graph(3, edges);
  EXPECT_TRUE(bridges(graph).empty());
}

TEST(Bridges, MixedGraph) {
  // Triangle {0,1,2} with a pendant chain 2-3-4: bridges are 2-3 and 3-4.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}};
  const auto graph = make_graph(5, edges);
  EXPECT_EQ(bridges(graph), (std::vector<Edge>{{2, 3}, {3, 4}}));
}

TEST(SurvivesAnySingleFailure, Cases) {
  // Cycle: biconnected.
  EXPECT_TRUE(survives_any_single_failure(
      make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}})));
  // Path: interior vertex is critical.
  EXPECT_FALSE(survives_any_single_failure(make_graph(3, {{0, 1}, {1, 2}})));
  // Disconnected: fails immediately.
  EXPECT_FALSE(survives_any_single_failure(make_graph(3, {{0, 1}})));
  // Tiny graphs.
  EXPECT_TRUE(survives_any_single_failure(make_graph(1, {})));
  EXPECT_TRUE(survives_any_single_failure(make_graph(2, {{0, 1}})));
  EXPECT_FALSE(survives_any_single_failure(make_graph(2, {})));
}

TEST(InjectFailures, SurvivesRedundantTopology) {
  // Complete graph on 5 vertices: any 3 removals leave a connected pair.
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) edges.emplace_back(i, j);
  }
  const auto graph = make_graph(5, edges);
  const FailureReport report = inject_failures(graph, {0, 1, 2});
  EXPECT_EQ(report.failures_injected, 3u);
  EXPECT_EQ(report.failures_survived, 3u);
  EXPECT_DOUBLE_EQ(report.final_largest_fraction, 1.0);
}

TEST(InjectFailures, DetectsFirstDisconnection) {
  // Path 0-1-2-3-4: removing 2 splits the survivors.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const auto graph = make_graph(5, edges);
  const FailureReport report = inject_failures(graph, {2});
  EXPECT_EQ(report.failures_survived, 0u);  // the very first removal broke it
  EXPECT_DOUBLE_EQ(report.final_largest_fraction, 0.5);
}

TEST(InjectFailures, EndpointRemovalIsHarmless) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const auto graph = make_graph(5, edges);
  const FailureReport report = inject_failures(graph, {0, 4});
  EXPECT_EQ(report.failures_survived, 2u);
  EXPECT_DOUBLE_EQ(report.final_largest_fraction, 1.0);
}

TEST(InjectFailures, ValidatesInput) {
  const auto graph = make_graph(3, {{0, 1}});
  EXPECT_THROW(inject_failures(graph, {3}), ContractViolation);
  EXPECT_THROW(inject_failures(graph, {0, 0}), ContractViolation);
}

TEST(InjectFailures, DenseNetworksSurviveMoreRandomFailures) {
  Rng rng(2);
  const Box2 box(60.0);
  const auto points = uniform_deployment(40, box, rng);
  const double rc = critical_range<2>(points);

  // At 1.5x the critical range the graph has slack; at exactly rc the
  // bottleneck edge makes it fragile.
  const AdjacencyGraph dense = build_communication_graph<2>(points, box, rc * 1.5);
  const AdjacencyGraph tight = build_communication_graph<2>(points, box, rc);

  double dense_survived = 0.0;
  double tight_survived = 0.0;
  const int rounds = 30;
  for (int round = 0; round < rounds; ++round) {
    // Random failure order of 10 distinct nodes.
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    order.resize(10);
    dense_survived += static_cast<double>(inject_failures(dense, order).failures_survived);
    tight_survived += static_cast<double>(inject_failures(tight, order).failures_survived);
  }
  EXPECT_GE(dense_survived, tight_survived);
}

}  // namespace
}  // namespace manet
