#include "sim/outage.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/mobile_trace.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

// Timeline shorthand: connected at range 1.0 iff entry <= 1.0; use 0.5 for
// "up" and 2.0 for "down".
constexpr double kUp = 0.5;
constexpr double kDown = 2.0;

TEST(AnalyzeOutages, AllConnected) {
  const std::vector<double> timeline = {kUp, kUp, kUp, kUp};
  const OutageStats stats = analyze_outages(timeline, 1.0);
  EXPECT_EQ(stats.steps, 4u);
  EXPECT_EQ(stats.connected_steps, 4u);
  EXPECT_EQ(stats.outage_count, 0u);
  EXPECT_EQ(stats.longest_outage, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_outage_length, 0.0);
  EXPECT_EQ(stats.longest_uptime, 4u);
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);
}

TEST(AnalyzeOutages, AllDisconnected) {
  const std::vector<double> timeline = {kDown, kDown, kDown};
  const OutageStats stats = analyze_outages(timeline, 1.0);
  EXPECT_EQ(stats.connected_steps, 0u);
  EXPECT_EQ(stats.outage_count, 1u);
  EXPECT_EQ(stats.longest_outage, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_outage_length, 3.0);
  EXPECT_EQ(stats.longest_uptime, 0u);
  EXPECT_DOUBLE_EQ(stats.availability, 0.0);
}

TEST(AnalyzeOutages, CountsMaximalRuns) {
  // down down up down up up down : 3 outages of lengths 2, 1, 1.
  const std::vector<double> timeline = {kDown, kDown, kUp, kDown, kUp, kUp, kDown};
  const OutageStats stats = analyze_outages(timeline, 1.0);
  EXPECT_EQ(stats.outage_count, 3u);
  EXPECT_EQ(stats.longest_outage, 2u);
  EXPECT_NEAR(stats.mean_outage_length, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.longest_uptime, 2u);
  EXPECT_NEAR(stats.availability, 3.0 / 7.0, 1e-12);
  // Outage starts at t = 0, 3, 6 -> mean spacing (6 - 0) / 2 = 3.
  ASSERT_TRUE(stats.mean_steps_between_outages.has_value());
  EXPECT_DOUBLE_EQ(*stats.mean_steps_between_outages, 3.0);
}

TEST(AnalyzeOutages, SingleOutageHasNoSpacing) {
  // One outage has no between-outage interval: the field must be empty, not
  // a 0.0 that reads like "outages start back to back".
  const std::vector<double> timeline = {kUp, kDown, kUp};
  const OutageStats stats = analyze_outages(timeline, 1.0);
  EXPECT_EQ(stats.outage_count, 1u);
  EXPECT_FALSE(stats.mean_steps_between_outages.has_value());
}

TEST(AnalyzeOutages, NoOutageHasNoSpacing) {
  const std::vector<double> timeline = {kUp, kUp};
  const OutageStats stats = analyze_outages(timeline, 1.0);
  EXPECT_EQ(stats.outage_count, 0u);
  EXPECT_FALSE(stats.mean_steps_between_outages.has_value());
}

TEST(AnalyzeOutages, BackToBackOutagesHaveSpacingDistinctFromSingle) {
  // down up down: starts at t = 0 and t = 2 -> spacing 2.0. Before the
  // optional, a *single* outage also reported 0.0 here; now only a real
  // measured interval carries a value.
  const std::vector<double> timeline = {kDown, kUp, kDown};
  const OutageStats stats = analyze_outages(timeline, 1.0);
  EXPECT_EQ(stats.outage_count, 2u);
  ASSERT_TRUE(stats.mean_steps_between_outages.has_value());
  EXPECT_DOUBLE_EQ(*stats.mean_steps_between_outages, 2.0);
}

TEST(AnalyzeOutages, BoundaryExactlyAtRangeIsConnected) {
  const std::vector<double> timeline = {1.0};
  const OutageStats stats = analyze_outages(timeline, 1.0);
  EXPECT_EQ(stats.connected_steps, 1u);
}

TEST(AnalyzeOutages, ValidatesInput) {
  const std::vector<double> empty;
  EXPECT_THROW(analyze_outages(empty, 1.0), ContractViolation);
  const std::vector<double> one = {kUp};
  EXPECT_THROW(analyze_outages(one, -0.1), ContractViolation);
}

TEST(AnalyzeOutages, AvailabilityMatchesTraceFraction) {
  Rng rng(1);
  const Box2 box(128.0);
  auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(128.0), box);
  const auto trace = run_mobile_trace<2>(12, box, 200, *model, rng);

  for (double f : {0.1, 0.5, 0.9}) {
    const double r = trace.range_for_time_fraction(f);
    const OutageStats stats = analyze_outages(trace.critical_radius_timeline(), r);
    EXPECT_NEAR(stats.availability, trace.fraction_of_time_connected(r), 1e-12);
    EXPECT_GE(stats.availability, f - 1e-12);
  }
}

TEST(AnalyzeOutages, TimelinePreservesSimulationOrder) {
  Rng rng(2);
  const Box2 box(128.0);
  auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(128.0), box);
  const auto trace = run_mobile_trace<2>(12, box, 50, *model, rng);
  const auto timeline = trace.critical_radius_timeline();
  const auto sorted = trace.sorted_critical_radii();
  ASSERT_EQ(timeline.size(), sorted.size());
  // Same multiset, different order (unless coincidentally sorted).
  std::vector<double> copy(timeline.begin(), timeline.end());
  std::sort(copy.begin(), copy.end());
  for (std::size_t i = 0; i < copy.size(); ++i) EXPECT_EQ(copy[i], sorted[i]);
}

TEST(AnalyzeOutages, LargerRangeNeverLowersAvailabilityOrWorsensOutages) {
  Rng rng(3);
  const Box2 box(128.0);
  auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(128.0), box);
  const auto trace = run_mobile_trace<2>(12, box, 200, *model, rng);

  const double r_small = trace.range_for_time_fraction(0.3);
  const double r_large = trace.range_for_time_fraction(0.8);
  const OutageStats small = analyze_outages(trace.critical_radius_timeline(), r_small);
  const OutageStats large = analyze_outages(trace.critical_radius_timeline(), r_large);
  EXPECT_GE(large.availability, small.availability);
  EXPECT_LE(large.longest_outage, small.longest_outage);
}

}  // namespace
}  // namespace manet
