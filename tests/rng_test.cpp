#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace manet {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values from the published SplitMix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(sm(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(sm(), 0x06C45D188009454Full);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(Xoshiro256StarStar, IsDeterministicForFixedSeed) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256StarStar, RejectsAllZeroState) {
  const std::array<std::uint64_t, 4> zeros = {0, 0, 0, 0};
  EXPECT_THROW(Xoshiro256StarStar{zeros}, ContractViolation);
}

TEST(Xoshiro256StarStar, JumpDecorrelatesStreams) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformRangeDegenerateIntervalReturnsEndpoint) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(2.5, 2.5), 2.5);
}

TEST(Rng, UniformRangeRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexOfOneIsAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, UniformIndexIsApproximatelyUniform) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
  }
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(10);
  EXPECT_THROW(rng.bernoulli(-0.1), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.1), ContractViolation);
}

TEST(Rng, NormalIsDeterministicAndRoughlyStandard) {
  Rng a(42);
  Rng b(42);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double x = a.normal();
    EXPECT_DOUBLE_EQ(x, b.normal());  // pure function of the stream
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.variance(), 1.0, 0.05);
}

TEST(Rng, NormalWithMeanAndStddev) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.variance(), 4.0, 0.2);
  // Zero stddev collapses to the mean exactly (0 * z == 0 for finite z).
  Rng degenerate(8);
  EXPECT_DOUBLE_EQ(degenerate.normal(3.0, 0.0), 3.0);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(9);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng parent(11);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitIsReproducible) {
  Rng a(12);
  Rng b(12);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Substream, IsAPureFunctionOfSeedAndIndex) {
  // Unlike split(), substream() consumes no parent state: deriving trial 5
  // before trial 3 — or deriving trial 3 twice — always yields the same
  // stream. This is what lets worker threads derive their trials in any
  // scheduling order and still match the serial run bit-for-bit.
  Rng late_first = substream(1234, 5);
  Rng early_second = substream(1234, 3);
  Rng early_first = substream(1234, 3);
  Rng late_second = substream(1234, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(early_first.next_u64(), early_second.next_u64());
    EXPECT_EQ(late_first.next_u64(), late_second.next_u64());
  }
}

TEST(Substream, SeedIsStableAcrossCalls) {
  EXPECT_EQ(substream_seed(42, 17), substream_seed(42, 17));
  EXPECT_NE(substream_seed(42, 17), substream_seed(42, 18));
  EXPECT_NE(substream_seed(42, 17), substream_seed(43, 17));
}

TEST(Substream, TrialStreamsArePairwiseDistinct) {
  // Streams for trials {0..63} under one root seed must be pairwise distinct
  // (no seed collision, no lockstep prefix).
  constexpr std::size_t kTrials = 64;
  constexpr int kPrefix = 16;
  std::vector<std::array<std::uint64_t, kPrefix>> prefixes(kTrials);
  std::set<std::uint64_t> seeds;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    seeds.insert(substream_seed(777, trial));
    Rng rng = substream(777, trial);
    for (int i = 0; i < kPrefix; ++i) prefixes[trial][i] = rng.next_u64();
  }
  EXPECT_EQ(seeds.size(), kTrials) << "substream seed collision";
  for (std::size_t a = 0; a < kTrials; ++a) {
    for (std::size_t b = a + 1; b < kTrials; ++b) {
      EXPECT_NE(prefixes[a], prefixes[b]) << "trials " << a << " and " << b;
    }
  }
}

TEST(Substream, StreamsAreDecorrelatedFromRootAndEachOther) {
  // Neighboring trial indices must not produce correlated draws: across a
  // long window, matching outputs at the same position should be absent.
  Rng root(2024);
  Rng trial0 = substream(2024, 0);
  Rng trial1 = substream(2024, 1);
  int equal_root = 0;
  int equal_neighbor = 0;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t a = trial0.next_u64();
    const std::uint64_t b = trial1.next_u64();
    if (a == root.next_u64()) ++equal_root;
    if (a == b) ++equal_neighbor;
  }
  EXPECT_LE(equal_root, 1);
  EXPECT_LE(equal_neighbor, 1);
}

}  // namespace
}  // namespace manet
