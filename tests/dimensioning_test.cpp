#include "core/dimensioning.hpp"

#include <gtest/gtest.h>

#include "geometry/box.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

TEST(DimensioningOptions, Validation) {
  DimensioningOptions options;
  EXPECT_NO_THROW(options.validate());

  options.trials = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  options = DimensioningOptions{};

  options.max_nodes = 1;
  EXPECT_THROW(options.validate(), ConfigError);
  options = DimensioningOptions{};

  options.target_probability = 0.0;
  EXPECT_THROW(options.validate(), ConfigError);
  options.target_probability = 1.2;
  EXPECT_THROW(options.validate(), ConfigError);
}

TEST(MinimumNodeCount, FoundCountMeetsTheTarget) {
  Rng rng(1);
  const Box2 box(100.0);
  DimensioningOptions options;
  options.trials = 150;
  options.target_probability = 0.9;
  const double range = 30.0;

  const DimensioningResult result = minimum_node_count<2>(range, box, options, rng);
  EXPECT_GT(result.node_count, 2u);
  EXPECT_GE(result.achieved_probability, 0.9);

  // Verification with fresh randomness: the found n connects ~90%.
  Rng check(2);
  const auto sample =
      sample_stationary_critical_ranges<2>(result.node_count, box, 300, check);
  EXPECT_GT(sample.probability_connected(range), 0.8);
}

TEST(MinimumNodeCount, FewerNodesMissTheTarget) {
  Rng rng(3);
  const Box2 box(100.0);
  DimensioningOptions options;
  options.trials = 200;
  options.target_probability = 0.9;
  const double range = 30.0;
  const DimensioningResult result = minimum_node_count<2>(range, box, options, rng);

  if (result.node_count > 2) {
    Rng check(4);
    const auto sample = sample_stationary_critical_ranges<2>(
        result.node_count / 2, box, 300, check);
    EXPECT_LT(sample.probability_connected(range), 0.9);
  }
}

TEST(MinimumNodeCount, LargerRangeNeedsFewerNodes) {
  Rng rng(5);
  const Box2 box(100.0);
  DimensioningOptions options;
  options.trials = 150;
  options.target_probability = 0.9;

  const auto with_short = minimum_node_count<2>(25.0, box, options, rng);
  const auto with_long = minimum_node_count<2>(60.0, box, options, rng);
  EXPECT_LT(with_long.node_count, with_short.node_count);
}

TEST(MinimumNodeCount, HugeRangeNeedsTwoNodes) {
  Rng rng(6);
  const Box2 box(10.0);
  DimensioningOptions options;
  options.trials = 50;
  // Any two nodes within the diagonal are connected.
  const auto result = minimum_node_count<2>(15.0, box, options, rng);
  EXPECT_EQ(result.node_count, 2u);
  EXPECT_DOUBLE_EQ(result.achieved_probability, 1.0);
}

TEST(MinimumNodeCount, ThrowsWhenTargetUnreachable) {
  Rng rng(7);
  const Box2 box(1000.0);
  DimensioningOptions options;
  options.trials = 30;
  options.max_nodes = 64;  // far too few for this tiny range
  EXPECT_THROW(minimum_node_count<2>(5.0, box, options, rng), ConfigError);
}

TEST(MinimumNodeCount, RejectsNonPositiveRange) {
  Rng rng(8);
  const Box2 box(10.0);
  EXPECT_THROW(minimum_node_count<2>(0.0, box, DimensioningOptions{}, rng),
               ContractViolation);
}

TEST(MinimumNodeCount, EvaluationCountStaysLogarithmic) {
  Rng rng(9);
  const Box2 box(100.0);
  DimensioningOptions options;
  options.trials = 100;
  options.target_probability = 0.9;
  const auto result = minimum_node_count<2>(30.0, box, options, rng);
  // Exponential bracket + bisection: well under 40 probes even for large n.
  EXPECT_LE(result.evaluations, 40u);
}

TEST(MinimumNodeCount, WorksIn1D) {
  Rng rng(10);
  const Box1 line(100.0);
  DimensioningOptions options;
  options.trials = 150;
  options.target_probability = 0.9;
  const auto result = minimum_node_count<1>(10.0, line, options, rng);
  EXPECT_GT(result.node_count, 5u);  // 100/10 = 10 gaps to cover, need margin
  EXPECT_GE(result.achieved_probability, 0.9);
}

}  // namespace
}  // namespace manet
