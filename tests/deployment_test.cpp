#include "sim/deployment.hpp"

#include <gtest/gtest.h>

#include "geometry/box.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace manet {
namespace {

TEST(UniformDeployment, ProducesRequestedCount) {
  Rng rng(1);
  const Box2 box(10.0);
  EXPECT_EQ(uniform_deployment(0, box, rng).size(), 0u);
  EXPECT_EQ(uniform_deployment(1, box, rng).size(), 1u);
  EXPECT_EQ(uniform_deployment(137, box, rng).size(), 137u);
}

TEST(UniformDeployment, AllPointsInsideRegion) {
  Rng rng(2);
  const Box3 box(7.0);
  const auto points = uniform_deployment(500, box, rng);
  for (const auto& p : points) ASSERT_TRUE(box.contains(p));
}

TEST(UniformDeployment, CoordinatesAreUniform) {
  Rng rng(3);
  const Box2 box(10.0);
  RunningStats xs;
  RunningStats ys;
  for (int round = 0; round < 40; ++round) {
    const auto points = uniform_deployment(500, box, rng);
    for (const auto& p : points) {
      xs.add(p[0]);
      ys.add(p[1]);
    }
  }
  EXPECT_NEAR(xs.mean(), 5.0, 0.1);
  EXPECT_NEAR(ys.mean(), 5.0, 0.1);
  EXPECT_NEAR(xs.variance(), 100.0 / 12.0, 0.2);
  EXPECT_NEAR(ys.variance(), 100.0 / 12.0, 0.2);
}

TEST(UniformDeployment, IsDeterministicPerSeed) {
  const Box2 box(10.0);
  Rng a(42);
  Rng b(42);
  const auto pa = uniform_deployment(50, box, a);
  const auto pb = uniform_deployment(50, box, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(UniformDeployment, QuadrantsAreBalanced) {
  Rng rng(4);
  const Box2 box(2.0);
  int quadrant_counts[4] = {0, 0, 0, 0};
  const int n = 40000;
  const auto points = uniform_deployment(n, box, rng);
  for (const auto& p : points) {
    const int q = (p[0] >= 1.0 ? 1 : 0) + (p[1] >= 1.0 ? 2 : 0);
    ++quadrant_counts[q];
  }
  for (int c : quadrant_counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.01);
  }
}

}  // namespace
}  // namespace manet
