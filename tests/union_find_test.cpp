#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

TEST(UnionFind, InitialStateIsAllSingletons) {
  UnionFind dsu(5);
  EXPECT_EQ(dsu.size(), 5u);
  EXPECT_EQ(dsu.component_count(), 5u);
  EXPECT_EQ(dsu.largest_component_size(), 1u);
  EXPECT_FALSE(dsu.all_connected());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dsu.find(i), i);
    EXPECT_EQ(dsu.component_size(i), 1u);
  }
}

TEST(UnionFind, EmptyAndSingleton) {
  UnionFind empty(0);
  EXPECT_EQ(empty.component_count(), 0u);
  EXPECT_EQ(empty.largest_component_size(), 0u);
  EXPECT_TRUE(empty.all_connected());

  UnionFind one(1);
  EXPECT_EQ(one.component_count(), 1u);
  EXPECT_EQ(one.largest_component_size(), 1u);
  EXPECT_TRUE(one.all_connected());
}

TEST(UnionFind, UniteMergesAndReportsNovelty) {
  UnionFind dsu(4);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));  // already merged
  EXPECT_TRUE(dsu.connected(0, 1));
  EXPECT_FALSE(dsu.connected(0, 2));
  EXPECT_EQ(dsu.component_count(), 3u);
  EXPECT_EQ(dsu.largest_component_size(), 2u);
}

TEST(UnionFind, ChainUnionsConnectEverything) {
  UnionFind dsu(10);
  for (std::size_t i = 0; i + 1 < 10; ++i) EXPECT_TRUE(dsu.unite(i, i + 1));
  EXPECT_TRUE(dsu.all_connected());
  EXPECT_EQ(dsu.component_count(), 1u);
  EXPECT_EQ(dsu.largest_component_size(), 10u);
  EXPECT_EQ(dsu.component_size(7), 10u);
}

TEST(UnionFind, LargestComponentTracksAcrossMerges) {
  UnionFind dsu(8);
  dsu.unite(0, 1);
  dsu.unite(2, 3);
  dsu.unite(4, 5);
  EXPECT_EQ(dsu.largest_component_size(), 2u);
  dsu.unite(0, 2);  // size-4 component
  EXPECT_EQ(dsu.largest_component_size(), 4u);
  dsu.unite(6, 7);
  EXPECT_EQ(dsu.largest_component_size(), 4u);  // unchanged
  dsu.unite(4, 6);  // two size-4? no: {4,5,6,7} is size 4
  EXPECT_EQ(dsu.largest_component_size(), 4u);
  dsu.unite(0, 4);
  EXPECT_EQ(dsu.largest_component_size(), 8u);
  EXPECT_TRUE(dsu.all_connected());
}

TEST(UnionFind, ResetRestoresSingletons) {
  UnionFind dsu(4);
  dsu.unite(0, 1);
  dsu.unite(2, 3);
  dsu.reset(6);
  EXPECT_EQ(dsu.size(), 6u);
  EXPECT_EQ(dsu.component_count(), 6u);
  EXPECT_EQ(dsu.largest_component_size(), 1u);
  EXPECT_FALSE(dsu.connected(0, 1));
}

TEST(UnionFind, FindOutOfRangeThrows) {
  UnionFind dsu(3);
  EXPECT_THROW(dsu.find(3), ContractViolation);
}

TEST(UnionFind, RandomizedComponentCountMatchesNaive) {
  Rng rng(1);
  const std::size_t n = 200;
  UnionFind dsu(n);

  // Naive labeling baseline.
  std::vector<std::size_t> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = i;

  for (int ops = 0; ops < 300; ++ops) {
    const std::size_t a = rng.uniform_index(n);
    const std::size_t b = rng.uniform_index(n);
    if (a == b) continue;
    dsu.unite(a, b);
    const std::size_t from = label[a];
    const std::size_t to = label[b];
    if (from != to) {
      for (std::size_t i = 0; i < n; ++i) {
        if (label[i] == from) label[i] = to;
      }
    }
  }

  // Compare component structure.
  std::vector<std::size_t> count_by_label(n, 0);
  for (std::size_t i = 0; i < n; ++i) ++count_by_label[label[i]];
  std::size_t naive_components = 0;
  std::size_t naive_largest = 0;
  for (std::size_t c : count_by_label) {
    if (c > 0) {
      ++naive_components;
      naive_largest = std::max(naive_largest, c);
    }
  }
  EXPECT_EQ(dsu.component_count(), naive_components);
  EXPECT_EQ(dsu.largest_component_size(), naive_largest);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(dsu.connected(i, j), label[i] == label[j]);
    }
  }
}

}  // namespace
}  // namespace manet
