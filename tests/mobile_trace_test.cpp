#include "sim/mobile_trace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

/// Builds a trace whose step s is a 1-D placement with a known critical
/// radius: nodes at {0, gap[s]} so rc(s) = gap[s].
MobileConnectivityTrace trace_with_critical_radii(const std::vector<double>& gaps) {
  std::vector<LargestComponentCurve> curves;
  for (double gap : gaps) {
    const std::vector<Point1> points = {{{0.0}}, {{gap}}};
    curves.push_back(largest_component_curve<1>(points));
  }
  return MobileConnectivityTrace(2, std::move(curves));
}

TEST(MobileConnectivityTrace, RejectsEmptyAndMismatchedCurves) {
  EXPECT_THROW(MobileConnectivityTrace(2, {}), ContractViolation);

  std::vector<LargestComponentCurve> wrong_n;
  const std::vector<Point1> three = {{{0.0}}, {{1.0}}, {{2.0}}};
  wrong_n.push_back(largest_component_curve<1>(three));
  EXPECT_THROW(MobileConnectivityTrace(2, std::move(wrong_n)), ContractViolation);
}

TEST(MobileConnectivityTrace, FractionOfTimeConnected) {
  const auto trace = trace_with_critical_radii({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_connected(0.5), 0.0);
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_connected(1.0), 0.25);
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_connected(2.5), 0.5);
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_connected(4.0), 1.0);
}

TEST(MobileConnectivityTrace, RangeForTimeFractionIsOrderStatistic) {
  const auto trace = trace_with_critical_radii({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(trace.range_for_time_fraction(1.0), 4.0);    // r100
  EXPECT_DOUBLE_EQ(trace.range_for_time_fraction(0.75), 3.0);
  EXPECT_DOUBLE_EQ(trace.range_for_time_fraction(0.5), 2.0);
  EXPECT_DOUBLE_EQ(trace.range_for_time_fraction(0.25), 1.0);
  EXPECT_DOUBLE_EQ(trace.range_for_time_fraction(0.1), 1.0);    // rounds up
  EXPECT_THROW(trace.range_for_time_fraction(0.0), ContractViolation);
  EXPECT_THROW(trace.range_for_time_fraction(1.5), ContractViolation);
}

TEST(MobileConnectivityTrace, RangeForTimeFractionSatisfiesItsPromise) {
  const auto trace = trace_with_critical_radii({5.0, 1.0, 3.0, 2.0, 4.0});
  for (double f : {0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
    EXPECT_GE(trace.fraction_of_time_connected(trace.range_for_time_fraction(f)), f - 1e-12);
  }
}

TEST(MobileConnectivityTrace, LargestNeverConnectedRange) {
  const auto trace = trace_with_critical_radii({3.0, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(trace.largest_never_connected_range(), 1.5);
  // Just below r0: nothing connected; at r0 the first step connects.
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_connected(1.5 * (1 - 1e-12)), 0.0);
  EXPECT_GT(trace.fraction_of_time_connected(1.5), 0.0);
}

TEST(MobileConnectivityTrace, MeanCriticalRange) {
  const auto trace = trace_with_critical_radii({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.mean_critical_range(), 2.0);
}

TEST(MobileConnectivityTrace, MeanLargestFractionSteps) {
  // Two steps over 2 nodes with rc 1.0 and 3.0:
  //  r < 1   : both steps have LCC 1 -> mean fraction 0.5
  //  1<=r<3  : LCC 2 and 1          -> mean fraction 0.75
  //  r >= 3  : both 2               -> 1.0
  const auto trace = trace_with_critical_radii({1.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.mean_largest_fraction_at(0.5), 0.5);
  EXPECT_DOUBLE_EQ(trace.mean_largest_fraction_at(1.0), 0.75);
  EXPECT_DOUBLE_EQ(trace.mean_largest_fraction_at(2.9), 0.75);
  EXPECT_DOUBLE_EQ(trace.mean_largest_fraction_at(3.0), 1.0);
}

TEST(MobileConnectivityTrace, RangeForMeanComponentFraction) {
  const auto trace = trace_with_critical_radii({1.0, 3.0});
  // mean fraction: 0.5 below 1, 0.75 in [1,3), 1.0 at 3.
  EXPECT_DOUBLE_EQ(trace.range_for_mean_component_fraction(0.5), 0.0);
  EXPECT_DOUBLE_EQ(trace.range_for_mean_component_fraction(0.6), 1.0);
  EXPECT_DOUBLE_EQ(trace.range_for_mean_component_fraction(0.75), 1.0);
  EXPECT_DOUBLE_EQ(trace.range_for_mean_component_fraction(0.9), 3.0);
  EXPECT_DOUBLE_EQ(trace.range_for_mean_component_fraction(1.0), 3.0);
}

TEST(MobileConnectivityTrace, MeanComponentFractionPromiseHolds) {
  Rng rng(1);
  const Box2 box(64.0);
  auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(64.0), box);
  const auto trace = run_mobile_trace<2>(12, box, 50, *model, rng);
  for (double phi : {0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double r = trace.range_for_mean_component_fraction(phi);
    EXPECT_GE(trace.mean_largest_fraction_at(r), phi - 1e-12);
    if (r > 0.0) {
      EXPECT_LT(trace.mean_largest_fraction_at(r * (1.0 - 1e-9)), phi);
    }
  }
}

TEST(MobileConnectivityTrace, MeanLargestFractionWhenDisconnected) {
  // At r in [1,3) only the rc=3 step is disconnected, with LCC fraction 0.5.
  const auto trace = trace_with_critical_radii({1.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.mean_largest_fraction_when_disconnected(1.0), 0.5);
  // At r >= 3 everything is connected -> convention 1.0.
  EXPECT_DOUBLE_EQ(trace.mean_largest_fraction_when_disconnected(3.0), 1.0);
  // Below both rc, both steps disconnected with fraction 0.5.
  EXPECT_DOUBLE_EQ(trace.mean_largest_fraction_when_disconnected(0.5), 0.5);
}

TEST(MobileConnectivityTrace, MinLargestFraction) {
  const auto trace = trace_with_critical_radii({1.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.min_largest_fraction_at(0.5), 0.5);
  EXPECT_DOUBLE_EQ(trace.min_largest_fraction_at(1.5), 0.5);
  EXPECT_DOUBLE_EQ(trace.min_largest_fraction_at(3.0), 1.0);
}

TEST(MobileConnectivityTrace, FractionOfTimeComponentAtLeast) {
  const auto trace = trace_with_critical_radii({1.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_component_at_least(0.5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_component_at_least(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_component_at_least(1.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_component_at_least(3.0, 1.0), 1.0);
  EXPECT_THROW(trace.fraction_of_time_component_at_least(1.0, 0.0), ContractViolation);
}

TEST(RunMobileTrace, ProducesOneCurvePerStep) {
  Rng rng(2);
  const Box2 box(32.0);
  auto model = make_mobility_model<2>(MobilityConfig::paper_waypoint(32.0), box);
  const auto trace = run_mobile_trace<2>(8, box, 25, *model, rng);
  EXPECT_EQ(trace.steps(), 25u);
  EXPECT_EQ(trace.node_count(), 8u);
  EXPECT_EQ(trace.sorted_critical_radii().size(), 25u);
}

TEST(RunMobileTrace, SingleStepEqualsStationaryCase) {
  Rng rng(3);
  const Box2 box(32.0);
  StationaryModel<2> model;
  const auto trace = run_mobile_trace<2>(10, box, 1, model, rng);
  EXPECT_EQ(trace.steps(), 1u);
  // With one step, every range question collapses to that placement.
  EXPECT_DOUBLE_EQ(trace.range_for_time_fraction(1.0),
                   trace.largest_never_connected_range());
}

TEST(RunMobileTrace, StationaryModelGivesConstantCriticalRadius) {
  Rng rng(4);
  const Box2 box(32.0);
  StationaryModel<2> model;
  const auto trace = run_mobile_trace<2>(10, box, 20, model, rng);
  const auto radii = trace.sorted_critical_radii();
  for (double r : radii) EXPECT_DOUBLE_EQ(r, radii.front());
}

TEST(RunMobileTrace, IsDeterministicPerSeed) {
  const Box2 box(64.0);
  const MobilityConfig config = MobilityConfig::paper_drunkard(64.0);
  Rng a(5);
  Rng b(5);
  auto model_a = make_mobility_model<2>(config, box);
  auto model_b = make_mobility_model<2>(config, box);
  const auto ta = run_mobile_trace<2>(10, box, 30, *model_a, a);
  const auto tb = run_mobile_trace<2>(10, box, 30, *model_b, b);
  ASSERT_EQ(ta.sorted_critical_radii().size(), tb.sorted_critical_radii().size());
  for (std::size_t i = 0; i < ta.sorted_critical_radii().size(); ++i) {
    EXPECT_EQ(ta.sorted_critical_radii()[i], tb.sorted_critical_radii()[i]);
  }
}

TEST(RunMobileTrace, RejectsZeroSteps) {
  Rng rng(6);
  const Box2 box(10.0);
  StationaryModel<2> model;
  EXPECT_THROW(run_mobile_trace<2>(5, box, 0, model, rng), ContractViolation);
}

}  // namespace
}  // namespace manet
