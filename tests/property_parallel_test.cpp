// Property tests of the parallel trial engine (support/parallel.hpp):
// randomized simulation configs across dimension / mobility model / preset
// scale must produce the exact serial fold at any thread count, arbitrary
// non-commutative reducers must see the serial evaluation order, and a
// throwing trial must surface the first-by-index exception without
// deadlocking or poisoning the pool.

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/stationary_sample.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

::testing::AssertionResult bit_identical(const std::vector<double>& a,
                                         const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "bit-level mismatch";
  }
  return ::testing::AssertionSuccess();
}

/// The serial reference: the exact loop parallel_for_trials promises to
/// reproduce, written out longhand.
template <typename Fn>
auto serial_reference(std::size_t trials, std::uint64_t seed, Fn&& fn) {
  std::vector<decltype(fn(std::size_t{0}, std::declval<Rng&>()))> results;
  results.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng = substream(seed, trial);
    results.push_back(fn(trial, rng));
  }
  return results;
}

MobilityConfig random_mobility(Rng& rng, double side) {
  switch (rng.uniform_index(3)) {
    case 0:
      return MobilityConfig::paper_waypoint(side);
    case 1:
      return MobilityConfig::paper_drunkard(side);
    default:
      return MobilityConfig::stationary();
  }
}

template <int D>
std::vector<double> randomized_mtrm_values(Rng& config_rng, std::uint64_t run_seed,
                                           std::size_t threads) {
  MtrmConfig config;
  config.node_count = 8 + config_rng.uniform_index(12);
  config.side = config_rng.uniform(64.0, 512.0);
  // Randomize the sample counts across the preset ladder's range.
  const ScaleParams scale = scale_for(Preset::kQuick);
  config.iterations = 2 + config_rng.uniform_index(scale.iterations);
  config.steps = 10 + config_rng.uniform_index(40);
  config.mobility = random_mobility(config_rng, config.side);

  ParallelOptions options;
  options.threads = threads;
  const std::uint64_t root = run_seed;
  const auto outcomes = parallel_for_trials(
      config.iterations, root,
      [&config](std::size_t, Rng& rng) {
        const Box<D> region(config.side);
        const auto model = make_mobility_model<D>(config.mobility, region);
        const auto trace =
            run_mobile_trace<D>(config.node_count, region, config.steps, *model, rng);
        return trace.mean_critical_range();
      },
      options);
  return outcomes;
}

TEST(ParallelProperty, RandomizedConfigsMatchSerialFoldInEveryDimension) {
  Rng meta(20020623);
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t run_seed = meta.next_u64();
    // The same config must be drawn for both runs: clone the config stream.
    const std::uint64_t config_seed = meta.next_u64();
    for (std::size_t threads : {4ul, 8ul}) {
      {
        Rng serial_cfg(config_seed);
        Rng parallel_cfg(config_seed);
        EXPECT_TRUE(bit_identical(randomized_mtrm_values<1>(serial_cfg, run_seed, 1),
                                  randomized_mtrm_values<1>(parallel_cfg, run_seed, threads)))
            << "D=1 round " << round << " threads " << threads;
      }
      {
        Rng serial_cfg(config_seed);
        Rng parallel_cfg(config_seed);
        EXPECT_TRUE(bit_identical(randomized_mtrm_values<2>(serial_cfg, run_seed, 1),
                                  randomized_mtrm_values<2>(parallel_cfg, run_seed, threads)))
            << "D=2 round " << round << " threads " << threads;
      }
      {
        Rng serial_cfg(config_seed);
        Rng parallel_cfg(config_seed);
        EXPECT_TRUE(bit_identical(randomized_mtrm_values<3>(serial_cfg, run_seed, 1),
                                  randomized_mtrm_values<3>(parallel_cfg, run_seed, threads)))
            << "D=3 round " << round << " threads " << threads;
      }
    }
  }
}

TEST(ParallelProperty, MapMatchesSerialReferenceForRandomTrialCounts) {
  Rng meta(9157);
  for (int round = 0; round < 20; ++round) {
    const std::size_t trials = 1 + meta.uniform_index(200);
    const std::uint64_t seed = meta.next_u64();
    const auto fn = [](std::size_t trial, Rng& rng) {
      double acc = static_cast<double>(trial);
      const std::size_t draws = 1 + trial % 7;  // uneven per-trial work
      for (std::size_t d = 0; d < draws; ++d) acc += rng.uniform();
      return acc;
    };
    ParallelOptions options;
    options.threads = 2 + meta.uniform_index(14);
    EXPECT_TRUE(bit_identical(serial_reference(trials, seed, fn),
                              parallel_for_trials(trials, seed, fn, options)))
        << "round " << round << " trials " << trials << " threads " << options.threads;
  }
}

TEST(ParallelProperty, NonCommutativeReducersSeeSerialOrder) {
  // String concatenation: associative but non-commutative, so any reduction
  // reordering changes the value.
  const std::size_t trials = 64;
  const std::uint64_t seed = 31;
  const auto label_trial = [](std::size_t trial, Rng& rng) {
    return std::to_string(trial) + ":" + std::to_string(rng.next_u64() % 100) + ";";
  };
  const auto concat = [](std::string acc, std::string part) { return acc + part; };

  std::string serial;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng = substream(seed, t);
    serial = concat(serial, label_trial(t, rng));
  }
  for (std::size_t threads : {2ul, 8ul, 32ul}) {
    ParallelOptions options;
    options.threads = threads;
    EXPECT_EQ(serial, parallel_reduce_trials(trials, seed, label_trial, std::string(),
                                             concat, options));
  }

  // Floating-point accumulation: non-associative, so chunk-local partial
  // sums would diverge in the last bits; ordered reduction must not.
  const auto noisy = [](std::size_t trial, Rng& rng) {
    return (trial % 2 == 0 ? 1e16 : 1e-3) * rng.uniform();
  };
  const auto add = [](double acc, double value) { return acc + value; };
  double serial_sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng = substream(seed, t);
    serial_sum = add(serial_sum, noisy(t, rng));
  }
  for (std::size_t threads : {2ul, 8ul}) {
    ParallelOptions options;
    options.threads = threads;
    const double parallel_sum =
        parallel_reduce_trials(trials, seed, noisy, 0.0, add, options);
    EXPECT_EQ(std::memcmp(&serial_sum, &parallel_sum, sizeof(double)), 0);
  }
}

TEST(ParallelProperty, ThrowingTrialSurfacesFirstByIndexException) {
  const std::size_t trials = 120;
  const auto fn = [](std::size_t trial, Rng& rng) -> double {
    if (trial == 37 || trial == 53 || trial == 119) {
      throw std::runtime_error("trial " + std::to_string(trial) + " failed");
    }
    return rng.uniform();
  };
  for (std::size_t threads : {1ul, 2ul, 8ul, 32ul}) {
    ParallelOptions options;
    options.threads = threads;
    try {
      (void)parallel_for_trials(trials, 7, fn, options);
      FAIL() << "expected an exception at " << threads << " threads";
    } catch (const std::runtime_error& error) {
      // Always the exception the serial loop would have hit first.
      EXPECT_STREQ("trial 37 failed", error.what()) << threads << " threads";
    }
  }
}

TEST(ParallelProperty, PoolSurvivesThrowingBatches) {
  // A throwing batch must not deadlock the pool or corrupt later batches.
  ParallelOptions options;
  options.threads = 8;
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW((void)parallel_for_trials(
                     50, 11,
                     [](std::size_t trial, Rng&) -> int {
                       if (trial % 5 == 0) throw std::logic_error("boom");
                       return static_cast<int>(trial);
                     },
                     options),
                 std::logic_error);
    const auto healthy = parallel_for_trials(
        50, 11, [](std::size_t trial, Rng&) { return static_cast<int>(trial); }, options);
    ASSERT_EQ(healthy.size(), 50u);
    for (std::size_t t = 0; t < healthy.size(); ++t) {
      EXPECT_EQ(healthy[t], static_cast<int>(t));
    }
  }
}

TEST(ParallelProperty, ExceptionInNestedBatchPropagatesToOuterCaller) {
  // A nested fan-out (data points over iterations, as the figure benches
  // run) must propagate an inner exception through both levels.
  ParallelOptions options;
  options.threads = 4;
  EXPECT_THROW(
      (void)parallel_for_trials(
          6, 123,
          [&options](std::size_t point, Rng& rng) {
            const std::uint64_t inner_root = rng.next_u64();
            const auto inner = parallel_for_trials(
                8, inner_root,
                [point](std::size_t trial, Rng&) -> double {
                  if (point == 3 && trial == 5) throw std::runtime_error("inner");
                  return static_cast<double>(point * trial);
                },
                options);
            double sum = 0.0;
            for (double v : inner) sum += v;
            return sum;
          },
          options),
      std::runtime_error);
}

TEST(ParallelProperty, StationarySweepMatchesAcrossPresetScales) {
  // Randomized preset scale: the trial-count knob must never affect the
  // serial/parallel agreement.
  const Box2 box(256.0);
  for (Preset preset : {Preset::kQuick, Preset::kDefault}) {
    const std::size_t trials = scale_for(preset).stationary_trials;
    set_max_parallelism(1);
    Rng serial_rng(4096);
    const auto serial = sample_stationary_critical_ranges<2>(12, box, trials, serial_rng);
    set_max_parallelism(8);
    Rng parallel_rng(4096);
    const auto parallel = sample_stationary_critical_ranges<2>(12, box, trials, parallel_rng);
    set_max_parallelism(0);
    EXPECT_TRUE(bit_identical(
        std::vector<double>(serial.sorted_radii().begin(), serial.sorted_radii().end()),
        std::vector<double>(parallel.sorted_radii().begin(), parallel.sorted_radii().end())))
        << preset_name(preset);
  }
}

}  // namespace
}  // namespace manet
