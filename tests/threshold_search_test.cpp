#include "sim/threshold_search.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace manet {
namespace {

TEST(BisectMinRange, FindsKnownThreshold) {
  BisectionOptions options;
  options.lo = 0.0;
  options.hi = 100.0;
  options.tolerance = 1e-6;
  const auto result = bisect_min_range(options, [](double r) { return r >= 37.25; });
  EXPECT_NEAR(result.range, 37.25, 1e-5);
  EXPECT_GE(result.range, 37.25);  // returned range always satisfies
}

TEST(BisectMinRange, ThresholdAtLowerEnd) {
  BisectionOptions options;
  options.lo = 0.0;
  options.hi = 10.0;
  options.tolerance = 1e-6;
  const auto result = bisect_min_range(options, [](double r) { return r >= 0.0; });
  EXPECT_NEAR(result.range, 0.0, 1e-5);
}

TEST(BisectMinRange, ThresholdAtUpperEnd) {
  BisectionOptions options;
  options.lo = 0.0;
  options.hi = 10.0;
  options.tolerance = 1e-6;
  const auto result = bisect_min_range(options, [](double r) { return r >= 10.0; });
  EXPECT_NEAR(result.range, 10.0, 1e-5);
}

TEST(BisectMinRange, ThrowsWhenHiDoesNotSatisfy) {
  BisectionOptions options;
  options.lo = 0.0;
  options.hi = 1.0;
  EXPECT_THROW(bisect_min_range(options, [](double) { return false; }), ContractViolation);
}

TEST(BisectMinRange, RespectsMaxIterations) {
  BisectionOptions options;
  options.lo = 0.0;
  options.hi = 1.0;
  options.tolerance = 1e-15;  // unreachable with the iteration cap
  options.max_iterations = 5;
  const auto result = bisect_min_range(options, [](double r) { return r >= 0.5; });
  // 5 halvings of [0,1] -> interval width 1/32; the answer is within that.
  EXPECT_NEAR(result.range, 0.5, 1.0 / 32.0 + 1e-12);
  EXPECT_LE(result.evaluations, 6u);  // 1 for hi + 5 bisections
}

TEST(BisectMinRange, EvaluationCountIsLogarithmic) {
  BisectionOptions options;
  options.lo = 0.0;
  options.hi = 1024.0;
  options.tolerance = 1.0;
  const auto result = bisect_min_range(options, [](double r) { return r >= 700.0; });
  EXPECT_LE(result.evaluations, 12u);  // log2(1024) + hi check
  EXPECT_NEAR(result.range, 700.0, 1.0);
}

TEST(BisectMinRange, ValidatesOptions) {
  BisectionOptions bad;
  bad.lo = 1.0;
  bad.hi = 0.0;
  EXPECT_THROW(bisect_min_range(bad, [](double) { return true; }), ContractViolation);

  BisectionOptions zero_tol;
  zero_tol.lo = 0.0;
  zero_tol.hi = 1.0;
  zero_tol.tolerance = 0.0;
  EXPECT_THROW(bisect_min_range(zero_tol, [](double) { return true; }), ContractViolation);
}

}  // namespace
}  // namespace manet
