// Adversarial property tests for the kinetic EMST engine: degenerate motion
// patterns that stress the engine's bookkeeping rather than its throughput —
// a node parked exactly on a cell boundary, whole-population teleports, the
// dense-fallback handoff around kDenseCutoff — plus the crash-safety
// guarantee: a campaign killed mid-run and resumed THROUGH THE KINETIC PATH
// must still be bit-identical to an uninterrupted batch-engine run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "sim/deployment.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topology/emst_grid.hpp"
#include "topology/emst_kinetic.hpp"
#include "topology/mst.hpp"

namespace manet {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignRunner;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_trees_identical(std::span<const WeightedEdge> batch,
                            std::span<const WeightedEdge> kinetic, std::size_t step) {
  ASSERT_EQ(batch.size(), kinetic.size()) << "step " << step;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].u, kinetic[i].u) << "step " << step << " edge " << i;
    EXPECT_EQ(batch[i].v, kinetic[i].v) << "step " << step << " edge " << i;
    EXPECT_TRUE(bits_equal(batch[i].weight, kinetic[i].weight))
        << "step " << step << " edge " << i;
  }
}

TEST(PropertyKinetic, NodeOscillatingOnExactCellBoundary) {
  // One node hops between EXACTLY representable coordinates — 16.0 (a cell
  // boundary when the grid divides side 64 into 4 cells, and a round binary
  // value regardless), 8.0 and 24.0 — while the bulk jiggles. The dangerous
  // case is the boundary value itself: the kinetic cell assignment must
  // place it in the same cell as a fresh CellGrid rebuild would, every time
  // it lands there, or candidate edges silently go missing.
  const double side = 64.0;
  const Box2 box(side);
  Rng rng(71);
  auto positions = uniform_deployment(70, box, rng);
  positions[0] = {{16.0, 16.0}};

  EmstEngine<2> batch;
  KineticEmstEngine<2> kinetic;
  expect_trees_identical(batch.euclidean(positions, box), kinetic.start(positions, box), 0);
  ASSERT_FALSE(kinetic.stats().dense_mode);

  const double cycle[6] = {8.0, 16.0, 24.0, 16.0, 8.0, 16.0};
  for (std::size_t s = 1; s <= 60; ++s) {
    positions[0] = {{cycle[s % 6], cycle[(s + 2) % 6]}};
    for (std::size_t j = 1; j < positions.size(); j += 7) {
      positions[j].coords[0] =
          std::clamp(positions[j].coords[0] + rng.uniform(-0.25, 0.25), 0.0, side);
    }
    expect_trees_identical(batch.euclidean(positions, box), kinetic.advance(positions), s);
  }
  EXPECT_GT(kinetic.stats().boundary_crossings, 0u)
      << "the oscillating node never changed cells — the scenario lost its point";
}

TEST(PropertyKinetic, OscillationWithZeroNetMovementOnTorus) {
  // The same hop pattern under the wrap-around metric, where 0.0 and side
  // are the same place: a node alternating between exactly 0.0 and exactly
  // side - 4.0 moves a tiny torus distance but a huge coordinate distance.
  const double side = 48.0;
  Rng rng(72);
  const Box2 box(side);
  auto positions = uniform_deployment(60, box, rng);

  EmstEngine<2> batch;
  KineticEmstEngine<2> kinetic;
  expect_trees_identical(batch.torus(positions, side), kinetic.start_torus(positions, side), 0);

  for (std::size_t s = 1; s <= 40; ++s) {
    positions[0].coords[0] = (s % 2 == 0) ? 0.0 : side - 4.0;
    positions[1].coords[1] = (s % 2 == 0) ? side - 4.0 : 0.0;
    expect_trees_identical(batch.torus(positions, side), kinetic.advance(positions), s);
  }
}

TEST(PropertyKinetic, AllNodesTeleportEveryStep) {
  // Whole-population reflection p -> side - p: every node moves a
  // teleport-scale distance every step, which must route through the
  // mass-move rebuild — and produce batch-identical trees throughout.
  const double side = 80.0;
  const Box2 box(side);
  Rng rng(73);
  auto positions = uniform_deployment(150, box, rng);

  EmstEngine<2> batch;
  KineticEmstEngine<2> kinetic;
  expect_trees_identical(batch.euclidean(positions, box), kinetic.start(positions, box), 0);

  for (std::size_t s = 1; s <= 20; ++s) {
    for (auto& p : positions) {
      p.coords[0] = side - p.coords[0];
      p.coords[1] = side - p.coords[1];
    }
    expect_trees_identical(batch.euclidean(positions, box), kinetic.advance(positions), s);
    EXPECT_EQ(kinetic.stats().mass_move_rebuilds, s) << "teleport step took the wrong path";
  }
}

TEST(PropertyKinetic, DenseFallbackHandoffAroundCutoff) {
  // n straddling kDenseCutoff: below it the kinetic engine must hand every
  // call to the embedded batch engine (dense_mode), at and above it the
  // incremental path takes over — with identical results on both sides.
  static_assert(KineticEmstEngine<2>::kDenseCutoff == EmstEngine<2>::kDenseCutoff);
  const double side = 64.0;
  const Box2 box(side);
  for (const std::size_t n : {std::size_t{8}, std::size_t{31}, std::size_t{32}, std::size_t{33}}) {
    Rng rng(74 + n);
    auto positions = uniform_deployment(n, box, rng);

    EmstEngine<2> batch;
    KineticEmstEngine<2> kinetic;
    expect_trees_identical(batch.euclidean(positions, box), kinetic.start(positions, box), 0);
    EXPECT_EQ(kinetic.stats().dense_mode, n < KineticEmstEngine<2>::kDenseCutoff) << "n=" << n;

    for (std::size_t s = 1; s <= 30; ++s) {
      for (auto& p : positions) {
        p.coords[0] = std::clamp(p.coords[0] + rng.uniform(-2.0, 2.0), 0.0, side);
        p.coords[1] = std::clamp(p.coords[1] + rng.uniform(-2.0, 2.0), 0.0, side);
      }
      expect_trees_identical(batch.euclidean(positions, box), kinetic.advance(positions), s);
    }
  }
}

// --- kill / resume through the kinetic path --------------------------------
// Reuses the campaign test machinery (tests/campaign_test.cpp): a campaign
// killed mid-run with the kinetic engine forced ON, then resumed, must be
// bit-identical to an uninterrupted run with the engine forced OFF — the
// strongest cross-engine crash-safety statement the subsystem can make.

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> flatten_all(const std::vector<MtrmResult>& results) {
  std::vector<double> values;
  for (const MtrmResult& result : results) {
    const auto flat = flatten_mtrm_result(result);
    values.insert(values.end(), flat.begin(), flat.end());
  }
  return values;
}

struct CampaignDirs {
  explicit CampaignDirs(const std::string& tag)
      : root(std::filesystem::path(::testing::TempDir()) / ("property_kinetic_" + tag)) {
    std::filesystem::remove_all(root);
    campaign_dir = (root / "campaign").string();
    store_dir = (root / "store").string();
  }
  ~CampaignDirs() { std::filesystem::remove_all(root); }

  CampaignOptions options() const {
    CampaignOptions opts;
    opts.dir = campaign_dir;
    opts.store_dir = store_dir;
    opts.quiet = true;
    return opts;
  }

  std::filesystem::path root;
  std::string campaign_dir;
  std::string store_dir;
};

struct KineticModeGuard {
  ~KineticModeGuard() { set_kinetic_mode(KineticMode::kFromEnvironment); }
};
struct KillHookGuard {
  ~KillHookGuard() { campaign::detail::set_kill_hook({}); }
};
struct ParallelismGuard {
  ~ParallelismGuard() { set_max_parallelism(0); }
};
struct KillSignal {};

TEST(PropertyKinetic, KilledAndResumedKineticCampaignMatchesBatchRun) {
  const KineticModeGuard mode_guard;
  const std::vector<MtrmConfig> configs = {
      experiments::waypoint_experiment(256.0, Preset::kQuick),
      experiments::drunkard_experiment(256.0, Preset::kQuick)};
  constexpr std::uint64_t kSeed = 20020623;

  // Reference: uninterrupted, batch engine, no campaign.
  set_kinetic_mode(KineticMode::kForceOff);
  const auto expected = flatten_all(experiments::solve_mtrm_sweep(configs, kSeed));

  // Count the campaign's units so the kill lands mid-run.
  set_kinetic_mode(KineticMode::kForceOn);
  CampaignDirs reference_dirs("unit_count");
  CampaignRunner reference("tiny", reference_dirs.options());
  const auto uninterrupted = experiments::solve_mtrm_sweep(configs, kSeed, &reference);
  EXPECT_TRUE(bit_identical(expected, flatten_all(uninterrupted)))
      << "kinetic campaign diverged from the batch sweep even without a kill";
  const std::size_t units_total = reference.report().units_total;
  ASSERT_GE(units_total, 4u);

  // Kill halfway (serial execution makes the kill point exact), then resume
  // — still forced kinetic — and compare against the batch reference.
  const ParallelismGuard parallelism_guard;
  set_max_parallelism(1);
  const KillHookGuard hook_guard;
  campaign::detail::set_kill_hook([] { throw KillSignal{}; });

  CampaignDirs dirs("kill_resume");
  const std::size_t kill_after = units_total / 2;
  CampaignOptions kill_options = dirs.options();
  kill_options.kill_after = kill_after;
  kill_options.checkpoint_every = 1;
  CampaignRunner killed("tiny", kill_options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(configs, kSeed, &killed), KillSignal);

  campaign::detail::set_kill_hook({});
  CampaignOptions resume_options = dirs.options();
  resume_options.resume = true;
  CampaignRunner resumed("tiny", resume_options);
  const auto results = experiments::solve_mtrm_sweep(configs, kSeed, &resumed);

  EXPECT_TRUE(bit_identical(expected, flatten_all(results)));
  EXPECT_EQ(resumed.report().cache_hits, kill_after);
  EXPECT_EQ(resumed.report().executed, units_total - kill_after);
}

}  // namespace
}  // namespace manet
