// Statistical property suites for the mobility models and the geometric
// primitives they rest on — distributional facts rather than single-path
// checks.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "geometry/torus.hpp"
#include "mobility/factory.hpp"
#include "sim/deployment.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "topology/critical_range.hpp"

namespace manet {
namespace {

// ---------------------------------------------------------------------------
// Random waypoint: the center-density bias. A waypoint node in steady flight
// crosses the middle of the region more often than the border — the known
// non-uniform stationary distribution of the model. With long pauses the
// bias washes out (nodes park at uniform destinations).
// ---------------------------------------------------------------------------

double mean_center_distance(const std::vector<Point2>& positions, double side) {
  const Point2 center{{side / 2.0, side / 2.0}};
  double total = 0.0;
  for (const auto& p : positions) total += distance(p, center);
  return total / static_cast<double>(positions.size());
}

TEST(WaypointDistribution, NoPauseFlightConcentratesTowardTheCenter) {
  Rng rng(1);
  const double side = 100.0;
  const Box2 box(side);
  RandomWaypointParams params;
  params.v_min = 1.0;
  params.v_max = 2.0;
  params.pause_steps = 0;  // permanent flight: maximal center bias
  RandomWaypointModel<2> model(box, params);

  auto positions = uniform_deployment(400, box, rng);
  model.initialize(positions, rng);
  // Burn in past the initial uniform placement.
  for (int s = 0; s < 400; ++s) model.step(positions, rng);

  RunningStats biased;
  for (int s = 0; s < 200; ++s) {
    model.step(positions, rng);
    biased.add(mean_center_distance(positions, side));
  }

  // Uniform reference: E[dist to center] ~ 0.3826 * side for the unit
  // square.
  const double uniform_expectation = 0.3826 * side;
  EXPECT_LT(biased.mean(), uniform_expectation * 0.95);
}

TEST(WaypointDistribution, LongPausesStayNearUniform) {
  Rng rng(2);
  const double side = 100.0;
  const Box2 box(side);
  RandomWaypointParams params;
  params.v_min = 5.0;
  params.v_max = 10.0;   // fast travel ...
  params.pause_steps = 200;  // ... then long parking at a uniform waypoint
  RandomWaypointModel<2> model(box, params);

  auto positions = uniform_deployment(400, box, rng);
  model.initialize(positions, rng);
  for (int s = 0; s < 400; ++s) model.step(positions, rng);

  RunningStats parked;
  for (int s = 0; s < 200; ++s) {
    model.step(positions, rng);
    parked.add(mean_center_distance(positions, side));
  }
  const double uniform_expectation = 0.3826 * side;
  EXPECT_NEAR(parked.mean(), uniform_expectation, uniform_expectation * 0.06);
}

// ---------------------------------------------------------------------------
// Drunkard: the step displacement statistics match a uniform-disk draw.
// ---------------------------------------------------------------------------

TEST(DrunkardDistribution, StepLengthMatchesUniformDiskRadialLaw) {
  // For a uniform draw in a disk of radius m, E[step length] = 2m/3.
  Rng rng(3);
  const double side = 1000.0;
  const Box2 box(side);
  DrunkardParams params;
  params.step_radius = 10.0;
  params.p_pause = 0.0;
  DrunkardModel<2> model(box, params);

  // Keep nodes away from the border so clipping cannot skew the law.
  std::vector<Point2> positions(300, Point2{{side / 2.0, side / 2.0}});
  model.initialize(positions, rng);

  RunningStats lengths;
  auto previous = positions;
  for (int s = 0; s < 50; ++s) {
    model.step(positions, rng);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      lengths.add(distance(previous[i], positions[i]));
    }
    previous = positions;
  }
  EXPECT_NEAR(lengths.mean(), 2.0 * params.step_radius / 3.0, 0.15);
}

TEST(DrunkardDistribution, IsDiffusive) {
  // Mean squared displacement after t steps grows ~ linearly in t (random
  // walk), far from ballistic motion.
  Rng rng(4);
  const double side = 10000.0;  // large enough to avoid border clipping
  const Box2 box(side);
  DrunkardParams params;
  params.step_radius = 10.0;
  DrunkardModel<2> model(box, params);

  std::vector<Point2> positions(200, Point2{{side / 2.0, side / 2.0}});
  const auto origin = positions;
  model.initialize(positions, rng);

  const auto msd = [&]() {
    double total = 0.0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      total += squared_distance(origin[i], positions[i]);
    }
    return total / static_cast<double>(positions.size());
  };

  for (int s = 0; s < 100; ++s) model.step(positions, rng);
  const double msd_100 = msd();
  for (int s = 0; s < 300; ++s) model.step(positions, rng);
  const double msd_400 = msd();

  // Linear diffusion predicts a factor 4; ballistic motion a factor 16.
  EXPECT_NEAR(msd_400 / msd_100, 4.0, 1.2);
}

// ---------------------------------------------------------------------------
// covering_radius: the exact-threshold guarantee that underpins every
// critical-range computation.
// ---------------------------------------------------------------------------

class CoveringRadiusProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoveringRadiusProperty, SquareIsNeverBelowInput) {
  Rng rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    const double d2 = rng.uniform(0.0, 1e12);
    const double r = covering_radius(d2);
    EXPECT_GE(r * r, d2);
    // Tight: one ulp below fails the inclusion test or equals sqrt rounding.
    const double below = std::nextafter(r, 0.0);
    EXPECT_LT(below * below, d2 + d2 * 1e-15 + 1e-300);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, CoveringRadiusProperty,
                         ::testing::Values<std::uint64_t>(1, 2, 3));

// ---------------------------------------------------------------------------
// Torus metric: shift invariance (the whole point of the torus).
// ---------------------------------------------------------------------------

class TorusShiftProperty : public ::testing::TestWithParam<double> {};

TEST_P(TorusShiftProperty, DistanceIsInvariantUnderCyclicShift) {
  const double shift = GetParam();
  Rng rng(5);
  const double side = 50.0;
  const Box2 box(side);
  const auto points = uniform_deployment(20, box, rng);

  const auto wrap = [&](double x) {
    double w = std::fmod(x + shift, side);
    if (w < 0.0) w += side;
    return w;
  };

  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const Point2 a{{wrap(points[i][0]), wrap(points[i][1])}};
      const Point2 b{{wrap(points[j][0]), wrap(points[j][1])}};
      EXPECT_NEAR(torus_distance(a, b, side),
                  torus_distance(points[i], points[j], side), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, TorusShiftProperty,
                         ::testing::Values(0.0, 7.3, 25.0, 49.9, -13.7));

// ---------------------------------------------------------------------------
// Deployment + connectivity probability is monotone in n (the dimensioning
// assumption): statistical check over a small grid.
// ---------------------------------------------------------------------------

TEST(ConnectivityMonotonicity, ProbabilityGrowsWithNodeCount) {
  const double side = 100.0;
  const Box2 box(side);
  const double range = 30.0;

  double previous = -1.0;
  for (std::size_t n : {10u, 20u, 40u, 80u}) {
    Rng rng(6);
    int connected = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      const auto points = uniform_deployment(n, box, rng);
      if (critical_range<2>(std::span<const Point2>(points)) <= range) ++connected;
    }
    const double p = static_cast<double>(connected) / trials;
    EXPECT_GE(p, previous - 0.05) << "n=" << n;  // allow small MC noise
    previous = p;
  }
  EXPECT_GT(previous, 0.9);  // densest case is almost surely connected
}

}  // namespace
}  // namespace manet
