#include "core/availability.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"
#include "topology/critical_range.hpp"

namespace manet {
namespace {

MobileConnectivityTrace two_step_trace() {
  // Step A: 3 nodes at 0, 1, 2 (rc = 1); step B: 3 nodes at 0, 1, 5 (rc = 4).
  std::vector<LargestComponentCurve> curves;
  const std::vector<Point1> step_a = {{{0.0}}, {{1.0}}, {{2.0}}};
  const std::vector<Point1> step_b = {{{0.0}}, {{1.0}}, {{5.0}}};
  curves.push_back(largest_component_curve<1>(step_a));
  curves.push_back(largest_component_curve<1>(step_b));
  return MobileConnectivityTrace(3, std::move(curves));
}

TEST(EvaluateAvailability, FullConnectivityAtLargeRange) {
  const auto trace = two_step_trace();
  const AvailabilityReport report = evaluate_availability(trace, 4.0, 0.5);
  EXPECT_DOUBLE_EQ(report.full_availability, 1.0);
  EXPECT_DOUBLE_EQ(report.degraded_availability, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_component_when_down, 1.0);
}

TEST(EvaluateAvailability, IntermediateRangeSplitsModes) {
  // At r = 1: step A connected; step B has components {0,1} and {5}.
  const auto trace = two_step_trace();
  const AvailabilityReport report = evaluate_availability(trace, 1.0, 0.6);
  EXPECT_DOUBLE_EQ(report.full_availability, 0.5);
  // Step B's largest component is 2/3 >= 0.6 -> degraded availability 1.
  EXPECT_DOUBLE_EQ(report.degraded_availability, 1.0);
  EXPECT_NEAR(report.mean_component_when_down, 2.0 / 3.0, 1e-12);
}

TEST(EvaluateAvailability, DegradedStricterThanComponentFraction) {
  const auto trace = two_step_trace();
  // phi = 0.9: step B's 2/3 component no longer qualifies.
  const AvailabilityReport report = evaluate_availability(trace, 1.0, 0.9);
  EXPECT_DOUBLE_EQ(report.degraded_availability, 0.5);
}

TEST(EvaluateAvailability, DegradedAtLeastFull) {
  const auto trace = two_step_trace();
  for (double r : {0.5, 1.0, 2.0, 4.0}) {
    for (double phi : {0.3, 0.6, 0.9, 1.0}) {
      const AvailabilityReport report = evaluate_availability(trace, r, phi);
      EXPECT_GE(report.degraded_availability, report.full_availability)
          << "r=" << r << " phi=" << phi;
    }
  }
}

TEST(EvaluateAvailability, EchoesInputs) {
  const auto trace = two_step_trace();
  const AvailabilityReport report = evaluate_availability(trace, 2.0, 0.7);
  EXPECT_DOUBLE_EQ(report.range, 2.0);
  EXPECT_DOUBLE_EQ(report.phi, 0.7);
}

TEST(EvaluateAvailability, ValidatesArguments) {
  const auto trace = two_step_trace();
  EXPECT_THROW(evaluate_availability(trace, -1.0, 0.5), ContractViolation);
  EXPECT_THROW(evaluate_availability(trace, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(evaluate_availability(trace, 1.0, 1.5), ContractViolation);
}

}  // namespace
}  // namespace manet
