#include "graph/adjacency.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace manet {
namespace {

constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();

using Edge = std::pair<std::size_t, std::size_t>;

AdjacencyGraph path_graph(std::size_t n) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return AdjacencyGraph(n, edges);
}

TEST(AdjacencyGraph, EmptyGraph) {
  const std::vector<Edge> edges;
  const AdjacencyGraph graph(0, edges);
  EXPECT_EQ(graph.vertex_count(), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(AdjacencyGraph, EdgelessGraph) {
  const std::vector<Edge> edges;
  const AdjacencyGraph graph(3, edges);
  EXPECT_EQ(graph.vertex_count(), 3u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(graph.degree(0), 0u);
  EXPECT_TRUE(graph.neighbors(1).empty());
}

TEST(AdjacencyGraph, NeighborsAreSortedAndSymmetric) {
  const std::vector<Edge> edges = {{2, 0}, {0, 1}, {2, 1}};
  const AdjacencyGraph graph(3, edges);
  EXPECT_EQ(graph.edge_count(), 3u);

  const auto n0 = graph.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);

  const auto n2 = graph.neighbors(2);
  ASSERT_EQ(n2.size(), 2u);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
}

TEST(AdjacencyGraph, RejectsSelfLoopsAndBadVertices) {
  const std::vector<Edge> self_loop = {{1, 1}};
  EXPECT_THROW(AdjacencyGraph(3, self_loop), ContractViolation);

  const std::vector<Edge> out_of_range = {{0, 3}};
  EXPECT_THROW(AdjacencyGraph(3, out_of_range), ContractViolation);
}

TEST(AdjacencyGraph, RejectsParallelEdges) {
  const std::vector<Edge> dup = {{0, 1}, {1, 0}};
  EXPECT_THROW(AdjacencyGraph(2, dup), ContractViolation);
}

TEST(BfsDistances, PathGraphDistances) {
  const AdjacencyGraph graph = path_graph(5);
  const auto dist = bfs_distances(graph, 0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsDistances, DisconnectedVerticesAreUnreached) {
  const std::vector<Edge> edges = {{0, 1}};
  const AdjacencyGraph graph(4, edges);
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreached);
  EXPECT_EQ(dist[3], kUnreached);
}

TEST(BfsDistances, SourceOutOfRangeThrows) {
  const AdjacencyGraph graph = path_graph(3);
  EXPECT_THROW(bfs_distances(graph, 3), ContractViolation);
}

TEST(ReachableCount, CountsComponentOfSource) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  const AdjacencyGraph graph(5, edges);
  EXPECT_EQ(reachable_count(graph, 0), 3u);
  EXPECT_EQ(reachable_count(graph, 3), 2u);
}

TEST(Eccentricity, PathEndpointsVsCenter) {
  const AdjacencyGraph graph = path_graph(5);
  EXPECT_EQ(eccentricity(graph, 0), 4u);
  EXPECT_EQ(eccentricity(graph, 2), 2u);
}

TEST(ComponentDiameter, PathAndIsolated) {
  const AdjacencyGraph path = path_graph(6);
  EXPECT_EQ(component_diameter(path, 3), 5u);

  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const AdjacencyGraph graph(5, edges);
  EXPECT_EQ(component_diameter(graph, 0), 2u);
  EXPECT_EQ(component_diameter(graph, 4), 0u);  // isolated vertex
}

TEST(ComponentDiameter, CycleGraph) {
  std::vector<Edge> edges;
  const std::size_t n = 6;
  for (std::size_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  const AdjacencyGraph cycle(n, edges);
  EXPECT_EQ(component_diameter(cycle, 0), 3u);
}

}  // namespace
}  // namespace manet
