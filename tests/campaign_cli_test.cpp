// Tests of the campaign CLI flag family (campaign/cli.hpp) and of manifest
// parsing/validation: every malformed input must come back as a clear
// ConfigError, never a crash or a silently-wrong option set.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/cli.hpp"
#include "campaign/manifest.hpp"
#include "support/error.hpp"

namespace manet {
namespace {

using campaign::CampaignOptions;

CliParser parsed(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  CliParser cli("test");
  campaign::add_campaign_cli_options(cli);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  return cli;
}

TEST(CampaignCli, DefaultsDoNotRequestCampaignMode) {
  const CliParser cli = parsed({});
  EXPECT_FALSE(campaign::campaign_requested(cli));
}

TEST(CampaignCli, CampaignResumeKillAfterAndDirEachRequestCampaignMode) {
  EXPECT_TRUE(campaign::campaign_requested(parsed({"--campaign"})));
  EXPECT_TRUE(campaign::campaign_requested(parsed({"--resume"})));
  EXPECT_TRUE(campaign::campaign_requested(parsed({"--kill-after", "3"})));
  EXPECT_TRUE(campaign::campaign_requested(parsed({"--campaign-dir", "/tmp/c"})));
}

TEST(CampaignCli, DefaultDirDerivesFromCampaignName) {
  const CliParser cli = parsed({"--campaign"});
  const CampaignOptions options = campaign::campaign_options_from_cli(cli, "fig7");
  EXPECT_EQ(options.dir, "results/campaigns/fig7");
  EXPECT_EQ(options.store_dir, "results/store");
  EXPECT_FALSE(options.resume);
  EXPECT_EQ(options.kill_after, 0u);
  EXPECT_EQ(options.unit_iterations, 0u);
  EXPECT_EQ(options.checkpoint_every, 8u);
  EXPECT_FALSE(options.quiet);
}

TEST(CampaignCli, AllFlagsMapThrough) {
  const CliParser cli = parsed({"--resume", "--campaign-dir", "/tmp/cdir", "--store-dir",
                                "/tmp/sdir", "--kill-after", "5", "--unit-iterations", "2",
                                "--checkpoint-every", "3", "--campaign-quiet"});
  const CampaignOptions options = campaign::campaign_options_from_cli(cli, "fig7");
  EXPECT_EQ(options.dir, "/tmp/cdir");
  EXPECT_EQ(options.store_dir, "/tmp/sdir");
  EXPECT_TRUE(options.resume);
  EXPECT_EQ(options.kill_after, 5u);
  EXPECT_EQ(options.unit_iterations, 2u);
  EXPECT_EQ(options.checkpoint_every, 3u);
  EXPECT_TRUE(options.quiet);
}

TEST(CampaignCli, RejectsInconsistentValues) {
  EXPECT_THROW(
      campaign::campaign_options_from_cli(parsed({"--checkpoint-every", "0"}), "fig7"),
      ConfigError);
  EXPECT_THROW(campaign::campaign_options_from_cli(parsed({"--store-dir", ""}), "fig7"),
               ConfigError);
  EXPECT_THROW(campaign::campaign_options_from_cli(parsed({"--campaign"}), ""), ConfigError);
  EXPECT_THROW(parsed({"--kill-after", "many"}).uint_value("kill-after"), ConfigError);
}

TEST(CampaignManifest, DumpParseRoundTrip) {
  campaign::Manifest manifest;
  manifest.campaign = "fig7_pstationary";
  manifest.campaign_key = 0xdeadbeefcafef00dull;
  manifest.points = 2;
  manifest.units = {{0, 0, 4, 0x1111111111111111ull}, {1, 4, 8, 0x2222222222222222ull}};
  manifest.progress.units_done = 1;
  manifest.progress.cache_hits = 1;
  manifest.progress.executed = 0;
  manifest.progress.invalid_store_entries = 0;
  manifest.progress.unit_seconds_total = 0.25;
  manifest.progress.complete = false;

  const campaign::Manifest reparsed = campaign::Manifest::parse(manifest.dump(), "test");
  EXPECT_EQ(reparsed.campaign, manifest.campaign);
  EXPECT_EQ(reparsed.campaign_key, manifest.campaign_key);
  EXPECT_EQ(reparsed.points, manifest.points);
  ASSERT_EQ(reparsed.units.size(), manifest.units.size());
  for (std::size_t i = 0; i < manifest.units.size(); ++i) {
    EXPECT_EQ(reparsed.units[i].point, manifest.units[i].point);
    EXPECT_EQ(reparsed.units[i].begin, manifest.units[i].begin);
    EXPECT_EQ(reparsed.units[i].end, manifest.units[i].end);
    EXPECT_EQ(reparsed.units[i].key, manifest.units[i].key);
  }
  EXPECT_EQ(reparsed.progress.units_done, manifest.progress.units_done);
  EXPECT_EQ(reparsed.progress.unit_seconds_total, manifest.progress.unit_seconds_total);
  EXPECT_EQ(reparsed.progress.complete, manifest.progress.complete);

  // Deterministic rendering: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(reparsed.dump(), manifest.dump());
}

TEST(CampaignManifest, ParseRejectsMalformedDocumentsWithOriginInMessage) {
  const char* broken[] = {
      "",                                     // empty
      "garbage",                              // not JSON
      "{\"kind\": \"wrong-kind\"}",           // wrong kind
      "[1, 2, 3]",                            // wrong shape
      "{\"schema_version\": 1, \"kind\"",     // truncated
  };
  for (const char* text : broken) {
    try {
      campaign::Manifest::parse(text, "origin.json");
      FAIL() << "expected ConfigError for: " << text;
    } catch (const ConfigError& error) {
      EXPECT_NE(std::string(error.what()).find("origin.json"), std::string::npos) << text;
    }
  }
}

TEST(CampaignManifest, ParseRejectsUnsupportedSchemaVersionAndEmptyUnits) {
  campaign::Manifest manifest;
  manifest.campaign = "x";
  manifest.campaign_key = 1;
  manifest.points = 1;
  manifest.units = {{0, 0, 4, 2}};

  std::string future = manifest.dump();
  const std::string needle = "\"schema_version\": 1";
  future.replace(future.find(needle), needle.size(), "\"schema_version\": 999");
  EXPECT_THROW(campaign::Manifest::parse(future, "test"), ConfigError);

  std::string empty_block = manifest.dump();
  const std::string begin_needle = "\"begin\": 0";
  empty_block.replace(empty_block.find(begin_needle), begin_needle.size(), "\"begin\": 4");
  EXPECT_THROW(campaign::Manifest::parse(empty_block, "test"), ConfigError);
}

}  // namespace
}  // namespace manet
