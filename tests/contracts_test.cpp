// Tests for the runtime-contract layer (src/support/contracts.hpp).
//
// These tests change shape with the build flavor on purpose:
//  * contract-enabled builds (Debug, or any MANET_SANITIZE preset) verify
//    that a violated contract aborts with a diagnostic, both for the bare
//    macros and for a real trust boundary (a mobility model that escapes the
//    deployment region);
//  * Release builds verify that the macros compile to nothing — the guarded
//    expression must not even be evaluated.

#include "support/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

#include "geometry/box.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/mobile_trace.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

#if MANET_ENABLE_CONTRACTS

TEST(ContractsDeathTest, ExpectAbortsOnViolation) {
  EXPECT_DEATH(MANET_EXPECT(1 + 1 == 3), "MANET contract violated: 1 \\+ 1 == 3");
}

TEST(ContractsDeathTest, EnsureAbortsOnViolation) {
  EXPECT_DEATH(MANET_ENSURE(false), "postcondition");
}

TEST(ContractsDeathTest, InvariantAbortsOnViolation) {
  EXPECT_DEATH(MANET_INVARIANT(2 > 3), "invariant");
}

TEST(Contracts, SatisfiedContractsAreSilent) {
  MANET_EXPECT(1 + 1 == 2);
  MANET_ENSURE(true);
  MANET_INVARIANT(3 > 2);
  SUCCEED();
}

/// A pathological model that teleports node 0 outside [0, l]^2: the
/// region-confinement invariant in run_mobile_trace must catch it.
class EscapingModel final : public MobilityModel<2> {
 public:
  void initialize(std::span<const Point2> positions, Rng&) override {
    n_ = positions.size();
  }
  void step(std::span<Point2> positions, Rng&) override {
    positions[0].coords[0] = 1e9;
  }
  std::string name() const override { return "escaping"; }
  std::size_t node_count() const override { return n_; }

 private:
  std::size_t n_ = 0;
};

TEST(ContractsDeathTest, MobilityEscapingTheRegionTripsTraceInvariant) {
  EXPECT_DEATH(
      {
        Rng rng(7);
        const Box2 box(10.0);
        EscapingModel model;
        run_mobile_trace<2>(8, box, 3, model, rng);
      },
      "MANET contract violated");
}

#else  // MANET_ENABLE_CONTRACTS == 0

TEST(Contracts, CompiledOutInRelease) {
  // The disabled macros must not evaluate their argument at all; an
  // increment smuggled into the condition proves it.
  int evaluations = 0;
  MANET_EXPECT(++evaluations > 0);
  MANET_ENSURE(++evaluations > 0);
  MANET_INVARIANT(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
}

TEST(Contracts, ViolationsAreIgnoredInRelease) {
  MANET_EXPECT(false);
  MANET_ENSURE(1 + 1 == 3);
  MANET_INVARIANT(2 > 3);
  SUCCEED();
}

#endif  // MANET_ENABLE_CONTRACTS

}  // namespace
}  // namespace manet
