#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace manet {
namespace {

TEST(Preset, ParseAndNameRoundTrip) {
  for (Preset preset : {Preset::kQuick, Preset::kDefault, Preset::kPaper}) {
    EXPECT_EQ(parse_preset(preset_name(preset)), preset);
  }
  EXPECT_THROW(parse_preset("huge"), ConfigError);
}

TEST(Preset, PaperScaleMatchesThePaper) {
  const ScaleParams scale = scale_for(Preset::kPaper);
  EXPECT_EQ(scale.iterations, 50u);
  EXPECT_EQ(scale.steps, 10000u);
}

TEST(Preset, ScalesAreOrdered) {
  const ScaleParams quick = scale_for(Preset::kQuick);
  const ScaleParams normal = scale_for(Preset::kDefault);
  const ScaleParams paper = scale_for(Preset::kPaper);
  EXPECT_LT(quick.iterations * quick.steps, normal.iterations * normal.steps);
  EXPECT_LT(normal.iterations * normal.steps, paper.iterations * paper.steps);
}

TEST(Experiments, FigureLValuesArePowersOfFour) {
  const auto ls = experiments::figure_l_values();
  ASSERT_EQ(ls.size(), 4u);
  EXPECT_DOUBLE_EQ(ls[0], 256.0);
  EXPECT_DOUBLE_EQ(ls[1], 1024.0);
  EXPECT_DOUBLE_EQ(ls[2], 4096.0);
  EXPECT_DOUBLE_EQ(ls[3], 16384.0);
}

TEST(Experiments, NodeCountIsSqrtL) {
  EXPECT_EQ(experiments::paper_node_count(256.0), 16u);
  EXPECT_EQ(experiments::paper_node_count(1024.0), 32u);
  EXPECT_EQ(experiments::paper_node_count(4096.0), 64u);
  EXPECT_EQ(experiments::paper_node_count(16384.0), 128u);
}

TEST(Experiments, WaypointConfigUsesPaperParameters) {
  const MtrmConfig config = experiments::waypoint_experiment(4096.0, Preset::kPaper);
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.node_count, 64u);
  EXPECT_DOUBLE_EQ(config.side, 4096.0);
  EXPECT_EQ(config.steps, 10000u);
  EXPECT_EQ(config.iterations, 50u);
  EXPECT_EQ(config.mobility.kind, MobilityKind::kRandomWaypoint);
  EXPECT_DOUBLE_EQ(config.mobility.waypoint.v_max, 40.96);
  EXPECT_EQ(config.mobility.waypoint.pause_steps, 2000u);
}

TEST(Experiments, DrunkardConfigUsesPaperParameters) {
  const MtrmConfig config = experiments::drunkard_experiment(1024.0, Preset::kQuick);
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.node_count, 32u);
  EXPECT_EQ(config.mobility.kind, MobilityKind::kDrunkard);
  EXPECT_DOUBLE_EQ(config.mobility.drunkard.p_stationary, 0.1);
  EXPECT_DOUBLE_EQ(config.mobility.drunkard.p_pause, 0.3);
  EXPECT_DOUBLE_EQ(config.mobility.drunkard.step_radius, 10.24);
}

TEST(Experiments, SweepBaseIsL4096Waypoint) {
  const MtrmConfig config = experiments::sweep_base_config(Preset::kQuick);
  EXPECT_DOUBLE_EQ(config.side, 4096.0);
  EXPECT_EQ(config.node_count, 64u);
  EXPECT_EQ(config.mobility.kind, MobilityKind::kRandomWaypoint);
}

TEST(Experiments, Figure7SweepRefinesThresholdWindow) {
  const auto values = experiments::figure7_pstationary_values();
  ASSERT_GE(values.size(), 10u);
  EXPECT_DOUBLE_EQ(values.front(), 0.0);
  EXPECT_DOUBLE_EQ(values.back(), 1.0);
  // Fine 0.02 steps inside [0.4, 0.6].
  int fine_points = 0;
  for (double v : values) {
    if (v > 0.39 && v < 0.61) ++fine_points;
  }
  EXPECT_GE(fine_points, 10);
  // Sorted ascending.
  for (std::size_t i = 1; i < values.size(); ++i) EXPECT_GT(values[i], values[i - 1]);
}

TEST(Experiments, Figure8SweepCoversZeroToTenThousand) {
  const auto values = experiments::figure8_tpause_values();
  EXPECT_DOUBLE_EQ(values.front(), 0.0);
  EXPECT_DOUBLE_EQ(values.back(), 10000.0);
  EXPECT_GE(values.size(), 6u);
}

TEST(Experiments, Figure9SweepSpansPaperVelocities) {
  const auto fractions = experiments::figure9_vmax_fractions();
  EXPECT_DOUBLE_EQ(fractions.front(), 0.01);
  EXPECT_DOUBLE_EQ(fractions.back(), 0.5);
  for (double f : fractions) {
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 0.5);
  }
}

}  // namespace
}  // namespace manet
