#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "geometry/box.hpp"
#include "graph/proximity.hpp"
#include "mobility/factory.hpp"
#include "occupancy/gap_pattern.hpp"
#include "occupancy/occupancy.hpp"
#include "sim/deployment.hpp"
#include "sim/mobile_trace.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"
#include "topology/mst.hpp"

namespace manet {
namespace {

// ---------------------------------------------------------------------------
// Property: connectivity is monotone in the transmitting range, and the
// critical range is the exact flip point — swept over node counts and seeds.
// ---------------------------------------------------------------------------

class CriticalRangeProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(CriticalRangeProperty, ConnectivityIsMonotoneAndFlipsAtCriticalRange) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Box2 box(100.0);
  const auto points = uniform_deployment(n, box, rng);
  const double rc = critical_range<2>(points);

  if (n <= 1) {
    EXPECT_DOUBLE_EQ(rc, 0.0);
    return;
  }
  EXPECT_GT(rc, 0.0);
  EXPECT_TRUE(analyze_components<2>(points, box, rc).connected());
  EXPECT_FALSE(analyze_components<2>(points, box, rc * 0.999).connected());

  // Monotonicity over a geometric ladder of ranges.
  bool was_connected = false;
  for (double r = rc / 8.0; r <= rc * 4.0; r *= 1.5) {
    const bool connected = analyze_components<2>(points, box, r).connected();
    if (was_connected) {
      EXPECT_TRUE(connected) << "connectivity lost as r grew";
    }
    was_connected = connected;
  }
}

TEST_P(CriticalRangeProperty, LargestComponentCurveIsConsistentWithDirectAnalysis) {
  const auto [n, seed] = GetParam();
  if (n == 0) return;
  Rng rng(seed + 1000);
  const Box2 box(100.0);
  const auto points = uniform_deployment(n, box, rng);
  const auto curve = largest_component_curve<2>(points);
  const double rc = curve.critical_range();

  for (double r : {rc * 0.25, rc * 0.5, rc * 0.75, rc, rc * 1.5}) {
    if (r <= 0.0) continue;
    const auto summary = analyze_components<2>(points, box, r);
    EXPECT_EQ(curve.largest_component_at(r), summary.largest_size) << "r=" << r;
  }
}

TEST_P(CriticalRangeProperty, MstEdgeCountAndBottleneckInvariants) {
  const auto [n, seed] = GetParam();
  Rng rng(seed + 2000);
  const Box2 box(100.0);
  const auto points = uniform_deployment(n, box, rng);
  const auto mst = euclidean_mst<2>(points);
  EXPECT_EQ(mst.size(), n <= 1 ? 0u : n - 1);
  // The bottleneck never exceeds the region diagonal and never drops below
  // the tightest packing bound.
  EXPECT_LE(tree_bottleneck(mst), box.diagonal());
  for (const auto& e : mst) EXPECT_GE(e.weight, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    NodeCountAndSeedSweep, CriticalRangeProperty,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 3, 5, 10, 25, 60),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

// ---------------------------------------------------------------------------
// Property: isometries (translation, rotation, reflection) preserve the
// critical range — swept over seeds.
// ---------------------------------------------------------------------------

class IsometryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsometryProperty, CriticalRangeIsIsometryInvariant) {
  Rng rng(GetParam());
  const Box2 box(50.0);
  const auto points = uniform_deployment(20, box, rng);
  const double rc = critical_range<2>(points);

  // Rotation by 90 degrees inside a containing box plus translation.
  std::vector<Point2> rotated;
  std::vector<Point2> reflected;
  for (const auto& p : points) {
    rotated.push_back({{50.0 - p[1], p[0]}});
    reflected.push_back({{50.0 - p[0], p[1]}});
  }
  EXPECT_NEAR(critical_range<2>(rotated), rc, 1e-9);
  EXPECT_NEAR(critical_range<2>(reflected), rc, 1e-9);
}

TEST_P(IsometryProperty, CriticalRangeScalesLinearly) {
  Rng rng(GetParam() + 77);
  const Box2 box(50.0);
  const auto points = uniform_deployment(15, box, rng);
  const double rc = critical_range<2>(points);

  std::vector<Point2> scaled;
  for (const auto& p : points) scaled.push_back(p * 3.0);
  EXPECT_NEAR(critical_range<2>(scaled), 3.0 * rc, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, IsometryProperty,
                         ::testing::Values<std::uint64_t>(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Property: mobility models keep nodes inside the region and the trace
// quantities respect their defining inequalities — swept over models.
// ---------------------------------------------------------------------------

struct TraceCase {
  MobilityKind kind;
  std::uint64_t seed;
};

class TraceProperty : public ::testing::TestWithParam<TraceCase> {};

MobilityConfig config_for(MobilityKind kind, double l) {
  switch (kind) {
    case MobilityKind::kStationary:
      return MobilityConfig::stationary();
    case MobilityKind::kRandomWaypoint: {
      auto config = MobilityConfig::paper_waypoint(l);
      config.waypoint.pause_steps = 10;  // keep the toy trace lively
      return config;
    }
    case MobilityKind::kDrunkard:
      return MobilityConfig::paper_drunkard(l);
    case MobilityKind::kRandomDirection: {
      MobilityConfig config;
      config.kind = MobilityKind::kRandomDirection;
      config.direction.v_min = 0.1;
      config.direction.v_max = 0.01 * l;
      config.direction.p_turn = 0.05;
      return config;
    }
  }
  return MobilityConfig::stationary();
}

TEST_P(TraceProperty, QuantileInequalitiesHold) {
  const auto [kind, seed] = GetParam();
  const double l = 128.0;
  Rng rng(seed);
  const Box2 box(l);
  auto model = make_mobility_model<2>(config_for(kind, l), box);
  const auto trace = run_mobile_trace<2>(14, box, 120, *model, rng);

  const double r100 = trace.range_for_time_fraction(1.0);
  const double r90 = trace.range_for_time_fraction(0.9);
  const double r10 = trace.range_for_time_fraction(0.1);
  const double r0 = trace.largest_never_connected_range();
  EXPECT_GE(r100, r90);
  EXPECT_GE(r90, r10);
  EXPECT_GE(r10, r0);
  EXPECT_GT(r0, 0.0);

  // The promise of each quantile.
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_connected(r100), 1.0);
  EXPECT_GE(trace.fraction_of_time_connected(r90), 0.9);
  EXPECT_GE(trace.fraction_of_time_connected(r10), 0.1);
  EXPECT_DOUBLE_EQ(trace.fraction_of_time_connected(r0 * (1.0 - 1e-12)), 0.0);
}

TEST_P(TraceProperty, ComponentCurveQuantitiesAreMonotone) {
  const auto [kind, seed] = GetParam();
  const double l = 128.0;
  Rng rng(seed + 5000);
  const Box2 box(l);
  auto model = make_mobility_model<2>(config_for(kind, l), box);
  const auto trace = run_mobile_trace<2>(14, box, 120, *model, rng);

  double previous_range = 0.0;
  for (double phi : {0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double r = trace.range_for_mean_component_fraction(phi);
    EXPECT_GE(r, previous_range) << "phi=" << phi;
    previous_range = r;
    EXPECT_GE(trace.mean_largest_fraction_at(r), phi - 1e-12);
  }

  // Mean LCC fraction is nondecreasing in r.
  const double rmax = trace.range_for_time_fraction(1.0);
  double previous_fraction = 0.0;
  for (double r = rmax / 16.0; r <= rmax; r *= 2.0) {
    const double fraction = trace.mean_largest_fraction_at(r);
    EXPECT_GE(fraction, previous_fraction);
    previous_fraction = fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TraceProperty,
    ::testing::Values(TraceCase{MobilityKind::kStationary, 1},
                      TraceCase{MobilityKind::kRandomWaypoint, 2},
                      TraceCase{MobilityKind::kRandomWaypoint, 3},
                      TraceCase{MobilityKind::kDrunkard, 4},
                      TraceCase{MobilityKind::kDrunkard, 5},
                      TraceCase{MobilityKind::kRandomDirection, 6}),
    [](const ::testing::TestParamInfo<TraceCase>& info) {
      std::string name = mobility_kind_name(info.param.kind);
      for (char& c : name) {
        if (c == '-') c = '_';  // gtest parameter names must be identifiers
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Property: occupancy PMF is a valid distribution and its first two moments
// match the closed forms — swept over (n, C).
// ---------------------------------------------------------------------------

class OccupancyMomentsProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(OccupancyMomentsProperty, PmfIsADistributionWithMatchingMoments) {
  const auto [n, C] = GetParam();
  double total = 0.0;
  double mean = 0.0;
  double second = 0.0;
  for (std::uint64_t k = 0; k <= C; ++k) {
    const double p = occupancy::empty_cells_pmf(n, C, k);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
    mean += static_cast<double>(k) * p;
    second += static_cast<double>(k * k) * p;
  }
  EXPECT_NEAR(total, 1.0, 1e-7) << "n=" << n << " C=" << C;
  EXPECT_NEAR(mean, occupancy::expected_empty_cells(n, C), 1e-6);
  EXPECT_NEAR(second - mean * mean, occupancy::variance_empty_cells(n, C), 1e-5);
}

TEST_P(OccupancyMomentsProperty, GapPatternProbabilityIsValid) {
  const auto [n, C] = GetParam();
  const double p = gap_pattern::pattern_probability(n, C);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    BallsAndCellsSweep, OccupancyMomentsProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 5, 12, 30, 80),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 8, 20, 40)));

// ---------------------------------------------------------------------------
// Property: dimension sweep — the full pipeline runs identically in 1-D,
// 2-D and 3-D and the critical range flips connectivity in each.
// ---------------------------------------------------------------------------

template <int D>
void check_dimension(std::uint64_t seed) {
  Rng rng(seed);
  const Box<D> box(64.0);
  const auto points = uniform_deployment<D>(12, box, rng);
  const double rc = critical_range<D>(points);
  EXPECT_GT(rc, 0.0);
  EXPECT_TRUE(analyze_components<D>(points, box, rc).connected());
  EXPECT_FALSE(analyze_components<D>(points, box, rc * 0.999).connected());
}

TEST(DimensionSweep, CriticalRangeFlipsConnectivityInAllDimensions) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    check_dimension<1>(seed);
    check_dimension<2>(seed);
    check_dimension<3>(seed);
  }
}

TEST(DimensionSweep, HigherDimensionNeedsLargerRangeAtEqualDensity) {
  // With n nodes in side-l regions, typical critical ranges grow with d
  // (volume to cover grows). Statistical check over repetitions.
  Rng rng(9);
  double sum_1d = 0.0;
  double sum_3d = 0.0;
  for (int t = 0; t < 40; ++t) {
    const Box1 line(64.0);
    const Box3 cube(64.0);
    sum_1d += critical_range<1>(uniform_deployment<1>(16, line, rng));
    sum_3d += critical_range<3>(uniform_deployment<3>(16, cube, rng));
  }
  EXPECT_LT(sum_1d, sum_3d);
}

}  // namespace
}  // namespace manet
