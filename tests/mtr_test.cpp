#include "core/mtr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/box.hpp"
#include "graph/proximity.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

TEST(MtrOptions, Validation) {
  MtrOptions zero_trials;
  zero_trials.trials = 0;
  EXPECT_THROW(zero_trials.validate(), ConfigError);

  MtrOptions bad_prob;
  bad_prob.target_probability = 0.0;
  EXPECT_THROW(bad_prob.validate(), ConfigError);
  bad_prob.target_probability = 1.5;
  EXPECT_THROW(bad_prob.validate(), ConfigError);

  MtrOptions ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST(EstimateMtr, ResultConnectsTheTargetFraction) {
  Rng rng(1);
  const Box2 box(100.0);
  MtrOptions options;
  options.trials = 300;
  options.target_probability = 0.9;
  const MtrEstimate estimate = estimate_mtr<2>(30, box, options, rng);

  // Fresh deployments: the estimated range must connect roughly 90%.
  Rng check_rng(2);
  int connected = 0;
  const int checks = 300;
  for (int t = 0; t < checks; ++t) {
    const auto points = uniform_deployment(30, box, check_rng);
    if (analyze_components<2>(points, box, estimate.range).connected()) ++connected;
  }
  const double fraction = static_cast<double>(connected) / checks;
  EXPECT_NEAR(fraction, 0.9, 0.07);
}

TEST(EstimateMtr, HigherTargetNeedsLargerRange) {
  Rng rng(3);
  const Box2 box(100.0);
  MtrOptions median;
  median.trials = 400;
  median.target_probability = 0.5;
  MtrOptions strict;
  strict.trials = 400;
  strict.target_probability = 0.99;
  const double r_median = estimate_mtr<2>(25, box, median, rng).range;
  const double r_strict = estimate_mtr<2>(25, box, strict, rng).range;
  EXPECT_LT(r_median, r_strict);
}

TEST(EstimateMtr, MeanIsBelowHighQuantile) {
  Rng rng(4);
  const Box2 box(100.0);
  MtrOptions options;
  options.trials = 200;
  const MtrEstimate estimate = estimate_mtr<2>(20, box, options, rng);
  EXPECT_LT(estimate.mean_critical_range, estimate.range);
  EXPECT_EQ(estimate.trials, 200u);
  EXPECT_DOUBLE_EQ(estimate.target_probability, 0.99);
}

TEST(EstimateMtr, ScalesDownWithDensityIn2D) {
  // Denser networks need shorter ranges: r ~ sqrt(l^2 log n / n) in 2-D.
  Rng rng(5);
  const Box2 box(100.0);
  MtrOptions options;
  options.trials = 150;
  const double r_sparse = estimate_mtr<2>(10, box, options, rng).range;
  const double r_dense = estimate_mtr<2>(160, box, options, rng).range;
  EXPECT_LT(r_dense, r_sparse);
}

TEST(EstimateMtr, OneDimensionTracksTheoremFiveShape) {
  // For fixed n = sqrt(l), r_stationary should grow roughly like
  // l log l / n; check the ratio between two sizes is closer to the
  // Theorem 5 prediction than to a linear-in-l prediction.
  Rng rng(6);
  MtrOptions options;
  options.trials = 400;

  const double l_small = 256.0;
  const double l_large = 4096.0;
  const Box1 small_box(l_small);
  const Box1 large_box(l_large);
  const auto n_small = static_cast<std::size_t>(std::sqrt(l_small));
  const auto n_large = static_cast<std::size_t>(std::sqrt(l_large));

  const double r_small = estimate_mtr<1>(n_small, small_box, options, rng).range;
  const double r_large = estimate_mtr<1>(n_large, large_box, options, rng).range;

  const double measured_ratio = r_large / r_small;
  const double theorem5_ratio = (l_large * std::log(l_large) / n_large) /
                                (l_small * std::log(l_small) / n_small);
  const double linear_ratio = l_large / l_small;
  EXPECT_LT(std::abs(measured_ratio - theorem5_ratio),
            std::abs(measured_ratio - linear_ratio));
}

TEST(EstimateMtr, RejectsZeroNodes) {
  Rng rng(7);
  const Box2 box(10.0);
  EXPECT_THROW(estimate_mtr<2>(0, box, MtrOptions{}, rng), ContractViolation);
}

}  // namespace
}  // namespace manet
