// Allocation discipline of the mobile hot path: after warm-up, one mobility
// step must cost O(1) heap allocations — the exact-size breakpoint copy each
// step's curve retains, plus nothing that scales with n. Verified by
// replacing the global allocation functions with counting wrappers and
// differencing two traces of different lengths, which cancels the per-trace
// fixed cost (deployment, model setup, final trace aggregation).
//
// This test lives in its own binary because the counting operator new is
// global to the process.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point_store.hpp"
#include "mobility/factory.hpp"
#include "sim/deployment.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/trace_workspace.hpp"
#include "support/rng.hpp"
#include "topology/emst_kinetic.hpp"

namespace {

// Single-threaded test binary: a plain counter is enough.
std::size_t g_news = 0;
bool g_counting = false;

void* counted_alloc(std::size_t size) {
  if (g_counting) ++g_news;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace manet {
namespace {

std::size_t count_trace_allocations(std::size_t n, const Box2& box, std::size_t steps,
                                    TraceWorkspace<2>& workspace) {
  const MobilityConfig config = MobilityConfig::paper_waypoint(box.side());
  const auto model = make_mobility_model<2>(config, box);
  Rng rng(0xA110Cull);
  g_news = 0;
  g_counting = true;
  const auto trace = run_mobile_trace<2>(n, box, steps, *model, rng, &workspace);
  g_counting = false;
  EXPECT_EQ(trace.steps(), steps);
  return g_news;
}

TEST(AllocDiscipline, MobileTraceStepLoopIsConstantAllocationPerStep) {
  // n well above EmstEngine::kDenseCutoff so the grid path (grid rebuild,
  // candidate collection, Kruskal) is what's being measured.
  const std::size_t n = 64;
  const Box2 box(32.0);
  constexpr std::size_t kShort = 60;
  constexpr std::size_t kLong = 180;

  TraceWorkspace<2> workspace;
  // Warm-up: grows every pooled buffer (grid bins, candidate edges, DSU,
  // breakpoint scratch, merge-event scratch) to steady-state capacity. Both
  // lengths run once — the rare fallback steps (radius growth/shrink
  // rebuilds) regrid at radii that depend on where in the trajectory the
  // trace ends, so each length's first run can grow a pooled bin vector a
  // few times before capacities cover its whole trajectory.
  count_trace_allocations(n, box, kLong, workspace);
  count_trace_allocations(n, box, kShort, workspace);

  const std::size_t short_allocs = count_trace_allocations(n, box, kShort, workspace);
  const std::size_t long_allocs = count_trace_allocations(n, box, kLong, workspace);

  ASSERT_GT(long_allocs, short_allocs);
  const std::size_t delta_steps = kLong - kShort;
  const double per_step =
      static_cast<double>(long_allocs - short_allocs) / static_cast<double>(delta_steps);
  // Each step retains exactly one allocation (the curve's breakpoint buffer);
  // everything else is pooled. Amortized vector growth in the final trace
  // aggregation adds a logarithmic number of extra allocations, so the
  // per-step average must stay close to 1 — and far below the O(n) per step
  // (~64 here) that per-step buffer churn would cost.
  EXPECT_LE(per_step, 3.0) << "long=" << long_allocs << " short=" << short_allocs;
  EXPECT_GE(per_step, 1.0);
}

TEST(AllocDiscipline, KineticAdvanceMakesZeroSteadyStateAllocations) {
  // The kinetic engine's discipline is stricter than the trace loop's: a
  // warm advance() — incremental repair, no fallback — must perform ZERO
  // heap allocations. Every buffer (grid lists, edge pool, merge scratch,
  // DSU, retained tree) is preallocated and reused; the merge goes through
  // the pooled merged_ buffer precisely because std::inplace_merge would
  // allocate here.
  const std::size_t n = 256;
  const double side = 64.0;
  const Box2 box(side);
  MobilityConfig config = MobilityConfig::paper_waypoint(side);
  config.waypoint.p_stationary = 0.5;  // incremental path, never mass-move
  const auto model = make_mobility_model<2>(config, box);
  Rng rng(0xA110C2ull);
  auto positions = uniform_deployment(n, box, rng);
  model->initialize(positions, rng);

  KineticEmstEngine<2> kinetic;
  kinetic.start(positions, box);
  // Warm-up: grow all pooled buffers past their steady-state high-water
  // marks (including a few radius-growth/shrink rebuilds if they happen).
  for (int s = 0; s < 200; ++s) {
    model->step(positions, rng);
    kinetic.advance(positions);
  }
  ASSERT_FALSE(kinetic.stats().dense_mode);
  const std::size_t repairs_before = kinetic.stats().incremental_repairs;

  g_news = 0;
  g_counting = true;
  for (int s = 0; s < 200; ++s) {
    model->step(positions, rng);
    kinetic.advance(positions);
  }
  g_counting = false;
  EXPECT_EQ(g_news, 0u) << "a warm kinetic advance() touched the heap";
  EXPECT_GT(kinetic.stats().incremental_repairs, repairs_before)
      << "measurement window never took the incremental path";
}

TEST(AllocDiscipline, WarmPointStoreOperationsNeverTouchTheHeap) {
  // The SoA bridge feeds every warm step (kinetic snapshots, waypoint
  // scratch), so its whole surface — assign, both gathers, scatter, resize
  // within capacity, swap — must be allocation-free once capacity has grown.
  const std::size_t n = 512;
  Rng rng(0xA110C3ull);
  const Box2 box(64.0);
  auto points = uniform_deployment(n, box, rng);
  std::vector<std::size_t> ids(n);
  std::vector<std::uint32_t> ids32(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = n - 1 - i;
    ids32[i] = static_cast<std::uint32_t>(i / 2);
  }

  PointStore<2> a, b;
  a.reserve(n);
  b.reserve(n);

  g_news = 0;
  g_counting = true;
  for (int round = 0; round < 50; ++round) {
    a.assign(points);
    b.assign_gather(points, ids);
    b.assign_gather(a, std::span<const std::uint32_t>(ids32));
    b.clear();
    b.resize(n);
    swap(a, b);
    a.scatter_to(points);
  }
  g_counting = false;
  EXPECT_EQ(g_news, 0u) << "a warm PointStore operation touched the heap";
}

TEST(AllocDiscipline, RepeatedTracesOnWarmWorkspaceStayBounded) {
  const std::size_t n = 64;
  const Box2 box(32.0);
  TraceWorkspace<2> workspace;
  count_trace_allocations(n, box, 100, workspace);  // warm-up

  const std::size_t first = count_trace_allocations(n, box, 100, workspace);
  const std::size_t second = count_trace_allocations(n, box, 100, workspace);
  // A warm workspace makes repeat traces allocation-stable: no monotone
  // growth, no cold-start spike.
  EXPECT_LE(second, first + 8);
  EXPECT_LE(first, second + 8);
}

}  // namespace
}  // namespace manet
