// Unit tests of the lease protocol primitives (src/service/lease.hpp) and
// the filesystem guarantees it leans on (src/support/fs.hpp): exclusive
// create admits exactly one of N racing claimants, staleness is mtime age
// against the TTL, a heartbeat resets it, a stale lease is stolen in place —
// and, the regression the pid+counter temp naming exists for, two processes'
// worth of writers racing the *same* store path always leave one complete
// survivor, never a torn file.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/lease.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

namespace manet {
namespace {

using service::ClaimOutcome;
using service::LeaseStore;

/// Fresh scratch directory per test, wiped on entry so reruns start clean.
struct LeaseDirs {
  explicit LeaseDirs(const std::string& tag)
      : root(std::filesystem::path(::testing::TempDir()) / ("lease_test_" + tag)) {
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    claims = root / "claims";
  }
  ~LeaseDirs() { std::filesystem::remove_all(root); }

  std::filesystem::path root;
  std::filesystem::path claims;
};

/// Rewinds a lease file's mtime far past any TTL used in these tests —
/// the deterministic stand-in for a holder that died long ago.
void force_stale(const std::filesystem::path& lease_path) {
  std::filesystem::last_write_time(
      lease_path, std::filesystem::file_time_type::clock::now() - std::chrono::hours(2));
}

constexpr std::uint64_t kUnit = 0xfeedfacecafebeefull;

TEST(LeaseTest, RejectsEmptyOwnerAndNonPositiveTtl) {
  const LeaseDirs dirs("validate");
  EXPECT_THROW(LeaseStore(dirs.claims, "", 30.0), ConfigError);
  EXPECT_THROW(LeaseStore(dirs.claims, "w", 0.0), ConfigError);
  EXPECT_THROW(LeaseStore(dirs.claims, "w", -1.0), ConfigError);
}

TEST(LeaseTest, ClaimHoldReleaseCycle) {
  const LeaseDirs dirs("cycle");
  const LeaseStore alice(dirs.claims, "alice", 30.0);
  const LeaseStore bob(dirs.claims, "bob", 30.0);

  EXPECT_EQ(alice.try_claim(kUnit), ClaimOutcome::kClaimed);
  EXPECT_EQ(bob.try_claim(kUnit), ClaimOutcome::kHeld);

  const auto info = bob.inspect(kUnit);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->owner, "alice");
  EXPECT_FALSE(bob.is_stale(kUnit));

  alice.release(kUnit);
  EXPECT_FALSE(std::filesystem::exists(alice.path_for(kUnit)));
  EXPECT_EQ(bob.try_claim(kUnit), ClaimOutcome::kClaimed);
  EXPECT_EQ(bob.inspect(kUnit)->owner, "bob");
}

TEST(LeaseTest, StaleLeaseIsStolenAndChangesOwner) {
  const LeaseDirs dirs("steal");
  const LeaseStore dead(dirs.claims, "dead-worker", 30.0);
  const LeaseStore thief(dirs.claims, "thief", 30.0);

  ASSERT_EQ(dead.try_claim(kUnit), ClaimOutcome::kClaimed);
  EXPECT_FALSE(thief.is_stale(kUnit));
  EXPECT_EQ(thief.try_claim(kUnit), ClaimOutcome::kHeld);

  force_stale(dead.path_for(kUnit));
  EXPECT_TRUE(thief.is_stale(kUnit));
  EXPECT_EQ(thief.try_claim(kUnit), ClaimOutcome::kStolen);
  EXPECT_EQ(thief.inspect(kUnit)->owner, "thief");
  EXPECT_FALSE(thief.is_stale(kUnit));
}

TEST(LeaseTest, HeartbeatResetsStaleness) {
  const LeaseDirs dirs("heartbeat");
  const LeaseStore worker(dirs.claims, "worker", 30.0);

  ASSERT_EQ(worker.try_claim(kUnit), ClaimOutcome::kClaimed);
  force_stale(worker.path_for(kUnit));
  ASSERT_TRUE(worker.is_stale(kUnit));

  worker.refresh(kUnit);
  EXPECT_FALSE(worker.is_stale(kUnit));
  EXPECT_EQ(worker.inspect(kUnit)->owner, "worker");
}

TEST(LeaseTest, ConcurrentClaimsAdmitExactlyOneWinner) {
  const LeaseDirs dirs("race");
  constexpr std::size_t kWorkers = 8;

  std::atomic<std::size_t> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&dirs, &winners, w] {
      const LeaseStore store(dirs.claims, "worker-" + std::to_string(w), 30.0);
      if (store.try_claim(kUnit) == ClaimOutcome::kClaimed) ++winners;
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(winners.load(), 1u);
  const LeaseStore reader(dirs.claims, "reader", 30.0);
  ASSERT_TRUE(reader.inspect(kUnit).has_value());
}

TEST(LeaseTest, ExclusiveWriteAdmitsExactlyOneWinnerWithItsFullPayload) {
  const LeaseDirs dirs("exclusive");
  const std::filesystem::path target = dirs.root / "winner.txt";
  constexpr std::size_t kWriters = 8;

  std::atomic<std::size_t> winners{0};
  std::vector<std::string> payloads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    payloads.push_back(std::string(4096, static_cast<char>('a' + static_cast<char>(w))));
  }
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      if (write_text_file_exclusive(target, payloads[w])) ++winners;
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(winners.load(), 1u);
  const std::string survivor = read_text_file(target);
  std::size_t matches = 0;
  for (const std::string& payload : payloads) {
    if (survivor == payload) ++matches;
  }
  EXPECT_EQ(matches, 1u) << "survivor must be exactly one writer's complete payload";
}

// Satellite regression for the temp-naming hardening: before the pid+counter
// suffix, two writers (think: two drain workers persisting the same unit)
// could share one temp path — writer A's rename could then publish writer
// B's half-written bytes. With per-writer temp names, racing atomic writes
// of the same target must always leave one writer's *complete* payload.
TEST(LeaseTest, RacingStoreWritersLeaveOneCompleteSurvivor) {
  const LeaseDirs dirs("atomic_race");
  const std::filesystem::path target = dirs.root / "store_entry.json";

  const std::string payload_a(256 * 1024, 'A');
  const std::string payload_b(256 * 1024, 'B');

  constexpr std::size_t kRounds = 32;
  std::thread writer_a([&] {
    for (std::size_t i = 0; i < kRounds; ++i) write_text_file_atomic(target, payload_a);
  });
  std::thread writer_b([&] {
    for (std::size_t i = 0; i < kRounds; ++i) write_text_file_atomic(target, payload_b);
  });
  writer_a.join();
  writer_b.join();

  const std::string survivor = read_text_file(target);
  EXPECT_TRUE(survivor == payload_a || survivor == payload_b)
      << "torn store entry: " << survivor.size() << " bytes, starts with '"
      << (survivor.empty() ? ' ' : survivor.front()) << "'";

  // No temp siblings may leak either way.
  std::size_t temp_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dirs.root)) {
    if (entry.path().filename() != "store_entry.json" &&
        entry.path().filename() != "claims") {
      ++temp_files;
    }
  }
  EXPECT_EQ(temp_files, 0u);
}

TEST(LeaseTest, LeasePathIsContentAddressed) {
  const LeaseDirs dirs("path");
  const LeaseStore store(dirs.claims, "worker", 30.0);
  const std::filesystem::path path = store.path_for(kUnit);
  EXPECT_EQ(path.parent_path(), dirs.claims);
  EXPECT_EQ(path.filename().string(), "feedfacecafebeef.lease");
}

}  // namespace
}  // namespace manet
