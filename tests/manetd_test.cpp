// Tests of the manetd query service (src/service/query.hpp, server.hpp,
// lru_cache.hpp): the engine answers MTRM / r-quantile / phase-point
// queries as pure functions of a loaded campaign (exact at the solved
// knots, clamped piecewise-linear between them), the canonical cache key
// ignores request-member order, the server's LRU byte-cache makes repeated
// identical queries byte-identical with hits visible in "stats", and the
// whole stack answers concurrent clients over a real Unix-domain socket.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "service/lru_cache.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/json.hpp"

namespace manet {
namespace {

using service::LruCache;
using service::ManetdServer;
using service::QueryEngine;
using service::ServerOptions;

constexpr std::uint64_t kSeed = 20020623;

/// Tag for the fixture's scratch directory. Under ctest discovery every
/// test runs in its own process, and two of those processes run
/// concurrently (`ctest -j`) — a fixed path would have them wiping each
/// other's campaign mid-solve. The first test to touch the singleton names
/// the directory, which is unique across concurrent processes because
/// ctest never runs the same test twice at once.
std::string fixture_tag() {
  const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info == nullptr) return "standalone";
  return std::string(info->test_suite_name()) + "_" + info->name();
}

/// One tiny two-point campaign (node_count 12 vs 20, so the phase axis has
/// two distinct knots), solved once and shared by every test in this binary.
struct CampaignFixture {
  CampaignFixture()
      : root(std::filesystem::path(::testing::TempDir()) /
             ("manetd_test_campaign_" + fixture_tag())) {
    std::filesystem::remove_all(root);
    campaign::CampaignOptions options;
    options.dir = (root / "campaign").string();
    options.store_dir = (root / "store").string();
    options.quiet = true;

    std::vector<MtrmConfig> configs(2);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      configs[i].node_count = i == 0 ? 12 : 20;
      configs[i].side = 144.0;
      configs[i].steps = 40;
      configs[i].iterations = 4;
      configs[i].mobility = MobilityConfig::paper_waypoint(144.0);
    }
    campaign::CampaignRunner runner("manetd_test", options);
    (void)experiments::solve_mtrm_sweep(configs, kSeed, &runner);

    campaign_dir = root / "campaign";
    result = JsonValue::parse(read_text_file(campaign_dir / "result.json"));
  }
  ~CampaignFixture() { std::filesystem::remove_all(root); }

  QueryEngine engine() const {
    QueryEngine fresh;
    fresh.load_campaign_dir(campaign_dir);
    return fresh;
  }

  /// The recorded sample document for one sweep point.
  const JsonValue& sample(std::size_t point) const {
    return result.at("samples").items().at(point);
  }

  std::filesystem::path root;
  std::filesystem::path campaign_dir;
  JsonValue result;
};

const CampaignFixture& fixture() {
  static CampaignFixture shared;
  return shared;
}

JsonValue ask(const QueryEngine& engine, const std::string& request) {
  return engine.handle(JsonValue::parse(request));
}

TEST(QueryEngine, HealthAndCampaignListing) {
  const QueryEngine engine = fixture().engine();
  EXPECT_EQ(engine.campaign_count(), 1u);
  EXPECT_EQ(engine.sample_count(), 2u);

  const JsonValue health = ask(engine, R"({"op": "health"})");
  EXPECT_TRUE(health.at("ok").as_bool());
  EXPECT_EQ(health.at("campaigns").as_uint(), 1u);
  EXPECT_EQ(health.at("samples").as_uint(), 2u);

  const JsonValue campaigns = ask(engine, R"({"op": "campaigns"})");
  ASSERT_EQ(campaigns.at("campaigns").items().size(), 1u);
  const JsonValue& entry = campaigns.at("campaigns").items().front();
  EXPECT_EQ(entry.at("name").as_string(), "manetd_test");
  EXPECT_EQ(entry.at("points").as_uint(), 2u);
}

TEST(QueryEngine, RejectsDuplicateCampaignAndMissingDir) {
  QueryEngine engine = fixture().engine();
  EXPECT_THROW(engine.load_campaign_dir(fixture().campaign_dir), ConfigError);
  EXPECT_THROW(engine.load_campaign_dir(fixture().root / "no_such_dir"), ConfigError);
}

TEST(QueryEngine, MtrmStatsMatchTheRecordedSample) {
  const QueryEngine engine = fixture().engine();
  const JsonValue response =
      ask(engine, R"({"op": "mtrm", "campaign": "manetd_test", "point": 0})");
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("node_count").as_double(), 12.0);
  EXPECT_EQ(response.at("side").as_double(), 144.0);
  EXPECT_EQ(response.at("mobility").as_string(), "random-waypoint");

  // Every labeled statistic must reproduce the flattened vector exactly.
  const JsonValue& sample = fixture().sample(0);
  const auto& flattened = sample.at("flattened_result").items();
  const auto labels = flatten_mtrm_labels(sample.at("time_fractions").items().size(),
                                          sample.at("component_fractions").items().size());
  ASSERT_EQ(labels.size(), flattened.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(response.at("stats").at(labels[i]).as_double(), flattened[i].as_double())
        << labels[i];
  }
  EXPECT_EQ(response.at("result_checksum").as_string(),
            sample.at("result_checksum").as_string());
}

TEST(QueryEngine, RQuantileIsExactAtKnotsAndBoundedBetweenThem) {
  const QueryEngine engine = fixture().engine();
  const JsonValue& sample = fixture().sample(0);
  const auto& fractions = sample.at("time_fractions").items();
  const auto& flattened = sample.at("flattened_result").items();
  ASSERT_GE(fractions.size(), 2u);

  // At each solved time fraction the interpolation must return that knot's
  // mean range bit-for-bit (range_for_time[i].mean sits at flattened[2i]).
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    JsonValue request = JsonValue::object();
    request.set("op", JsonValue::string("rquantile"));
    request.set("campaign", JsonValue::string("manetd_test"));
    request.set("point", JsonValue::number(std::size_t{0}));
    request.set("fraction", JsonValue::number(fractions[i].as_double()));
    const JsonValue response = engine.handle(request);
    ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
    EXPECT_EQ(response.at("range").as_double(), flattened[2 * i].as_double());
  }

  // Between two adjacent knots the answer stays inside their value range.
  std::vector<std::pair<double, double>> knots;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    knots.emplace_back(fractions[i].as_double(), flattened[2 * i].as_double());
  }
  std::sort(knots.begin(), knots.end());
  const double mid_x = 0.5 * (knots[0].first + knots[1].first);
  JsonValue request = JsonValue::object();
  request.set("op", JsonValue::string("rquantile"));
  request.set("campaign", JsonValue::string("manetd_test"));
  request.set("point", JsonValue::number(std::size_t{0}));
  request.set("fraction", JsonValue::number(mid_x));
  const double mid_y = engine.handle(request).at("range").as_double();
  EXPECT_GE(mid_y, std::min(knots[0].second, knots[1].second));
  EXPECT_LE(mid_y, std::max(knots[0].second, knots[1].second));
}

TEST(QueryEngine, PhaseInterpolatesAndClampsOverTheSweepAxis) {
  const QueryEngine engine = fixture().engine();
  const auto stat_value = [&](const JsonValue& sample) {
    const auto labels = flatten_mtrm_labels(sample.at("time_fractions").items().size(),
                                            sample.at("component_fractions").items().size());
    const auto it = std::find(labels.begin(), labels.end(), "mean_critical_range.mean");
    EXPECT_NE(it, labels.end());
    return sample.at("flattened_result")
        .items()[static_cast<std::size_t>(it - labels.begin())]
        .as_double();
  };
  const double at_12 = stat_value(fixture().sample(0));
  const double at_20 = stat_value(fixture().sample(1));

  const auto phase = [&](double value) {
    JsonValue request = JsonValue::object();
    request.set("op", JsonValue::string("phase"));
    request.set("campaign", JsonValue::string("manetd_test"));
    request.set("param", JsonValue::string("node_count"));
    request.set("stat", JsonValue::string("mean_critical_range.mean"));
    request.set("value", JsonValue::number(value));
    const JsonValue response = engine.handle(request);
    EXPECT_TRUE(response.at("ok").as_bool()) << response.dump();
    return response.at("result").as_double();
  };

  EXPECT_EQ(phase(12.0), at_12);
  EXPECT_EQ(phase(20.0), at_20);
  const double mid = phase(16.0);
  EXPECT_GE(mid, std::min(at_12, at_20));
  EXPECT_LE(mid, std::max(at_12, at_20));
  // Clamped outside the sweep — extrapolation would be an invented number.
  EXPECT_EQ(phase(1.0), at_12);
  EXPECT_EQ(phase(1000.0), at_20);
}

TEST(QueryEngine, MalformedQueriesProduceOkFalseNotThrows) {
  const QueryEngine engine = fixture().engine();
  for (const char* request : {
           R"({"op": "no_such_op"})",
           R"({"op": "mtrm", "campaign": "unknown", "point": 0})",
           R"({"op": "mtrm", "campaign": "manetd_test", "point": 99})",
           R"({"op": "rquantile", "campaign": "manetd_test", "point": 0, "fraction": 0.0})",
           R"({"op": "phase", "campaign": "manetd_test", "param": "bogus", "value": 1,
               "stat": "mean_critical_range.mean"})",
           R"({"op": "phase", "campaign": "manetd_test", "param": "node_count", "value": 1,
               "stat": "no.such.stat"})",
           R"({"missing": "op"})",
       }) {
    const JsonValue response = ask(engine, request);
    EXPECT_FALSE(response.at("ok").as_bool()) << request;
    EXPECT_FALSE(response.at("error").as_string().empty()) << request;
  }
}

TEST(QueryEngine, CacheKeyIgnoresRequestMemberOrder) {
  const JsonValue a =
      JsonValue::parse(R"({"op": "mtrm", "campaign": "manetd_test", "point": 0})");
  const JsonValue b =
      JsonValue::parse(R"({"point": 0, "op": "mtrm", "campaign": "manetd_test"})");
  const JsonValue c =
      JsonValue::parse(R"({"point": 1, "op": "mtrm", "campaign": "manetd_test"})");
  EXPECT_EQ(QueryEngine::cache_key(a), QueryEngine::cache_key(b));
  EXPECT_NE(QueryEngine::cache_key(a), QueryEngine::cache_key(c));
}

TEST(LruCacheTest, EvictsStrictlyLeastRecentlyUsed) {
  LruCache<int> cache(2);
  EXPECT_THROW(LruCache<int>(0), ConfigError);

  cache.insert("a", 1);
  cache.insert("b", 2);
  ASSERT_NE(cache.find("a"), nullptr);  // refreshes "a": "b" is now LRU
  cache.insert("c", 3);                 // evicts "b"
  EXPECT_EQ(cache.find("b"), nullptr);
  ASSERT_NE(cache.find("a"), nullptr);
  EXPECT_EQ(*cache.find("a"), 1);
  ASSERT_NE(cache.find("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ManetdServer, RespondCachesResponseBytesAndCountsHits) {
  ServerOptions options;
  options.socket_path = fixture().root / "unused.sock";
  options.cache_capacity = 8;
  options.quiet = true;
  ManetdServer server(fixture().engine(), options);

  const std::string query = R"({"op": "mtrm", "campaign": "manetd_test", "point": 0})";
  const std::string first = server.respond(query);
  const std::string second = server.respond(query);
  EXPECT_EQ(first, second);
  // Same query, different member order — one cache entry.
  const std::string reordered =
      server.respond(R"({"campaign": "manetd_test", "point": 0, "op": "mtrm"})");
  EXPECT_EQ(first, reordered);
  EXPECT_EQ(server.report().cache_misses, 1u);
  EXPECT_EQ(server.report().cache_hits, 2u);

  // Error responses are cached too.
  const std::string bad = R"({"op": "mtrm", "campaign": "unknown", "point": 0})";
  EXPECT_EQ(server.respond(bad), server.respond(bad));
  EXPECT_EQ(server.report().cache_misses, 2u);
  EXPECT_EQ(server.report().cache_hits, 3u);

  // Unparsable lines are counted, answered, and never cached.
  const std::string garbled = server.respond("this is not json");
  EXPECT_FALSE(JsonValue::parse(garbled).at("ok").as_bool());
  EXPECT_EQ(server.report().parse_errors, 1u);

  // "stats" bypasses the cache and reports the accounting.
  const JsonValue stats = JsonValue::parse(server.respond(R"({"op": "stats"})"));
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("cache_hits").as_uint(), 3u);
  EXPECT_EQ(stats.at("cache_misses").as_uint(), 2u);
  EXPECT_EQ(stats.at("cache_size").as_uint(), 2u);
  EXPECT_EQ(stats.at("parse_errors").as_uint(), 1u);

  // "stop" flips the shutdown flag.
  EXPECT_FALSE(server.stop_requested());
  const JsonValue stop = JsonValue::parse(server.respond(R"({"op": "stop"})"));
  EXPECT_TRUE(stop.at("ok").as_bool());
  EXPECT_TRUE(server.stop_requested());
}

/// Dials the server, retrying while it is still binding its socket.
service::Socket dial_with_retry(const std::filesystem::path& socket_path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    try {
      return service::dial_unix(socket_path);
    } catch (const ConfigError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return service::dial_unix(socket_path);  // last try: let the error surface
}

TEST(ManetdServer, ServesConcurrentClientsIdenticalBytesOverUnixSocket) {
  if (!service::unix_sockets_available()) {
    GTEST_SKIP() << "no Unix-domain sockets on this platform";
  }

  ServerOptions options;
  options.socket_path = fixture().root / "manetd_test.sock";
  options.cache_capacity = 32;
  options.quiet = true;
  ManetdServer server(fixture().engine(), options);

  std::size_t served = 0;
  std::thread server_thread([&] { served = server.serve(); });

  const std::string query =
      R"({"op": "rquantile", "campaign": "manetd_test", "point": 1, "fraction": 0.5})";
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRepeats = 2;
  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      service::Socket socket = dial_with_retry(options.socket_path);
      for (std::size_t r = 0; r < kRepeats; ++r) {
        socket.send_all(query + "\n");
        std::string line;
        ASSERT_TRUE(socket.read_line(line));
        responses[c].push_back(line);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Every client saw the exact same bytes for the identical query.
  for (std::size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), kRepeats);
    for (const std::string& line : responses[c]) EXPECT_EQ(line, responses[0][0]);
  }
  EXPECT_TRUE(JsonValue::parse(responses[0][0]).at("ok").as_bool());

  // One more client: stats must show the cache absorbing the repeats, then
  // stop shuts the server down cleanly.
  {
    service::Socket socket = dial_with_retry(options.socket_path);
    socket.send_all("{\"op\": \"stats\"}\n");
    std::string line;
    ASSERT_TRUE(socket.read_line(line));
    const JsonValue stats = JsonValue::parse(line);
    EXPECT_EQ(stats.at("cache_misses").as_uint(), 1u);
    EXPECT_EQ(stats.at("cache_hits").as_uint(), kClients * kRepeats - 1);

    socket.send_all("{\"op\": \"stop\"}\n");
    ASSERT_TRUE(socket.read_line(line));
    EXPECT_TRUE(JsonValue::parse(line).at("ok").as_bool());
  }
  server_thread.join();
  // 8 queries + stats + stop.
  EXPECT_EQ(served, kClients * kRepeats + 2);
}

TEST(ManetdServer, IdleClientTimesOutWithoutWedgingTheAcceptLoop) {
  if (!service::unix_sockets_available()) {
    GTEST_SKIP() << "no Unix-domain sockets on this platform";
  }

  ServerOptions options;
  options.socket_path = fixture().root / "manetd_idle.sock";
  options.cache_capacity = 8;
  options.client_timeout_seconds = 0.2;
  options.quiet = true;
  ManetdServer server(fixture().engine(), options);

  std::size_t served = 0;
  std::thread server_thread([&] { served = server.serve(); });

  // First client connects and never sends a byte: the sequential accept loop
  // must drop it after client_timeout_seconds instead of blocking forever.
  service::Socket idle = dial_with_retry(options.socket_path);

  // Second client, queued behind the idler, must still get answered — and
  // its stop request must still shut the server down cleanly.
  service::Socket active = dial_with_retry(options.socket_path);
  active.send_all("{\"op\": \"health\"}\n{\"op\": \"stop\"}\n");
  std::string line;
  ASSERT_TRUE(active.read_line(line));
  EXPECT_TRUE(JsonValue::parse(line).at("ok").as_bool());
  ASSERT_TRUE(active.read_line(line));
  EXPECT_TRUE(JsonValue::parse(line).at("ok").as_bool());

  server_thread.join();
  idle.close_stream();
  EXPECT_EQ(served, 2u);
}

TEST(ManetdServer, ClientHangupBeforeReadingDoesNotKillTheServer) {
  if (!service::unix_sockets_available()) {
    GTEST_SKIP() << "no Unix-domain sockets on this platform";
  }

  ServerOptions options;
  options.socket_path = fixture().root / "manetd_hangup.sock";
  options.cache_capacity = 8;
  options.client_timeout_seconds = 5.0;
  options.quiet = true;
  ManetdServer server(fixture().engine(), options);

  std::thread server_thread([&] { (void)server.serve(); });

  // A client queues a burst of requests and hangs up without reading any
  // response: once the peer is gone, the server's send raises EPIPE (dead
  // pipe). That must end only this client's session — never the process via
  // SIGPIPE — so the next client still gets served.
  {
    service::Socket rude = dial_with_retry(options.socket_path);
    std::string burst;
    for (int i = 0; i < 64; ++i) burst += "{\"op\": \"health\"}\n";
    rude.send_all(burst);
  }  // destructor closes the socket with every response unread

  service::Socket polite = dial_with_retry(options.socket_path);
  polite.send_all("{\"op\": \"health\"}\n{\"op\": \"stop\"}\n");
  std::string line;
  ASSERT_TRUE(polite.read_line(line));
  EXPECT_TRUE(JsonValue::parse(line).at("ok").as_bool());
  ASSERT_TRUE(polite.read_line(line));
  EXPECT_TRUE(JsonValue::parse(line).at("ok").as_bool());
  server_thread.join();
}

}  // namespace
}  // namespace manet
