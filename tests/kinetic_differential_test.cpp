// Differential harness pinning the kinetic engine to the batch engine: on
// every step of every trajectory, KineticEmstEngine must produce the SAME
// tree as EmstEngine — same edges, same order, same weight bits — and
// therefore the same bottleneck, weight multiset, breakpoint curve and
// largest-component curve. The sweep covers D in {1,2,3}, waypoint and
// drunkard mobility, box and torus metrics, clustered / duplicate /
// boundary-straddling configurations, and the engine's fallback paths
// (radius growth, mass cell-crossing steps, hysteresis shrink). The PR 2/4
// golden MTRM checksums are re-pinned here through the forced kinetic path
// at 1 and 8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "graph/union_find.hpp"
#include "mobility/factory.hpp"
#include "sim/deployment.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/trace_workspace.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"
#include "topology/emst_grid.hpp"
#include "topology/emst_kinetic.hpp"
#include "topology/mst.hpp"

namespace manet {
namespace {

/// Restores the environment-driven engine selection on scope exit even when
/// an assertion fails mid-test.
struct KineticModeGuard {
  ~KineticModeGuard() { set_kinetic_mode(KineticMode::kFromEnvironment); }
};
struct ParallelismGuard {
  ~ParallelismGuard() { set_max_parallelism(0); }
};

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// The strongest possible comparison: the kinetic tree must equal the batch
/// tree element-wise — endpoints AND weight bit patterns — because both run
/// filtered Kruskal under the same strict (d2, u, v) total order (dense
/// inputs are delegated to the identical batch code).
void expect_trees_identical(std::span<const WeightedEdge> batch,
                            std::span<const WeightedEdge> kinetic, std::size_t step) {
  ASSERT_EQ(batch.size(), kinetic.size()) << "step " << step;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].u, kinetic[i].u) << "step " << step << " edge " << i;
    EXPECT_EQ(batch[i].v, kinetic[i].v) << "step " << step << " edge " << i;
    EXPECT_TRUE(bits_equal(batch[i].weight, kinetic[i].weight))
        << "step " << step << " edge " << i << ": " << batch[i].weight
        << " != " << kinetic[i].weight;
  }
  if (!batch.empty()) {
    EXPECT_TRUE(bits_equal(tree_bottleneck(batch), tree_bottleneck(kinetic)));
  }
}

/// Breakpoint curves from both trees must agree bit-for-bit as well (the
/// quantity every MTRM statistic is derived from).
template <int D>
void expect_curves_identical(std::size_t n, std::span<const WeightedEdge> batch,
                             std::span<const WeightedEdge> kinetic, std::size_t step) {
  UnionFind dsu(0);
  std::vector<LargestComponentCurve::Breakpoint> scratch;
  const LargestComponentCurve batch_curve(n, batch, dsu, scratch);
  const LargestComponentCurve kinetic_curve(n, kinetic, dsu, scratch);
  const auto b = batch_curve.breakpoints();
  const auto k = kinetic_curve.breakpoints();
  ASSERT_EQ(b.size(), k.size()) << "step " << step;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_TRUE(bits_equal(b[i].range, k[i].range)) << "step " << step;
    EXPECT_EQ(b[i].size, k[i].size) << "step " << step;
  }
}

/// Drives one mobility trajectory through both engines, comparing every
/// step. Returns the kinetic stats for fallback-path assertions.
template <int D>
KineticStats run_differential_trace(std::size_t n, double side, const MobilityConfig& mobility,
                                    bool torus, std::size_t steps, std::uint64_t seed) {
  const Box<D> box(side);
  Rng rng(seed);
  auto positions = uniform_deployment(n, box, rng);
  const auto model = make_mobility_model<D>(mobility, box);
  model->initialize(positions, rng);

  EmstEngine<D> batch;
  KineticEmstEngine<D> kinetic;
  for (std::size_t s = 0; s < steps; ++s) {
    if (s > 0) model->step(positions, rng);
    const auto batch_tree = torus ? batch.torus(positions, side) : batch.euclidean(positions, box);
    const auto kinetic_tree = s == 0 ? (torus ? kinetic.start_torus(positions, side)
                                              : kinetic.start(positions, box))
                                     : kinetic.advance(positions);
    expect_trees_identical(batch_tree, kinetic_tree, s);
    expect_curves_identical<D>(n, batch_tree, kinetic_tree, s);
  }
  return kinetic.stats();
}

/// A fast waypoint setup (relative to the paper's gentle defaults) so nodes
/// cross cell boundaries every few steps.
MobilityConfig fast_waypoint(double side) {
  MobilityConfig config;
  config.kind = MobilityKind::kRandomWaypoint;
  config.waypoint.v_min = 0.01 * side;
  config.waypoint.v_max = 0.08 * side;
  config.waypoint.pause_steps = 3;
  config.waypoint.p_stationary = 0.1;
  return config;
}

MobilityConfig fast_drunkard(double side) {
  MobilityConfig config;
  config.kind = MobilityKind::kDrunkard;
  config.drunkard.step_radius = 0.05 * side;
  config.drunkard.p_pause = 0.2;
  config.drunkard.p_stationary = 0.1;
  return config;
}

/// Sparse motion: most nodes permanently parked, the movers still fast. The
/// per-step moved fraction stays well under the engine's mass-move
/// threshold, so steps take the INCREMENTAL repair path — the configuration
/// for tests asserting incremental stats.
MobilityConfig sparse_waypoint(double side) {
  MobilityConfig config = fast_waypoint(side);
  config.waypoint.p_stationary = 0.75;
  return config;
}

MobilityConfig sparse_drunkard(double side) {
  MobilityConfig config = fast_drunkard(side);
  config.drunkard.p_stationary = 0.75;
  return config;
}

TEST(KineticDifferential, WaypointBoxMatchesBatch1D) {
  run_differential_trace<1>(128, 64.0, fast_waypoint(64.0), /*torus=*/false, 120, 11);
}

TEST(KineticDifferential, WaypointBoxMatchesBatch2D) {
  run_differential_trace<2>(200, 64.0, fast_waypoint(64.0), /*torus=*/false, 120, 12);
  const auto stats =
      run_differential_trace<2>(200, 64.0, sparse_waypoint(64.0), /*torus=*/false, 120, 12);
  EXPECT_FALSE(stats.dense_mode);
  EXPECT_GT(stats.incremental_repairs, 0u);
  EXPECT_GT(stats.boundary_crossings, 0u);
}

TEST(KineticDifferential, WaypointBoxMatchesBatch3D) {
  run_differential_trace<3>(160, 32.0, fast_waypoint(32.0), /*torus=*/false, 80, 13);
}

TEST(KineticDifferential, DrunkardBoxMatchesBatch1D) {
  run_differential_trace<1>(96, 48.0, fast_drunkard(48.0), /*torus=*/false, 120, 21);
}

TEST(KineticDifferential, DrunkardBoxMatchesBatch2D) {
  run_differential_trace<2>(180, 64.0, fast_drunkard(64.0), /*torus=*/false, 120, 22);
}

TEST(KineticDifferential, DrunkardBoxMatchesBatch3D) {
  run_differential_trace<3>(140, 24.0, fast_drunkard(24.0), /*torus=*/false, 80, 23);
}

TEST(KineticDifferential, PaperMobilityDefaultsMatchBatch2D) {
  // The paper's own Section 4.2 parameters (gentle motion, long pauses):
  // many steps move nothing or almost nothing — the degenerate-delta path.
  run_differential_trace<2>(64, 256.0, MobilityConfig::paper_waypoint(256.0), false, 150, 31);
  run_differential_trace<2>(64, 256.0, MobilityConfig::paper_drunkard(256.0), false, 150, 32);
}

TEST(KineticDifferential, TorusMatchesBatch2D) {
  run_differential_trace<2>(200, 64.0, fast_drunkard(64.0), /*torus=*/true, 120, 41);
  const auto stats =
      run_differential_trace<2>(200, 64.0, sparse_drunkard(64.0), /*torus=*/true, 120, 41);
  EXPECT_GT(stats.incremental_repairs, 0u);
}

TEST(KineticDifferential, TorusMatchesBatch1DAnd3D) {
  run_differential_trace<1>(128, 64.0, fast_drunkard(64.0), /*torus=*/true, 100, 42);
  run_differential_trace<3>(160, 24.0, fast_waypoint(24.0), /*torus=*/true, 80, 43);
}

TEST(KineticDifferential, ClusteredDeploymentForcesRadiusGrowthAndMatches) {
  // Two tight clusters far apart: the connectivity-scale initial radius
  // cannot bridge the gap, so the start() build must double — and when the
  // clusters drift, the incremental path keeps operating at the grown
  // radius. Drive positions directly to control the geometry.
  const double side = 200.0;
  const Box2 box(side);
  Rng rng(51);
  std::vector<Point2> positions;
  for (std::size_t i = 0; i < 40; ++i) {
    positions.push_back({{rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0)}});
  }
  for (std::size_t i = 0; i < 40; ++i) {
    positions.push_back({{rng.uniform(188.0, 200.0), rng.uniform(188.0, 200.0)}});
  }

  EmstEngine<2> batch;
  KineticEmstEngine<2> kinetic;
  expect_trees_identical(batch.euclidean(positions, box), kinetic.start(positions, box), 0);
  EXPECT_GT(kinetic.stats().radius_growths, 0u);

  for (std::size_t s = 1; s <= 40; ++s) {
    for (auto& p : positions) {
      p.coords[0] = std::clamp(p.coords[0] + rng.uniform(-1.0, 1.0), 0.0, side);
      if (rng.uniform(0.0, 1.0) < 0.5) continue;  // keep some nodes parked
      p.coords[1] = std::clamp(p.coords[1] + rng.uniform(-1.0, 1.0), 0.0, side);
    }
    expect_trees_identical(batch.euclidean(positions, box), kinetic.advance(positions), s);
  }
}

TEST(KineticDifferential, StretchingGapForcesIncrementalRadiusGrowthAndMatches) {
  // Start connected at the initial radius, then pull the two halves apart a
  // little each step: eventually no candidate edge bridges the gap, the
  // incremental Kruskal stops spanning mid-trace, and the engine must take
  // the growth fallback without changing any result.
  const double side = 400.0;
  const Box2 box(side);
  Rng rng(52);
  std::vector<Point2> positions;
  for (std::size_t i = 0; i < 80; ++i) {
    positions.push_back({{rng.uniform(140.0, 260.0), rng.uniform(0.0, side)}});
  }

  EmstEngine<2> batch;
  KineticEmstEngine<2> kinetic;
  expect_trees_identical(batch.euclidean(positions, box), kinetic.start(positions, box), 0);
  const std::size_t growths_at_start = kinetic.stats().radius_growths;

  for (std::size_t s = 1; s <= 35; ++s) {
    for (auto& p : positions) {
      const double drift = p.coords[0] < 200.0 ? -4.0 : 4.0;
      p.coords[0] = std::clamp(p.coords[0] + drift, 0.0, side);
    }
    expect_trees_identical(batch.euclidean(positions, box), kinetic.advance(positions), s);
  }
  EXPECT_GT(kinetic.stats().radius_growths, growths_at_start)
      << "the separating halves never forced a mid-trace radius growth";
}

TEST(KineticDifferential, OutlierReturnTriggersHysteresisShrinkAndMatches) {
  // One far outlier inflates the spanning radius at start(); after it walks
  // back into the bulk, the maintained radius sits far above the bottleneck
  // and the hysteresis shrink must fire — with bit-identical results before,
  // during and after.
  const double side = 300.0;
  const Box2 box(side);
  Rng rng(53);
  std::vector<Point2> positions;
  for (std::size_t i = 0; i < 64; ++i) {
    positions.push_back({{rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)}});
  }
  positions.push_back({{290.0, 290.0}});

  EmstEngine<2> batch;
  KineticEmstEngine<2> kinetic;
  expect_trees_identical(batch.euclidean(positions, box), kinetic.start(positions, box), 0);
  EXPECT_GT(kinetic.stats().radius_growths, 0u);

  for (std::size_t s = 1; s <= 30; ++s) {
    auto& outlier = positions.back();
    outlier.coords[0] = std::max(30.0, outlier.coords[0] - 30.0);
    outlier.coords[1] = std::max(30.0, outlier.coords[1] - 30.0);
    // Jiggle a couple of bulk nodes so the steps are not no-ops.
    for (std::size_t j = 0; j < 4; ++j) {
      auto& p = positions[j];
      p.coords[0] = std::clamp(p.coords[0] + rng.uniform(-0.5, 0.5), 0.0, side);
    }
    expect_trees_identical(batch.euclidean(positions, box), kinetic.advance(positions), s);
  }
  EXPECT_GT(kinetic.stats().radius_shrinks, 0u)
      << "returning outlier never triggered the hysteresis shrink";
}

TEST(KineticDifferential, MassTeleportStepsFallBackAndMatch) {
  // Fresh uniform positions every step: every node moves (waypoint-arrival /
  // redeployment scale), which must take the mass-move rebuild path.
  const double side = 64.0;
  const Box2 box(side);
  Rng rng(54);
  auto positions = uniform_deployment(120, box, rng);

  EmstEngine<2> batch;
  KineticEmstEngine<2> kinetic;
  expect_trees_identical(batch.euclidean(positions, box), kinetic.start(positions, box), 0);
  for (std::size_t s = 1; s <= 25; ++s) {
    positions = uniform_deployment(120, box, rng);
    const auto b = batch.euclidean(positions, box);
    const auto k = kinetic.advance(positions);
    expect_trees_identical(b, k, s);
    expect_curves_identical<2>(120, b, k, s);
  }
  EXPECT_GT(kinetic.stats().mass_move_rebuilds, 20u);
}

TEST(KineticDifferential, DuplicateAndBoundaryStraddlingPointsMatch) {
  // Coincident nodes (zero-weight edges, maximal tie pressure on the
  // (d2, u, v) order) and nodes pinned to the region boundary, moving on and
  // off it — box and torus.
  const double side = 50.0;
  const Box2 box(side);
  Rng rng(55);
  std::vector<Point2> positions;
  for (std::size_t i = 0; i < 30; ++i) {
    const Point2 p{{rng.uniform(0.0, side), rng.uniform(0.0, side)}};
    positions.push_back(p);
    positions.push_back(p);  // exact duplicate
  }
  for (std::size_t i = 0; i < 20; ++i) {
    positions.push_back({{rng.uniform(0.0, 1.0) < 0.5 ? 0.0 : side, rng.uniform(0.0, side)}});
  }

  for (const bool torus : {false, true}) {
    EmstEngine<2> batch;
    KineticEmstEngine<2> kinetic;
    auto pts = positions;
    const auto b0 = torus ? batch.torus(pts, side) : batch.euclidean(pts, box);
    const auto k0 = torus ? kinetic.start_torus(pts, side) : kinetic.start(pts, box);
    expect_trees_identical(b0, k0, 0);
    for (std::size_t s = 1; s <= 40; ++s) {
      for (std::size_t i = 0; i < pts.size(); i += 3) {
        // Snap to the boundary half the time, drift otherwise.
        pts[i].coords[0] = rng.uniform(0.0, 1.0) < 0.5
                               ? (rng.uniform(0.0, 1.0) < 0.5 ? 0.0 : side)
                               : std::clamp(pts[i].coords[0] + rng.uniform(-2.0, 2.0), 0.0, side);
      }
      const auto b = torus ? batch.torus(pts, side) : batch.euclidean(pts, box);
      const auto k = kinetic.advance(pts);
      expect_trees_identical(b, k, s);
      expect_curves_identical<2>(pts.size(), b, k, s);
    }
  }
}

TEST(KineticDifferential, RandomizedConfigSweep) {
  // Randomized fuzz over the whole configuration space: dimension, node
  // count (straddling the dense cutoff), region size, model, metric.
  Rng meta(0xD1FFull);
  for (int round = 0; round < 24; ++round) {
    const int d = 1 + static_cast<int>(meta.next_u64() % 3);
    const std::size_t n = 24 + meta.next_u64() % 200;
    const double side = 16.0 + meta.uniform(0.0, 80.0);
    const bool torus = (meta.next_u64() & 1) != 0;
    const bool waypoint = (meta.next_u64() & 1) != 0;
    const std::size_t steps = 25 + meta.next_u64() % 30;
    const std::uint64_t seed = meta.next_u64();
    const MobilityConfig mobility = waypoint ? fast_waypoint(side) : fast_drunkard(side);
    SCOPED_TRACE(::testing::Message() << "round=" << round << " d=" << d << " n=" << n
                                      << " side=" << side << " torus=" << torus
                                      << " waypoint=" << waypoint);
    if (d == 1) {
      run_differential_trace<1>(n, side, mobility, torus, steps, seed);
    } else if (d == 2) {
      run_differential_trace<2>(n, side, mobility, torus, steps, seed);
    } else {
      run_differential_trace<3>(n, side, mobility, torus, steps, seed);
    }
  }
}

TEST(KineticDifferential, RunMobileTraceEngineSelectionIsBitIdentical) {
  // The run_mobile_trace seam itself: explicit batch vs explicit kinetic on
  // the same seed must produce bit-identical traces.
  const Box2 box(96.0);
  const auto config = fast_waypoint(96.0);
  const auto run = [&](TraceEngine engine) {
    Rng rng(61);
    const auto model = make_mobility_model<2>(config, box);
    TraceWorkspace<2> ws;
    const auto trace = run_mobile_trace<2>(128, box, 60, *model, rng, &ws, engine);
    const auto timeline = trace.critical_radius_timeline();
    return std::vector<double>(timeline.begin(), timeline.end());
  };
  const auto batch_timeline = run(TraceEngine::kBatch);
  const auto kinetic_timeline = run(TraceEngine::kKinetic);
  ASSERT_EQ(batch_timeline.size(), kinetic_timeline.size());
  for (std::size_t i = 0; i < batch_timeline.size(); ++i) {
    EXPECT_TRUE(bits_equal(batch_timeline[i], kinetic_timeline[i])) << "step " << i;
  }
}

std::vector<double> flatten_all(const std::vector<MtrmResult>& results) {
  std::vector<double> values;
  for (const MtrmResult& result : results) {
    const auto flat = flatten_mtrm_result(result);
    values.insert(values.end(), flat.begin(), flat.end());
  }
  return values;
}

TEST(KineticDifferential, MtrmSweepIsBitIdenticalAcrossEngines) {
  const KineticModeGuard guard;
  const std::vector<MtrmConfig> configs = {
      experiments::waypoint_experiment(256.0, Preset::kQuick),
      experiments::drunkard_experiment(256.0, Preset::kQuick)};

  set_kinetic_mode(KineticMode::kForceOff);
  const auto batch_flat = flatten_all(experiments::solve_mtrm_sweep(configs, 20020623));
  set_kinetic_mode(KineticMode::kForceOn);
  const auto kinetic_flat = flatten_all(experiments::solve_mtrm_sweep(configs, 20020623));

  ASSERT_EQ(batch_flat.size(), kinetic_flat.size());
  EXPECT_EQ(0, std::memcmp(batch_flat.data(), kinetic_flat.data(),
                           batch_flat.size() * sizeof(double)));
}

std::uint64_t mtrm_checksum(const MtrmConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  return fnv1a_bits(flatten_mtrm_result(solve_mtrm<2>(config, rng)));
}

// The PR 2/4 golden digests (tests/determinism_test.cpp), re-pinned through
// the FORCED kinetic path at 1 and 8 threads. If these move while the
// determinism_test copies hold, the kinetic engine has broken bit-identity.
TEST(KineticDifferential, GoldenChecksumsHoldThroughKineticPathAtOneAndEightThreads) {
  const KineticModeGuard mode_guard;
  const ParallelismGuard parallelism_guard;
  set_kinetic_mode(KineticMode::kForceOn);

  const MtrmConfig waypoint = experiments::waypoint_experiment(256.0, Preset::kQuick);
  const MtrmConfig drunkard = experiments::drunkard_experiment(256.0, Preset::kQuick);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    set_max_parallelism(threads);
    EXPECT_EQ(hex_u64(mtrm_checksum(waypoint, 20020623)), hex_u64(0x7f15b5b64209b3a3ull))
        << "threads=" << threads;
    EXPECT_EQ(hex_u64(mtrm_checksum(drunkard, 20020623)), hex_u64(0xca0fd93f2a6598c4ull))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace manet
