#include "geometry/cell_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/torus.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

using Pair = std::pair<std::size_t, std::size_t>;

template <int D>
std::set<Pair> brute_force_pairs(const std::vector<Point<D>>& points, double radius) {
  std::set<Pair> pairs;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (squared_distance(points[i], points[j]) <= radius * radius) {
        pairs.emplace(i, j);
      }
    }
  }
  return pairs;
}

template <int D>
std::set<Pair> grid_pairs(const std::vector<Point<D>>& points, const Box<D>& box,
                          double radius) {
  const CellGrid<D> grid(points, box, radius);
  std::set<Pair> pairs;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j, double d2) {
    EXPECT_LT(i, j);
    EXPECT_LE(d2, radius * radius);
    const auto [it, inserted] = pairs.emplace(i, j);
    EXPECT_TRUE(inserted) << "pair reported twice: (" << i << ", " << j << ")";
  });
  return pairs;
}

TEST(CellGrid, MatchesBruteForce2D) {
  Rng rng(1);
  const Box2 box(100.0);
  for (double radius : {1.0, 5.0, 20.0, 60.0, 150.0}) {
    const auto points = uniform_deployment(80, box, rng);
    EXPECT_EQ(grid_pairs(points, box, radius), brute_force_pairs(points, radius))
        << "radius=" << radius;
  }
}

TEST(CellGrid, MatchesBruteForce1D) {
  Rng rng(2);
  const Box1 box(50.0);
  for (double radius : {0.5, 2.0, 10.0}) {
    const auto points = uniform_deployment(60, box, rng);
    EXPECT_EQ(grid_pairs(points, box, radius), brute_force_pairs(points, radius));
  }
}

TEST(CellGrid, MatchesBruteForce3D) {
  Rng rng(3);
  const Box3 box(30.0);
  for (double radius : {2.0, 8.0, 25.0}) {
    const auto points = uniform_deployment(50, box, rng);
    EXPECT_EQ(grid_pairs(points, box, radius), brute_force_pairs(points, radius));
  }
}

TEST(CellGrid, EmptyAndSingletonInputs) {
  const Box2 box(10.0);
  const std::vector<Point2> none;
  const std::vector<Point2> one = {{{5.0, 5.0}}};
  EXPECT_TRUE(grid_pairs(none, box, 1.0).empty());
  EXPECT_TRUE(grid_pairs(one, box, 1.0).empty());
}

TEST(CellGrid, BoundaryPointsAreHandled) {
  const Box2 box(10.0);
  // Points exactly on the box boundary, including the far corner.
  const std::vector<Point2> points = {
      {{0.0, 0.0}}, {{10.0, 10.0}}, {{10.0, 0.0}}, {{0.0, 10.0}}, {{5.0, 10.0}}};
  EXPECT_EQ(grid_pairs(points, box, 6.0), brute_force_pairs(points, 6.0));
  EXPECT_EQ(grid_pairs(points, box, 20.0), brute_force_pairs(points, 20.0));
}

TEST(CellGrid, CoincidentPointsFormPairs) {
  const Box2 box(10.0);
  const std::vector<Point2> points = {{{3.0, 3.0}}, {{3.0, 3.0}}, {{3.0, 3.0}}};
  EXPECT_EQ(grid_pairs(points, box, 0.5).size(), 3u);
}

TEST(CellGrid, PairsAtExactlyRadiusAreIncluded) {
  const Box2 box(10.0);
  const std::vector<Point2> points = {{{1.0, 1.0}}, {{4.0, 1.0}}};
  EXPECT_EQ(grid_pairs(points, box, 3.0).size(), 1u);
  EXPECT_EQ(grid_pairs(points, box, 2.999).size(), 0u);
}

TEST(CellGrid, QueryRadiusLargerThanCellSizeIsRejected) {
  const Box2 box(100.0);
  const std::vector<Point2> points = {{{1.0, 1.0}}, {{2.0, 2.0}}};
  const CellGrid<2> grid(points, box, 5.0);
  EXPECT_THROW(
      grid.for_each_pair_within(grid.cell_size() * 2.0, [](std::size_t, std::size_t, double) {}),
      ContractViolation);
}

TEST(CellGrid, TinyCellSizeIsClampedNotPathological) {
  Rng rng(4);
  const Box2 box(10000.0);
  const auto points = uniform_deployment(40, box, rng);
  // A tiny requested cell size must not allocate a huge grid; the clamped
  // grid still answers queries at the (enlarged) cell size correctly.
  const CellGrid<2> grid(points, box, 1e-6);
  EXPECT_LE(grid.cells_per_axis() * grid.cells_per_axis(), 4u * 40u + 64u);
  const double radius = grid.cell_size();
  std::set<Pair> pairs;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j, double) {
    pairs.emplace(i, j);
  });
  EXPECT_EQ(pairs, brute_force_pairs(points, radius));
}

template <int D>
std::set<Pair> brute_force_torus_pairs(const std::vector<Point<D>>& points, double side,
                                       double radius) {
  std::set<Pair> pairs;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (torus_squared_distance(points[i], points[j], side) <= radius * radius) {
        pairs.emplace(i, j);
      }
    }
  }
  return pairs;
}

template <int D>
std::set<Pair> grid_torus_pairs(const std::vector<Point<D>>& points, const CellGrid<D>& grid,
                                double side, double radius) {
  std::set<Pair> pairs;
  grid.for_each_torus_pair_within(radius, [&](std::size_t i, std::size_t j, double d2) {
    EXPECT_LT(i, j);
    EXPECT_LE(d2, radius * radius);
    const auto [it, inserted] = pairs.emplace(i, j);
    EXPECT_TRUE(inserted) << "torus pair reported twice: (" << i << ", " << j << ")";
    EXPECT_DOUBLE_EQ(d2, torus_squared_distance(points[i], points[j], side));
  });
  return pairs;
}

TEST(CellGrid, TorusPairsMatchBruteForce2D) {
  Rng rng(21);
  const double side = 100.0;
  const Box2 box(side);
  for (double radius : {2.0, 10.0, 30.0}) {
    const auto points = uniform_deployment(70, box, rng);
    const CellGrid<2> grid(points, box, radius);
    EXPECT_EQ(grid_torus_pairs(points, grid, side, radius),
              brute_force_torus_pairs(points, side, radius))
        << "radius=" << radius;
  }
}

TEST(CellGrid, TorusPairsMatchBruteForce3D) {
  Rng rng(22);
  const double side = 20.0;
  const Box3 box(side);
  for (double radius : {1.5, 6.0}) {
    const auto points = uniform_deployment(50, box, rng);
    const CellGrid<3> grid(points, box, radius);
    EXPECT_EQ(grid_torus_pairs(points, grid, side, radius),
              brute_force_torus_pairs(points, side, radius));
  }
}

TEST(CellGrid, TorusPairsSeeAcrossTheWrapSeam) {
  const double side = 100.0;
  const Box2 box(side);
  // Euclidean distance ~98, torus distance 2: only wrap-aware scanning finds it.
  const std::vector<Point2> points = {{{1.0, 50.0}}, {{99.0, 50.0}}};
  const CellGrid<2> grid(points, box, 5.0);
  EXPECT_EQ(grid_torus_pairs(points, grid, side, 5.0).size(), 1u);
  EXPECT_TRUE(grid_pairs(points, box, 5.0).empty());
}

TEST(CellGrid, TorusPairsFallBackWhenFewerThanThreeCellsPerAxis) {
  // A radius over a third of the side gives cells_per_axis < 3, where the
  // wrapped neighborhood would alias; the all-pairs fallback must stay exact.
  Rng rng(23);
  const double side = 10.0;
  const Box2 box(side);
  const auto points = uniform_deployment(30, box, rng);
  const CellGrid<2> grid(points, box, 4.5);
  ASSERT_LT(grid.cells_per_axis(), 3u);
  EXPECT_EQ(grid_torus_pairs(points, grid, side, 4.5), brute_force_torus_pairs(points, side, 4.5));
}

TEST(CellGrid, TorusFallbackBoundaryAtExactlyOneTwoAndThreeCellsPerAxis) {
  // The wrapped 3^D neighborhood is only sound at cells_per_axis >= 3; below
  // that the implementation must take the all-pairs fallback. Pin the
  // transition exactly: side 12 with radii 4.0 / 4.8 / 6.1 lands on 3, 2 and
  // 1 cells per axis, and all three answers must match brute force.
  Rng rng(26);
  const double side = 12.0;
  const Box2 box(side);
  const auto points = uniform_deployment(40, box, rng);
  struct Config {
    double radius;
    std::size_t expected_cells;
  };
  for (const auto& config : {Config{4.0, 3}, Config{4.8, 2}, Config{6.1, 1}}) {
    const CellGrid<2> grid(points, box, config.radius);
    ASSERT_EQ(grid.cells_per_axis(), config.expected_cells) << "radius=" << config.radius;
    EXPECT_EQ(grid_torus_pairs(points, grid, side, config.radius),
              brute_force_torus_pairs(points, side, config.radius))
        << "radius=" << config.radius;
  }
}

TEST(CellGrid, TorusSeamIsVisibleAtExactlyThreeCellsPerAxis) {
  // cells_per_axis == 3 is the first configuration that trusts the wrapped
  // neighborhood scan: a pair straddling the seam must still be found, and
  // only once (at 3 cells, a cell's wrapped 3x3 neighborhood is the whole
  // grid — maximal aliasing pressure on the dedup logic).
  const double side = 12.0;
  const Box2 box(side);
  const std::vector<Point2> points = {
      {{0.5, 6.0}}, {{11.5, 6.0}}, {{6.0, 0.5}}, {{6.0, 11.5}}, {{0.0, 0.0}}, {{12.0, 12.0}}};
  const CellGrid<2> grid(points, box, 4.0);
  ASSERT_EQ(grid.cells_per_axis(), 3u);
  EXPECT_EQ(grid_torus_pairs(points, grid, side, 4.0),
            brute_force_torus_pairs(points, side, 4.0));
}

TEST(CellGrid, RebuildInPlaceAcrossTheTorusFallbackBoundary) {
  // A reused grid crossing the cells_per_axis < 3 boundary in both
  // directions — exactly what the kinetic engine's doubling loop does when a
  // radius growth coarsens the grid past the fallback threshold and a later
  // shrink refines it back. Every rebuild must answer torus queries exactly.
  Rng rng(27);
  const double side = 12.0;
  const Box2 box(side);
  const auto points = uniform_deployment(35, box, rng);
  CellGrid<2> grid;
  for (const double radius : {4.0, 4.8, 6.1, 4.8, 4.0, 2.0, 6.1}) {
    grid.rebuild(points, box, radius);
    const CellGrid<2> fresh(points, box, radius);
    EXPECT_EQ(grid.cells_per_axis(), fresh.cells_per_axis()) << "radius=" << radius;
    EXPECT_EQ(grid.cell_size(), fresh.cell_size()) << "radius=" << radius;
    EXPECT_EQ(grid_torus_pairs(points, grid, side, radius),
              brute_force_torus_pairs(points, side, radius))
        << "radius=" << radius;
  }
}

TEST(CellGrid, RebuildMatchesFreshlyConstructedGrid) {
  Rng rng(24);
  const Box2 big(100.0);
  const Box2 small(8.0);
  CellGrid<2> reused;
  // Rebuild across different point counts, boxes and cell sizes; every
  // rebuild must answer queries exactly like a grid built from scratch.
  struct Config {
    std::size_t n;
    const Box2* box;
    double cell;
  };
  for (const auto& config : {Config{120, &big, 4.0}, Config{16, &small, 2.0},
                             Config{300, &big, 9.0}, Config{5, &big, 50.0}}) {
    const auto points = uniform_deployment(config.n, *config.box, rng);
    reused.rebuild(points, *config.box, config.cell);
    const CellGrid<2> fresh(points, *config.box, config.cell);
    EXPECT_EQ(reused.cells_per_axis(), fresh.cells_per_axis());
    EXPECT_EQ(reused.cell_size(), fresh.cell_size());
    const double radius = fresh.cell_size();
    std::set<Pair> from_reused;
    reused.for_each_pair_within(radius, [&](std::size_t i, std::size_t j, double) {
      from_reused.emplace(i, j);
    });
    EXPECT_EQ(from_reused, brute_force_pairs(points, radius))
        << "n=" << config.n << " cell=" << config.cell;
  }
}

TEST(CellGrid, RebuildNeverShrinksBelowRequestedCellSize) {
  // The engine's doubling loop relies on this: rebuilding with
  // cell_size = radius always yields a grid whose max_query_radius admits
  // that radius, even when clamping coarsens the cell.
  Rng rng(25);
  const Box2 box(10000.0);
  const auto points = uniform_deployment(50, box, rng);
  CellGrid<2> grid;
  for (double requested : {1e-6, 0.5, 70.0, 20000.0}) {
    grid.rebuild(points, box, requested);
    // Clamping may only coarsen the cells — except the single-cell grid,
    // whose one cell holds everything and accepts any query radius.
    if (grid.cells_per_axis() > 1) {
      EXPECT_GE(grid.cell_size(), requested * (1.0 - 1e-12));
    }
    EXPECT_LE(requested, grid.max_query_radius());
    std::set<Pair> pairs;
    grid.for_each_pair_within(requested, [&](std::size_t i, std::size_t j, double) {
      pairs.emplace(i, j);
    });
    EXPECT_EQ(pairs, brute_force_pairs(points, requested)) << "requested=" << requested;
  }
}

TEST(CellGrid, SingleCellGridAcceptsAnyQueryRadius) {
  const Box2 box(10.0);
  const std::vector<Point2> points = {{{1.0, 1.0}}, {{9.0, 9.0}}};
  const CellGrid<2> grid(points, box, 20.0);
  ASSERT_EQ(grid.cells_per_axis(), 1u);
  // One cell covers everything, so no radius can miss a pair.
  EXPECT_EQ(grid.max_query_radius(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(grid_pairs(points, box, 100.0).size(), 1u);
}

TEST(CellGrid, ReportedDistanceIsExact) {
  const Box2 box(10.0);
  const std::vector<Point2> points = {{{0.0, 0.0}}, {{3.0, 4.0}}};
  const CellGrid<2> grid(points, box, 6.0);
  grid.for_each_pair_within(6.0, [&](std::size_t i, std::size_t j, double d2) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(j, 1u);
    EXPECT_DOUBLE_EQ(d2, 25.0);
  });
}

}  // namespace
}  // namespace manet
