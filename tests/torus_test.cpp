#include "geometry/torus.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geometry/box.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"
#include "topology/mst.hpp"

namespace manet {
namespace {

TEST(TorusDistance, AgreesWithEuclideanForNearbyPoints) {
  const Point2 a{{1.0, 1.0}};
  const Point2 b{{2.0, 3.0}};
  EXPECT_DOUBLE_EQ(torus_squared_distance(a, b, 100.0), squared_distance(a, b));
  EXPECT_DOUBLE_EQ(torus_distance(a, b, 100.0), distance(a, b));
}

TEST(TorusDistance, WrapsAroundTheBoundary) {
  const Point1 left{{0.5}};
  const Point1 right{{9.5}};
  EXPECT_DOUBLE_EQ(torus_distance(left, right, 10.0), 1.0);  // not 9.0

  const Point2 corner_a{{0.0, 0.0}};
  const Point2 corner_b{{10.0, 10.0}};
  EXPECT_DOUBLE_EQ(torus_distance(corner_a, corner_b, 10.0), 0.0);  // same point mod l
}

TEST(TorusDistance, NeverExceedsEuclidean) {
  Rng rng(1);
  const Box2 box(50.0);
  const auto points = uniform_deployment(30, box, rng);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_LE(torus_squared_distance(points[i], points[j], 50.0),
                squared_distance(points[i], points[j]) + 1e-12);
    }
  }
}

TEST(TorusDistance, MaximumIsHalfDiagonal) {
  // On the torus no pair is farther than l/2 per axis.
  Rng rng(2);
  const Box2 box(20.0);
  const auto points = uniform_deployment(50, box, rng);
  const double max_possible = torus_distance(Point2{{0.0, 0.0}}, Point2{{10.0, 10.0}}, 20.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_LE(torus_distance(points[i], points[j], 20.0), max_possible + 1e-12);
    }
  }
}

TEST(TorusDistance, RejectsNonPositiveSide) {
  EXPECT_THROW(torus_squared_distance(Point1{{0.0}}, Point1{{1.0}}, 0.0),
               ContractViolation);
}

TEST(MstWithMetric, EuclideanInstanceMatchesEuclideanMst) {
  Rng rng(3);
  const Box2 box(40.0);
  const auto points = uniform_deployment(25, box, rng);
  const auto direct = euclidean_mst<2>(points);
  const auto via_metric =
      mst_with_metric<2>(points, [](const Point2& a, const Point2& b) {
        return squared_distance(a, b);
      });
  EXPECT_NEAR(tree_total_weight(direct), tree_total_weight(via_metric), 1e-9);
  EXPECT_NEAR(tree_bottleneck(direct), tree_bottleneck(via_metric), 1e-9);
}

TEST(TorusCriticalRange, NeverExceedsEuclideanCriticalRange) {
  Rng rng(4);
  const Box2 box(64.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto points = uniform_deployment(20, box, rng);
    EXPECT_LE(torus_critical_range<2>(points, 64.0),
              critical_range<2>(points) + 1e-12)
        << "trial " << trial;
  }
}

TEST(TorusCriticalRange, HealsBoundaryGap) {
  // Two clusters pressed against opposite edges: Euclidean needs to bridge
  // the whole region, the torus wraps around cheaply.
  const std::vector<Point1> points = {{{0.1}}, {{0.2}}, {{99.8}}, {{99.9}}};
  const double euclid = critical_range<1>(points);
  const double torus = torus_critical_range<1>(points, 100.0);
  EXPECT_NEAR(euclid, 99.6, 1e-9);
  // Circular gaps are 0.1, 0.1, 0.2 (wrap) and 99.6; the MST drops the
  // largest, so the torus bottleneck is the 0.2 wrap edge.
  EXPECT_NEAR(torus, 0.2, 1e-9);
}

TEST(TorusCriticalRange, EqualsEuclideanForCentralCluster) {
  // A cluster far from every border can't benefit from wrapping.
  const std::vector<Point2> points = {
      {{40.0, 40.0}}, {{42.0, 41.0}}, {{44.0, 39.0}}, {{41.0, 43.0}}};
  EXPECT_NEAR(torus_critical_range<2>(points, 100.0), critical_range<2>(points), 1e-12);
}

TEST(TorusCriticalRange, TrivialInputs) {
  const std::vector<Point2> none;
  EXPECT_DOUBLE_EQ(torus_critical_range<2>(none, 10.0), 0.0);
  const std::vector<Point2> one = {{{5.0, 5.0}}};
  EXPECT_DOUBLE_EQ(torus_critical_range<2>(one, 10.0), 0.0);
}

}  // namespace
}  // namespace manet
