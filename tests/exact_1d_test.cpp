#include "occupancy/exact_1d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"
#include "geometry/box.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"

namespace manet {
namespace {

using exact_1d::expected_critical_range;
using exact_1d::probability_connected;
using exact_1d::range_for_probability;

double monte_carlo_connected(std::uint64_t n, double r, double l, std::size_t trials,
                             Rng& rng) {
  const Box1 line(l);
  std::size_t connected = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto points = uniform_deployment(n, line, rng);
    if (critical_range<1>(points) <= r) ++connected;
  }
  return static_cast<double>(connected) / static_cast<double>(trials);
}

TEST(ProbabilityConnected1D, BoundaryCases) {
  EXPECT_DOUBLE_EQ(probability_connected(1, 0.0, 10.0), 1.0);  // single node
  EXPECT_DOUBLE_EQ(probability_connected(5, 10.0, 10.0), 1.0);  // r = l
  EXPECT_DOUBLE_EQ(probability_connected(5, 20.0, 10.0), 1.0);  // r > l
  EXPECT_DOUBLE_EQ(probability_connected(5, 0.0, 10.0), 0.0);   // r = 0
}

TEST(ProbabilityConnected1D, TwoNodesClosedForm) {
  // Two uniform points on [0, 1]: P(|X - Y| <= r) = 1 - (1 - r)^2 = 2r - r^2.
  for (double r : {0.1, 0.3, 0.5, 0.9}) {
    EXPECT_NEAR(probability_connected(2, r, 1.0), 2.0 * r - r * r, 1e-12) << "r=" << r;
  }
}

TEST(ProbabilityConnected1D, ThreeNodesClosedForm) {
  // n = 3 on [0, 1]: P = sum_j (-1)^j C(2, j)(1 - j r)_+^3.
  const double r = 0.4;
  const double expected = 1.0 - 2.0 * std::pow(1.0 - r, 3) + std::pow(1.0 - 2.0 * r, 3);
  EXPECT_NEAR(probability_connected(3, r, 1.0), expected, 1e-12);
}

TEST(ProbabilityConnected1D, ScaleInvariance) {
  // Only r / l matters.
  EXPECT_NEAR(probability_connected(10, 0.2, 1.0), probability_connected(10, 200.0, 1000.0),
              1e-12);
}

TEST(ProbabilityConnected1D, IsMonotoneInRange) {
  double previous = -1.0;
  for (double r = 0.0; r <= 1.0; r += 0.02) {
    const double p = probability_connected(30, r, 1.0);
    EXPECT_GE(p, previous - 1e-12);
    previous = p;
  }
}

TEST(ProbabilityConnected1D, MatchesMonteCarloAcrossRegimes) {
  Rng rng(1);
  const double l = 1000.0;
  for (std::uint64_t n : {5u, 16u, 64u, 128u}) {
    for (double fraction : {0.2, 0.5, 1.0, 2.0}) {
      // Ranges as multiples of the coverage scale l ln(n) / n.
      const double r = fraction * l * std::log(static_cast<double>(n)) /
                       static_cast<double>(n);
      if (r >= l) continue;
      const double exact = probability_connected(n, r, l);
      const double simulated = monte_carlo_connected(n, r, l, 4000, rng);
      EXPECT_NEAR(exact, simulated, 0.03) << "n=" << n << " fraction=" << fraction;
    }
  }
}

TEST(ProbabilityConnected1D, DeepSubcriticalIsZero) {
  // Far below the coverage threshold the probability is numerically zero
  // (this exercises the cancellation guard on huge alternating terms).
  EXPECT_DOUBLE_EQ(probability_connected(128, 1.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(probability_connected(500, 0.5, 1000.0), 0.0);
}

TEST(ProbabilityConnected1D, ValidatesInput) {
  EXPECT_THROW(probability_connected(0, 1.0, 10.0), ContractViolation);
  EXPECT_THROW(probability_connected(5, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(probability_connected(5, -1.0, 10.0), ContractViolation);
}

TEST(RangeForProbability1D, InvertsTheClosedForm) {
  for (std::uint64_t n : {4u, 16u, 64u}) {
    for (double p : {0.1, 0.5, 0.9, 0.99}) {
      const double r = range_for_probability(n, p, 1.0);
      EXPECT_NEAR(probability_connected(n, r, 1.0), p, 1e-6)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(RangeForProbability1D, TracksTheoremFiveScale) {
  // The exact threshold range at p = 0.5 should scale as l ln(l) / n for
  // n = sqrt(l): the ratio to the Theorem 5 prediction stays order 1.
  for (double l : {256.0, 4096.0, 65536.0}) {
    const auto n = static_cast<std::uint64_t>(std::sqrt(l));
    const double exact = range_for_probability(n, 0.5, l);
    const double theorem5 =
        theory::connectivity_threshold_range_1d(l, static_cast<double>(n));
    const double ratio = exact / theorem5;
    EXPECT_GT(ratio, 0.2) << "l=" << l;
    EXPECT_LT(ratio, 1.5) << "l=" << l;
  }
}

TEST(RangeForProbability1D, ValidatesInput) {
  EXPECT_THROW(range_for_probability(1, 0.5, 1.0), ContractViolation);
  EXPECT_THROW(range_for_probability(5, 0.0, 1.0), ContractViolation);
  EXPECT_THROW(range_for_probability(5, 1.0, 1.0), ContractViolation);
}

TEST(ExpectedCriticalRange1D, TwoNodesClosedForm) {
  // E|X - Y| for two uniform points on [0, l] is l / 3.
  EXPECT_NEAR(expected_critical_range(2, 1.0), 1.0 / 3.0, 1e-4);
  EXPECT_NEAR(expected_critical_range(2, 30.0), 10.0, 1e-3);
}

TEST(ExpectedCriticalRange1D, MatchesMonteCarlo) {
  Rng rng(2);
  const double l = 100.0;
  const std::uint64_t n = 20;
  const Box1 line(l);
  struct { double total; int count; } sum{0.0, 0};
  for (int t = 0; t < 20000; ++t) {
    const auto points = uniform_deployment(n, line, rng);
    sum.total += critical_range<1>(points);
    ++sum.count;
  }
  EXPECT_NEAR(expected_critical_range(n, l), sum.total / sum.count, 0.15);
}

TEST(ExpectedCriticalRange1D, DecreasesWithDensity) {
  EXPECT_GT(expected_critical_range(10, 100.0), expected_critical_range(40, 100.0));
}

}  // namespace
}  // namespace manet
