// PointStore (geometry/point_store.hpp): the SoA bridge between the public
// AoS `std::span<const Point<D>>` APIs and the batched kernels. The tests pin
// the round-trip exactness of assign/scatter, both permuted gathers (AoS
// source and SoA source), and the capacity-only growth discipline the
// zero-steady-state-allocation contract depends on.

#include "geometry/point_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "geometry/point.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

template <int D>
std::vector<Point<D>> random_points(std::size_t n, Rng& rng) {
  std::vector<Point<D>> points(n);
  for (auto& p : points) {
    for (int i = 0; i < D; ++i) p.coords[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 9.0);
  }
  return points;
}

template <int D>
void check_roundtrip() {
  Rng rng(11u + static_cast<std::uint64_t>(D));
  const auto points = random_points<D>(37, rng);

  PointStore<D> store;
  store.assign(points);
  ASSERT_EQ(store.size(), points.size());

  // Per-axis layout and element access agree with the AoS source.
  for (std::size_t k = 0; k < points.size(); ++k) {
    EXPECT_EQ(store.get(k), points[k]) << k;
    for (int i = 0; i < D; ++i) {
      EXPECT_EQ(store.axis(i)[k], points[k].coords[static_cast<std::size_t>(i)]);
    }
  }

  // scatter_to restores the AoS form exactly.
  std::vector<Point<D>> back(points.size());
  store.scatter_to(back);
  EXPECT_EQ(back, points);
}

TEST(PointStore, AssignScatterRoundTrip1D) { check_roundtrip<1>(); }
TEST(PointStore, AssignScatterRoundTrip2D) { check_roundtrip<2>(); }
TEST(PointStore, AssignScatterRoundTrip3D) { check_roundtrip<3>(); }

TEST(PointStore, GatherFromAosFollowsTheIdPermutation) {
  Rng rng(5);
  const auto points = random_points<2>(16, rng);
  std::vector<std::size_t> ids(points.size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  // An arbitrary permutation: reverse.
  std::reverse(ids.begin(), ids.end());

  PointStore<2> store;
  store.assign_gather(std::span<const Point<2>>(points), std::span<const std::size_t>(ids));
  ASSERT_EQ(store.size(), points.size());
  for (std::size_t s = 0; s < ids.size(); ++s) EXPECT_EQ(store.get(s), points[ids[s]]) << s;
}

TEST(PointStore, GatherFromAnotherStoreMatchesTheAosGather) {
  Rng rng(6);
  const auto points = random_points<3>(23, rng);
  PointStore<3> src;
  src.assign(points);

  std::vector<std::uint32_t> ids = {7, 0, 22, 7, 13, 1};
  PointStore<3> dst;
  dst.assign_gather(src, std::span<const std::uint32_t>(ids));
  ASSERT_EQ(dst.size(), ids.size());
  for (std::size_t s = 0; s < ids.size(); ++s) EXPECT_EQ(dst.get(s), points[ids[s]]) << s;
}

TEST(PointStore, SetGetAndSwap) {
  PointStore<2> a, b;
  a.resize(2);
  a.set(0, Point<2>{{1.0, 2.0}});
  a.set(1, Point<2>{{3.0, 4.0}});
  b.resize(1);
  b.set(0, Point<2>{{9.0, 9.0}});

  swap(a, b);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a.get(0), (Point<2>{{9.0, 9.0}}));
  EXPECT_EQ(b.get(1), (Point<2>{{3.0, 4.0}}));
}

TEST(PointStore, AxesPointersMatchAxisAccessors) {
  Rng rng(7);
  const auto points = random_points<3>(9, rng);
  PointStore<3> store;
  store.assign(points);
  const kernels::AxisPointers<3> axes = store.axes();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(axes[static_cast<std::size_t>(i)], store.axis(i));
  const kernels::MutableAxisPointers<3> maxes = store.mutable_axes();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(maxes[static_cast<std::size_t>(i)], store.axis(i));
}

TEST(PointStore, ShrinkingKeepsCapacityAndClearIsLogical) {
  PointStore<2> store;
  store.resize(100);
  const double* axis0 = store.axis(0);
  store.clear();
  EXPECT_TRUE(store.empty());
  store.resize(100);  // must reuse the same buffer — capacity never shrinks
  EXPECT_EQ(store.axis(0), axis0);
}

}  // namespace
}  // namespace manet
