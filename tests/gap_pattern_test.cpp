#include "occupancy/gap_pattern.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "occupancy/occupancy.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

using namespace gap_pattern;

TEST(OccupancyBits, AssignsCellsCorrectly) {
  const std::vector<Point1> nodes = {{{0.0}}, {{2.5}}, {{9.99}}};
  const auto bits = occupancy_bits(nodes, 10.0, 5);  // cells of length 2
  ASSERT_EQ(bits.size(), 5u);
  EXPECT_TRUE(bits[0]);   // 0.0
  EXPECT_TRUE(bits[1]);   // 2.5
  EXPECT_FALSE(bits[2]);
  EXPECT_FALSE(bits[3]);
  EXPECT_TRUE(bits[4]);   // 9.99
}

TEST(OccupancyBits, RightBoundaryFallsInLastCell) {
  const std::vector<Point1> nodes = {{{10.0}}};
  const auto bits = occupancy_bits(nodes, 10.0, 4);
  EXPECT_TRUE(bits[3]);
}

TEST(OccupancyBits, RejectsOutOfRangeCoordinates) {
  const std::vector<Point1> nodes = {{{-0.1}}};
  EXPECT_THROW(occupancy_bits(nodes, 10.0, 4), ContractViolation);
  const std::vector<Point1> beyond = {{{10.1}}};
  EXPECT_THROW(occupancy_bits(beyond, 10.0, 4), ContractViolation);
}

TEST(HasGapPattern, DetectsLemma1Patterns) {
  EXPECT_TRUE(has_gap_pattern({true, false, true}));
  EXPECT_TRUE(has_gap_pattern({true, false, false, false, true}));
  EXPECT_TRUE(has_gap_pattern({false, true, false, true, false}));
  EXPECT_TRUE(has_gap_pattern({true, true, false, true, true}));
}

TEST(HasGapPattern, RejectsConsecutiveOnes) {
  EXPECT_FALSE(has_gap_pattern({}));
  EXPECT_FALSE(has_gap_pattern({false, false, false}));
  EXPECT_FALSE(has_gap_pattern({true}));
  EXPECT_FALSE(has_gap_pattern({true, true, true}));
  EXPECT_FALSE(has_gap_pattern({false, true, true, false}));
  EXPECT_FALSE(has_gap_pattern({false, false, true, false, false}));
}

TEST(HasGapPattern, BoundaryCellsAnchorThePattern) {
  // `10*1` with the flanking 1s at the very first / very last cell — the
  // off-by-one-prone boundary of the scan.
  EXPECT_TRUE(has_gap_pattern({true, false, false, false, false, true}));
  // Pattern confined to the start: gap closed by a 1 before the end.
  EXPECT_TRUE(has_gap_pattern({true, false, true, false, false, false}));
  // Pattern confined to the end.
  EXPECT_TRUE(has_gap_pattern({false, false, false, true, false, true}));
  // Leading / trailing zeros alone never form a pattern: a gap needs
  // occupied cells on *both* sides.
  EXPECT_FALSE(has_gap_pattern({false, false, true, true, true}));
  EXPECT_FALSE(has_gap_pattern({true, true, true, false, false}));
  EXPECT_FALSE(has_gap_pattern({false, true, true, true, false}));
}

TEST(HasGapPattern, AllEmptyAndAllOccupiedStrings) {
  for (std::size_t C : {1u, 2u, 7u, 64u}) {
    EXPECT_FALSE(has_gap_pattern(std::vector<bool>(C, false))) << "C=" << C;
    EXPECT_FALSE(has_gap_pattern(std::vector<bool>(C, true))) << "C=" << C;
    EXPECT_TRUE(ones_are_consecutive(std::vector<bool>(C, false))) << "C=" << C;
    EXPECT_TRUE(ones_are_consecutive(std::vector<bool>(C, true))) << "C=" << C;
  }
}

TEST(OccupancyBits, SingleCellInputs) {
  // C = 1: every node lands in the one cell; no gap pattern can exist.
  const std::vector<Point1> nodes = {{{0.0}}, {{5.0}}, {{10.0}}};
  const auto bits = occupancy_bits(nodes, 10.0, 1);
  ASSERT_EQ(bits.size(), 1u);
  EXPECT_TRUE(bits[0]);
  EXPECT_FALSE(has_gap_pattern(bits));

  // C = 1 with no nodes: the all-empty single-cell string.
  const auto empty_bits = occupancy_bits({}, 10.0, 1);
  ASSERT_EQ(empty_bits.size(), 1u);
  EXPECT_FALSE(empty_bits[0]);
  EXPECT_FALSE(has_gap_pattern(empty_bits));
}

TEST(OccupancyBits, NodesAtExactCellBoundaries) {
  // x = l lands in the last cell; x = 0 in the first; interior boundaries
  // (x = k * l/C) land in cell k. With nodes only at the two extremes the
  // occupancy string is 1 0...0 1 — the canonical `10*1` pattern.
  const std::vector<Point1> extremes = {{{0.0}}, {{10.0}}};
  const auto bits = occupancy_bits(extremes, 10.0, 5);
  EXPECT_TRUE(bits.front());
  EXPECT_TRUE(bits.back());
  EXPECT_TRUE(has_gap_pattern(bits));

  const std::vector<Point1> boundary = {{{4.0}}};  // 4.0 / (10/5) = cell 2 exactly
  const auto boundary_bits = occupancy_bits(boundary, 10.0, 5);
  EXPECT_TRUE(boundary_bits[2]);
}

TEST(PatternProbabilityGivenEmpty, SingleCellIsDegenerate) {
  // C = 1 admits only k = 0 (occupied) or k = 1 (empty); both preclude the
  // pattern.
  EXPECT_DOUBLE_EQ(pattern_probability_given_empty(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(pattern_probability_given_empty(1, 1), 0.0);
}

TEST(OnesAreConsecutive, IsComplementOfGapPattern) {
  const std::vector<std::vector<bool>> cases = {
      {}, {true}, {true, false, true}, {false, true, true}, {true, false, false, true}};
  for (const auto& bits : cases) {
    EXPECT_EQ(ones_are_consecutive(bits), !has_gap_pattern(bits));
  }
}

TEST(PatternProbabilityGivenEmpty, BoundaryCases) {
  EXPECT_DOUBLE_EQ(pattern_probability_given_empty(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(pattern_probability_given_empty(10, 10), 0.0);
}

TEST(PatternProbabilityGivenEmpty, HandComputedSmallCase) {
  // C = 3, k = 1: patterns with one empty cell: {011, 101, 110}; only 101
  // has the gap. P = 1/3; formula: 1 - (k+1)/C(3,1) = 1 - 2/3 = 1/3.
  EXPECT_NEAR(pattern_probability_given_empty(3, 1), 1.0 / 3.0, 1e-12);

  // C = 4, k = 2: C(4,2) = 6 patterns; consecutive-ones patterns: 1100,
  // 0110, 0011 -> 3 of 6 have no gap; formula: 1 - 3/6 = 1/2.
  EXPECT_NEAR(pattern_probability_given_empty(4, 2), 0.5, 1e-12);
}

TEST(PatternProbabilityGivenEmpty, Lemma2LimitApproachesOne) {
  // Lemma 2: for 0 < k << C, P(pattern | mu = k) -> 1 as C -> infinity.
  double previous = 0.0;
  for (std::uint64_t C : {10u, 100u, 1000u, 10000u}) {
    const std::uint64_t k = C / 10;
    const double p = pattern_probability_given_empty(C, k);
    EXPECT_GE(p, previous);
    previous = p;
  }
  EXPECT_GT(previous, 1.0 - 1e-9);
}

TEST(PatternProbability, MatchesDirectEnumerationTinyCase) {
  // n = 2 balls in C = 3 cells: 9 equally likely (ordered) placements.
  // Gap pattern requires balls in cells {0, 2} -> 2 of 9.
  EXPECT_NEAR(pattern_probability(2, 3), 2.0 / 9.0, 1e-12);
}

TEST(PatternProbability, MatchesMonteCarlo) {
  Rng rng(1);
  for (const auto [n, C] : std::vector<std::pair<std::uint64_t, std::size_t>>{
           {5, 4}, {10, 8}, {20, 10}, {12, 20}}) {
    const double exact = pattern_probability(n, C);
    const double simulated = pattern_probability_monte_carlo(n, C, 100000, rng);
    EXPECT_NEAR(exact, simulated, 0.01) << "n=" << n << " C=" << C;
  }
}

TEST(PatternProbability, ZeroWhenOnlyOneCell) {
  EXPECT_DOUBLE_EQ(pattern_probability(10, 1), 0.0);
}

TEST(PatternProbability, IncreasesWithSparseness) {
  // For fixed n, more cells (smaller range) make the gap pattern more
  // likely.
  const std::uint64_t n = 20;
  double previous = 0.0;
  for (std::uint64_t C : {2u, 5u, 10u, 20u, 40u}) {
    const double p = pattern_probability(n, C);
    EXPECT_GE(p, previous - 1e-12) << "C=" << C;
    previous = p;
  }
}

TEST(PatternProbability, Theorem4GapRegimeStaysBoundedAwayFromZero) {
  // Theorem 4: for l << rn << l log l the pattern probability does not
  // vanish. Take n = C * f with 1 << f << log C (here f = sqrt(log C)):
  // the probability must stay above a positive floor as C grows.
  for (std::uint64_t C : {64u, 256u, 1024u}) {
    const double f = std::sqrt(std::log(static_cast<double>(C)));
    const auto n = static_cast<std::uint64_t>(static_cast<double>(C) * f);
    const double p = pattern_probability(n, C);
    EXPECT_GT(p, 0.05) << "C=" << C << " n=" << n;
  }
}

TEST(PatternProbability, Theorem3RegimeVanishes) {
  // For rn >> l log l (n >> C log C) the pattern probability must be tiny.
  const std::uint64_t C = 64;
  const auto n = static_cast<std::uint64_t>(
      4.0 * static_cast<double>(C) * std::log(static_cast<double>(C)));
  EXPECT_LT(pattern_probability(n, C), 1e-3);
}

TEST(PatternProbabilityMonteCarlo, RequiresPositiveTrials) {
  Rng rng(2);
  EXPECT_THROW(pattern_probability_monte_carlo(5, 4, 0, rng), ContractViolation);
}

}  // namespace
}  // namespace manet
