#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

TEST(RunningStats, EmptyStateThrowsOnAccess) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_THROW(stats.mean(), ContractViolation);
  EXPECT_THROW(stats.min(), ContractViolation);
  EXPECT_THROW(stats.max(), ContractViolation);
  EXPECT_THROW(stats.variance(), ContractViolation);
}

TEST(RunningStats, SingleObservation) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
  EXPECT_THROW(stats.sample_variance(), ContractViolation);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);           // population
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all;
  RunningStats part_a;
  RunningStats part_b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    all.add(x);
    (i % 2 == 0 ? part_a : part_b).add(x);
  }
  part_a.merge(part_b);
  EXPECT_EQ(part_a.count(), all.count());
  EXPECT_NEAR(part_a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(part_a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(part_a.min(), all.min());
  EXPECT_DOUBLE_EQ(part_a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 1.5);

  RunningStats target;
  target.merge(stats);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(MeanConfidenceInterval, CoversTheMean) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(x);
  const ConfidenceInterval ci = mean_confidence_interval(stats);
  EXPECT_TRUE(ci.contains(3.0));
  EXPECT_GT(ci.width(), 0.0);
  EXPECT_NEAR((ci.lo + ci.hi) / 2.0, 3.0, 1e-12);
}

TEST(MeanConfidenceInterval, ShrinksWithSampleSize) {
  Rng rng(2);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_LT(mean_confidence_interval(large).width(),
            mean_confidence_interval(small).width());
}

TEST(MeanConfidenceInterval, RequiresTwoSamples) {
  RunningStats stats;
  stats.add(1.0);
  EXPECT_THROW(mean_confidence_interval(stats), ContractViolation);
}

TEST(QuantileSorted, EndpointsAndMedian) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 3.0);
}

TEST(QuantileSorted, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.75), 7.5);
}

TEST(QuantileSorted, SingleElement) {
  const std::vector<double> sorted = {42.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.37), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 42.0);
}

TEST(QuantileSorted, RejectsEmptyAndBadQ) {
  const std::vector<double> empty;
  const std::vector<double> one = {1.0};
  EXPECT_THROW(quantile_sorted(empty, 0.5), ContractViolation);
  EXPECT_THROW(quantile_sorted(one, -0.1), ContractViolation);
  EXPECT_THROW(quantile_sorted(one, 1.1), ContractViolation);
}

TEST(Quantiles, SortsInput) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  const std::vector<double> qs = {0.0, 0.5, 1.0};
  const auto result = quantiles(values, qs);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_DOUBLE_EQ(result[0], 1.0);
  EXPECT_DOUBLE_EQ(result[1], 3.0);
  EXPECT_DOUBLE_EQ(result[2], 5.0);
}

TEST(Histogram, BinEdgesAndCounts) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_EQ(hist.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(4), 10.0);

  hist.add(1.0);
  hist.add(1.5);
  hist.add(9.0);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_EQ(hist.total(), 3u);
  EXPECT_DOUBLE_EQ(hist.frequency(0), 2.0 / 3.0);
}

TEST(Histogram, OutOfRangeSamplesLandInUnderOverflowNotEdgeBins) {
  Histogram hist(0.0, 1.0, 2);
  hist.add(-5.0);  // below lo -> underflow, NOT bin 0
  hist.add(5.0);   // above hi -> overflow, NOT bin 1
  hist.add(1.0);   // == hi: the range is [lo, hi), so this is overflow too
  hist.add(0.25);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 0u);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.in_range(), 1u);
}

TEST(Histogram, FrequenciesSumToInRangeFractionOfTotal) {
  Histogram hist(0.0, 1.0, 2);
  hist.add(0.1);
  hist.add(0.6);
  hist.add(7.0);  // overflow: counts toward total(), toward no bin
  EXPECT_DOUBLE_EQ(hist.frequency(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(hist.frequency(1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(hist.frequency(0) + hist.frequency(1),
                   static_cast<double>(hist.in_range()) / static_cast<double>(hist.total()));
}

TEST(Histogram, NanCountsAsUnderflowNeverABin) {
  Histogram hist(0.0, 1.0, 2);
  hist.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 0u);
  EXPECT_EQ(hist.count(0), 0u);
  EXPECT_EQ(hist.count(1), 0u);
  EXPECT_EQ(hist.total(), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), ContractViolation);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, EmptyFrequencyIsZero) {
  Histogram hist(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(hist.frequency(2), 0.0);
}

}  // namespace
}  // namespace manet
