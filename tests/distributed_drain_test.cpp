// End-to-end tests of the distributed drain (src/service/drain.hpp): N
// workers sharing one campaign + store must merge to results — and a
// result.json — byte-identical to the single-process CampaignRunner,
// including when a worker is hard-killed mid-unit and its dangling lease
// has to be stolen on resume. Workers here are threads (the lease protocol
// is pure filesystem, so thread vs process only changes who owns the fds);
// scripts/distributed_smoke.sh runs the same drill with real processes.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "service/drain.hpp"
#include "service/lease.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/parallel.hpp"

namespace manet {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignRunner;
using service::DistributedCampaignRunner;
using service::DrainOptions;

constexpr std::uint64_t kSeed = 20020623;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> flatten_all(const std::vector<MtrmResult>& results) {
  std::vector<double> values;
  for (const MtrmResult& result : results) {
    const auto flat = flatten_mtrm_result(result);
    values.insert(values.end(), flat.begin(), flat.end());
  }
  return values;
}

/// Fresh scratch directories per test, wiped on entry so reruns start clean.
struct DrainDirs {
  explicit DrainDirs(const std::string& tag)
      : root(std::filesystem::path(::testing::TempDir()) / ("drain_test_" + tag)) {
    std::filesystem::remove_all(root);
    campaign_dir = (root / "campaign").string();
    store_dir = (root / "store").string();
  }
  ~DrainDirs() { std::filesystem::remove_all(root); }

  CampaignOptions campaign_options() const {
    CampaignOptions opts;
    opts.dir = campaign_dir;
    opts.store_dir = store_dir;
    opts.quiet = true;
    return opts;
  }

  DrainOptions drain_options(const std::string& worker) const {
    DrainOptions opts;
    opts.campaign = campaign_options();
    opts.worker = worker;
    opts.poll_seconds = 0.01;
    return opts;
  }

  std::filesystem::path result_path() const {
    return std::filesystem::path(campaign_dir) / "result.json";
  }

  std::filesystem::path root;
  std::string campaign_dir;
  std::string store_dir;
};

std::vector<MtrmConfig> tiny_sweep() {
  return {experiments::waypoint_experiment(256.0, Preset::kQuick),
          experiments::drunkard_experiment(256.0, Preset::kQuick)};
}

/// Restores the default kill behavior / thread count on scope exit even if
/// an assertion fails mid-test.
struct KillHookGuard {
  ~KillHookGuard() { campaign::detail::set_kill_hook({}); }
};
struct ParallelismGuard {
  ~ParallelismGuard() { set_max_parallelism(0); }
};

/// The exception our test kill hook throws in place of std::_Exit.
struct KillSignal {};

/// The single-process reference: runs the campaign with CampaignRunner in
/// its own directory pair and returns (results, result.json bytes).
std::pair<std::vector<MtrmResult>, std::string> reference_run(
    const std::vector<MtrmConfig>& configs, const std::string& tag) {
  DrainDirs dirs(tag);
  CampaignRunner runner("drain_test", dirs.campaign_options());
  auto results = experiments::solve_mtrm_sweep(configs, kSeed, &runner);
  std::string bytes = read_text_file(dirs.result_path());
  return {std::move(results), std::move(bytes)};
}

TEST(DistributedDrain, ValidatesOptions) {
  const DrainDirs dirs("validate");
  DrainOptions missing_worker = dirs.drain_options("");
  EXPECT_THROW(DistributedCampaignRunner("drain_test", missing_worker), ConfigError);

  DrainOptions bad_ttl = dirs.drain_options("w0");
  bad_ttl.lease_ttl_seconds = 0.0;
  EXPECT_THROW(DistributedCampaignRunner("drain_test", bad_ttl), ConfigError);

  DrainOptions bad_poll = dirs.drain_options("w0");
  bad_poll.poll_seconds = -0.5;
  EXPECT_THROW(DistributedCampaignRunner("drain_test", bad_poll), ConfigError);

  // A non-positive stall horizon would fire "campaign looks wedged" on the
  // very first idle pass — reject it up front like the TTL and poll knobs.
  DrainOptions bad_max_wait = dirs.drain_options("w0");
  bad_max_wait.max_wait_seconds = 0.0;
  EXPECT_THROW(DistributedCampaignRunner("drain_test", bad_max_wait), ConfigError);
}

TEST(DistributedDrain, SingleWorkerMatchesSingleProcessByteIdentical) {
  const auto configs = tiny_sweep();
  const auto [expected, expected_bytes] = reference_run(configs, "single_ref");

  const DrainDirs dirs("single");
  DistributedCampaignRunner worker("drain_test", dirs.drain_options("w0"));
  const auto results = experiments::solve_mtrm_sweep(configs, kSeed, &worker);

  EXPECT_TRUE(bit_identical(flatten_all(expected), flatten_all(results)));
  EXPECT_EQ(read_text_file(dirs.result_path()), expected_bytes);
  EXPECT_EQ(worker.report().executed, worker.report().units_total);
  EXPECT_EQ(worker.report().store_hits, 0u);
}

TEST(DistributedDrain, FourWorkersMergeByteIdenticalToSingleProcess) {
  const auto configs = tiny_sweep();
  const auto [expected, expected_bytes] = reference_run(configs, "four_ref");
  const auto expected_flat = flatten_all(expected);

  const DrainDirs dirs("four");
  constexpr std::size_t kWorkers = 4;

  std::vector<std::unique_ptr<DistributedCampaignRunner>> workers;
  workers.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.push_back(std::make_unique<DistributedCampaignRunner>(
        "drain_test", dirs.drain_options("w" + std::to_string(w))));
  }

  std::vector<std::vector<MtrmResult>> all_results(kWorkers);
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      all_results[w] = experiments::solve_mtrm_sweep(configs, kSeed, workers[w].get());
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every worker returns the merged sweep, and every one matches the
  // single-process reference bitwise — as does the shared result.json.
  std::size_t executed_total = 0;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(bit_identical(expected_flat, flatten_all(all_results[w]))) << "worker " << w;
    const auto& report = workers[w]->report();
    EXPECT_EQ(report.store_hits + report.executed + report.stolen, report.units_total)
        << "worker " << w;
    executed_total += report.executed + report.stolen;
  }
  // Leases keep duplicated execution rare, but only determinism makes it
  // safe — so the partition can exceed units_total, never undershoot it.
  EXPECT_GE(executed_total, workers[0]->report().units_total);
  EXPECT_EQ(read_text_file(dirs.result_path()), expected_bytes);
}

TEST(DistributedDrain, KilledWorkerLeavesDanglingLeaseAndResumeSteals) {
  const auto configs = tiny_sweep();
  const auto [expected, expected_bytes] = reference_run(configs, "kill_ref");

  const ParallelismGuard parallelism_guard;
  set_max_parallelism(1);
  const KillHookGuard hook_guard;
  campaign::detail::set_kill_hook([] { throw KillSignal{}; });

  const DrainDirs dirs("kill");
  DrainOptions killed_options = dirs.drain_options("victim");
  killed_options.campaign.kill_after = 1;
  DistributedCampaignRunner victim("drain_test", killed_options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(configs, kSeed, &victim), KillSignal);

  // The kill fires *before* the unit is persisted, so the claim survives as
  // a dangling lease — the worst crash the protocol must absorb.
  const std::filesystem::path claims = std::filesystem::path(dirs.store_dir) / "claims";
  std::vector<std::filesystem::path> leases;
  for (const auto& entry : std::filesystem::directory_iterator(claims)) {
    leases.push_back(entry.path());
  }
  ASSERT_EQ(leases.size(), 1u);

  // Rewind the lease's heartbeat so the resuming worker sees it stale now
  // instead of waiting out a real TTL.
  std::filesystem::last_write_time(
      leases.front(), std::filesystem::file_time_type::clock::now() - std::chrono::hours(2));

  DistributedCampaignRunner rescuer("drain_test", dirs.drain_options("rescuer"));
  const auto results = experiments::solve_mtrm_sweep(configs, kSeed, &rescuer);

  EXPECT_TRUE(bit_identical(flatten_all(expected), flatten_all(results)));
  EXPECT_EQ(read_text_file(dirs.result_path()), expected_bytes);
  EXPECT_EQ(rescuer.report().stolen, 1u);
  EXPECT_EQ(rescuer.report().store_hits, 0u);
}

TEST(DistributedDrain, WedgedCampaignTimesOutWithConfigError) {
  const auto configs = tiny_sweep();

  const ParallelismGuard parallelism_guard;
  set_max_parallelism(1);
  const KillHookGuard hook_guard;
  campaign::detail::set_kill_hook([] { throw KillSignal{}; });

  const DrainDirs dirs("wedged");
  DrainOptions killed_options = dirs.drain_options("victim");
  killed_options.campaign.kill_after = 1;
  DistributedCampaignRunner victim("drain_test", killed_options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(configs, kSeed, &victim), KillSignal);

  // The dangling lease stays fresh (nobody rewinds it) and the TTL is huge,
  // so the second worker finishes everything else, then can only wait — and
  // must give up after max_wait_seconds instead of spinning forever.
  DrainOptions stuck_options = dirs.drain_options("stuck");
  stuck_options.lease_ttl_seconds = 3600.0;
  stuck_options.poll_seconds = 0.01;
  stuck_options.max_wait_seconds = 0.1;
  DistributedCampaignRunner stuck("drain_test", stuck_options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(configs, kSeed, &stuck), ConfigError);
  EXPECT_GT(stuck.report().idle_polls, 0u);
}

TEST(DistributedDrain, SecondRunIsServedEntirelyFromStore) {
  const auto configs = tiny_sweep();

  const DrainDirs dirs("cached");
  DistributedCampaignRunner first("drain_test", dirs.drain_options("w0"));
  const auto first_results = experiments::solve_mtrm_sweep(configs, kSeed, &first);

  DrainOptions resume_options = dirs.drain_options("w1");
  resume_options.campaign.resume = true;
  DistributedCampaignRunner second("drain_test", resume_options);
  const auto second_results = experiments::solve_mtrm_sweep(configs, kSeed, &second);

  EXPECT_TRUE(bit_identical(flatten_all(first_results), flatten_all(second_results)));
  EXPECT_EQ(second.report().executed, 0u);
  EXPECT_EQ(second.report().store_hits, second.report().units_total);
}

TEST(DistributedDrain, ResumeRejectsForeignManifest) {
  const auto configs = tiny_sweep();

  const DrainDirs dirs("foreign");
  DistributedCampaignRunner first("drain_test", dirs.drain_options("w0"));
  (void)experiments::solve_mtrm_sweep(configs, kSeed, &first);

  // Same directories, different campaign identity (other seed) — resume
  // must refuse rather than mix sweeps.
  DrainOptions resume_options = dirs.drain_options("w1");
  resume_options.campaign.resume = true;
  DistributedCampaignRunner second("drain_test", resume_options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(configs, kSeed + 1, &second), ConfigError);
}

}  // namespace
}  // namespace manet
