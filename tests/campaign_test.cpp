// End-to-end tests of the campaign subsystem (src/campaign/): the resumable
// runner must be a drop-in for the in-process sweep — bit-identical results
// whether a campaign runs uninterrupted, is killed and resumed, or is served
// entirely from the content-addressed store — and every failure mode of the
// persisted state (missing / foreign / malformed manifest, corrupt store
// entries) must surface as a clear ConfigError or a silent recompute, never
// a crash or a silently different number.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"
#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignRunner;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> flatten_all(const std::vector<MtrmResult>& results) {
  std::vector<double> values;
  for (const MtrmResult& result : results) {
    const auto flat = flatten_mtrm_result(result);
    values.insert(values.end(), flat.begin(), flat.end());
  }
  return values;
}

/// Fresh scratch directories per test, wiped on entry so reruns start clean.
struct CampaignDirs {
  explicit CampaignDirs(const std::string& tag)
      : root(std::filesystem::path(::testing::TempDir()) / ("campaign_test_" + tag)) {
    std::filesystem::remove_all(root);
    campaign_dir = (root / "campaign").string();
    store_dir = (root / "store").string();
  }
  ~CampaignDirs() { std::filesystem::remove_all(root); }

  CampaignOptions options() const {
    CampaignOptions opts;
    opts.dir = campaign_dir;
    opts.store_dir = store_dir;
    opts.quiet = true;
    return opts;
  }

  std::filesystem::path root;
  std::string campaign_dir;
  std::string store_dir;
};

/// Small two-point sweep (waypoint + drunkard at the quick preset's l=256
/// scale) — big enough to decompose into several units, small enough to run
/// many times per test binary.
std::vector<MtrmConfig> tiny_sweep() {
  return {experiments::waypoint_experiment(256.0, Preset::kQuick),
          experiments::drunkard_experiment(256.0, Preset::kQuick)};
}

constexpr std::uint64_t kSeed = 20020623;

/// Restores the default kill behavior / thread count on scope exit even if
/// an assertion fails mid-test.
struct KillHookGuard {
  ~KillHookGuard() { campaign::detail::set_kill_hook({}); }
};
struct ParallelismGuard {
  ~ParallelismGuard() { set_max_parallelism(0); }
};

/// The exception our test kill hook throws in place of std::_Exit.
struct KillSignal {};

TEST(Campaign, MatchesLegacySweepBitwise) {
  const auto configs = tiny_sweep();
  const auto legacy = experiments::solve_mtrm_sweep(configs, kSeed);

  CampaignDirs dirs("legacy_match");
  CampaignRunner runner("tiny", dirs.options());
  const auto campaign_results = experiments::solve_mtrm_sweep(configs, kSeed, &runner);

  EXPECT_TRUE(bit_identical(flatten_all(legacy), flatten_all(campaign_results)));
  EXPECT_EQ(runner.report().cache_hits, 0u);
  EXPECT_EQ(runner.report().executed, runner.report().units_total);
}

TEST(Campaign, SecondRunIsServedEntirelyFromStore) {
  const auto configs = tiny_sweep();
  CampaignDirs dirs("all_cached");

  CampaignRunner first("tiny", dirs.options());
  const auto first_results = experiments::solve_mtrm_sweep(configs, kSeed, &first);

  CampaignOptions resume_options = dirs.options();
  resume_options.resume = true;
  CampaignRunner second("tiny", resume_options);
  const auto second_results = experiments::solve_mtrm_sweep(configs, kSeed, &second);

  EXPECT_TRUE(bit_identical(flatten_all(first_results), flatten_all(second_results)));
  EXPECT_EQ(second.report().cache_hits, second.report().units_total);
  EXPECT_EQ(second.report().executed, 0u);

  const campaign::Manifest manifest =
      campaign::load_manifest(std::filesystem::path(dirs.campaign_dir) / "manifest.json");
  EXPECT_TRUE(manifest.progress.complete);
  EXPECT_EQ(manifest.progress.cache_hits, second.report().units_total);
}

TEST(Campaign, KilledAndResumedRunIsBitIdenticalToUninterrupted) {
  const auto configs = tiny_sweep();

  CampaignDirs reference_dirs("kill_reference");
  CampaignRunner reference("tiny", reference_dirs.options());
  const auto expected = experiments::solve_mtrm_sweep(configs, kSeed, &reference);
  const std::size_t units_total = reference.report().units_total;
  ASSERT_GE(units_total, 4u);

  // Serial execution makes the kill point exact: precisely kill_after units
  // were persisted when the hook fires.
  const ParallelismGuard parallelism_guard;
  set_max_parallelism(1);
  const KillHookGuard hook_guard;
  campaign::detail::set_kill_hook([] { throw KillSignal{}; });

  CampaignDirs dirs("kill_resume");
  const std::size_t kill_after = units_total / 2;
  CampaignOptions kill_options = dirs.options();
  kill_options.kill_after = kill_after;
  kill_options.checkpoint_every = 1;
  CampaignRunner killed("tiny", kill_options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(configs, kSeed, &killed), KillSignal);

  campaign::detail::set_kill_hook({});
  CampaignOptions resume_options = dirs.options();
  resume_options.resume = true;
  CampaignRunner resumed("tiny", resume_options);
  const auto results = experiments::solve_mtrm_sweep(configs, kSeed, &resumed);

  EXPECT_TRUE(bit_identical(flatten_all(expected), flatten_all(results)));
  EXPECT_EQ(resumed.report().cache_hits, kill_after);
  EXPECT_EQ(resumed.report().executed, units_total - kill_after);
}

TEST(Campaign, KilledAndResumedRunIsBitIdenticalAtEightThreads) {
  const auto configs = tiny_sweep();

  CampaignDirs reference_dirs("kill8_reference");
  CampaignRunner reference("tiny", reference_dirs.options());
  const auto expected = experiments::solve_mtrm_sweep(configs, kSeed, &reference);
  const std::size_t units_total = reference.report().units_total;

  const ParallelismGuard parallelism_guard;
  set_max_parallelism(8);
  const KillHookGuard hook_guard;
  campaign::detail::set_kill_hook([] { throw KillSignal{}; });

  CampaignDirs dirs("kill8_resume");
  const std::size_t kill_after = units_total / 2;
  CampaignOptions kill_options = dirs.options();
  kill_options.kill_after = kill_after;
  CampaignRunner killed("tiny", kill_options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(configs, kSeed, &killed), KillSignal);

  campaign::detail::set_kill_hook({});
  CampaignOptions resume_options = dirs.options();
  resume_options.resume = true;
  CampaignRunner resumed("tiny", resume_options);
  const auto results = experiments::solve_mtrm_sweep(configs, kSeed, &resumed);

  EXPECT_TRUE(bit_identical(flatten_all(expected), flatten_all(results)));
  // With in-flight workers draining after the kill fires, anywhere from
  // kill_after to all units may have been persisted — but never fewer.
  EXPECT_GE(resumed.report().cache_hits, kill_after);
  EXPECT_EQ(resumed.report().cache_hits + resumed.report().executed, units_total);
}

// The PR-2 golden MTRM digests (tests/determinism_test.cpp) reproduced
// through the campaign path: same config, the trial root solve_mtrm would
// draw from Rng(seed), folded from store-backed units.
TEST(Campaign, GoldenChecksumsReproduceThroughCampaignPath) {
  const struct {
    const char* name;
    MtrmConfig config;
    std::uint64_t digest;
  } cases[] = {
      {"waypoint", experiments::waypoint_experiment(256.0, Preset::kQuick),
       0x7f15b5b64209b3a3ull},
      {"drunkard", experiments::drunkard_experiment(256.0, Preset::kQuick),
       0xca0fd93f2a6598c4ull},
  };
  for (const auto& test_case : cases) {
    CampaignDirs dirs(std::string("golden_") + test_case.name);
    CampaignRunner runner(test_case.name, dirs.options());
    MtrmSweepPoint point;
    point.config = test_case.config;
    point.trial_root = Rng(kSeed).next_u64();
    const auto results = runner.run_points({point});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(fnv1a_bits(flatten_mtrm_result(results[0])), test_case.digest)
        << test_case.name;
  }
}

TEST(Campaign, ResumeWithoutManifestIsConfigError) {
  CampaignDirs dirs("resume_missing");
  CampaignOptions options = dirs.options();
  options.resume = true;
  CampaignRunner runner("tiny", options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(tiny_sweep(), kSeed, &runner), ConfigError);
}

TEST(Campaign, ResumeOfDifferentCampaignIsConfigError) {
  const auto configs = tiny_sweep();
  CampaignDirs dirs("resume_foreign");

  CampaignRunner first("tiny", dirs.options());
  experiments::solve_mtrm_sweep(configs, kSeed, &first);

  // Same directory, different sweep identity (other seed -> other trial
  // roots): the manifest key cannot match.
  CampaignOptions resume_options = dirs.options();
  resume_options.resume = true;
  CampaignRunner second("tiny", resume_options);
  EXPECT_THROW(experiments::solve_mtrm_sweep(configs, kSeed + 1, &second), ConfigError);
}

TEST(Campaign, MalformedManifestIsConfigError) {
  const auto configs = tiny_sweep();
  CampaignDirs dirs("resume_malformed");

  CampaignRunner first("tiny", dirs.options());
  experiments::solve_mtrm_sweep(configs, kSeed, &first);

  const auto manifest_path = std::filesystem::path(dirs.campaign_dir) / "manifest.json";
  for (const char* corrupted : {"", "not json at all", "{\"kind\": \"something-else\"}",
                                "{\"schema_version\": 1, \"kind\""}) {
    std::ofstream(manifest_path, std::ios::trunc) << corrupted;
    CampaignOptions resume_options = dirs.options();
    resume_options.resume = true;
    CampaignRunner runner("tiny", resume_options);
    try {
      experiments::solve_mtrm_sweep(configs, kSeed, &runner);
      FAIL() << "expected ConfigError for manifest: " << corrupted;
    } catch (const ConfigError& error) {
      // The error must name the file so the user can act on it.
      EXPECT_NE(std::string(error.what()).find("manifest.json"), std::string::npos);
    }
  }
}

TEST(Campaign, CorruptStoreEntryIsRecomputedAndCounted) {
  const auto configs = tiny_sweep();
  CampaignDirs dirs("corrupt_store");

  CampaignRunner first("tiny", dirs.options());
  const auto expected = experiments::solve_mtrm_sweep(configs, kSeed, &first);

  // Truncate one unit file: content-address probing must treat it as a miss,
  // count it, and recompute — not crash, not serve garbage.
  bool corrupted_one = false;
  for (const auto& entry : std::filesystem::directory_iterator(dirs.store_dir)) {
    std::ofstream(entry.path(), std::ios::trunc) << "{\"schema_version\": 1, tru";
    corrupted_one = true;
    break;
  }
  ASSERT_TRUE(corrupted_one);

  CampaignOptions resume_options = dirs.options();
  resume_options.resume = true;
  CampaignRunner second("tiny", resume_options);
  const auto results = experiments::solve_mtrm_sweep(configs, kSeed, &second);

  EXPECT_TRUE(bit_identical(flatten_all(expected), flatten_all(results)));
  EXPECT_EQ(second.report().invalid_store_entries, 1u);
  EXPECT_EQ(second.report().executed, 1u);
  EXPECT_EQ(second.report().cache_hits, second.report().units_total - 1);
}

TEST(Campaign, StoreRoundTripIsBitExact) {
  CampaignDirs dirs("store_roundtrip");
  const campaign::ResultStore store{std::filesystem::path(dirs.store_dir)};

  // Values chosen to stress the %.17g round-trip: non-terminating binary
  // fractions, an exactly-representable integer, a subnormal, and a
  // one-ulp-off-from-1.0 value.
  MtrmIterationOutcome outcome;
  outcome.range_for_time = {1.0 / 3.0, 0.1, 123456789.0};
  outcome.lcc_at_range_for_time = {std::nextafter(1.0, 0.0)};
  outcome.min_lcc_at_range_for_time = {5e-324};
  outcome.range_never_connected = 2.0 / 7.0;
  outcome.lcc_at_range_never = 0.999999999999999;
  outcome.range_for_component = {1e300, 1e-300};
  outcome.mean_critical_range = 42.424242424242424;

  const std::string canonical = "campaign-test-roundtrip-unit";
  store.save(canonical, std::vector<MtrmIterationOutcome>{outcome});
  bool corrupt = false;
  const auto loaded = store.load(canonical, 1, &corrupt);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(corrupt);

  const auto bits = [](const MtrmIterationOutcome& o) {
    std::vector<double> values;
    values.insert(values.end(), o.range_for_time.begin(), o.range_for_time.end());
    values.insert(values.end(), o.lcc_at_range_for_time.begin(),
                  o.lcc_at_range_for_time.end());
    values.insert(values.end(), o.min_lcc_at_range_for_time.begin(),
                  o.min_lcc_at_range_for_time.end());
    values.push_back(o.range_never_connected);
    values.push_back(o.lcc_at_range_never);
    values.insert(values.end(), o.range_for_component.begin(), o.range_for_component.end());
    values.push_back(o.mean_critical_range);
    return values;
  };
  EXPECT_TRUE(bit_identical(bits(outcome), bits((*loaded)[0])));
}

TEST(Campaign, RejectsInconsistentOptions) {
  CampaignOptions no_dir;
  no_dir.dir = "";
  EXPECT_THROW(CampaignRunner("tiny", no_dir), ConfigError);

  CampaignDirs dirs("bad_options");
  CampaignOptions zero_checkpoint = dirs.options();
  zero_checkpoint.checkpoint_every = 0;
  EXPECT_THROW(CampaignRunner("tiny", zero_checkpoint), ConfigError);

  EXPECT_THROW(CampaignRunner("", dirs.options()), ConfigError);
}

TEST(Campaign, UnitDecompositionIsStableUnderExplicitBlockSize) {
  const auto configs = tiny_sweep();

  CampaignDirs dirs_a("block_a");
  CampaignOptions options_a = dirs_a.options();
  options_a.unit_iterations = 1;
  CampaignRunner runner_a("tiny", options_a);
  const auto results_a = experiments::solve_mtrm_sweep(configs, kSeed, &runner_a);

  CampaignDirs dirs_b("block_b");
  CampaignOptions options_b = dirs_b.options();
  options_b.unit_iterations = 3;  // deliberately not dividing the budget
  CampaignRunner runner_b("tiny", options_b);
  const auto results_b = experiments::solve_mtrm_sweep(configs, kSeed, &runner_b);

  // Different decompositions, identical merged numbers: unit boundaries are
  // an execution detail, never a numerical one.
  EXPECT_NE(runner_a.report().units_total, runner_b.report().units_total);
  EXPECT_TRUE(bit_identical(flatten_all(results_a), flatten_all(results_b)));
}

}  // namespace
}  // namespace manet
