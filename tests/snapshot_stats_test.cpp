#include "sim/snapshot_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/link_model.hpp"
#include "mobility/factory.hpp"
#include "mobility/stationary.hpp"
#include "sim/mobile_trace.hpp"
#include "support/error.hpp"

namespace manet {
namespace {

TEST(CollectSnapshotStats, AggregatesOverAllSteps) {
  Rng rng(1);
  const Box2 region(100.0);
  auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(100.0), region);
  const auto stats = collect_snapshot_stats<2>(15, region, 40, 30.0, *model, rng);
  EXPECT_EQ(stats.steps, 40u);
  EXPECT_DOUBLE_EQ(stats.range, 30.0);
  EXPECT_EQ(stats.mean_degree.count(), 40u);
  EXPECT_EQ(stats.component_count.count(), 40u);
  EXPECT_EQ(stats.largest_component_diameter.count(), 40u);
}

TEST(CollectSnapshotStats, HugeRangeGivesCompleteGraphEveryStep) {
  Rng rng(2);
  const Box2 region(10.0);
  StationaryModel<2> model;
  const std::size_t n = 8;
  const auto stats = collect_snapshot_stats<2>(n, region, 5, 100.0, model, rng);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_degree.mean(), static_cast<double>(n - 1));
  EXPECT_DOUBLE_EQ(stats.isolated_count.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.component_count.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.largest_fraction.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.largest_component_diameter.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.disconnection_by_isolates_fraction, 0.0);
}

TEST(CollectSnapshotStats, TinyRangeIsolatesEverything) {
  Rng rng(3);
  const Box2 region(1000.0);
  StationaryModel<2> model;
  const auto stats = collect_snapshot_stats<2>(10, region, 3, 0.001, model, rng);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_degree.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.isolated_count.mean(), 10.0);
  EXPECT_DOUBLE_EQ(stats.component_count.mean(), 10.0);
  EXPECT_DOUBLE_EQ(stats.largest_fraction.mean(), 0.1);
}

TEST(CollectSnapshotStats, ConnectedFractionMatchesTraceAtSameSeed) {
  // The snapshot pipeline and the critical-radius trace must agree on the
  // fraction of connected steps when driven by identical randomness.
  const Box2 region(128.0);
  const MobilityConfig config = MobilityConfig::paper_drunkard(128.0);
  const double range = 50.0;
  const std::size_t n = 12;
  const std::size_t steps = 60;

  Rng rng_a(4);
  auto model_a = make_mobility_model<2>(config, region);
  const auto snapshot = collect_snapshot_stats<2>(n, region, steps, range, *model_a, rng_a);

  Rng rng_b(4);
  auto model_b = make_mobility_model<2>(config, region);
  const auto trace = run_mobile_trace<2>(n, region, steps, *model_b, rng_b);

  EXPECT_NEAR(snapshot.connected_fraction, trace.fraction_of_time_connected(range), 1e-12);
  EXPECT_NEAR(snapshot.largest_fraction.mean(), trace.mean_largest_fraction_at(range),
              1e-12);
}

TEST(CollectSnapshotStats, SingleNode) {
  Rng rng(5);
  const Box2 region(10.0);
  StationaryModel<2> model;
  const auto stats = collect_snapshot_stats<2>(1, region, 3, 1.0, model, rng);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.isolated_count.mean(), 1.0);  // degree-0 but connected
  EXPECT_DOUBLE_EQ(stats.largest_fraction.mean(), 1.0);
}

/// A mobility model that plays back a fixed per-step placement; used to
/// construct snapshots with known structure.
class ScriptedModel final : public MobilityModel<2> {
 public:
  explicit ScriptedModel(std::vector<std::vector<Point2>> frames)
      : frames_(std::move(frames)) {}

  void initialize(std::span<const Point2> positions, Rng&) override {
    node_count_ = positions.size();
    next_frame_ = 0;
  }

  void step(std::span<Point2> positions, Rng&) override {
    MANET_EXPECTS(next_frame_ < frames_.size());
    const auto& frame = frames_[next_frame_++];
    MANET_EXPECTS(frame.size() == positions.size());
    std::copy(frame.begin(), frame.end(), positions.begin());
  }

  std::string name() const override { return "scripted"; }
  std::size_t node_count() const override { return node_count_; }

 private:
  std::vector<std::vector<Point2>> frames_;
  std::size_t next_frame_ = 0;
  std::size_t node_count_ = 0;
};

TEST(CollectSnapshotStats, ValidatesArguments) {
  Rng rng(6);
  const Box2 region(10.0);
  StationaryModel<2> model;
  // User-facing simulation parameters: ConfigError in every build mode
  // (steps, range and the explicit empty-deployment rejection).
  EXPECT_THROW(collect_snapshot_stats<2>(5, region, 0, 1.0, model, rng), ConfigError);
  EXPECT_THROW(collect_snapshot_stats<2>(5, region, 3, 0.0, model, rng), ConfigError);
  EXPECT_THROW(collect_snapshot_stats<2>(0, region, 3, 1.0, model, rng), ConfigError);
}

TEST(CollectSnapshotStats, LinkModelOverloadMatchesUnitDiskRange) {
  // The historical (range) signature must stay bit-identical to the
  // LinkModel overload under UnitDiskLinkModel — same RNG consumption, same
  // graphs, same aggregates.
  const Box2 region(128.0);
  const MobilityConfig config = MobilityConfig::paper_drunkard(128.0);

  Rng rng_a(8);
  auto model_a = make_mobility_model<2>(config, region);
  const auto legacy = collect_snapshot_stats<2>(12, region, 30, 40.0, *model_a, rng_a);

  Rng rng_b(8);
  auto model_b = make_mobility_model<2>(config, region);
  const UnitDiskLinkModel disk(40.0);
  const auto seam = collect_snapshot_stats<2>(12, region, 30, disk, *model_b, rng_b);

  EXPECT_DOUBLE_EQ(legacy.range, seam.range);
  EXPECT_DOUBLE_EQ(legacy.connected_fraction, seam.connected_fraction);
  EXPECT_DOUBLE_EQ(legacy.strongly_connected_fraction, seam.strongly_connected_fraction);
  // Symmetric model: the strong census coincides with the weak one.
  EXPECT_DOUBLE_EQ(seam.strongly_connected_fraction, seam.connected_fraction);
  EXPECT_DOUBLE_EQ(legacy.mean_degree.mean(), seam.mean_degree.mean());
  EXPECT_DOUBLE_EQ(legacy.component_count.mean(), seam.component_count.mean());
  EXPECT_DOUBLE_EQ(legacy.largest_fraction.mean(), seam.largest_fraction.mean());
  EXPECT_DOUBLE_EQ(legacy.disconnection_by_isolates_fraction,
                   seam.disconnection_by_isolates_fraction);
}

TEST(CollectSnapshotStats, DirectedModelSeparatesStrongFromWeak) {
  // The one-way-bridge gadget (see link_model_test.cpp): two close mutual
  // pairs {0, 1} and {2, 3}, bridged only by the long one-way arcs 0 -> 3
  // and 2 -> 1. The directed graph is strongly connected while the
  // bidirectional subgraph splits in two — exactly the gap
  // strongly_connected_fraction exists to expose.
  const Box2 region(30.0);
  const std::vector<Point2> gadget = {
      {{0.0, 0.0}}, {{2.0, 0.0}}, {{22.0, 0.0}}, {{20.0, 0.0}}};
  ScriptedModel model({gadget, gadget});
  Rng rng(9);
  const HeterogeneousRangeLinkModel link(RangeAssignment({20.0, 2.0, 20.0, 2.0}));
  const auto stats = collect_snapshot_stats<2>(4, region, 3, link, model, rng);
  // Steps 1-2 are scripted (strong yes, weak no); step 0 is the random
  // deployment, so bound rather than pin its contribution.
  EXPECT_GE(stats.strongly_connected_fraction, 2.0 / 3.0);
  EXPECT_LE(stats.connected_fraction, 1.0 / 3.0);
  EXPECT_GT(stats.strongly_connected_fraction, stats.connected_fraction);
  EXPECT_EQ(stats.steps, 3u);
}

TEST(CollectSnapshotStats, DirectedModelStronglyConnectedWhenMutual) {
  // Ranges exceeding the region diagonal in both directions: every
  // deployment is strongly connected, and the strong census agrees with the
  // weak one.
  const Box2 region(20.0);
  StationaryModel<2> model;
  Rng rng(10);
  const HeterogeneousRangeLinkModel link(RangeAssignment({30.0, 30.0}));
  const auto stats = collect_snapshot_stats<2>(2, region, 2, link, model, rng);
  EXPECT_DOUBLE_EQ(stats.strongly_connected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 1.0);
}

TEST(CollectSnapshotStats, LinkModelRejectsNodeCountMismatch) {
  const Box2 region(20.0);
  StationaryModel<2> model;
  Rng rng(11);
  const HeterogeneousRangeLinkModel link(RangeAssignment({1.0, 1.0, 1.0}));
  EXPECT_THROW(collect_snapshot_stats<2>(5, region, 2, link, model, rng), ConfigError);
}

TEST(CollectSnapshotStats, IsolateHealingDetectsThePapersDisconnectionMode) {
  // Deterministic scenario: a tight cluster plus one stray node. Every
  // disconnected snapshot is healed by removing the isolate, so the
  // isolate-only fraction must be exactly 1.
  const Box2 region(100.0);
  // Frame 1: stray node at distance; frame 2: a *pair* detached (NOT
  // isolate-only).
  const std::vector<Point2> cluster_with_isolate = {
      {{10.0, 10.0}}, {{11.0, 10.0}}, {{12.0, 10.0}}, {{13.0, 10.0}}, {{90.0, 90.0}}};
  const std::vector<Point2> cluster_with_pair = {
      {{10.0, 10.0}}, {{11.0, 10.0}}, {{12.0, 10.0}}, {{90.0, 90.0}}, {{90.5, 90.0}}};

  // The deployment draw (step 0) is uncontrolled; feed two scripted frames
  // for steps 1-2 and a final connected frame so step 0's contribution to
  // the isolate statistics is the only noise.
  const std::vector<Point2> connected_line = {
      {{10.0, 10.0}}, {{11.0, 10.0}}, {{12.0, 10.0}}, {{13.0, 10.0}}, {{14.0, 10.0}}};

  ScriptedModel model({cluster_with_isolate, cluster_with_pair, connected_line});
  Rng rng(7);
  const auto stats = collect_snapshot_stats<2>(5, region, 4, 1.5, model, rng);

  // Snapshots: step 0 (random, likely fully isolated at r=1.5 — counts as
  // disconnected, not isolate-only unless all singletons... all singletons
  // means non-largest are singletons, so it IS isolate-only), steps 1-3 as
  // scripted. At least the pair frame is NOT isolate-only and the stray
  // frame IS, so the fraction lies strictly between 0 and 1.
  EXPECT_GT(stats.disconnection_by_isolates_fraction, 0.0);
  EXPECT_LT(stats.disconnection_by_isolates_fraction, 1.0);
  EXPECT_LT(stats.connected_fraction, 1.0);
}

}  // namespace
}  // namespace manet
