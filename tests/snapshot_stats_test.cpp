#include "sim/snapshot_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mobility/factory.hpp"
#include "mobility/stationary.hpp"
#include "sim/mobile_trace.hpp"
#include "support/error.hpp"

namespace manet {
namespace {

TEST(CollectSnapshotStats, AggregatesOverAllSteps) {
  Rng rng(1);
  const Box2 region(100.0);
  auto model = make_mobility_model<2>(MobilityConfig::paper_drunkard(100.0), region);
  const auto stats = collect_snapshot_stats<2>(15, region, 40, 30.0, *model, rng);
  EXPECT_EQ(stats.steps, 40u);
  EXPECT_DOUBLE_EQ(stats.range, 30.0);
  EXPECT_EQ(stats.mean_degree.count(), 40u);
  EXPECT_EQ(stats.component_count.count(), 40u);
  EXPECT_EQ(stats.largest_component_diameter.count(), 40u);
}

TEST(CollectSnapshotStats, HugeRangeGivesCompleteGraphEveryStep) {
  Rng rng(2);
  const Box2 region(10.0);
  StationaryModel<2> model;
  const std::size_t n = 8;
  const auto stats = collect_snapshot_stats<2>(n, region, 5, 100.0, model, rng);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_degree.mean(), static_cast<double>(n - 1));
  EXPECT_DOUBLE_EQ(stats.isolated_count.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.component_count.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.largest_fraction.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.largest_component_diameter.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.disconnection_by_isolates_fraction, 0.0);
}

TEST(CollectSnapshotStats, TinyRangeIsolatesEverything) {
  Rng rng(3);
  const Box2 region(1000.0);
  StationaryModel<2> model;
  const auto stats = collect_snapshot_stats<2>(10, region, 3, 0.001, model, rng);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_degree.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.isolated_count.mean(), 10.0);
  EXPECT_DOUBLE_EQ(stats.component_count.mean(), 10.0);
  EXPECT_DOUBLE_EQ(stats.largest_fraction.mean(), 0.1);
}

TEST(CollectSnapshotStats, ConnectedFractionMatchesTraceAtSameSeed) {
  // The snapshot pipeline and the critical-radius trace must agree on the
  // fraction of connected steps when driven by identical randomness.
  const Box2 region(128.0);
  const MobilityConfig config = MobilityConfig::paper_drunkard(128.0);
  const double range = 50.0;
  const std::size_t n = 12;
  const std::size_t steps = 60;

  Rng rng_a(4);
  auto model_a = make_mobility_model<2>(config, region);
  const auto snapshot = collect_snapshot_stats<2>(n, region, steps, range, *model_a, rng_a);

  Rng rng_b(4);
  auto model_b = make_mobility_model<2>(config, region);
  const auto trace = run_mobile_trace<2>(n, region, steps, *model_b, rng_b);

  EXPECT_NEAR(snapshot.connected_fraction, trace.fraction_of_time_connected(range), 1e-12);
  EXPECT_NEAR(snapshot.largest_fraction.mean(), trace.mean_largest_fraction_at(range),
              1e-12);
}

TEST(CollectSnapshotStats, SingleNode) {
  Rng rng(5);
  const Box2 region(10.0);
  StationaryModel<2> model;
  const auto stats = collect_snapshot_stats<2>(1, region, 3, 1.0, model, rng);
  EXPECT_DOUBLE_EQ(stats.connected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.isolated_count.mean(), 1.0);  // degree-0 but connected
  EXPECT_DOUBLE_EQ(stats.largest_fraction.mean(), 1.0);
}

TEST(CollectSnapshotStats, ValidatesArguments) {
  Rng rng(6);
  const Box2 region(10.0);
  StationaryModel<2> model;
  EXPECT_THROW(collect_snapshot_stats<2>(5, region, 0, 1.0, model, rng), ContractViolation);
  EXPECT_THROW(collect_snapshot_stats<2>(5, region, 3, 0.0, model, rng), ContractViolation);
  EXPECT_THROW(collect_snapshot_stats<2>(0, region, 3, 1.0, model, rng), ContractViolation);
}

/// A mobility model that plays back a fixed per-step placement; used to
/// construct snapshots with known structure.
class ScriptedModel final : public MobilityModel<2> {
 public:
  explicit ScriptedModel(std::vector<std::vector<Point2>> frames)
      : frames_(std::move(frames)) {}

  void initialize(std::span<const Point2> positions, Rng&) override {
    node_count_ = positions.size();
    next_frame_ = 0;
  }

  void step(std::span<Point2> positions, Rng&) override {
    MANET_EXPECTS(next_frame_ < frames_.size());
    const auto& frame = frames_[next_frame_++];
    MANET_EXPECTS(frame.size() == positions.size());
    std::copy(frame.begin(), frame.end(), positions.begin());
  }

  std::string name() const override { return "scripted"; }
  std::size_t node_count() const override { return node_count_; }

 private:
  std::vector<std::vector<Point2>> frames_;
  std::size_t next_frame_ = 0;
  std::size_t node_count_ = 0;
};

TEST(CollectSnapshotStats, IsolateHealingDetectsThePapersDisconnectionMode) {
  // Deterministic scenario: a tight cluster plus one stray node. Every
  // disconnected snapshot is healed by removing the isolate, so the
  // isolate-only fraction must be exactly 1.
  const Box2 region(100.0);
  // Frame 1: stray node at distance; frame 2: a *pair* detached (NOT
  // isolate-only).
  const std::vector<Point2> cluster_with_isolate = {
      {{10.0, 10.0}}, {{11.0, 10.0}}, {{12.0, 10.0}}, {{13.0, 10.0}}, {{90.0, 90.0}}};
  const std::vector<Point2> cluster_with_pair = {
      {{10.0, 10.0}}, {{11.0, 10.0}}, {{12.0, 10.0}}, {{90.0, 90.0}}, {{90.5, 90.0}}};

  // The deployment draw (step 0) is uncontrolled; feed two scripted frames
  // for steps 1-2 and a final connected frame so step 0's contribution to
  // the isolate statistics is the only noise.
  const std::vector<Point2> connected_line = {
      {{10.0, 10.0}}, {{11.0, 10.0}}, {{12.0, 10.0}}, {{13.0, 10.0}}, {{14.0, 10.0}}};

  ScriptedModel model({cluster_with_isolate, cluster_with_pair, connected_line});
  Rng rng(7);
  const auto stats = collect_snapshot_stats<2>(5, region, 4, 1.5, model, rng);

  // Snapshots: step 0 (random, likely fully isolated at r=1.5 — counts as
  // disconnected, not isolate-only unless all singletons... all singletons
  // means non-largest are singletons, so it IS isolate-only), steps 1-3 as
  // scripted. At least the pair frame is NOT isolate-only and the stray
  // frame IS, so the fraction lies strictly between 0 and 1.
  EXPECT_GT(stats.disconnection_by_isolates_fraction, 0.0);
  EXPECT_LT(stats.disconnection_by_isolates_fraction, 1.0);
  EXPECT_LT(stats.connected_fraction, 1.0);
}

}  // namespace
}  // namespace manet
