#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace manet {
namespace {

using namespace theory;

TEST(ConnectivityThreshold1D, ScalesAsLLogLOverN) {
  const double l = 1024.0;
  EXPECT_DOUBLE_EQ(connectivity_threshold_range_1d(l, 32.0), l * std::log(l) / 32.0);
  EXPECT_DOUBLE_EQ(connectivity_threshold_range_1d(l, 32.0, 0.5),
                   0.5 * l * std::log(l) / 32.0);
}

TEST(ConnectivityThreshold1D, MonotoneInParameters) {
  EXPECT_LT(connectivity_threshold_range_1d(1024.0, 64.0),
            connectivity_threshold_range_1d(1024.0, 32.0));
  EXPECT_LT(connectivity_threshold_range_1d(1024.0, 32.0),
            connectivity_threshold_range_1d(4096.0, 32.0));
}

TEST(ConnectivityThreshold1D, RejectsBadInputs) {
  EXPECT_THROW(connectivity_threshold_range_1d(1.0, 10.0), ContractViolation);
  EXPECT_THROW(connectivity_threshold_range_1d(100.0, 0.0), ContractViolation);
  EXPECT_THROW(connectivity_threshold_range_1d(100.0, 10.0, 0.0), ContractViolation);
}

TEST(WorstCaseRange, IsTheDiagonal) {
  EXPECT_DOUBLE_EQ(worst_case_range(10.0, 1), 10.0);
  EXPECT_DOUBLE_EQ(worst_case_range(10.0, 2), 10.0 * std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(worst_case_range(10.0, 3), 10.0 * std::sqrt(3.0));
  EXPECT_THROW(worst_case_range(10.0, 4), ContractViolation);
  EXPECT_THROW(worst_case_range(0.0, 2), ContractViolation);
}

TEST(BestCaseRange1D, EquallySpacedNodes) {
  EXPECT_DOUBLE_EQ(best_case_range_1d(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(best_case_range_1d(100.0, 100.0), 1.0);
}

TEST(Section3Comparison, RandomPlacementSitsBetweenBestAndWorst) {
  // The Section 3 closing remark with n proportional to l: worst case
  // Omega(l), random Theta(log l), best case Theta(1).
  const double l = 4096.0;
  const double n = l;  // n linear in l
  const double best = best_case_range_1d(l, n);
  const double random = connectivity_threshold_range_1d(l, n);
  const double worst = worst_case_range(l, 1);
  EXPECT_LT(best, random);
  EXPECT_LT(random, worst);
  EXPECT_NEAR(random, std::log(l), 1e-9);  // Theta(log l) with c = 1
  EXPECT_DOUBLE_EQ(best, 1.0);
}

TEST(ClassifyRegime1D, IdentifiesAllFourRegimes) {
  const double l = 65536.0;
  const double n = 256.0;
  const double log_l = std::log(l);

  // rn << l
  EXPECT_EQ(classify_regime_1d(l, n, l / n / 10.0), Regime1D::kSubcritical);
  // l << rn << l log l  (midpoint on the log scale)
  EXPECT_EQ(classify_regime_1d(l, n, l * std::sqrt(log_l) / n), Regime1D::kGapRegime);
  // rn = Theta(l log l)
  EXPECT_EQ(classify_regime_1d(l, n, l * log_l / n), Regime1D::kCritical);
  // rn >> l log l
  EXPECT_EQ(classify_regime_1d(l, n, 100.0 * l * log_l / n), Regime1D::kSupercritical);
}

TEST(ClassifyRegime1D, NamesAreStable) {
  EXPECT_STREQ(regime_name(Regime1D::kSubcritical), "subcritical");
  EXPECT_STREQ(regime_name(Regime1D::kGapRegime), "gap-regime");
  EXPECT_STREQ(regime_name(Regime1D::kCritical), "critical");
  EXPECT_STREQ(regime_name(Regime1D::kSupercritical), "supercritical");
}

TEST(Theorem4Epsilon, MatchesDeltaOverTwoPi) {
  EXPECT_DOUBLE_EQ(theorem4_epsilon(2.0 * std::numbers::pi), 1.0);
  EXPECT_NEAR(theorem4_epsilon(std::numbers::pi), 0.5, 1e-12);
  EXPECT_THROW(theorem4_epsilon(0.0), ContractViolation);
  EXPECT_THROW(theorem4_epsilon(7.0), ContractViolation);
}

TEST(RelativeEnergy, QuadraticDefault) {
  EXPECT_DOUBLE_EQ(relative_energy(10.0, 5.0), 0.25);
  EXPECT_DOUBLE_EQ(relative_energy(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(relative_energy(10.0, 0.0), 0.0);
}

TEST(RelativeEnergy, HigherPathLossAmplifiesSavings) {
  // The paper's r90 ~ 0.6 r100 observation: energy at alpha=2 is 36%, at
  // alpha=4 only 13%.
  EXPECT_NEAR(relative_energy(1.0, 0.6, 2.0), 0.36, 1e-12);
  EXPECT_NEAR(relative_energy(1.0, 0.6, 4.0), 0.1296, 1e-12);
  EXPECT_LT(relative_energy(1.0, 0.6, 4.0), relative_energy(1.0, 0.6, 2.0));
}

}  // namespace
}  // namespace manet
