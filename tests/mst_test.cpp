#include "topology/mst.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geometry/box.hpp"
#include "graph/union_find.hpp"
#include "sim/deployment.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

/// Kruskal over all O(n^2) edges: the independent reference implementation.
template <int D>
std::vector<WeightedEdge> kruskal_mst(const std::vector<Point<D>>& points) {
  std::vector<WeightedEdge> edges;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      edges.push_back({i, j, distance(points[i], points[j])});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) { return a.weight < b.weight; });
  std::vector<WeightedEdge> tree;
  UnionFind dsu(points.size());
  for (const WeightedEdge& e : edges) {
    if (dsu.unite(e.u, e.v)) tree.push_back(e);
  }
  return tree;
}

TEST(EuclideanMst, TrivialInputs) {
  const std::vector<Point2> none;
  EXPECT_TRUE(euclidean_mst<2>(none).empty());

  const std::vector<Point2> one = {{{1.0, 1.0}}};
  EXPECT_TRUE(euclidean_mst<2>(one).empty());

  const std::vector<Point2> two = {{{0.0, 0.0}}, {{3.0, 4.0}}};
  const auto mst = euclidean_mst<2>(two);
  ASSERT_EQ(mst.size(), 1u);
  EXPECT_DOUBLE_EQ(mst[0].weight, 5.0);
}

TEST(EuclideanMst, HandComputedSquare) {
  // Unit square + center point: MST connects center to all? No — center at
  // distance sqrt(0.5)/... compute: corners pairwise 1.0 or sqrt(2); center
  // to corner = sqrt(0.5) ~ 0.707. MST = 4 center-corner edges.
  const std::vector<Point2> points = {
      {{0.0, 0.0}}, {{1.0, 0.0}}, {{1.0, 1.0}}, {{0.0, 1.0}}, {{0.5, 0.5}}};
  const auto mst = euclidean_mst<2>(points);
  ASSERT_EQ(mst.size(), 4u);
  for (const auto& e : mst) EXPECT_NEAR(e.weight, std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(tree_total_weight(mst), 4.0 * std::sqrt(0.5), 1e-12);
}

TEST(EuclideanMst, IsSpanningTree) {
  Rng rng(1);
  const Box2 box(100.0);
  const auto points = uniform_deployment(50, box, rng);
  const auto mst = euclidean_mst<2>(points);
  ASSERT_EQ(mst.size(), 49u);
  UnionFind dsu(points.size());
  for (const auto& e : mst) {
    EXPECT_TRUE(dsu.unite(e.u, e.v)) << "cycle edge in MST";
    EXPECT_NEAR(e.weight, distance(points[e.u], points[e.v]), 1e-12);
  }
  EXPECT_TRUE(dsu.all_connected());
}

TEST(EuclideanMst, TotalWeightMatchesKruskal) {
  Rng rng(2);
  const Box2 box(50.0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto points = uniform_deployment(40, box, rng);
    const auto prim = euclidean_mst<2>(points);
    const auto kruskal = kruskal_mst<2>(points);
    EXPECT_NEAR(tree_total_weight(prim), tree_total_weight(kruskal), 1e-9);
    EXPECT_NEAR(tree_bottleneck(prim), tree_bottleneck(kruskal), 1e-9);
  }
}

TEST(EuclideanMst, WorksIn1DAnd3D) {
  Rng rng(3);
  const Box1 line(100.0);
  const auto points_1d = uniform_deployment(30, line, rng);
  const auto mst_1d = euclidean_mst<1>(points_1d);
  EXPECT_NEAR(tree_total_weight(mst_1d), tree_total_weight(kruskal_mst<1>(points_1d)), 1e-9);

  const Box3 cube(20.0);
  const auto points_3d = uniform_deployment(25, cube, rng);
  const auto mst_3d = euclidean_mst<3>(points_3d);
  EXPECT_NEAR(tree_total_weight(mst_3d), tree_total_weight(kruskal_mst<3>(points_3d)), 1e-9);
}

TEST(EuclideanMst, CoincidentPointsGiveZeroWeightEdges) {
  const std::vector<Point2> points = {{{1.0, 1.0}}, {{1.0, 1.0}}, {{2.0, 2.0}}};
  const auto mst = euclidean_mst<2>(points);
  ASSERT_EQ(mst.size(), 2u);
  EXPECT_NEAR(tree_bottleneck(mst), std::sqrt(2.0), 1e-12);
}

TEST(TreeBottleneck, EmptyTreeIsZero) {
  const std::vector<WeightedEdge> none;
  EXPECT_DOUBLE_EQ(tree_bottleneck(none), 0.0);
  EXPECT_DOUBLE_EQ(tree_total_weight(none), 0.0);
}

TEST(TreeBottleneck, PicksMaximum) {
  const std::vector<WeightedEdge> tree = {{0, 1, 2.0}, {1, 2, 5.0}, {2, 3, 1.0}};
  EXPECT_DOUBLE_EQ(tree_bottleneck(tree), 5.0);
  EXPECT_DOUBLE_EQ(tree_total_weight(tree), 8.0);
}

}  // namespace
}  // namespace manet
