// Locale regression tests for number parsing/formatting (support/numeric.hpp
// and its consumers). The original bug: CLI parsing went through std::stod
// and JSON through std::strtod, both of which honor the process locale — a
// host running under de_DE (decimal comma) silently mis-parsed "2.5" as 2
// and accepted "2,5". The from_chars/to_chars layer is locale-independent by
// construction; these tests pin that, under an actual comma-decimal locale
// when the container provides one (skipped otherwise — the C-locale strict
// grammar tests always run).
//
// This is its own binary on purpose: setlocale() is process-global state, so
// the de_DE fixture must not share a process with tests that assume "C".

#include "support/numeric.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <locale>
#include <stdexcept>
#include <string>
#include <vector>

#include <sstream>

#include "campaign/result_store.hpp"
#include "core/experiments.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace manet {
namespace {

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Doubles that historically expose parser/formatter trouble: shortest-form
/// ambiguity, subnormals, extremes, negative zero, exact integers.
std::vector<double> tricky_values() {
  return {0.1,
          1.0 / 3.0,
          2.5,
          -0.0,
          0.0,
          1.0,
          -17.0,
          3.141592653589793,
          std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::min(),
          std::numeric_limits<double>::max(),
          -123456.789};
}

TEST(NumericCLocale, FormatParseRoundTripIsBitIdentical) {
  for (const double value : tricky_values()) {
    const std::string text = format_double_roundtrip(value);
    const auto parsed = parse_double(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_TRUE(bitwise_equal(*parsed, value)) << text;
    EXPECT_EQ(text.find(','), std::string::npos) << text;
  }
}

TEST(NumericCLocale, ParseIsStrictFullString) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("3.5abc").has_value());   // trailing garbage
  EXPECT_FALSE(parse_double(" 1").has_value());       // no whitespace skip
  EXPECT_FALSE(parse_double("+1").has_value());       // '+' handled by CLI only
  EXPECT_FALSE(parse_double("2,5").has_value());      // comma is never a decimal
  EXPECT_FALSE(parse_double("1e-400").has_value());   // binary64 underflow
  EXPECT_FALSE(parse_double("1e400").has_value());    // overflow
  ASSERT_TRUE(parse_double("-2.5e-3").has_value());
  EXPECT_DOUBLE_EQ(*parse_double("-2.5e-3"), -0.0025);
}

TEST(NumericCLocale, CliAcceptsLeadingPlusButNotPlusMinus) {
  CliParser cli("test");
  cli.add_option("x", "value", "0");
  const char* argv_plus[] = {"prog", "--x", "+3.5"};
  cli.parse(3, argv_plus);
  EXPECT_DOUBLE_EQ(cli.double_value("x"), 3.5);

  CliParser cli_bad("test");
  cli_bad.add_option("x", "value", "0");
  const char* argv_bad[] = {"prog", "--x", "+-3"};
  cli_bad.parse(3, argv_bad);
  EXPECT_THROW(cli_bad.double_value("x"), ConfigError);
}

TEST(NumericCLocale, FormatFixedMatchesPrintfSemantics) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(1.0, 3), "1.000");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.5, 0), "2");    // ties-to-even, like %.0f
  EXPECT_EQ(format_fixed(3.5, 0), "4");
  EXPECT_EQ(format_fixed(0.0, 0), "0");
  EXPECT_EQ(format_fixed(-0.0, 2), "-0.00");
  EXPECT_THROW(format_fixed(1.0, -1), ConfigError);
}

/// Switches the process into a comma-decimal locale for one test, restoring
/// the previous locale afterwards. Sets BOTH locale layers the way a real
/// de_DE host does: the C locale (setlocale — governs strtod/stod, the parse
/// side) and the C++ global locale (std::locale::global — governs what
/// iostreams imbue, the format side; setlocale alone never reaches
/// ostringstream). Skips when the image ships no de_DE variant (this
/// container only has C/C.utf8/POSIX; CI images may differ).
class GermanLocaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* current = std::setlocale(LC_ALL, nullptr);
    previous_c_ = current == nullptr ? "C" : current;
    previous_cpp_ = std::locale();
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE"}) {
      try {
        // Also switches the C locale (the locale has a name).
        std::locale::global(std::locale(name));
        return;
      } catch (const std::runtime_error&) {
        // not installed; try the next spelling
      }
    }
    GTEST_SKIP() << "no de_DE locale installed; C-locale tests still cover "
                    "the strict grammar";
  }

  void TearDown() override {
    std::locale::global(previous_cpp_);
    std::setlocale(LC_ALL, previous_c_.c_str());
  }

 private:
  std::string previous_c_;
  std::locale previous_cpp_;
};

TEST_F(GermanLocaleTest, ParsingIgnoresTheDecimalCommaLocale) {
  // Sanity: the locale really is comma-decimal, or this test proves nothing.
  ASSERT_STREQ(std::localeconv()->decimal_point, ",");

  // The original failure mode: std::stod("2.5") under de_DE stops at '.' and
  // returns 2. parse_double must see the full C-grammar number...
  ASSERT_TRUE(parse_double("2.5").has_value());
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  // ...and "2,5" must stay malformed rather than silently parse as 2.5.
  EXPECT_FALSE(parse_double("2,5").has_value());

  CliParser cli("test");
  cli.add_option("x", "value", "0");
  const char* argv[] = {"prog", "--x", "2.5"};
  cli.parse(3, argv);
  EXPECT_DOUBLE_EQ(cli.double_value("x"), 2.5);

  CliParser cli_comma("test");
  cli_comma.add_option("x", "value", "0");
  const char* argv_comma[] = {"prog", "--x", "2,5"};
  cli_comma.parse(3, argv_comma);
  EXPECT_THROW(cli_comma.double_value("x"), ConfigError);
}

TEST_F(GermanLocaleTest, JsonRoundTripIsBitIdenticalUnderCommaLocale) {
  JsonValue array = JsonValue::array();
  for (const double value : tricky_values()) {
    array.push_back(JsonValue::number(value));
    // No rendered number may pick up the locale's decimal comma.
    EXPECT_EQ(JsonValue::number(value).dump().find(','), std::string::npos) << value;
  }
  const std::string text = array.dump();

  const JsonValue parsed = JsonValue::parse(text);
  const auto& items = parsed.items();
  const auto values = tricky_values();
  ASSERT_EQ(items.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(items[i].as_double(), values[i])) << i;
  }
}

TEST_F(GermanLocaleTest, ResultStoreRoundTripsBitIdenticallyUnderCommaLocale) {
  // The store's canonical strings and unit files embed doubles; a
  // locale-sensitive formatter would change the content address (silently
  // orphaning every cached unit) and corrupt reloaded outcomes.
  MtrmSweepPoint point;
  point.config.side = 256.5;
  point.trial_root = 0x1234abcdu;
  const std::string canonical = campaign::canonical_unit_string(point, 0, 2);

  // The canonical string (= the content address) must not depend on the
  // active locale: a locale-sensitive rendering would orphan every cached
  // unit ever written from a differently-configured shell.
  std::setlocale(LC_ALL, "C");
  const std::string under_c = campaign::canonical_unit_string(point, 0, 2);
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) break;  // SetUp proved one exists
  }
  EXPECT_EQ(canonical, under_c);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "manet_locale_store_test";
  std::filesystem::remove_all(dir);

  std::vector<MtrmIterationOutcome> outcomes(2);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    MtrmIterationOutcome& outcome = outcomes[i];
    outcome.range_for_time = tricky_values();
    outcome.range_never_connected = 0.1 + static_cast<double>(i);
    outcome.lcc_at_range_never = 1.0 / 3.0;
    outcome.mean_critical_range = std::numeric_limits<double>::denorm_min();
  }

  const campaign::ResultStore store(dir);
  store.save(canonical, outcomes);
  bool corrupt = false;
  const auto loaded = store.load(canonical, outcomes.size(), &corrupt);
  std::filesystem::remove_all(dir);

  EXPECT_FALSE(corrupt);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const MtrmIterationOutcome& saved = outcomes[i];
    const MtrmIterationOutcome& back = (*loaded)[i];
    ASSERT_EQ(back.range_for_time.size(), saved.range_for_time.size());
    for (std::size_t j = 0; j < saved.range_for_time.size(); ++j) {
      EXPECT_TRUE(bitwise_equal(back.range_for_time[j], saved.range_for_time[j]));
    }
    EXPECT_TRUE(bitwise_equal(back.range_never_connected, saved.range_never_connected));
    EXPECT_TRUE(bitwise_equal(back.lcc_at_range_never, saved.lcc_at_range_never));
    EXPECT_TRUE(bitwise_equal(back.mean_critical_range, saved.mean_critical_range));
  }
}

// ----- Formatting-side regressions (mirror of the parse-side suite) -------

TEST_F(GermanLocaleTest, TableRenderingUsesDotDecimalUnderCommaLocale) {
  ASSERT_STREQ(std::localeconv()->decimal_point, ",");

  // The original bug: TextTable::num went through ostringstream <<
  // std::fixed, which renders "1,50" under de_DE — every paper table and CSV
  // export changed shape with the host locale.
  EXPECT_EQ(TextTable::num(1.5, 2), "1.50");
  EXPECT_EQ(TextTable::num(-123456.789, 3), "-123456.789");
  EXPECT_EQ(format_fixed(0.1, 4), "0.1000");

  TextTable table({"r", "ratio"});
  table.add_row({TextTable::num(12.25, 2), TextTable::num(0.5, 3)});
  std::ostringstream aligned;
  table.print(aligned);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_EQ(aligned.str().find(','), std::string::npos) << aligned.str();
  EXPECT_EQ(csv.str(), "r,ratio\n12.25,0.500\n");
}

TEST_F(GermanLocaleTest, StoreWrittenUnderGermanLocaleReadsBackUnderC) {
  // Hosts in different locales share one campaign store. A unit persisted
  // from a de_DE shell must hash to the same content address and reload
  // bit-identically in a C-locale shell (and vice versa) — otherwise merged
  // sweeps silently recompute or, worse, fold different bytes.
  MtrmSweepPoint point;
  point.config.side = 512.25;
  point.trial_root = 0xfeedbeefu;
  const std::string canonical = campaign::canonical_unit_string(point, 0, 1);

  std::vector<MtrmIterationOutcome> outcomes(1);
  outcomes[0].range_for_time = tricky_values();
  outcomes[0].range_never_connected = 1.0 / 3.0;
  outcomes[0].lcc_at_range_never = std::numeric_limits<double>::denorm_min();
  outcomes[0].mean_critical_range = 0.1;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "manet_locale_format_store_test";
  std::filesystem::remove_all(dir);
  const campaign::ResultStore store(dir);
  store.save(canonical, outcomes);  // written under de_DE

  // Become a C-locale host (both layers); TearDown restores the original.
  std::locale::global(std::locale::classic());
  std::setlocale(LC_ALL, "C");
  EXPECT_EQ(campaign::canonical_unit_string(point, 0, 1), canonical);
  bool corrupt = false;
  const auto loaded = store.load(canonical, outcomes.size(), &corrupt);
  std::filesystem::remove_all(dir);

  EXPECT_FALSE(corrupt);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  const MtrmIterationOutcome& back = (*loaded)[0];
  ASSERT_EQ(back.range_for_time.size(), outcomes[0].range_for_time.size());
  for (std::size_t j = 0; j < back.range_for_time.size(); ++j) {
    EXPECT_TRUE(bitwise_equal(back.range_for_time[j], outcomes[0].range_for_time[j])) << j;
  }
  EXPECT_TRUE(bitwise_equal(back.range_never_connected, outcomes[0].range_never_connected));
  EXPECT_TRUE(bitwise_equal(back.lcc_at_range_never, outcomes[0].lcc_at_range_never));
  EXPECT_TRUE(bitwise_equal(back.mean_critical_range, outcomes[0].mean_critical_range));
}

}  // namespace
}  // namespace manet
