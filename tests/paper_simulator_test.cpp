#include "core/paper_simulator.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {
namespace {

PaperSimulatorInput base_input() {
  PaperSimulatorInput input;
  input.r = 60.0;
  input.n = 12;
  input.l = 144.0;
  input.iterations = 4;
  input.steps = 50;
  input.mobility = MobilityConfig::paper_drunkard(144.0);
  return input;
}

TEST(PaperSimulatorInput, Validation) {
  PaperSimulatorInput input = base_input();
  EXPECT_NO_THROW(input.validate());

  input.r = 0.0;
  EXPECT_THROW(input.validate(), ConfigError);
  input = base_input();

  input.n = 0;
  EXPECT_THROW(input.validate(), ConfigError);
  input = base_input();

  input.l = -1.0;
  EXPECT_THROW(input.validate(), ConfigError);
  input = base_input();

  input.iterations = 0;
  EXPECT_THROW(input.validate(), ConfigError);
  input = base_input();

  input.steps = 0;
  EXPECT_THROW(input.validate(), ConfigError);
}

TEST(PaperSimulator, ReportsPerIterationAndOverall) {
  Rng rng(1);
  const PaperSimulatorInput input = base_input();
  const PaperSimulatorOutput output = run_paper_simulator<2>(input, rng);
  ASSERT_EQ(output.per_iteration.size(), input.iterations);
  for (const auto& report : output.per_iteration) {
    EXPECT_GE(report.connected_fraction, 0.0);
    EXPECT_LE(report.connected_fraction, 1.0);
    EXPECT_GE(report.min_largest, 1.0);
    EXPECT_LE(report.min_largest, static_cast<double>(input.n));
    EXPECT_LE(report.min_largest, report.mean_largest_when_disconnected + 1e-9);
  }
}

TEST(PaperSimulator, OverallConnectedFractionIsTheMeanOfIterations) {
  Rng rng(2);
  const PaperSimulatorInput input = base_input();
  const PaperSimulatorOutput output = run_paper_simulator<2>(input, rng);
  double mean = 0.0;
  for (const auto& report : output.per_iteration) mean += report.connected_fraction;
  mean /= static_cast<double>(output.per_iteration.size());
  EXPECT_NEAR(output.overall.connected_fraction, mean, 1e-9);
}

TEST(PaperSimulator, OverallMinIsTheMinimumOfIterations) {
  Rng rng(3);
  const PaperSimulatorOutput output = run_paper_simulator<2>(base_input(), rng);
  double min_largest = 1e300;
  for (const auto& report : output.per_iteration) {
    min_largest = std::min(min_largest, report.min_largest);
  }
  EXPECT_DOUBLE_EQ(output.overall.min_largest, min_largest);
}

TEST(PaperSimulator, HugeRangeAlwaysConnected) {
  Rng rng(4);
  PaperSimulatorInput input = base_input();
  input.r = 10.0 * input.l;
  const PaperSimulatorOutput output = run_paper_simulator<2>(input, rng);
  EXPECT_DOUBLE_EQ(output.overall.connected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(output.overall.min_largest, static_cast<double>(input.n));
  EXPECT_DOUBLE_EQ(output.overall.mean_largest_when_disconnected,
                   static_cast<double>(input.n));
}

TEST(PaperSimulator, TinyRangeNeverConnected) {
  Rng rng(5);
  PaperSimulatorInput input = base_input();
  input.r = 1e-6;
  const PaperSimulatorOutput output = run_paper_simulator<2>(input, rng);
  EXPECT_DOUBLE_EQ(output.overall.connected_fraction, 0.0);
  EXPECT_DOUBLE_EQ(output.overall.min_largest, 1.0);  // all singletons
  EXPECT_NEAR(output.overall.mean_largest_when_disconnected, 1.0, 1e-9);
}

TEST(PaperSimulator, StepsOneIsTheStationaryCase) {
  // "#steps = 1 corresponds to the stationary case": each iteration is one
  // fresh deployment and the per-iteration connected fraction is 0 or 1.
  Rng rng(6);
  PaperSimulatorInput input = base_input();
  input.steps = 1;
  input.iterations = 30;
  const PaperSimulatorOutput output = run_paper_simulator<2>(input, rng);
  for (const auto& report : output.per_iteration) {
    EXPECT_TRUE(report.connected_fraction == 0.0 || report.connected_fraction == 1.0);
  }
}

TEST(PaperSimulator, ConnectedFractionIsMonotoneInRange) {
  PaperSimulatorInput input = base_input();
  std::vector<double> fractions;
  for (double r : {20.0, 40.0, 60.0, 90.0, 140.0}) {
    Rng rng(7);  // same randomness for every range
    input.r = r;
    fractions.push_back(run_paper_simulator<2>(input, rng).overall.connected_fraction);
  }
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GE(fractions[i], fractions[i - 1] - 1e-12);
  }
}

TEST(PaperSimulator, DeterministicPerSeed) {
  Rng a(8);
  Rng b(8);
  const auto ra = run_paper_simulator<2>(base_input(), a);
  const auto rb = run_paper_simulator<2>(base_input(), b);
  EXPECT_DOUBLE_EQ(ra.overall.connected_fraction, rb.overall.connected_fraction);
  EXPECT_DOUBLE_EQ(ra.overall.min_largest, rb.overall.min_largest);
}

TEST(PaperSimulator, AgreesWithDirectTraceQueries) {
  // One iteration: the facade must match MobileConnectivityTrace evaluated
  // at the same seed and range.
  const Box2 region(144.0);
  const MobilityConfig mobility = MobilityConfig::paper_drunkard(144.0);
  PaperSimulatorInput input = base_input();
  input.iterations = 1;

  Rng facade_rng(9);
  const auto output = run_paper_simulator<2>(input, facade_rng);

  Rng trace_rng(9);
  // The facade draws one substream root, then derives the order-independent
  // per-iteration substream (support/parallel.hpp seeding contract).
  Rng iteration_rng = substream(trace_rng.next_u64(), 0);
  auto model = make_mobility_model<2>(mobility, region);
  const auto trace = run_mobile_trace<2>(input.n, region, input.steps, *model, iteration_rng);

  EXPECT_NEAR(output.per_iteration[0].connected_fraction,
              trace.fraction_of_time_connected(input.r), 1e-12);
  EXPECT_NEAR(output.per_iteration[0].min_largest,
              trace.min_largest_fraction_at(input.r) * static_cast<double>(input.n), 1e-12);
}

}  // namespace
}  // namespace manet
