#!/usr/bin/env bash
# Records the kinetic-EMST benchmark baseline: builds the release preset,
# runs the kinetic-vs-batch trace sweep (bench/perf_kinetic), and writes the
# JSON to results/BENCH_kinetic.json. The bench exits nonzero if the kinetic
# engine's per-step trees ever diverge bitwise from the batch re-solve, so a
# recorded baseline is also a value-identity certificate for the machine
# that produced it.
#
# Usage: scripts/record_kinetic_baseline.sh [extra perf_kinetic flags...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target perf_kinetic

out="results/BENCH_kinetic.json"
./build/release/bench/perf_kinetic "$@" > "${out}"
echo "wrote ${out}" >&2
