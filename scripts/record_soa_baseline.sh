#!/usr/bin/env bash
# Records the SoA kernel benchmark baseline: builds the release preset, runs
# the batch-vs-scalar kernel sweep (bench/perf_soa), and writes the JSON to
# results/BENCH_soa.json. The bench exits nonzero if any batched kernel's
# output ever differs bitwise from the scalar metric, so a recorded baseline
# is also a bit-identity certificate for the machine that produced it.
#
# Usage: scripts/record_soa_baseline.sh [extra perf_soa flags...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target perf_soa

out="results/BENCH_soa.json"
./build/release/bench/perf_soa "$@" > "${out}"
echo "wrote ${out}" >&2
