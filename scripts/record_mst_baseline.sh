#!/usr/bin/env bash
# Records the EMST benchmark baseline: builds the release preset, runs the
# dense-vs-grid sweep (bench/perf_mst), and writes the JSON to
# results/BENCH_mst.json. The bench exits nonzero if the grid engine's
# output ever diverges from the dense path, so a recorded baseline is also a
# value-identity certificate for the machine that produced it.
#
# Usage: scripts/record_mst_baseline.sh [extra perf_mst flags...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target perf_mst

out="results/BENCH_mst.json"
./build/release/bench/perf_mst "$@" > "${out}"
echo "wrote ${out}" >&2
