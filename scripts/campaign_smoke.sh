#!/usr/bin/env bash
# Interrupt/resume smoke test of the campaign subsystem against a real
# process kill (the in-process variant lives in tests/campaign_test.cpp; this
# script exercises the actual std::_Exit path end to end):
#
#   1. run a tiny fig7 campaign with --kill-after so the process hard-exits
#      (exit code 42) about halfway through the unit list,
#   2. run it again with --resume and assert that the completed units were
#      served from the content-addressed store,
#   3. run the same campaign uninterrupted in a separate directory pair,
#   4. assert the killed-and-resumed run's stdout table AND result.json are
#      byte-identical to the uninterrupted run's.
#
# Usage: scripts/campaign_smoke.sh <path-to-fig7_pstationary> [workdir]
set -euo pipefail

bin="${1:?usage: scripts/campaign_smoke.sh <path-to-fig7_pstationary> [workdir]}"
work="${2:-$(mktemp -d)}"
mkdir -p "${work}"

common_flags=(--preset quick --csv --campaign-quiet)
kill_dir="${work}/killed" kill_store="${work}/killed-store"
ref_dir="${work}/reference" ref_store="${work}/reference-store"

echo "campaign smoke: workdir ${work}" >&2

# 1. Kill roughly halfway: quick fig7 decomposes into 60 single-iteration
# units (15 points x 4 iterations).
set +e
"${bin}" "${common_flags[@]}" --campaign-dir "${kill_dir}" --store-dir "${kill_store}" \
  --kill-after 30 > "${work}/killed.out" 2> "${work}/killed.err"
status=$?
set -e
if [[ "${status}" -ne 42 ]]; then
  echo "FAIL: --kill-after run exited ${status}, expected the kill exit code 42" >&2
  exit 1
fi

# 2. Resume: must finish cleanly and serve the killed run's units from the
# store (the manifest records the cache-hit count).
"${bin}" "${common_flags[@]}" --campaign-dir "${kill_dir}" --store-dir "${kill_store}" \
  --resume > "${work}/resumed.out" 2> "${work}/resumed.err"
cache_hits="$(grep -o '"cache_hits": [0-9]*' "${kill_dir}/manifest.json" | grep -o '[0-9]*')"
if [[ "${cache_hits}" -lt 30 ]]; then
  echo "FAIL: resume served only ${cache_hits} units from the store, expected >= 30" >&2
  exit 1
fi

# The resumed run's metrics.json (the deterministic run-metrics layer) must
# agree with the manifest: campaign.units_cached == the units completed before
# the kill. Skipped on MANET_METRICS=0 builds, where the counters report
# "enabled": false and every value is 0.
if [[ ! -f "${kill_dir}/metrics.json" ]]; then
  echo "FAIL: resume did not write ${kill_dir}/metrics.json" >&2
  exit 1
fi
if grep -q '"enabled": true' "${kill_dir}/metrics.json"; then
  units_cached="$(grep -o '"campaign.units_cached": [0-9]*' "${kill_dir}/metrics.json" \
    | grep -o '[0-9]*$')"
  if [[ "${units_cached:-missing}" != "${cache_hits}" ]]; then
    echo "FAIL: metrics campaign.units_cached=${units_cached:-missing}" \
      "!= manifest cache_hits=${cache_hits}" >&2
    exit 1
  fi
else
  echo "campaign smoke: metrics disabled in this build, skipping units_cached check" >&2
fi

# 3. Uninterrupted reference run with its own campaign dir and store.
"${bin}" "${common_flags[@]}" --campaign-dir "${ref_dir}" --store-dir "${ref_store}" \
  > "${work}/reference.out" 2> "${work}/reference.err"

# 4. Bit-identity of the final artifacts.
cmp "${work}/resumed.out" "${work}/reference.out" || {
  echo "FAIL: killed-and-resumed stdout differs from the uninterrupted run" >&2
  exit 1
}
cmp "${kill_dir}/result.json" "${ref_dir}/result.json" || {
  echo "FAIL: killed-and-resumed result.json differs from the uninterrupted run" >&2
  exit 1
}

echo "campaign smoke: OK (killed at 30, resumed with ${cache_hits} cache hits," \
  "bit-identical to the uninterrupted run)" >&2
