#!/usr/bin/env python3
"""Plot the CSV output of the figure benches.

Each bench accepts --csv; pipe that into a file and point this script at it:

    ./build/bench/fig2_waypoint_ratios --preset paper --csv > fig2.csv
    python3 scripts/plot_results.py fig2.csv --out fig2.png

The first column is used as the x axis; every remaining numeric column
becomes a series. Columns named 'paper' (the digitized reference values) are
drawn dashed. Requires matplotlib.
"""

import argparse
import csv
import sys


def load(path):
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if len(rows) < 2:
        raise SystemExit(f"{path}: need a header row and at least one data row")
    return rows[0], rows[1:]


def to_float(text):
    try:
        return float(text.rstrip("K")) * (1024.0 if text.endswith("K") else 1.0)
    except ValueError:
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("csv_file", help="CSV produced by a bench with --csv")
    parser.add_argument("--out", default=None, help="output image (default: show)")
    parser.add_argument("--title", default=None, help="plot title")
    parser.add_argument("--logx", action="store_true", help="logarithmic x axis")
    args = parser.parse_args()

    try:
        import matplotlib
        if args.out:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib is required: pip install matplotlib")

    header, rows = load(args.csv_file)
    xs = [to_float(row[0]) for row in rows]
    if any(x is None for x in xs):
        # Non-numeric x (e.g. model names): fall back to positional x.
        xs = list(range(len(rows)))

    figure, axes = plt.subplots(figsize=(7.0, 4.5))
    paper_counter = 0
    for column in range(1, len(header)):
        ys = [to_float(row[column]) for row in rows]
        if any(y is None for y in ys):
            continue  # skip non-numeric columns (labels, regimes, ...)
        name = header[column]
        if name.lower().startswith("paper"):
            paper_counter += 1
            label = header[column - 1] + " (paper)"
            axes.plot(xs, ys, "--", alpha=0.6, label=label)
        else:
            axes.plot(xs, ys, "o-", label=name)

    axes.set_xlabel(header[0])
    if args.logx:
        axes.set_xscale("log")
    axes.grid(True, alpha=0.3)
    axes.legend(fontsize=8)
    if args.title:
        axes.set_title(args.title)
    figure.tight_layout()

    if args.out:
        figure.savefig(args.out, dpi=150)
        print(f"wrote {args.out}")
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    sys.exit(main())
