#!/usr/bin/env bash
# End-to-end smoke test of the distributed drain + manetd query service
# (DESIGN.md §16) with real processes — the in-process variants live in
# tests/distributed_drain_test.cpp and tests/manetd_test.cpp:
#
#   1. run a tiny fig7 campaign single-process as the byte-identity reference,
#   2. drain the same campaign with 4 concurrent --distributed workers, one
#      of them hard-killed mid-unit (--kill-after, exit code 42) so a
#      dangling lease has to go stale and be stolen by a survivor,
#   3. assert the merged result.json AND the surviving workers' stdout tables
#      are byte-identical to the single-process run,
#   4. fsck the shared store (clean), corrupt an entry (fsck fails),
#      quarantine it, re-drain with --resume (store heals), fsck again,
#   5. serve the campaign with manetd over a Unix-domain socket, assert
#      repeated identical queries return identical bytes with the cache hits
#      visible in "stats", then shut the server down cleanly.
#
# Usage: scripts/distributed_smoke.sh <fig7_pstationary> <manetd> <manet_store> [workdir]
set -euo pipefail

fig_bin="${1:?usage: scripts/distributed_smoke.sh <fig7_pstationary> <manetd> <manet_store> [workdir]}"
manetd_bin="${2:?usage: scripts/distributed_smoke.sh <fig7_pstationary> <manetd> <manet_store> [workdir]}"
store_bin="${3:?usage: scripts/distributed_smoke.sh <fig7_pstationary> <manetd> <manet_store> [workdir]}"
work="${4:-$(mktemp -d)}"
mkdir -p "${work}"

common_flags=(--preset quick --csv --campaign-quiet)
ref_dir="${work}/reference" ref_store="${work}/reference-store"
dist_dir="${work}/dist" dist_store="${work}/dist-store"

echo "distributed smoke: workdir ${work}" >&2

# 1. Single-process reference run.
"${fig_bin}" "${common_flags[@]}" --campaign-dir "${ref_dir}" --store-dir "${ref_store}" \
  > "${work}/reference.out" 2> "${work}/reference.err"

# 2. Four concurrent drain workers on one campaign/store pair. Worker w0 is
# hard-killed mid-unit, before its current unit is persisted, leaving a
# dangling lease; --lease-ttl 2 lets a survivor steal it within the smoke's
# time budget (live workers heartbeat every iteration, far inside 2s).
drain_flags=(--distributed --lease-ttl 2 --drain-poll 0.1
             --campaign-dir "${dist_dir}" --store-dir "${dist_store}")
"${fig_bin}" "${common_flags[@]}" "${drain_flags[@]}" --worker-id w0 --kill-after 10 \
  > "${work}/w0.out" 2> "${work}/w0.err" &
kill_pid=$!
worker_pids=()
for w in 1 2 3; do
  "${fig_bin}" "${common_flags[@]}" "${drain_flags[@]}" --worker-id "w${w}" \
    > "${work}/w${w}.out" 2> "${work}/w${w}.err" &
  worker_pids+=($!)
done

set +e
wait "${kill_pid}"
kill_status=$?
set -e
if [[ "${kill_status}" -ne 42 ]]; then
  echo "FAIL: --kill-after worker exited ${kill_status}, expected the kill exit code 42" >&2
  exit 1
fi
for pid in "${worker_pids[@]}"; do
  wait "${pid}" || {
    echo "FAIL: a surviving drain worker failed; see ${work}/w*.err" >&2
    exit 1
  }
done

# 3. Byte-identity: merged result.json and every survivor's table must match
# the single-process run exactly.
cmp "${dist_dir}/result.json" "${ref_dir}/result.json" || {
  echo "FAIL: distributed result.json differs from the single-process run" >&2
  exit 1
}
for w in 1 2 3; do
  cmp "${work}/w${w}.out" "${work}/reference.out" || {
    echo "FAIL: worker w${w} stdout differs from the single-process run" >&2
    exit 1
  }
  if [[ ! -f "${dist_dir}/metrics-w${w}.json" ]]; then
    echo "FAIL: worker w${w} did not write its metrics-w${w}.json" >&2
    exit 1
  fi
done

# 4. Store integrity: clean audit, then a corrupted entry must fail the
# audit, quarantine must move it aside, and a --resume drain must heal the
# store back to the same bytes.
"${store_bin}" --fsck --store-dir "${dist_store}" > /dev/null
victim="$(ls "${dist_store}"/*.json | head -n 1)"
echo "garbage, not a store entry" > "${victim}"
set +e
"${store_bin}" --fsck --store-dir "${dist_store}" > /dev/null 2>&1
fsck_status=$?
set -e
if [[ "${fsck_status}" -ne 1 ]]; then
  echo "FAIL: fsck of a corrupted store exited ${fsck_status}, expected 1" >&2
  exit 1
fi
set +e
"${store_bin}" --fsck --quarantine --store-dir "${dist_store}" > "${work}/fsck.out" 2>&1
set -e
if [[ -e "${victim}" ]] || [[ ! -e "${dist_store}/quarantine/$(basename "${victim}")" ]]; then
  echo "FAIL: quarantine did not move the corrupted entry aside" >&2
  exit 1
fi
"${fig_bin}" "${common_flags[@]}" "${drain_flags[@]}" --worker-id heal --resume \
  > "${work}/heal.out" 2> "${work}/heal.err"
"${store_bin}" --fsck --store-dir "${dist_store}" > /dev/null
cmp "${dist_dir}/result.json" "${ref_dir}/result.json" || {
  echo "FAIL: healed result.json differs from the single-process run" >&2
  exit 1
}

# 5. manetd: serve the drained campaign, ask the same query twice from
# separate client processes (byte-identical answers, cache hit visible in
# stats), then stop the server.
sock="${work}/manetd.sock"
"${manetd_bin}" --socket "${sock}" --campaign-dir "${dist_dir}" --quiet \
  > "${work}/manetd.out" 2> "${work}/manetd.err" &
server_pid=$!
trap 'kill "${server_pid}" 2> /dev/null || true' EXIT
for _ in $(seq 1 100); do
  [[ -S "${sock}" ]] && break
  sleep 0.05
done

query='{"op": "rquantile", "campaign": "fig7_pstationary", "point": 0, "fraction": 0.95}'
"${manetd_bin}" --connect "${sock}" --query "${query}" > "${work}/q1.out"
"${manetd_bin}" --connect "${sock}" --query "${query}" > "${work}/q2.out"
cmp "${work}/q1.out" "${work}/q2.out" || {
  echo "FAIL: repeated identical queries returned different bytes" >&2
  exit 1
}
grep -q '"ok": *true' "${work}/q1.out" || {
  echo "FAIL: query was not answered ok: $(cat "${work}/q1.out")" >&2
  exit 1
}

"${manetd_bin}" --connect "${sock}" --query '{"op": "stats"}' > "${work}/stats.out"
cache_hits="$(grep -o '"cache_hits": *[0-9]*' "${work}/stats.out" | grep -o '[0-9]*$')"
if [[ "${cache_hits:-0}" -lt 1 ]]; then
  echo "FAIL: stats report ${cache_hits:-0} cache hits after a repeated query" >&2
  exit 1
fi

"${manetd_bin}" --connect "${sock}" --query '{"op": "stop"}' > /dev/null
wait "${server_pid}" || {
  echo "FAIL: manetd did not shut down cleanly on the stop op" >&2
  exit 1
}
trap - EXIT

echo "distributed smoke: OK (4 workers, one killed and stolen from, result.json" \
  "bit-identical; store fsck'd, corrupted, quarantined and healed; manetd" \
  "answered with ${cache_hits} cache hit(s) and stopped cleanly)" >&2
