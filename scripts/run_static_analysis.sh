#!/usr/bin/env bash
# Static-analysis entry point: three legs over the first-party tree, each
# reproducible locally and gating CI (.github/workflows/ci.yml) identically.
#
#   1. manet-lint    — the project's own determinism linter (tools/lint/),
#                      built from source; needs nothing beyond the C++
#                      toolchain, so it always runs.
#   2. clang-tidy    — config: .clang-tidy at the repo root, over every
#                      first-party translation unit in src/ and tools/lint/
#                      (the linter lints the linter), using a CMake compile
#                      database.
#   3. cppcheck      — whole-program checks clang-tidy doesn't do, with the
#                      checked-in suppression list tools/lint/cppcheck_suppressions.txt.
#
# clang-tidy and cppcheck skip gracefully when the binary is missing so
# developer machines without LLVM / cppcheck still get the manet-lint leg;
# CI escalates a missing tool to a hard failure via MANET_REQUIRE_*=1.
#
# Usage:
#   scripts/run_static_analysis.sh [build-dir]
#
# Environment:
#   CLANG_TIDY                 clang-tidy binary to use (default: autodetect).
#   CPPCHECK                   cppcheck binary to use (default: autodetect).
#   MANET_REQUIRE_CLANG_TIDY   when 1, a missing clang-tidy is an error
#                              (exit 2) instead of a skip. CI sets this.
#   MANET_REQUIRE_CPPCHECK     when 1, a missing cppcheck is an error
#                              (exit 2) instead of a skip. CI sets this.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build/tidy"}"

overall_status=0

# A compile database is required by clang-tidy and used to build manet-lint;
# configure one if the build dir lacks it.
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "configuring ${build_dir} for compile_commands.json"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# ---------------------------------------------------------------------------
# Leg 1: manet-lint (tools/lint/) — determinism-contract rules. Self-built,
# so it never skips: a tree that compiles can always be linted.
# ---------------------------------------------------------------------------
echo "== manet-lint =="
cmake --build "${build_dir}" --target manet_lint -j "$(nproc)" > /dev/null
if ! "${build_dir}/tools/lint/manet_lint" --root "${repo_root}"; then
  echo "manet-lint FAILED: determinism-contract violations (see above)" >&2
  overall_status=1
fi

# ---------------------------------------------------------------------------
# Leg 2: clang-tidy over src/ and tools/lint/.
# ---------------------------------------------------------------------------
find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    command -v "${CLANG_TIDY}" && return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

echo "== clang-tidy =="
if ! tidy_bin="$(find_clang_tidy)"; then
  if [[ "${MANET_REQUIRE_CLANG_TIDY:-0}" == "1" ]]; then
    echo "error: clang-tidy not found and MANET_REQUIRE_CLANG_TIDY=1" >&2
    exit 2
  fi
  echo "warning: clang-tidy not found; skipping this leg." >&2
  echo "         (install LLVM or set CLANG_TIDY; set MANET_REQUIRE_CLANG_TIDY=1 to fail)" >&2
else
  echo "using ${tidy_bin} ($("${tidy_bin}" --version | sed -n 's/.*version /version /p' | head -1))"
  mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools/lint" -name '*.cpp' | sort)
  echo "analyzing ${#sources[@]} translation units under src/ and tools/lint/"

  tidy_status=0
  if run_parallel="$(command -v run-clang-tidy || true)" && [[ -n "${run_parallel}" ]]; then
    "${run_parallel}" -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" -quiet \
        "${repo_root}/(src|tools/lint)/.*\.cpp" || tidy_status=$?
  else
    for source in "${sources[@]}"; do
      "${tidy_bin}" -p "${build_dir}" --quiet "${source}" || tidy_status=$?
    done
  fi

  if [[ ${tidy_status} -ne 0 ]]; then
    echo "clang-tidy FAILED: findings reported (see above)" >&2
    overall_status=1
  else
    echo "clang-tidy OK: no findings"
  fi
fi

# ---------------------------------------------------------------------------
# Leg 3: cppcheck, with the checked-in suppression list. --error-exitcode
# makes findings fail the script; informational messages do not.
# ---------------------------------------------------------------------------
find_cppcheck() {
  if [[ -n "${CPPCHECK:-}" ]]; then
    command -v "${CPPCHECK}" && return 0
  fi
  if command -v cppcheck > /dev/null 2>&1; then
    command -v cppcheck
    return 0
  fi
  return 1
}

echo "== cppcheck =="
if ! cppcheck_bin="$(find_cppcheck)"; then
  if [[ "${MANET_REQUIRE_CPPCHECK:-0}" == "1" ]]; then
    echo "error: cppcheck not found and MANET_REQUIRE_CPPCHECK=1" >&2
    exit 2
  fi
  echo "warning: cppcheck not found; skipping this leg." >&2
  echo "         (install cppcheck or set CPPCHECK; set MANET_REQUIRE_CPPCHECK=1 to fail)" >&2
else
  echo "using ${cppcheck_bin} ($("${cppcheck_bin}" --version))"
  if "${cppcheck_bin}" \
      --enable=warning,performance,portability \
      --inline-suppr \
      --suppressions-list="${repo_root}/tools/lint/cppcheck_suppressions.txt" \
      --std=c++20 \
      --language=c++ \
      -I "${repo_root}/src" \
      -I "${repo_root}/tools" \
      --error-exitcode=1 \
      --quiet \
      "${repo_root}/src" "${repo_root}/tools/lint"; then
    echo "cppcheck OK: no findings"
  else
    echo "cppcheck FAILED: findings reported (see above)" >&2
    overall_status=1
  fi
fi

if [[ ${overall_status} -ne 0 ]]; then
  echo "static analysis FAILED (see legs above)" >&2
  exit 1
fi
echo "static analysis OK: all legs clean"
