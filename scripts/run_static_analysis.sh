#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit in src/, using a CMake compile database.
# Exits non-zero on any finding, so the check is reproducible locally and
# gates CI (.github/workflows/ci.yml) identically.
#
# Usage:
#   scripts/run_static_analysis.sh [build-dir]
#
# Environment:
#   CLANG_TIDY                 clang-tidy binary to use (default: autodetect).
#   MANET_REQUIRE_CLANG_TIDY   when 1, a missing clang-tidy is an error
#                              (exit 2) instead of a skip (exit 0). CI sets
#                              this; developer machines without LLVM skip.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build/tidy"}"

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    command -v "${CLANG_TIDY}" && return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

if ! tidy_bin="$(find_clang_tidy)"; then
  if [[ "${MANET_REQUIRE_CLANG_TIDY:-0}" == "1" ]]; then
    echo "error: clang-tidy not found and MANET_REQUIRE_CLANG_TIDY=1" >&2
    exit 2
  fi
  echo "warning: clang-tidy not found; skipping static analysis." >&2
  echo "         (install LLVM or set CLANG_TIDY; set MANET_REQUIRE_CLANG_TIDY=1 to fail)" >&2
  exit 0
fi
echo "using ${tidy_bin} ($("${tidy_bin}" --version | sed -n 's/.*version /version /p' | head -1))"

# A compile database is required; configure one if the build dir lacks it.
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "configuring ${build_dir} for compile_commands.json"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
echo "analyzing ${#sources[@]} translation units under src/"

status=0
if run_parallel="$(command -v run-clang-tidy || true)" && [[ -n "${run_parallel}" ]]; then
  "${run_parallel}" -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" -quiet \
      "${repo_root}/src/.*\.cpp" || status=$?
else
  for source in "${sources[@]}"; do
    "${tidy_bin}" -p "${build_dir}" --quiet "${source}" || status=$?
  done
fi

if [[ ${status} -ne 0 ]]; then
  echo "static analysis FAILED: clang-tidy reported findings (see above)" >&2
  exit 1
fi
echo "static analysis OK: no clang-tidy findings"
