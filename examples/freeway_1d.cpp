// Freeway scenario: the paper's motivating 1-dimensional application.
//
// "The most notable such application is to cars on a freeway, which
//  approximates a 1-dimensional region. [...] transmitters placed in cars
//  can transmit information about congestion or accidents to cars further
//  back." (Section 1)
//
// This example sizes the radio range for a stretch of freeway: it compares
// the worst-case, best-case and Theorem 5 (random placement) prescriptions,
// validates the Theorem 5 threshold empirically, and shows how congestion
// information propagates hop by hop through a connected snapshot.
//
//   ./examples/freeway_1d [--length L] [--cars N] [--seed S]

#include <iostream>

#include "core/theory.hpp"
#include "geometry/box.hpp"
#include "occupancy/exact_1d.hpp"
#include "graph/proximity.hpp"
#include "sim/deployment.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "topology/critical_range.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  CliParser cli("freeway_1d: range assignment for a 1-D vehicular network");
  cli.add_option("length", "freeway length (meters)", "8192");
  cli.add_option("cars", "number of equipped cars", "128");
  cli.add_option("seed", "random seed", "7");
  cli.add_option("trials", "deployments sampled for the empirical check", "400");
  try {
    cli.parse(argc, argv);
  } catch (const ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const double length = cli.double_value("length");
  const auto cars = static_cast<std::size_t>(cli.uint_value("cars"));
  const auto trials = static_cast<std::size_t>(cli.uint_value("trials"));
  Rng rng(cli.uint_value("seed"));
  const Box1 freeway(length);

  // --- The three placement regimes of Section 3. ---------------------------
  const double n = static_cast<double>(cars);
  std::cout << "Freeway of " << length << " m with " << cars << " cars:\n"
            << "  worst-case range (adversarial parking):  "
            << theory::worst_case_range(length, 1) << " m\n"
            << "  best-case range (equal spacing):         "
            << theory::best_case_range_1d(length, n) << " m\n"
            << "  Theorem 5 threshold (random traffic):    "
            << theory::connectivity_threshold_range_1d(length, n) << " m\n\n";

  // --- Empirical check of the threshold direction. -------------------------
  TextTable table({"beta", "range (m)", "P exact", "P simulated", "regime"});
  for (double beta : {0.2, 0.5, 0.8, 1.0, 1.5, 2.0}) {
    const double range = theory::connectivity_threshold_range_1d(length, n, beta);
    std::size_t connected = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto cars_on_road = uniform_deployment(cars, freeway, rng);
      if (critical_range<1>(cars_on_road) <= range) ++connected;
    }
    const double probability = static_cast<double>(connected) / static_cast<double>(trials);
    table.add_row({TextTable::num(beta, 2), TextTable::num(range, 1),
                   TextTable::num(exact_1d::probability_connected(cars, range, length), 3),
                   TextTable::num(probability, 3),
                   theory::regime_name(theory::classify_regime_1d(length, n, range))});
  }
  std::cout << "Connectivity vs range multiplier beta (r = beta * l ln l / n):\n";
  table.print(std::cout);

  // --- Message propagation in one connected snapshot. ----------------------
  const double range = theory::connectivity_threshold_range_1d(length, n, 2.0);
  auto cars_on_road = uniform_deployment(cars, freeway, rng);
  while (critical_range<1>(cars_on_road) > range) {
    cars_on_road = uniform_deployment(cars, freeway, rng);
  }
  const AdjacencyGraph graph = build_communication_graph<1>(cars_on_road, freeway, range);

  // The accident happens at the car closest to the end of the freeway; how
  // many hops until the car nearest the start hears about it?
  std::size_t front_car = 0;
  std::size_t back_car = 0;
  for (std::size_t i = 1; i < cars_on_road.size(); ++i) {
    if (cars_on_road[i][0] > cars_on_road[front_car][0]) front_car = i;
    if (cars_on_road[i][0] < cars_on_road[back_car][0]) back_car = i;
  }
  const auto hops = bfs_distances(graph, front_car);
  std::cout << "\nAccident at km " << cars_on_road[front_car][0] / 1000.0
            << ": warning reaches the car at km " << cars_on_road[back_car][0] / 1000.0
            << " after " << hops[back_car] << " relay hops (range " << range << " m).\n";
  return 0;
}
