// Quickstart: the library in ~60 lines.
//
// Deploys a small stationary ad hoc network, asks the two questions the
// paper poses — what transmitting range connects it, and what does that
// range cost — then repeats the question for a moving network.
//
//   ./examples/quickstart [--seed N]

#include <iostream>

#include "core/energy.hpp"
#include "core/mtr.hpp"
#include "core/mtrm.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  CliParser cli("quickstart: stationary and mobile minimum transmitting range");
  cli.add_option("seed", "random seed", "42");
  try {
    cli.parse(argc, argv);
  } catch (const ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  Rng rng(cli.uint_value("seed"));

  // --- Stationary MTR: n = 32 nodes in a 1024 x 1024 region. -------------
  const double side = 1024.0;
  const std::size_t n = 32;
  const Box2 region(side);

  MtrOptions options;
  options.trials = 500;
  options.target_probability = 0.99;
  const MtrEstimate mtr = estimate_mtr<2>(n, region, options, rng);

  std::cout << "Stationary network: n = " << n << " nodes in [0, " << side << "]^2\n"
            << "  r_stationary (99% of deployments connected): " << mtr.range << "\n"
            << "  mean critical radius:                        " << mtr.mean_critical_range
            << "\n\n";

  // --- Mobile MTRM: same network under random waypoint motion. -----------
  MtrmConfig config;
  config.node_count = n;
  config.side = side;
  config.steps = 1000;
  config.iterations = 5;
  config.mobility = MobilityConfig::paper_waypoint(side);

  const MtrmResult mtrm = solve_mtrm<2>(config, rng);
  const double r100 = mtrm.range_for_time[0].mean();
  const double r90 = mtrm.range_for_time[1].mean();
  const double r10 = mtrm.range_for_time[2].mean();

  std::cout << "Mobile network (random waypoint, " << config.steps << " steps x "
            << config.iterations << " runs):\n"
            << "  r100 (always connected):        " << r100 << "\n"
            << "  r90  (connected 90% of time):   " << r90 << "\n"
            << "  r10  (connected 10% of time):   " << r10 << "\n\n";

  // --- The energy trade-off the paper highlights. -------------------------
  const EnergyModel energy;  // power ~ r^2
  std::cout << "Energy saved by tolerating 10% disconnection: "
            << 100.0 * energy.savings(r100, r90) << "%\n"
            << "Energy saved at 10%-of-time connectivity:     "
            << 100.0 * energy.savings(r100, r10) << "%\n";
  return 0;
}
