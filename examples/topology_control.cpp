// Topology control scenario: the protocols the paper's introduction points
// at ("our evaluation of required transmitting range is also useful in
// directing various 'topology control' protocols, which try to dynamically
// adjust transmitting ranges in order to minimize energy consumption").
//
// The example deploys a stationary network and compares three operating
// points:
//   1. the paper's homogeneous critical range,
//   2. a dependability margin (homogeneous, biconnectivity-checked),
//   3. MST-based per-node range assignment,
// reporting energy, single-failure robustness (articulation points) and
// random-failure tolerance for each.
//
//   ./examples/topology_control [--side L] [--nodes N] [--seed S]

#include <iostream>

#include "core/energy.hpp"
#include "geometry/box.hpp"
#include "graph/proximity.hpp"
#include "graph/robustness.hpp"
#include "sim/deployment.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "topology/critical_range.hpp"
#include "topology/range_assignment.hpp"

namespace {

using namespace manet;

/// Mean random failures survived before disconnection, over `rounds` random
/// failure orders of `failures` nodes each.
double mean_failures_survived(const AdjacencyGraph& graph, std::size_t failures,
                              int rounds, Rng& rng) {
  double total = 0.0;
  std::vector<std::size_t> order(graph.vertex_count());
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    std::vector<std::size_t> head(order.begin(),
                                  order.begin() + static_cast<std::ptrdiff_t>(failures));
    total += static_cast<double>(inject_failures(graph, head).failures_survived);
  }
  return total / rounds;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("topology_control: homogeneous vs margin vs per-node ranges");
  cli.add_option("side", "region side length", "1024");
  cli.add_option("nodes", "number of nodes", "48");
  cli.add_option("seed", "random seed", "17");
  cli.add_option("alpha", "path-loss exponent", "2.0");
  try {
    cli.parse(argc, argv);
  } catch (const ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const double side = cli.double_value("side");
  const auto nodes = static_cast<std::size_t>(cli.uint_value("nodes"));
  Rng rng(cli.uint_value("seed"));
  const Box2 region(side);
  const EnergyModel energy(cli.double_value("alpha"));

  const auto points = uniform_deployment(nodes, region, rng);
  const double rc = critical_range<2>(points);

  // Operating point 2: grow the homogeneous range until the graph survives
  // any single node failure (biconnected).
  double r_margin = rc;
  while (!survives_any_single_failure(build_communication_graph<2>(points, region, r_margin))) {
    r_margin *= 1.05;
  }

  const RangeAssignment per_node = mst_assignment<2>(points);
  const double homogeneous_cost = energy.network_power(nodes, rc);

  const AdjacencyGraph graph_rc = build_communication_graph<2>(points, region, rc);
  const AdjacencyGraph graph_margin = build_communication_graph<2>(points, region, r_margin);

  std::cout << nodes << " nodes in [0, " << side << "]^2, critical range " << rc << "\n\n";

  TextTable table({"operating point", "max range", "energy (vs critical)",
                   "articulation pts", "mean failures survived (of 8)"});

  const int failure_rounds = 40;
  Rng failure_rng = rng.split();
  table.add_row({"homogeneous @ critical range", TextTable::num(rc, 1), "100.0%",
                 std::to_string(articulation_points(graph_rc).size()),
                 TextTable::num(mean_failures_survived(graph_rc, 8, failure_rounds,
                                                       failure_rng), 2)});
  table.add_row({"homogeneous @ biconnectivity margin", TextTable::num(r_margin, 1),
                 TextTable::num(100.0 * energy.network_power(nodes, r_margin) /
                                    homogeneous_cost, 1) + "%",
                 std::to_string(articulation_points(graph_margin).size()),
                 TextTable::num(mean_failures_survived(graph_margin, 8, failure_rounds,
                                                       failure_rng), 2)});
  table.add_row({"per-node MST assignment", TextTable::num(per_node.max_range(), 1),
                 TextTable::num(100.0 * per_node.cost(energy.alpha()) / homogeneous_cost,
                                1) + "%",
                 "n/a (asymmetric ranges)", "n/a"});
  table.print(std::cout);

  std::cout << "\nReading: the biconnectivity margin buys single-failure immunity for "
            << TextTable::num(100.0 * (energy.transmit_power(r_margin) /
                                           energy.transmit_power(rc) - 1.0), 1)
            << "% extra per-node energy, while per-node ranges cut total energy to "
            << TextTable::num(100.0 * per_node.cost(energy.alpha()) / homogeneous_cost, 1)
            << "% — the trade-offs the topology-control literature [6,9,10] navigates.\n";
  return 0;
}
