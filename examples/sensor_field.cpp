// Sensor field scenario: 2-D mobile network dimensioning with the
// energy / dependability trade-off of Section 4.
//
// Sensors are dropped from an aircraft over a square field; a fraction gets
// entangled and never moves (the paper's p_stationary), the rest drift. The
// example solves MTRM for three dependability requirements (always / 90% /
// 10% of the time connected), prices each in transmit energy, and reports
// the availability achieved at every candidate range.
//
//   ./examples/sensor_field [--side L] [--nodes N] [--p-stationary P] ...

#include <iostream>

#include "core/availability.hpp"
#include "core/energy.hpp"
#include "core/mtr.hpp"
#include "core/mtrm.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  CliParser cli("sensor_field: MTRM dimensioning for an airdropped sensor field");
  cli.add_option("side", "field side length", "1024");
  cli.add_option("nodes", "number of sensors", "32");
  cli.add_option("p-stationary", "fraction of sensors stuck after the drop", "0.2");
  cli.add_option("steps", "mobility steps per run", "1500");
  cli.add_option("iterations", "independent runs", "6");
  cli.add_option("alpha", "path-loss exponent of the energy model", "2.0");
  cli.add_option("seed", "random seed", "11");
  try {
    cli.parse(argc, argv);
  } catch (const ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const double side = cli.double_value("side");
  const auto nodes = static_cast<std::size_t>(cli.uint_value("nodes"));
  Rng rng(cli.uint_value("seed"));

  // --- Solve MTRM under random waypoint drift. -----------------------------
  MtrmConfig config;
  config.node_count = nodes;
  config.side = side;
  config.steps = static_cast<std::size_t>(cli.uint_value("steps"));
  config.iterations = static_cast<std::size_t>(cli.uint_value("iterations"));
  config.mobility = MobilityConfig::paper_waypoint(side);
  config.mobility.waypoint.p_stationary = cli.double_value("p-stationary");

  std::cout << "Solving MTRM: " << nodes << " sensors in [0, " << side << "]^2, "
            << config.iterations << " x " << config.steps << " mobility steps, "
            << "p_stationary = " << config.mobility.waypoint.p_stationary << " ...\n\n";
  const MtrmResult result = solve_mtrm<2>(config, rng);

  // Stationary reference for the ratios the paper plots.
  MtrOptions stationary_options;
  stationary_options.trials = 400;
  const Box2 region(side);
  const double r_stationary = estimate_mtr<2>(nodes, region, stationary_options, rng).range;

  const EnergyModel energy(cli.double_value("alpha"));
  const double r100 = result.range_for_time[0].mean();

  TextTable table({"requirement", "range", "r/r_stationary", "energy vs r100",
                   "LCC when down"});
  const char* names[] = {"connected 100% of time", "connected 90% of time",
                         "connected 10% of time"};
  for (std::size_t i = 0; i < 3; ++i) {
    const double r = result.range_for_time[i].mean();
    table.add_row({names[i], TextTable::num(r, 1), TextTable::num(r / r_stationary, 3),
                   TextTable::num(100.0 * energy.transmit_power(r) / energy.transmit_power(r100), 1) + "%",
                   TextTable::num(result.lcc_at_range_for_time[i].mean(), 3)});
  }
  table.add_row({"90% of sensors connected",
                 TextTable::num(result.range_for_component[0].mean(), 1),
                 TextTable::num(result.range_for_component[0].mean() / r_stationary, 3),
                 TextTable::num(100.0 * energy.transmit_power(result.range_for_component[0].mean()) /
                                    energy.transmit_power(r100), 1) + "%",
                 "-"});
  table.add_row({"50% of sensors connected",
                 TextTable::num(result.range_for_component[2].mean(), 1),
                 TextTable::num(result.range_for_component[2].mean() / r_stationary, 3),
                 TextTable::num(100.0 * energy.transmit_power(result.range_for_component[2].mean()) /
                                    energy.transmit_power(r100), 1) + "%",
                 "-"});
  table.print(std::cout);

  // --- Availability view of one fresh trace at each range. -----------------
  std::cout << "\nAvailability of a fresh trace at the solved ranges (phi = 0.9):\n";
  auto model = make_mobility_model<2>(config.mobility, region);
  Rng trace_rng = rng.split();
  const auto trace =
      run_mobile_trace<2>(nodes, region, config.steps, *model, trace_rng);

  TextTable availability_table({"range", "full availability", "degraded availability"});
  for (std::size_t i = 0; i < 3; ++i) {
    const double r = result.range_for_time[i].mean();
    const AvailabilityReport report = evaluate_availability(trace, r, 0.9);
    availability_table.add_row({TextTable::num(r, 1),
                                TextTable::num(report.full_availability, 3),
                                TextTable::num(report.degraded_availability, 3)});
  }
  availability_table.print(std::cout);

  std::cout << "\nReading: tolerating 10% downtime cuts per-node transmit energy to "
            << TextTable::num(100.0 * energy.transmit_power(result.range_for_time[1].mean()) /
                                  energy.transmit_power(r100), 0)
            << "% of the always-connected budget, while the network still holds a "
            << TextTable::num(result.lcc_at_range_for_time[1].mean() * 100.0, 0)
            << "%-of-nodes component during outages.\n";
  return 0;
}
