// Environmental monitoring scenario: the paper's third dependability regime.
//
// "The network stays disconnected most of the time, but temporary connection
//  periods can be used to exchange data among nodes. This could be the case
//  of wireless sensor networks used for environmental monitoring [...]
//  reducing energy consumption is the primary concern, and temporary
//  connectedness is sufficient." (Section 4)
//
// Buoys drift on the ocean surface (drunkard model). The example runs the
// network at rl50 — the range keeping only half the buoys in one component
// on average, far below r100 — and simulates epidemic data dissemination:
// each buoy's reading spreads through whatever component it currently sits
// in, one gossip round per mobility step. It reports how many steps until
// every buoy holds every reading, demonstrating that eventual delivery
// survives aggressive range reduction.
//
//   ./examples/environmental_monitoring [--side L] [--buoys N] [--seed S]

#include <iostream>
#include <vector>

#include "core/energy.hpp"
#include "geometry/box.hpp"
#include "graph/proximity.hpp"
#include "mobility/factory.hpp"
#include "sim/deployment.hpp"
#include "sim/mobile_trace.hpp"
#include "support/cli.hpp"

namespace {

using namespace manet;

/// One gossip round: within every connected component of the current graph,
/// all members merge their reading sets. Returns true when every node knows
/// every reading.
bool gossip_round(const AdjacencyGraph& graph, std::vector<std::vector<bool>>& knowledge) {
  const std::size_t n = graph.vertex_count();
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> stack;
  bool everyone_knows_everything = true;

  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    // Collect the component.
    std::vector<std::size_t> component;
    stack.push_back(start);
    visited[start] = true;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      component.push_back(v);
      for (std::size_t w : graph.neighbors(v)) {
        if (!visited[w]) {
          visited[w] = true;
          stack.push_back(w);
        }
      }
    }
    // Union of knowledge across the component.
    std::vector<bool> pooled(n, false);
    for (std::size_t v : component) {
      for (std::size_t item = 0; item < n; ++item) {
        if (knowledge[v][item]) pooled[item] = true;
      }
    }
    for (std::size_t v : component) knowledge[v] = pooled;
    for (std::size_t item = 0; item < n; ++item) {
      if (!pooled[item]) everyone_knows_everything = false;
    }
  }
  return everyone_knows_everything;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("environmental_monitoring: gossip over a mostly-disconnected drifting network");
  cli.add_option("side", "monitored area side length", "512");
  cli.add_option("buoys", "number of drifting buoys", "24");
  cli.add_option("steps", "calibration steps for r10", "800");
  cli.add_option("max-steps", "gossip step budget", "20000");
  cli.add_option("seed", "random seed", "3");
  try {
    cli.parse(argc, argv);
  } catch (const ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const double side = cli.double_value("side");
  const auto buoys = static_cast<std::size_t>(cli.uint_value("buoys"));
  Rng rng(cli.uint_value("seed"));
  const Box2 ocean(side);
  const MobilityConfig drift = MobilityConfig::paper_drunkard(side);

  // --- Calibrate r100 and r10 from a trace. --------------------------------
  auto calibration_model = make_mobility_model<2>(drift, ocean);
  Rng calibration_rng = rng.split();
  const auto trace = run_mobile_trace<2>(buoys, ocean, cli.uint_value("steps"),
                                         *calibration_model, calibration_rng);
  const double r100 = trace.range_for_time_fraction(1.0);
  const double r10 = trace.range_for_time_fraction(0.1);
  // Operate even lower: the range keeping only half the nodes in one
  // component on average — the paper's "disperse twice as many nodes and
  // keep half connected" regime.
  const double r_op = trace.range_for_mean_component_fraction(0.5);
  const EnergyModel energy;

  std::cout << buoys << " buoys drifting on [0, " << side << "]^2 (drunkard model)\n"
            << "  r100 = " << r100 << ", r10 = " << r10 << ", rl50 = " << r_op << "\n"
            << "  operating at rl50 uses " << 100.0 * energy.transmit_power(r_op) /
                   energy.transmit_power(r100)
            << "% of the r100 transmit power\n\n";

  // --- Epidemic dissemination at rl50. --------------------------------------
  auto positions = uniform_deployment(buoys, ocean, rng);
  auto model = make_mobility_model<2>(drift, ocean);
  model->initialize(positions, rng);

  std::vector<std::vector<bool>> knowledge(buoys, std::vector<bool>(buoys, false));
  for (std::size_t i = 0; i < buoys; ++i) knowledge[i][i] = true;  // own reading

  const std::size_t budget = cli.uint_value("max-steps");
  std::size_t steps_used = budget;
  std::size_t connected_steps = 0;
  for (std::size_t step = 0; step < budget; ++step) {
    const AdjacencyGraph graph = build_communication_graph<2>(positions, ocean, r_op);
    if (reachable_count(graph, 0) == buoys) ++connected_steps;
    if (gossip_round(graph, knowledge)) {
      steps_used = step + 1;
      break;
    }
    model->step(positions, rng);
  }

  if (steps_used == budget) {
    std::cout << "Dissemination did not complete within " << budget << " steps.\n";
    return 0;
  }
  std::cout << "All " << buoys << " readings reached all buoys after " << steps_used
            << " steps, although the network was fully connected during only "
            << connected_steps << " of them.\n"
            << "Mobility turned a mostly-disconnected network into a delay-tolerant "
               "one, exactly the Section 4 scenario.\n";
  return 0;
}
