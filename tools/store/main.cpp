// manet-store: maintenance CLI for the content-addressed campaign store.
//
//   manet_store --fsck --store-dir results/store
//   manet_store --fsck --quarantine --store-dir results/store
//
// --fsck re-hashes every entry's canonical string against its recorded key
// and its file name (the content-address invariant) and reports corrupt or
// foreign files; exit 1 when any are found, so CI can gate on store health.
// --quarantine additionally moves offenders to <store>/quarantine/, after
// which the next campaign run recomputes them — the store heals itself.

#include <exception>
#include <iostream>
#include <string>

#include "service/fsck.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  try {
    manet::CliParser cli(
        "manet-store: maintenance for the content-addressed campaign store.\n"
        "Exit codes: 0 store sound, 1 integrity issues found, 2 usage/IO error.");
    cli.add_flag("fsck", "re-hash every store entry against its content address");
    cli.add_flag("quarantine", "move offending entries to <store>/quarantine/");
    cli.add_option("store-dir", "content-addressed unit store to audit", "results/store");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::cout << cli.help_text();
      return 0;
    }
    if (!cli.flag("fsck")) {
      throw manet::ConfigError("nothing to do (pass --fsck)");
    }

    const std::string store_dir = cli.string_value("store-dir");
    const manet::service::FsckReport report =
        manet::service::fsck_store(store_dir, cli.flag("quarantine"));

    for (const manet::service::FsckIssue& issue : report.issues) {
      std::cout << issue.path.generic_string() << ": " << issue.reason << '\n';
    }
    std::cerr << "manet-store: fsck " << store_dir << ": " << report.scanned
              << " entries, " << report.ok << " ok, " << report.issues.size()
              << " issue(s), " << report.quarantined << " quarantined\n";
    return report.clean() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "manet-store: error: " << error.what() << '\n';
    return 2;
  }
}
