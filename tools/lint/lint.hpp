#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace manet::lint {

/// The project-specific determinism & portability linter.
///
/// The repo's core guarantee — bit-identical results across thread counts,
/// resumes, hosts and locales — is a set of *source-level* invariants that a
/// generic tool cannot express: locale-sensitive number formatting belongs
/// in support/numeric.hpp only, wall-clock reads in the metrics/telemetry
/// layer only, hash-ordered containers nowhere near a result path. This
/// library enforces those invariants with a comment/string-literal-aware
/// lexer and a declarative rule table (rules()); the `manet_lint` binary
/// (tools/lint/main.cpp) drives it over src/, bench/, tests/ and tools/.
///
/// Escape hatches, both requiring a stated reason:
///  * file-level: an entry in tools/lint/lint_policy.json
///    ({"rule": ..., "file": ..., "reason": ...});
///  * line-level: a suppression comment — "allow(rule-id, ...) dash reason"
///    after the linter's own marker prefix — on the offending line, or alone
///    on the line above it. (The exact spelling is not written out here: the
///    linter scans this header too, and a literal example would parse as a
///    malformed suppression.)

/// One finding, rendered as "file:line: rule-id: message".
struct Diagnostic {
  std::string file;      ///< repo-relative, forward slashes
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// How a banned-name pattern is matched against a qualified-identifier run
/// (a maximal `a::b::c` token sequence outside comments and literals).
enum class MatchKind {
  /// Any `::`-separated component equals the pattern text; catches
  /// `steady_clock` inside `std::chrono::steady_clock::now` and the header
  /// name token in `#include <mutex>`.
  kComponent,
  /// The whole run equals the pattern text; used where a bare component
  /// would collide with a legitimate name (`std::fixed` must not flag
  /// `std::chars_format::fixed`).
  kExact,
  /// Any component *starts with* the pattern text; the only way to cover an
  /// open-ended intrinsic family (`_mm_`, `_mm256_`, `vqaddq_`...) whose
  /// members cannot be enumerated.
  kPrefix,
};

struct Pattern {
  std::string text;
  MatchKind kind = MatchKind::kComponent;
  /// Only flag when the run is immediately followed by '(' — separates the
  /// call `time(nullptr)` from a variable or member that happens to be
  /// named `time`.
  bool require_call = false;
};

struct Rule {
  std::string id;
  /// One-line statement of the invariant, appended to every diagnostic.
  std::string summary;
  /// Top-level directories the rule applies to ("src", "bench", "tests").
  std::vector<std::string> scopes;
  /// The designated seams: repo-relative files where the banned names are
  /// the implementation, not a violation.
  std::vector<std::string> allowed_files;
  std::vector<Pattern> patterns;
};

/// The determinism contract as a rule table. Order is stable; ids are the
/// public names used by suppressions and the policy file.
const std::vector<Rule>& rules();

/// Pointer to a rule by id, or nullptr.
const Rule* find_rule(std::string_view id);

struct PolicyEntry {
  std::string rule;
  std::string file;
  std::string reason;
};

struct Policy {
  std::vector<PolicyEntry> allow;
};

/// Parses and validates a lint_policy.json document (schema_version 1).
/// Unknown rule ids, unknown keys, non-string fields and empty reasons are
/// ConfigErrors — a stale or hand-mangled policy must not silently widen
/// the allowlist.
Policy parse_policy(std::string_view json_text);

/// Lints one file's contents against every rule whose scope covers `path`
/// (repo-relative, forward slashes). Diagnostics come back in source order.
std::vector<Diagnostic> lint_source(std::string_view path, std::string_view text,
                                    const Policy& policy);

}  // namespace manet::lint
