// manet-lint driver: walks src/, bench/, tests/ and tools/ under the repo
// root, lints every C++ source against the determinism rule table (lint.hpp)
// and exits nonzero on any unsuppressed violation. Run locally via the `lint`
// CMake target or scripts/run_static_analysis.sh; CI runs it on every PR.

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

namespace {

/// Directories the determinism contract covers, in scan order.
constexpr const char* kScanDirs[] = {"src", "bench", "tests", "tools"};

bool has_cpp_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

std::vector<std::string> collect_sources(const std::filesystem::path& root) {
  std::vector<std::string> files;
  for (const char* dir : kScanDirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::is_directory(base)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
        // Repo-relative with forward slashes: the form the rule table,
        // policy file and diagnostics all use.
        files.push_back(std::filesystem::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void print_rules() {
  for (const manet::lint::Rule& rule : manet::lint::rules()) {
    std::cout << rule.id << "\n    " << rule.summary << "\n    scope:";
    for (const std::string& scope : rule.scopes) std::cout << ' ' << scope << '/';
    if (!rule.allowed_files.empty()) {
      std::cout << "\n    allowed:";
      for (const std::string& file : rule.allowed_files) std::cout << ' ' << file;
    }
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    manet::CliParser cli(
        "manet-lint: determinism & portability rules over src/, bench/, tests/ "
        "and tools/.\n"
        "Diagnostics: <file>:<line>: <rule-id>: <message>; exit 1 on violations.");
    cli.add_option("root", "repository root to scan", ".");
    cli.add_option("policy",
                   "lint policy JSON; empty means <root>/tools/lint/lint_policy.json",
                   "");
    cli.add_flag("list-rules", "print the rule table and exit");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::cout << cli.help_text();
      return 0;
    }
    if (cli.flag("list-rules")) {
      print_rules();
      return 0;
    }

    const std::filesystem::path root = cli.string_value("root");
    std::filesystem::path policy_path = cli.string_value("policy");
    if (policy_path.empty()) policy_path = root / "tools" / "lint" / "lint_policy.json";
    const manet::lint::Policy policy =
        manet::lint::parse_policy(manet::read_text_file(policy_path));

    const std::vector<std::string> files = collect_sources(root);
    if (files.empty()) {
      std::cerr << "manet-lint: no sources found under " << root << '\n';
      return 2;
    }

    std::size_t violation_count = 0;
    std::size_t files_with_violations = 0;
    for (const std::string& file : files) {
      const std::string text = manet::read_text_file(root / file);
      const std::vector<manet::lint::Diagnostic> diagnostics =
          manet::lint::lint_source(file, text, policy);
      if (!diagnostics.empty()) ++files_with_violations;
      violation_count += diagnostics.size();
      for (const manet::lint::Diagnostic& d : diagnostics) {
        std::cout << d.file << ':' << d.line << ": " << d.rule << ": " << d.message << '\n';
      }
    }

    if (violation_count > 0) {
      std::cerr << "manet-lint: " << violation_count << " violation(s) in "
                << files_with_violations << " of " << files.size() << " files\n";
      return 1;
    }
    std::cout << "manet-lint: OK (" << files.size() << " files clean)\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "manet-lint: error: " << error.what() << '\n';
    return 2;
  }
}
