#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

#include "support/error.hpp"
#include "support/json.hpp"

namespace manet::lint {

namespace {

Pattern component(std::string text) { return Pattern{std::move(text), MatchKind::kComponent, false}; }
Pattern component_call(std::string text) {
  return Pattern{std::move(text), MatchKind::kComponent, true};
}
Pattern exact(std::string text) { return Pattern{std::move(text), MatchKind::kExact, false}; }
Pattern prefix(std::string text) { return Pattern{std::move(text), MatchKind::kPrefix, false}; }

std::vector<Rule> build_rules() {
  std::vector<Rule> table;

  table.push_back(Rule{
      "locale-parse",
      "locale-sensitive number parsing is confined to src/support/numeric.hpp "
      "(use manet::parse_double)",
      {"src", "bench", "tests"},
      {"src/support/numeric.hpp"},
      {component_call("stod"), component_call("stof"), component_call("stold"),
       component_call("strtod"), component_call("strtof"), component_call("strtold"),
       component_call("atof"), component_call("sscanf"), component_call("vsscanf"),
       component_call("scanf"), component_call("fscanf")},
  });

  table.push_back(Rule{
      "locale-format",
      "locale-sensitive floating-point formatting is confined to "
      "src/support/numeric.hpp (use format_double_roundtrip / format_fixed)",
      {"src", "bench", "tests"},
      {"src/support/numeric.hpp"},
      {component_call("setprecision"), exact("std::fixed"), exact("std::scientific"),
       exact("std::hexfloat"), exact("std::defaultfloat")},
  });

  table.push_back(Rule{
      "nondet-random",
      "nondeterministic or hidden-state randomness is confined to "
      "src/support/rng.hpp (seeded substreams only); std::*_distribution is "
      "banned everywhere because its draw sequence is implementation-defined "
      "— fading and deviate draws go through support/rng substreams",
      {"src", "bench", "tests"},
      {"src/support/rng.hpp", "src/support/rng.cpp"},
      {component("random_device"), component_call("rand"), component_call("srand"),
       component_call("rand_r"), component_call("drand48"), component_call("lrand48"),
       component_call("mrand48"), component_call("random"),
       component_call("random_shuffle"),
       // The <random> distribution adaptors: which engine draws they make is
       // implementation-defined, so the same seed yields different graphs on
       // different standard libraries. Rng::normal()/uniform() are the
       // sanctioned deterministic equivalents — not even rng.{hpp,cpp} may
       // use these (the allowlist exempts the files, but keeping the
       // patterns exhaustive documents the ban).
       component("uniform_int_distribution"), component("uniform_real_distribution"),
       component("bernoulli_distribution"), component("binomial_distribution"),
       component("negative_binomial_distribution"), component("geometric_distribution"),
       component("poisson_distribution"), component("exponential_distribution"),
       component("gamma_distribution"), component("weibull_distribution"),
       component("extreme_value_distribution"), component("normal_distribution"),
       component("lognormal_distribution"), component("chi_squared_distribution"),
       component("cauchy_distribution"), component("fisher_f_distribution"),
       component("student_t_distribution"), component("discrete_distribution"),
       component("piecewise_constant_distribution"),
       component("piecewise_linear_distribution")},
  });

  table.push_back(Rule{
      "nondet-time",
      "wall-clock reads are confined to the metrics layer and timing benches "
      "(results must never depend on when they were computed)",
      {"src", "bench"},
      {"src/support/metrics.hpp", "src/support/metrics.cpp"},
      {component("chrono"), component("steady_clock"), component("system_clock"),
       component("high_resolution_clock"), component_call("time"), component_call("clock"),
       component_call("gettimeofday"), component_call("clock_gettime"),
       component_call("timespec_get"), component_call("localtime"), component_call("gmtime"),
       component_call("strftime")},
  });

  table.push_back(Rule{
      "nondet-ordering",
      "hash-ordered containers are banned in src/ (iteration order is "
      "implementation-defined and must never feed a result or serialization "
      "path; use std::map / std::set / sorted vectors)",
      {"src"},
      {},
      {component("unordered_map"), component("unordered_set"),
       component("unordered_multimap"), component("unordered_multiset")},
  });

  table.push_back(Rule{
      "thread-confinement",
      "threading primitives are confined to src/support/parallel.* and "
      "src/support/metrics.* (all parallelism flows through the deterministic "
      "engine)",
      {"src"},
      {"src/support/parallel.hpp", "src/support/parallel.cpp", "src/support/metrics.hpp",
       "src/support/metrics.cpp"},
      {component("thread"), component("jthread"), component("mutex"),
       component("recursive_mutex"), component("shared_mutex"), component("timed_mutex"),
       component("condition_variable"), component("condition_variable_any"),
       component("atomic"), component("atomic_flag"), component("atomic_ref"),
       component("future"), component("promise"), component("async"), component("barrier"),
       component("latch"), component("semaphore"), component("counting_semaphore"),
       component("binary_semaphore")},
  });

  table.push_back(Rule{
      "simd-confinement",
      "SIMD intrinsics, vector-pragma hints and CPU-feature probes are "
      "confined to src/geometry/distance_kernels.hpp (every vector lane must "
      "go through the batched kernels, whose bit-identity to the scalar path "
      "is proven once, there)",
      {"src", "bench", "tests"},
      {"src/geometry/distance_kernels.hpp"},
      {component("immintrin"), component("x86intrin"), component("emmintrin"),
       component("xmmintrin"), component("smmintrin"), component("tmmintrin"),
       component("nmmintrin"), component("pmmintrin"), component("avxintrin"),
       component("avx2intrin"), component("avx512fintrin"), component("arm_neon"),
       component("arm_sve"), component("ivdep"), component("omp"),
       prefix("_mm"), prefix("__m128"), prefix("__m256"), prefix("__m512"),
       component_call("__builtin_cpu_supports"), component_call("__builtin_cpu_init")},
  });

  table.push_back(Rule{
      "process-control",
      "process termination is confined to the campaign kill-hook seam "
      "(src/campaign/campaign.cpp); libraries report failure via exceptions",
      {"src", "bench", "tools"},
      {"src/campaign/campaign.cpp"},
      {component_call("exit"), component_call("_exit"), component_call("_Exit"),
       component_call("quick_exit"), component_call("abort"), component_call("terminate")},
  });

  table.push_back(Rule{
      "socket-confinement",
      "socket and process-spawn syscalls are confined to src/service/socket.cpp "
      "(the manetd transport); everything else speaks through the Socket / "
      "UnixListener wrappers so I/O never leaks into simulation or campaign "
      "code",
      {"src", "bench", "tests", "tools"},
      {"src/service/socket.cpp"},
      {component_call("socket"), component_call("bind"), component_call("listen"),
       component_call("accept"), component_call("accept4"), component_call("connect"),
       component_call("recv"), component_call("recvfrom"), component_call("recvmsg"),
       component_call("send"), component_call("sendto"), component_call("sendmsg"),
       component_call("setsockopt"), component_call("getsockopt"),
       component_call("socketpair"), component_call("fork"), component_call("vfork"),
       component_call("execve"), component_call("execl"), component_call("execlp"),
       component_call("execv"), component_call("execvp"), component_call("posix_spawn"),
       component_call("popen"), component_call("system")},
  });

  return table;
}

/// The meta-rule id used for malformed suppression comments. Not in the rule
/// table on purpose: a broken escape hatch must not itself be escapable.
constexpr const char* kSuppressionRule = "lint-suppression";

// --------------------------------------------------------------------------
// Lexer: tokens + suppression comments.
// --------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdentifier, kColonColon, kPunct };
  Kind kind;
  std::string_view text;
  std::size_t line;
};

struct Suppression {
  std::size_t line = 0;    ///< line the comment ends on
  bool whole_line = false; ///< nothing but whitespace before the comment
  std::vector<std::string> rule_ids;
  bool has_reason = false;
  bool well_formed = false;  ///< "allow( ... )" parsed structurally
};

bool is_identifier_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}
bool is_identifier_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Parses the body of a comment for the suppression marker. Returns false
/// when the comment does not mention manet-lint at all.
bool parse_suppression_comment(std::string_view body, Suppression& out) {
  const std::size_t marker = body.find("manet-lint:");
  if (marker == std::string_view::npos) return false;
  std::size_t i = marker + std::string_view("manet-lint:").size();
  const auto skip_spaces = [&] {
    while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
  };
  skip_spaces();
  if (body.compare(i, 5, "allow") != 0) return true;  // marker present, malformed
  i += 5;
  skip_spaces();
  if (i >= body.size() || body[i] != '(') return true;
  ++i;
  const std::size_t close = body.find(')', i);
  if (close == std::string_view::npos) return true;

  // Rule list: ids separated by commas and/or spaces.
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) out.rule_ids.push_back(std::exchange(current, {}));
  };
  for (std::size_t j = i; j < close; ++j) {
    const char c = body[j];
    if (c == ',' || c == ' ' || c == '\t') {
      flush();
    } else {
      current.push_back(c);
    }
  }
  flush();
  out.well_formed = !out.rule_ids.empty();
  i = close + 1;

  // Mandatory reason: whatever follows the ')', minus separator dashes. The
  // canonical spelling is "— <reason>" but plain "-", "--" and ":" work.
  while (i < body.size()) {
    const unsigned char c = static_cast<unsigned char>(body[i]);
    if (c == ' ' || c == '\t' || c == '-' || c == ':') {
      ++i;
    } else if (c == 0xE2 && i + 2 < body.size()) {
      ++i; ++i; ++i;  // UTF-8 em/en dash (U+2013/U+2014)
    } else {
      break;
    }
  }
  while (i < body.size()) {
    if (body[i] != ' ' && body[i] != '\t' && body[i] != '\r' && body[i] != '\n') {
      out.has_reason = true;
      break;
    }
    ++i;
  }
  return true;
}

/// Comment/string/char-literal-aware lexer. Produces the identifier/punct
/// token stream plus every manet-lint suppression comment.
void lex(std::string_view text, std::vector<Token>& tokens,
         std::vector<Suppression>& suppressions) {
  std::size_t i = 0;
  std::size_t line = 1;
  bool line_has_code = false;  // any token before the current position on this line

  const auto record_comment = [&](std::string_view body, std::size_t end_line,
                                  bool whole_line) {
    Suppression s;
    s.line = end_line;
    s.whole_line = whole_line;
    if (parse_suppression_comment(body, s)) suppressions.push_back(std::move(s));
  };

  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const std::size_t start = i;
      while (i < text.size() && text[i] != '\n') ++i;
      record_comment(text.substr(start, i - start), line, !line_has_code);
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t start = i;
      const bool whole_line = !line_has_code;
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      const std::size_t end = std::min(i, text.size());
      i = std::min(i + 2, text.size());
      record_comment(text.substr(start, end - start), line, whole_line);
      continue;
    }
    if (c == '"') {  // ordinary string literal (raw strings handled below)
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) ++i;
        if (text[i] == '\n') ++line;  // ill-formed, but keep line counts sane
        ++i;
      }
      ++i;
      line_has_code = true;
      continue;
    }
    if (c == '\'') {  // char literal ('' as digit separator is consumed by numbers)
      ++i;
      while (i < text.size() && text[i] != '\'') {
        if (text[i] == '\\' && i + 1 < text.size()) ++i;
        ++i;
      }
      ++i;
      line_has_code = true;
      continue;
    }
    if (is_digit(c) || (c == '.' && i + 1 < text.size() && is_digit(text[i + 1]))) {
      // pp-number: digits, identifier chars, '.', digit separators, exponent
      // signs. Consuming it as one blob keeps 1'000'000 from looking like a
      // char literal and 1e5f from producing a stray identifier.
      ++i;
      while (i < text.size()) {
        const char d = text[i];
        if (is_identifier_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                                              text[i - 1] == 'p' || text[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      line_has_code = true;
      continue;
    }
    if (is_identifier_start(c)) {
      const std::size_t start = i;
      while (i < text.size() && is_identifier_char(text[i])) ++i;
      const std::string_view word = text.substr(start, i - start);
      // Raw string literal: R"delim( ... )delim" (and u8R/uR/LR variants).
      if ((word == "R" || word == "u8R" || word == "uR" || word == "LR") &&
          i < text.size() && text[i] == '"') {
        ++i;
        const std::size_t delim_start = i;
        while (i < text.size() && text[i] != '(') ++i;
        std::string closer;
        closer.push_back(')');
        closer.append(text.substr(delim_start, i - delim_start));
        closer.push_back('"');
        const std::size_t body_start = i;
        const std::size_t end = text.find(closer, body_start);
        const std::size_t stop = end == std::string_view::npos ? text.size() : end + closer.size();
        for (std::size_t j = body_start; j < stop && j < text.size(); ++j) {
          if (text[j] == '\n') ++line;
        }
        i = stop;
        line_has_code = true;
        continue;
      }
      tokens.push_back(Token{Token::Kind::kIdentifier, word, line});
      line_has_code = true;
      continue;
    }
    if (c == ':' && i + 1 < text.size() && text[i + 1] == ':') {
      tokens.push_back(Token{Token::Kind::kColonColon, text.substr(i, 2), line});
      i += 2;
      line_has_code = true;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      tokens.push_back(Token{Token::Kind::kPunct, text.substr(i, 2), line});
      i += 2;
      line_has_code = true;
      continue;
    }
    tokens.push_back(Token{Token::Kind::kPunct, text.substr(i, 1), line});
    ++i;
    line_has_code = true;
  }
}

// --------------------------------------------------------------------------
// Matching.
// --------------------------------------------------------------------------

bool path_in_scope(std::string_view path, const Rule& rule) {
  for (const std::string& scope : rule.scopes) {
    if (path.size() > scope.size() && path.compare(0, scope.size(), scope) == 0 &&
        path[scope.size()] == '/') {
      return true;
    }
  }
  return false;
}

bool contains(const std::vector<std::string>& haystack, std::string_view needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

/// A maximal qualified-identifier run: `id (:: id)*`, optionally rooted with
/// a leading `::`.
struct QualifiedRun {
  std::vector<std::string_view> components;
  std::size_t first_token = 0;
  std::size_t past_last_token = 0;  ///< index one past the run
};

std::string join_run(const QualifiedRun& run) {
  std::string out;
  for (std::size_t i = 0; i < run.components.size(); ++i) {
    if (i > 0) out += "::";
    out += run.components[i];
  }
  return out;
}

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kTable = build_rules();
  return kTable;
}

const Rule* find_rule(std::string_view id) {
  for (const Rule& rule : rules()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

Policy parse_policy(std::string_view json_text) {
  const JsonValue doc = JsonValue::parse(json_text);
  const std::uint64_t version = doc.at("schema_version").as_uint();
  if (version != 1) {
    throw ConfigError("lint_policy: unsupported schema_version " + std::to_string(version));
  }
  for (const auto& [key, value] : doc.members()) {
    (void)value;
    if (key != "schema_version" && key != "allow") {
      throw ConfigError("lint_policy: unknown top-level key '" + key + "'");
    }
  }

  Policy policy;
  for (const JsonValue& item : doc.at("allow").items()) {
    PolicyEntry entry;
    for (const auto& [key, value] : item.members()) {
      if (key == "rule") {
        entry.rule = value.as_string();
      } else if (key == "file") {
        entry.file = value.as_string();
      } else if (key == "reason") {
        entry.reason = value.as_string();
      } else {
        throw ConfigError("lint_policy: unknown allow-entry key '" + key + "'");
      }
    }
    if (entry.rule.empty() || entry.file.empty()) {
      throw ConfigError("lint_policy: allow entry needs non-empty 'rule' and 'file'");
    }
    if (find_rule(entry.rule) == nullptr) {
      throw ConfigError("lint_policy: unknown rule '" + entry.rule + "'");
    }
    if (entry.reason.empty()) {
      throw ConfigError("lint_policy: allow entry for '" + entry.file +
                        "' is missing its reason");
    }
    policy.allow.push_back(std::move(entry));
  }
  return policy;
}

std::vector<Diagnostic> lint_source(std::string_view path, std::string_view text,
                                    const Policy& policy) {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  lex(text, tokens, suppressions);

  std::vector<Diagnostic> diagnostics;

  // Suppression comments: validate, then build rule-id -> suppressed lines.
  std::map<std::string, std::set<std::size_t>, std::less<>> suppressed;
  for (const Suppression& s : suppressions) {
    if (!s.well_formed) {
      diagnostics.push_back(Diagnostic{
          std::string(path), s.line, kSuppressionRule,
          "malformed suppression: expected 'manet-lint: allow(<rule>[, ...]) — <reason>'"});
      continue;
    }
    bool usable = true;
    for (const std::string& id : s.rule_ids) {
      if (find_rule(id) == nullptr) {
        diagnostics.push_back(Diagnostic{std::string(path), s.line, kSuppressionRule,
                                         "unknown rule '" + id + "' in suppression"});
        usable = false;
      }
    }
    if (!s.has_reason) {
      diagnostics.push_back(Diagnostic{
          std::string(path), s.line, kSuppressionRule,
          "suppression is missing its reason (the part after the dash is mandatory)"});
      usable = false;
    }
    if (!usable) continue;
    for (const std::string& id : s.rule_ids) {
      suppressed[id].insert(s.line);
      // A comment alone on its line shields the next line that carries code
      // (intervening comment-only lines — the rest of a comment block —
      // produce no tokens and are skipped).
      if (s.whole_line) {
        const auto next_code = std::upper_bound(
            tokens.begin(), tokens.end(), s.line,
            [](std::size_t line, const Token& token) { return line < token.line; });
        if (next_code != tokens.end()) suppressed[id].insert(next_code->line);
      }
    }
  }

  // Which rules apply to this file at all?
  std::vector<const Rule*> active;
  for (const Rule& rule : rules()) {
    if (!path_in_scope(path, rule)) continue;
    if (contains(rule.allowed_files, path)) continue;
    bool policy_allowed = false;
    for (const PolicyEntry& entry : policy.allow) {
      if (entry.rule == rule.id && entry.file == path) {
        policy_allowed = true;
        break;
      }
    }
    if (!policy_allowed) active.push_back(&rule);
  }

  if (!active.empty()) {
    std::size_t i = 0;
    while (i < tokens.size()) {
      const bool starts_run =
          tokens[i].kind == Token::Kind::kIdentifier ||
          (tokens[i].kind == Token::Kind::kColonColon && i + 1 < tokens.size() &&
           tokens[i + 1].kind == Token::Kind::kIdentifier);
      if (!starts_run) {
        ++i;
        continue;
      }

      QualifiedRun run;
      run.first_token = i;
      std::size_t j = i;
      if (tokens[j].kind == Token::Kind::kColonColon) ++j;
      while (j < tokens.size() && tokens[j].kind == Token::Kind::kIdentifier) {
        run.components.push_back(tokens[j].text);
        ++j;
        if (j + 1 < tokens.size() && tokens[j].kind == Token::Kind::kColonColon &&
            tokens[j + 1].kind == Token::Kind::kIdentifier) {
          ++j;
        } else {
          break;
        }
      }
      run.past_last_token = j;

      // Member access (`x.time()`, `now().count()`) is never the banned
      // global entity.
      const bool member_access =
          run.first_token > 0 && tokens[run.first_token - 1].kind == Token::Kind::kPunct &&
          (tokens[run.first_token - 1].text == "." || tokens[run.first_token - 1].text == "->");
      const bool followed_by_call = run.past_last_token < tokens.size() &&
                                    tokens[run.past_last_token].kind == Token::Kind::kPunct &&
                                    tokens[run.past_last_token].text == "(";

      if (!member_access) {
        // Token index of component k: components sit at stride 2 from the
        // first identifier (`id :: id :: id`), one later when the run is
        // rooted with a leading `::`.
        const std::size_t first_id =
            run.first_token +
            (tokens[run.first_token].kind == Token::Kind::kColonColon ? 1 : 0);
        const std::string run_text = join_run(run);
        for (const Rule* rule : active) {
          for (const Pattern& pattern : rule->patterns) {
            if (pattern.require_call && !followed_by_call) continue;
            std::size_t match_component = run.components.size();  // npos
            if (pattern.kind == MatchKind::kExact) {
              if (run_text == pattern.text) match_component = 0;
            } else {
              for (std::size_t k = 0; k < run.components.size(); ++k) {
                const std::string_view comp = run.components[k];
                const bool hit = pattern.kind == MatchKind::kPrefix
                                     ? comp.substr(0, pattern.text.size()) == pattern.text
                                     : comp == pattern.text;
                if (hit) {
                  match_component = k;
                  break;
                }
              }
            }
            if (match_component == run.components.size()) continue;
            const std::size_t line = tokens[first_id + 2 * match_component].line;
            const auto it = suppressed.find(rule->id);
            if (it != suppressed.end() && it->second.count(line) > 0) continue;
            diagnostics.push_back(Diagnostic{std::string(path), line, rule->id,
                                             "banned name '" + run_text + "' — " +
                                                 rule->summary});
            break;  // one diagnostic per run per rule
          }
        }
      }
      i = run.past_last_token;
    }
  }

  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
  return diagnostics;
}

}  // namespace manet::lint
