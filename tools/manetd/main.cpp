// manetd: the long-running connectivity query service (DESIGN.md §16).
//
// Server mode (default): load completed campaign result.json files once,
// then answer line-delimited JSON queries over a Unix-domain socket until a
// {"op":"stop"} request arrives:
//
//   manetd --socket /tmp/manetd.sock --campaigns-root results/campaigns
//   manetd --socket /tmp/manetd.sock --campaign-dir results/campaigns/fig7
//
// Client mode (--connect): send one query (or stdin, line by line) to a
// running server and print the response lines — the smoke scripts' client:
//
//   manetd --connect /tmp/manetd.sock --query '{"op":"health"}'
//   printf '%s\n' '{"op":"campaigns"}' '{"op":"stop"}' | manetd --connect ...

#include <exception>
#include <iostream>
#include <string>

#include "service/query.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

namespace {

int run_client(const std::string& socket_path, const std::string& query) {
  manet::service::Socket stream = manet::service::dial_unix(socket_path);
  const auto ask = [&stream](const std::string& line) {
    stream.send_all(line + "\n");
    std::string response;
    if (!stream.read_line(response)) {
      throw manet::ConfigError("server closed the connection without responding");
    }
    std::cout << response << '\n';
  };
  if (!query.empty()) {
    ask(query);
    return 0;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty()) ask(line);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    manet::CliParser cli(
        "manetd: connectivity query service over completed campaign results.\n"
        "Line-delimited JSON over a Unix-domain socket; ops: health, campaigns,\n"
        "mtrm, rquantile, phase, stats, stop.");
    cli.add_option("socket", "Unix-domain socket path to serve on", "");
    cli.add_option("campaign-dir",
                   "load one campaign directory (its result.json); repeat runs merge "
                   "into --campaigns-root",
                   "");
    cli.add_option("campaigns-root",
                   "load every subdirectory holding a result.json", "");
    cli.add_option("cache-capacity", "response cache capacity (entries)", "256");
    cli.add_option("client-timeout",
                   "seconds an idle client may hold the sequential accept loop "
                   "before its session is dropped (0 disables)",
                   "30");
    cli.add_flag("quiet", "suppress lifecycle lines on stderr");
    cli.add_option("connect", "client mode: connect to this socket instead of serving",
                   "");
    cli.add_option("query",
                   "client mode: send this one JSON request (default: read stdin)", "");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::cout << cli.help_text();
      return 0;
    }

    if (!cli.string_value("connect").empty()) {
      return run_client(cli.string_value("connect"), cli.string_value("query"));
    }

    manet::service::QueryEngine engine;
    if (!cli.string_value("campaign-dir").empty()) {
      engine.load_campaign_dir(cli.string_value("campaign-dir"));
    }
    if (!cli.string_value("campaigns-root").empty()) {
      engine.load_campaigns_root(cli.string_value("campaigns-root"));
    }
    if (engine.campaign_count() == 0) {
      throw manet::ConfigError(
          "no campaigns loaded (pass --campaign-dir and/or --campaigns-root)");
    }

    manet::service::ServerOptions options;
    options.socket_path = cli.string_value("socket");
    options.cache_capacity = static_cast<std::size_t>(cli.uint_value("cache-capacity"));
    options.client_timeout_seconds = cli.double_value("client-timeout");
    options.quiet = cli.flag("quiet");
    manet::service::ManetdServer server(std::move(engine), std::move(options));
    server.serve();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "manetd: error: " << error.what() << '\n';
    return 2;
  }
}
