#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

#if !defined(MANET_METRICS)
#define MANET_METRICS 1
#endif

#if MANET_METRICS
#include <chrono>
#endif

namespace manet::metrics {

/// Run-metrics layer: a process-wide registry of named counters, gauges and
/// fixed-bucket timing histograms that reports what happened *inside* a run
/// (solver iterations, EMST fallback rates, cache hits, per-phase time) —
/// the quantities the endpoint gates (golden checksums, campaign
/// byte-identity) cannot see.
///
/// Determinism contract — enabling metrics never perturbs the result stream:
///
///  * Instrumentation only ever *reads* the simulation; it never touches an
///    RNG, reorders work, or feeds anything back into a computed value, so
///    the golden MTRM checksums are identical with metrics on and off
///    (tests/run_metrics_test.cpp pins this at 1 and 8 threads).
///  * Hot-path increments go to a **per-thread sink** (a plain thread_local
///    array — no atomics, no sharing, no contention on the step loop) and
///    are merged into the global registry at the parallel engine's
///    reduction barrier: detail::run_task_batch flushes the executing
///    thread's sink after every task, before the batch's completion latch,
///    so by the time a batch returns every task-attributed value is globally
///    visible (the batch mutex provides the happens-before edge).
///  * Counters are u64 sums of per-trial contributions; since the per-trial
///    work is itself deterministic, the merged totals are identical at any
///    thread count. The only exceptions are the scheduling-dependent pool
///    metrics (pool.tasks_executed, pool.steals, pool.batches — how work was
///    *distributed*, not what was computed) and wall-clock timings; identity
///    assertions must exclude those.
///
/// Usage: obtain a handle once (registration takes a mutex) and increment
/// through it (lock-free, allocation-free after the sink warmed up):
///
///   static metrics::Counter rounds = metrics::counter("emst.doubling_rounds");
///   rounds.increment();
///
/// With MANET_METRICS=0 the whole API compiles to no-op stubs (empty
/// handles, constexpr bodies); call sites are unchanged and the optimizer
/// deletes them — bench/perf_mst.cpp doubles as the overhead gate.

/// True when the layer is compiled in (MANET_METRICS != 0).
constexpr bool compiled_in() noexcept { return MANET_METRICS != 0; }

/// Number of log2(nanoseconds) timing buckets: bucket b >= 1 holds samples
/// with elapsed ns in [2^(b-1), 2^b); bucket 0 holds 0 ns. 64-bit ns fit.
inline constexpr std::size_t kTimingBuckets = 65;

/// One non-empty timing bucket of a Snapshot (log2_ns = the bucket index b).
struct TimingBucket {
  std::size_t log2_ns = 0;
  std::uint64_t count = 0;
};

struct SnapshotCounter {
  std::string name;
  std::uint64_t value = 0;
};

struct SnapshotGauge {
  std::string name;
  std::uint64_t value = 0;
};

struct SnapshotTiming {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<TimingBucket> buckets;  ///< non-empty buckets, ascending log2_ns
};

/// A point-in-time copy of every registered metric, sorted by name (so the
/// JSON rendering is deterministic given identical values).
struct Snapshot {
  std::vector<SnapshotCounter> counters;
  std::vector<SnapshotGauge> gauges;
  std::vector<SnapshotTiming> timings;

  /// Value of the named counter; 0 when it was never registered.
  std::uint64_t counter_value(std::string_view name) const noexcept;
};

#if MANET_METRICS

/// Monotone event counter. Copyable handle (an id into the registry);
/// add() is hot-path safe: thread-local, lock-free, allocation-free once
/// this thread's sink covers the id.
class Counter {
 public:
  void add(std::uint64_t n);
  void increment() { add(1); }

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::size_t id) noexcept : id_(id) {}
  std::size_t id_;
};

/// Last-write-wins level (pool size, configured thread count). Set is rare,
/// so it writes the registry directly (relaxed atomic store).
class Gauge {
 public:
  void set(std::uint64_t value) noexcept;

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::size_t id) noexcept : id_(id) {}
  std::size_t id_;
};

/// Fixed-bucket (log2 ns) timing histogram with total/count, fed through the
/// same per-thread sinks as counters. Place at coarse boundaries (a campaign
/// unit, a threshold evaluation), never inside the per-step solve loop.
class Timer {
 public:
  void record_ns(std::uint64_t ns);

  /// RAII measurement: records the elapsed time on destruction. Defined
  /// below the class (it stores a Timer, incomplete until this brace).
  class Scope;
  Scope measure() noexcept;

 private:
  friend Timer timer(std::string_view name);
  explicit Timer(std::size_t id) noexcept : id_(id) {}
  std::size_t id_;
};

class Timer::Scope {
 public:
  explicit Scope(Timer scope_timer) noexcept
      : timer_(scope_timer), start_(std::chrono::steady_clock::now()) {}
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    timer_.record_ns(ns < 0 ? 0u : static_cast<std::uint64_t>(ns));
  }

 private:
  Timer timer_;
  std::chrono::steady_clock::time_point start_;
};

inline Timer::Scope Timer::measure() noexcept { return Scope(*this); }

/// Registers (or finds) the named metric and returns a handle. Takes the
/// registry mutex — obtain handles once (e.g. function-local static), not
/// per increment.
Counter counter(std::string_view name);
Gauge gauge(std::string_view name);
Timer timer(std::string_view name);

/// Merges the calling thread's sink into the global registry. Called by the
/// parallel engine after every task (the reduction-barrier merge) and by
/// snapshot() for the calling thread; safe to call at any time.
void flush_thread_sink() noexcept;

/// Flushes the calling thread and copies every registered metric, sorted by
/// name. Values written by completed run_task_batch batches are fully
/// visible; only another thread's *currently executing* task could hold
/// unflushed increments.
Snapshot snapshot();

/// Zeroes every registered value (names stay registered) and the calling
/// thread's sink. Intended for tests, between runs — not concurrently with
/// an in-flight batch.
void reset();

#else  // !MANET_METRICS — the whole API is inert and costs nothing.

class Counter {
 public:
  constexpr void add(std::uint64_t) const noexcept {}
  constexpr void increment() const noexcept {}
};

class Gauge {
 public:
  constexpr void set(std::uint64_t) const noexcept {}
};

class Timer {
 public:
  constexpr void record_ns(std::uint64_t) const noexcept {}
  /// Non-trivial destructor on purpose: RAII call sites
  /// (`const Scope s = t.measure();`) must not trip
  /// -Wunused-but-set-variable in the no-op build.
  struct Scope {
    ~Scope() {}  // NOLINT(modernize-use-equals-default)
  };
  Scope measure() const noexcept { return {}; }
};

inline Counter counter(std::string_view) noexcept { return {}; }
inline Gauge gauge(std::string_view) noexcept { return {}; }
inline Timer timer(std::string_view) noexcept { return {}; }
inline void flush_thread_sink() noexcept {}
inline Snapshot snapshot() { return {}; }
inline void reset() noexcept {}

#endif  // MANET_METRICS

/// Renders a snapshot as the deterministic "metrics" JSON section used by
/// the BenchReport artifacts (bench/perf_*, figure --metrics, campaign
/// metrics.json):
///
///   { "enabled": true,
///     "counters": { "<name>": <u64>, ... },      // sorted by name
///     "gauges":   { "<name>": <u64>, ... },
///     "timings":  { "<name>": { "count": n, "total_seconds": s,
///                               "buckets": [ { "log2_ns": b, "count": c } ] } } }
///
/// Deterministic means: ordering and counter values are reproducible for a
/// deterministic workload; timing values are wall-clock and are not.
JsonValue to_json(const Snapshot& snapshot);

/// flush_thread_sink() + snapshot() + to_json() in one call.
JsonValue collect_json();

}  // namespace manet::metrics
