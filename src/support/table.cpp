#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace manet {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MANET_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  MANET_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  // Locale-immune on purpose: the ostringstream << std::fixed path this
  // replaces renders "1,50" under a comma-decimal process locale, changing
  // every paper table and CSV export (manet-lint rule locale-format).
  return format_fixed(value, precision);
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& out) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace manet
