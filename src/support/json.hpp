#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace manet {

/// Minimal JSON document model for the repo's machine-readable artifacts:
/// campaign manifests, content-addressed unit files (src/campaign/) and the
/// unified bench schema (support/bench_json.hpp).
///
/// Design constraints, in order:
///  * **Deterministic output**: dump() renders a given document to exactly
///    one byte sequence — objects keep insertion order (stored as a vector
///    of pairs, not a map), numbers have one canonical rendering. Equal
///    campaign results therefore produce byte-identical files, which is what
///    lets the interrupt/resume smoke test `cmp` two result.json files.
///  * **Bit-exact doubles**: non-integral numbers are rendered with 17
///    significant digits, the round-trip guarantee for IEEE-754 binary64, so
///    a cached unit replayed from disk is bit-identical to the freshly
///    computed one. 64-bit seeds/keys exceed the 2^53 exact-integer window
///    and are stored as hex strings instead (support/hash.hpp).
///  * **Clear failures**: parse() and the typed accessors throw ConfigError
///    with a byte offset / expectation message, so a corrupt manifest is a
///    diagnosable user error, never UB or a crash.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered members (keys are not deduplicated by the type; the
  /// writers in this repo never emit duplicates and find() returns the
  /// first).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  /// Null by default.
  JsonValue() noexcept = default;

  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  /// Exact only within |v| <= 2^53; larger ids belong in hex strings.
  static JsonValue number(std::size_t value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }

  /// Typed accessors; throw ConfigError naming the expected/actual type.
  bool as_bool() const;
  double as_double() const;
  /// Requires an exactly-integral, non-negative number within 2^53.
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  /// Array append; requires an array.
  void push_back(JsonValue value);
  /// Object append; requires an object. Does not overwrite existing keys.
  void set(std::string key, JsonValue value);

  /// First member named `key`, or nullptr. Requires an object.
  const JsonValue* find(std::string_view key) const;
  /// Like find() but throws ConfigError when the key is missing.
  const JsonValue& at(std::string_view key) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws ConfigError with the byte offset of the problem.
  static JsonValue parse(std::string_view text);

  /// Renders the document. `indent` > 0 pretty-prints with that many spaces
  /// per level; 0 emits the compact single-line form. Deterministic (see
  /// class comment).
  std::string dump(int indent = 0) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace manet
