#include "support/parallel.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "support/metrics.hpp"

namespace manet {
namespace {

/// Upper bound on any configured thread count: far above useful hardware,
/// low enough that a typo in MANET_THREADS cannot exhaust process limits.
constexpr std::size_t kMaxThreads = 256;

std::size_t clamp_thread_count(std::size_t threads) noexcept {
  if (threads < 1) return 1;
  return std::min(threads, kMaxThreads);
}

std::size_t hardware_default() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return clamp_thread_count(hw == 0 ? 1 : static_cast<std::size_t>(hw));
}

/// MANET_THREADS, or hardware_concurrency() when unset / unparsable / 0.
/// Read once: the engine's thread count is process-stable unless overridden
/// programmatically.
std::size_t environment_thread_count() noexcept {
  const char* text = std::getenv("MANET_THREADS");
  if (text == nullptr || *text == '\0') return hardware_default();
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || value == 0) return hardware_default();
  return clamp_thread_count(static_cast<std::size_t>(value));
}

std::atomic<std::size_t> g_override{0};  // 0 = no programmatic override

/// The process-wide worker pool behind run_task_batch. Workers are created
/// lazily and the pool only grows (to the largest batch width requested so
/// far); per-batch concurrency is bounded by the batch's task count, never
/// by the worker count, so a grown pool cannot change any result.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void ensure_workers(std::size_t count) {
    static metrics::Gauge pool_workers = metrics::gauge("pool.workers");
    std::unique_lock<std::mutex> lock(mutex_);
    while (workers_.size() < count && workers_.size() < kMaxThreads) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    pool_workers.set(workers_.size());
  }

  void submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
  }

  /// Pops and runs one queued task on the calling thread. Returns false when
  /// the queue was empty. Used by batch waiters to help instead of blocking,
  /// which is what makes nested batches deadlock-free.
  bool run_one() {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) return false;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    return true;
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

 private:
  ThreadPool() = default;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Completion state shared by one run_task_batch call and its tasks.
struct Batch {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
};

}  // namespace

std::size_t max_parallelism() noexcept {
  const std::size_t override_threads = g_override.load(std::memory_order_relaxed);
  if (override_threads != 0) return override_threads;
  static const std::size_t configured = environment_thread_count();
  return configured;
}

void set_max_parallelism(std::size_t threads) noexcept {
  g_override.store(threads == 0 ? 0 : clamp_thread_count(threads),
                   std::memory_order_relaxed);
}

namespace detail {

void atomic_store_min(std::atomic<std::size_t>& current, std::size_t candidate) noexcept {
  std::size_t observed = current.load(std::memory_order_relaxed);
  while (candidate < observed &&
         !current.compare_exchange_weak(observed, candidate, std::memory_order_release,
                                        std::memory_order_relaxed)) {
  }
}

void run_task_batch(std::size_t count, std::size_t threads,
                    const std::function<void(std::size_t)>& run_task) {
  if (count == 0) return;
  // Pool telemetry. Registered (constructing the metrics registry) before
  // ThreadPool::instance() ever runs, so the registry outlives the pool and
  // worker threads can still flush their sinks while the pool joins them at
  // static destruction. These counters describe how work was *scheduled*,
  // not what was computed — they are legitimately thread-count dependent.
  static metrics::Counter pool_batches = metrics::counter("pool.batches");
  static metrics::Counter pool_tasks = metrics::counter("pool.tasks_executed");
  static metrics::Counter pool_steals = metrics::counter("pool.steals");
  pool_batches.increment();

  // This is the metrics merge point: every task flushes the executing
  // thread's sink right after running, *before* the batch's completion
  // latch, so all task-attributed metrics are globally visible (with a
  // happens-before edge through the batch mutex) by the time the batch —
  // i.e. the parallel engine's reduction barrier — returns.
  const auto run_and_flush = [&run_task](std::size_t task) {
    run_task(task);
    pool_tasks.increment();
    metrics::flush_thread_sink();
  };

  if (count == 1 || threads <= 1) {
    for (std::size_t task = 0; task < count; ++task) run_and_flush(task);
    return;
  }

  ThreadPool& pool = ThreadPool::instance();
  // The caller helps, so `threads - 1` workers give `threads` runners. The
  // pool keeps the high-water mark; batch width is capped by `count` anyway.
  pool.ensure_workers(std::min(threads, count) - 1);

  Batch batch;
  batch.remaining = count;
  for (std::size_t task = 0; task < count; ++task) {
    pool.submit([&batch, &run_and_flush, task] {
      run_and_flush(task);
      {
        std::unique_lock<std::mutex> lock(batch.mutex);
        --batch.remaining;
        if (batch.remaining == 0) batch.done.notify_all();
      }
    });
  }

  // Help-while-waiting: drain queued tasks (ours or a sibling batch's) until
  // this batch completes; only sleep when there is nothing left to run, at
  // which point every unfinished task of this batch is executing elsewhere.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(batch.mutex);
      if (batch.remaining == 0) return;
    }
    if (pool.run_one()) {
      pool_steals.increment();
      continue;
    }
    std::unique_lock<std::mutex> lock(batch.mutex);
    batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
    return;
  }
}

}  // namespace detail
}  // namespace manet
