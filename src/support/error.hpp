#pragma once

#include <source_location>
#include <stdexcept>

namespace manet {

/// Thrown when a precondition or invariant stated by the library is violated.
/// These indicate programming errors in the caller, not recoverable runtime
/// conditions.
class ContractViolation final : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when user-supplied configuration is inconsistent (bad parameter
/// ranges, impossible experiment setups, malformed command lines, ...).
class ConfigError final : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] void throw_contract_violation(const char* kind, const char* condition,
                                           const std::source_location& where);

}  // namespace detail
}  // namespace manet

/// Precondition check. Always on (not tied to NDEBUG): the library drives
/// long-running experiments where silently accepting bad input costs hours.
#define MANET_EXPECTS(cond)                                                        \
  do {                                                                            \
    if (!(cond)) {                                                                \
      ::manet::detail::throw_contract_violation("precondition", #cond,            \
                                                std::source_location::current()); \
    }                                                                             \
  } while (false)

/// Postcondition / internal invariant check.
#define MANET_ENSURES(cond)                                                        \
  do {                                                                            \
    if (!(cond)) {                                                                \
      ::manet::detail::throw_contract_violation("invariant", #cond,               \
                                                std::source_location::current()); \
    }                                                                             \
  } while (false)
