#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace manet {

/// FNV-1a 64-bit (Fowler–Noll–Vo). The repo's canonical content hash: the
/// campaign result store keys units by the FNV-1a of their canonical config
/// string (src/campaign/result_store.hpp), and the determinism layer pins
/// golden digests of flattened result vectors. Not cryptographic — collision
/// resistance is backed by storing the canonical string next to the payload
/// and verifying it on load.
inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t hash = kFnv1aOffset) noexcept {
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// FNV-1a over the raw IEEE-754 bit patterns of a double sequence: a one-ulp
/// change in any value changes the digest. Matches the layout used by the
/// golden checksums in tests/determinism_test.cpp (little-endian byte order
/// of each 64-bit pattern).
inline std::uint64_t fnv1a_bits(std::span<const double> values,
                                std::uint64_t hash = kFnv1aOffset) noexcept {
  for (const double value : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffu;
      hash *= kFnv1aPrime;
    }
  }
  return hash;
}

/// Fixed-width lowercase hex rendering ("00ff00ff00ff00ff"), used for store
/// file names and manifest keys.
inline std::string hex_u64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int nibble = 15; nibble >= 0; --nibble) {
    out[static_cast<std::size_t>(nibble)] = kDigits[value & 0xfu];
    value >>= 4;
  }
  return out;
}

/// Inverse of hex_u64 (also accepts an optional "0x" prefix and uppercase).
/// Throws ConfigError on anything that is not 1-16 hex digits.
inline std::uint64_t parse_hex_u64(std::string_view text) {
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) {
    throw ConfigError("parse_hex_u64: expected 1-16 hex digits, got '" +
                      std::string(text) + "'");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw ConfigError("parse_hex_u64: invalid hex digit in '" + std::string(text) + "'");
    }
  }
  return value;
}

}  // namespace manet
