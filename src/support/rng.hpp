#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace manet {

/// SplitMix64 (Steele, Lea, Flood 2014). Used to expand one 64-bit seed into
/// the larger state of the main generator and to derive independent
/// substream seeds. Passes BigCrush when used standalone.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna 2018): fast, high statistical quality,
/// period 2^256 - 1. Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit value via SplitMix64,
  /// as recommended by the generator's authors.
  explicit Xoshiro256StarStar(std::uint64_t seed) noexcept;

  /// Seeds directly from a full 256-bit state. The state must not be all
  /// zeros.
  explicit Xoshiro256StarStar(const std::array<std::uint64_t, 4>& state);

  result_type operator()() noexcept;

  /// Advances the generator by 2^128 steps: partitions the stream into
  /// non-overlapping substreams for parallel / repeated use.
  void jump() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Deterministic random stream facade used throughout the library.
///
/// ## Seeding / determinism guarantee
///
/// All simulation code takes an `Rng&`; every experiment is reproducible
/// from a single 64-bit seed. Concretely (and verified bit-for-bit by
/// tests/determinism_test.cpp):
///
///  * Two `Rng` instances constructed from the same seed produce identical
///    streams of `next_u64()` / `uniform()` / `uniform_index()` /
///    `bernoulli()` values, on every platform: the generators are fixed
///    integer algorithms (SplitMix64 seeding a xoshiro256**), and `uniform()`
///    maps the top 53 bits by a single multiply, so no libm or
///    platform-dependent rounding enters the stream.
///  * Consequently `StationarySample` and `MobileTrace` runs with equal
///    (seed, parameters) produce bit-identical critical radii, traces, and
///    derived order statistics — not merely statistically equal ones.
///  * `split()` deterministically derives a decorrelated substream by
///    **consuming two draws from the parent** and reseeding through
///    SplitMix64. Once split, the child is an independent object: drawing
///    more from the parent (or from other children) never perturbs it. Split
///    order matters, so derive all substreams up front when fanning out
///    iterations / parameter points.
///  * `substream(root_seed, trial_index)` is the **order-independent**
///    sibling of `split()` used by the parallel trial engine
///    (support/parallel.hpp): the trial's stream is a pure function of
///    (root_seed, trial_index), so deriving stream 7 before stream 3 — or
///    deriving them concurrently from different threads — yields exactly the
///    same streams as deriving them 0, 1, 2, ... serially. This is what makes
///    parallel trial execution bit-identical to serial execution.
class Rng {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x5EED5EED5EED5EEDull;

  explicit Rng(std::uint64_t seed = kDefaultSeed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept { return engine_(); }

  /// Uniform double in [0, 1), 53-bit resolution.
  double uniform() noexcept;

  /// Uniform double in [a, b). Requires a <= b; returns a when a == b.
  double uniform(double a, double b);

  /// Uniform index in [0, n). Requires n > 0. Unbiased (rejection method).
  std::size_t uniform_index(std::size_t n);

  /// True with probability p. Requires p in [0, 1].
  bool bernoulli(double p);

  /// Standard normal draw (mean 0, stddev 1) via the Marsaglia polar
  /// method. Consumes a rejection-dependent number of uniform draws from
  /// this stream; like every other draw it is a deterministic function of
  /// the stream state (the only libm calls are sqrt and log on values that
  /// are themselves bit-determined). This is the one sanctioned source of
  /// Gaussian randomness in the library — `std::normal_distribution` is
  /// banned by the `nondet-random` lint rule because its draw algorithm is
  /// implementation-defined and would break cross-toolchain reproducibility.
  double normal();

  /// Normal draw with the given mean and standard deviation (>= 0).
  double normal(double mean, double stddev);

  /// A new Rng whose stream is statistically independent of this one.
  /// Consumes two draws from this stream to derive the child seed (see the
  /// class-level determinism notes).
  Rng split() noexcept;

  /// Access the raw engine (satisfies uniform_random_bit_generator) for use
  /// with <random> distributions.
  Xoshiro256StarStar& engine() noexcept { return engine_; }

 private:
  Xoshiro256StarStar engine_;
};

/// The 64-bit seed of trial `trial_index`'s substream under root seed
/// `root_seed`.
///
/// ## Per-trial seeding contract (relied on by support/parallel.hpp)
///
///  * **Pure function of (root_seed, trial_index)**: derivation is
///    order-independent — no hidden stream is consumed, so computing the
///    seeds for trials {0..k} in any order (or concurrently) produces the
///    same values as computing them in index order.
///  * **Injective in trial_index** for a fixed root: the index offsets the
///    state of a SplitMix64 whose finalizer is a bijection on 64-bit words,
///    so distinct trials are guaranteed distinct seeds (not merely with high
///    probability). Verified pairwise for trials {0..63} by tests/rng_test.cpp.
///  * **Decorrelated from the root and from siblings**: both the root seed
///    and the offset state pass through a full SplitMix64 mix, the same
///    reseeding principle `split()` uses.
std::uint64_t substream_seed(std::uint64_t root_seed, std::uint64_t trial_index) noexcept;

/// The Rng for trial `trial_index` under `root_seed`:
/// `Rng(substream_seed(root_seed, trial_index))`. See substream_seed() for
/// the order-independence contract.
Rng substream(std::uint64_t root_seed, std::uint64_t trial_index) noexcept;

}  // namespace manet
