#include "support/fs.hpp"

#include <atomic>  // manet-lint: allow(thread-confinement) — temp-name counter below
#include <cerrno>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>

#include "support/error.hpp"
#include "support/numeric.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MANET_HAVE_FSYNC 1
#endif

namespace manet {

namespace {

/// Process-wide counter making concurrent temp names from different threads
/// unique (the pid makes them unique across concurrent processes sharing a
/// store directory — N distributed drain workers racing on one unit must
/// never collide on a temp sibling, or a torn loser could shadow the
/// winner's complete write; pinned by LeaseTest.RacingStoreWritersLeaveOne
/// CompleteSurvivor).
// manet-lint: allow(thread-confinement) — names transient .tmp siblings only;
// the counter never reaches file contents, so results stay thread-count-free.
std::atomic<std::uint64_t> g_temp_counter{0};

std::filesystem::path temp_sibling(const std::filesystem::path& path) {
  // String appends, not an ostringstream: a stream would render the pid and
  // counter with the global locale's thousands grouping ("1.234" under
  // de_DE), and temp names should not vary with the host locale.
  std::string name = path.filename().string();
  name += ".tmp.";
#if MANET_HAVE_FSYNC
  name += format_u64(static_cast<std::uint64_t>(::getpid()));
  name += '.';
#endif
  name += format_u64(g_temp_counter.fetch_add(1, std::memory_order_relaxed));
  return path.parent_path() / name;
}

void create_parent_directories(const std::filesystem::path& path) {
  const std::filesystem::path parent = path.parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    throw ConfigError("cannot create directory " + parent.string() + ": " + ec.message());
  }
}

/// Writes `content` to a unique temp sibling of `path` and flushes it to
/// stable storage. The caller owns the final atomic step (rename or link)
/// and the temp file's cleanup on failure.
std::filesystem::path write_durable_temp_sibling(const std::filesystem::path& path,
                                                 std::string_view content) {
  const std::filesystem::path temp = temp_sibling(path);
  // C stdio instead of ofstream so the buffer can be flushed and fsynced
  // before the rename — rename-before-durable would reorder the crash
  // states the atomicity argument relies on (DESIGN.md §11).
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    throw ConfigError("cannot open temp file for writing: " + temp.string());
  }
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), file);
  const bool flushed = std::fflush(file) == 0;
#if MANET_HAVE_FSYNC
  const bool synced = ::fsync(::fileno(file)) == 0;
#else
  const bool synced = true;
#endif
  const bool closed = std::fclose(file) == 0;
  if (written != content.size() || !flushed || !synced || !closed) {
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    throw ConfigError("write error on temp file: " + temp.string());
  }
  return temp;
}

}  // namespace

std::string read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ConfigError("cannot open file for reading: " + path.string());
  }
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) {
    throw ConfigError("read error on file: " + path.string());
  }
  return std::move(content).str();
}

void write_text_file_atomic(const std::filesystem::path& path, std::string_view content) {
  create_parent_directories(path);
  const std::filesystem::path temp = write_durable_temp_sibling(path, content);

  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    throw ConfigError("cannot rename " + temp.string() + " -> " + path.string() + ": " +
                      ec.message());
  }
}

bool write_text_file_exclusive(const std::filesystem::path& path, std::string_view content) {
  create_parent_directories(path);
#if MANET_HAVE_FSYNC
  const std::filesystem::path temp = write_durable_temp_sibling(path, content);
  // link(2), not rename: rename silently replaces an existing target, while
  // link fails with EEXIST — that failure is the mutual exclusion. Exactly
  // one of N racing callers (threads or processes) links first; everyone
  // else sees EEXIST and reports "already claimed".
  const int rc = ::link(temp.c_str(), path.c_str());
  const int saved_errno = errno;
  std::error_code ignored;
  std::filesystem::remove(temp, ignored);
  if (rc == 0) return true;
  if (saved_errno == EEXIST) return false;
  throw ConfigError("cannot link " + temp.string() + " -> " + path.string() + ": " +
                    std::string(std::strerror(saved_errno)));
#else
  // No hard links: fall back to exclusive-mode open. The winner is still
  // unique, but a crash mid-write can leave a torn file at `path`.
  std::FILE* file = std::fopen(path.string().c_str(), "wbx");
  if (file == nullptr) {
    if (errno == EEXIST) return false;
    throw ConfigError("cannot open file for exclusive writing: " + path.string());
  }
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), file);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != content.size() || !flushed || !closed) {
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
    throw ConfigError("write error on file: " + path.string());
  }
  return true;
#endif
}

}  // namespace manet
