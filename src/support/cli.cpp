#include "support/cli.hpp"

#include <algorithm>
#include <charconv>
#include <optional>
#include <sstream>
#include <string_view>

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace manet {
namespace {

bool starts_with_dashes(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

CliParser::CliParser(std::string program_summary) : summary_(std::move(program_summary)) {
  add_flag("help", "show this help text");
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  MANET_EXPECTS(!name.empty());
  MANET_EXPECTS(!options_.contains(name));
  options_[name] = Option{help, default_value, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  MANET_EXPECTS(!name.empty());
  MANET_EXPECTS(!options_.contains(name));
  options_[name] = Option{help, "", /*is_flag=*/true};
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with_dashes(arg)) {
      throw ConfigError("unexpected positional argument: '" + arg + "'");
    }
    arg.erase(0, 2);

    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }

    const auto it = options_.find(name);
    if (it == options_.end()) {
      throw ConfigError("unknown option '--" + name + "' (try --help)");
    }

    if (it->second.is_flag) {
      if (inline_value) {
        throw ConfigError("flag '--" + name + "' does not take a value");
      }
      set_flags_.push_back(name);
      if (name == "help") help_requested_ = true;
      continue;
    }

    if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc) {
        throw ConfigError("option '--" + name + "' expects a value");
      }
      values_[name] = argv[++i];
    }
  }
}

std::string CliParser::help_text() const {
  std::ostringstream out;
  out << summary_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    out << "  --" << name;
    if (!opt.is_flag) out << " <value>";
    out << "\n      " << opt.help;
    if (!opt.is_flag && !opt.default_value.empty()) {
      out << " (default: " << opt.default_value << ")";
    }
    out << "\n";
  }
  return out.str();
}

const CliParser::Option& CliParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw ConfigError("option '--" + name + "' was never registered");
  }
  return it->second;
}

bool CliParser::flag(const std::string& name) const {
  const Option& opt = find(name);
  MANET_EXPECTS(opt.is_flag);
  return std::find(set_flags_.begin(), set_flags_.end(), name) != set_flags_.end();
}

std::string CliParser::string_value(const std::string& name) const {
  const Option& opt = find(name);
  MANET_EXPECTS(!opt.is_flag);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : opt.default_value;
}

bool CliParser::was_set(const std::string& name) const {
  const Option& opt = find(name);
  if (opt.is_flag) {
    return std::find(set_flags_.begin(), set_flags_.end(), name) != set_flags_.end();
  }
  return values_.contains(name);
}

std::int64_t CliParser::int_value(const std::string& name) const {
  const std::string text = string_value(name);
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ConfigError("option '--" + name + "': '" + text + "' is not an integer");
  }
  return out;
}

std::uint64_t CliParser::uint_value(const std::string& name) const {
  const std::string text = string_value(name);
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ConfigError("option '--" + name + "': '" + text +
                      "' is not a non-negative integer");
  }
  return out;
}

double CliParser::double_value(const std::string& name) const {
  const std::string text = string_value(name);
  // Locale-independent parse (support/numeric.hpp): std::stod obeys the
  // global locale and would reject "0.95" under a comma-decimal locale.
  // stod also tolerated a leading '+', which from_chars does not; keep that
  // ergonomic spelling for CLI values.
  std::string_view view = text;
  if (view.size() >= 2 && view.front() == '+' &&
      ((view[1] >= '0' && view[1] <= '9') || view[1] == '.')) {
    view.remove_prefix(1);
  }
  const std::optional<double> value = parse_double(view);
  if (!value.has_value()) {
    throw ConfigError("option '--" + name + "': '" + text + "' is not a number");
  }
  return *value;
}

}  // namespace manet
