#include "support/bench_json.hpp"

#include <cstdio>

namespace manet {

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), git_describe_(git_describe()) {}

void BenchReport::add_param(std::string key, JsonValue value) {
  params_.emplace_back(std::move(key), std::move(value));
}

void BenchReport::add_sample(JsonValue sample) { samples_.push_back(std::move(sample)); }

void BenchReport::add_extra(std::string key, JsonValue value) {
  extra_.emplace_back(std::move(key), std::move(value));
}

void BenchReport::set_git_describe(std::string describe) {
  git_describe_ = std::move(describe);
}

JsonValue BenchReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", JsonValue::number(std::size_t{1}));
  doc.set("name", JsonValue::string(name_));
  doc.set("git_describe", JsonValue::string(git_describe_));
  JsonValue params = JsonValue::object();
  for (const auto& [key, value] : params_) params.set(key, value);
  doc.set("params", std::move(params));
  JsonValue samples = JsonValue::array();
  for (const JsonValue& sample : samples_) samples.push_back(sample);
  doc.set("samples", std::move(samples));
  for (const auto& [key, value] : extra_) doc.set(key, value);
  return doc;
}

std::string BenchReport::dump() const { return to_json().dump(2); }

const std::string& git_describe() {
  static const std::string kDescribe = [] {
    std::string out;
#if defined(__unix__) || defined(__APPLE__)
    // Redirect stderr so a non-repo checkout doesn't spam the console.
    if (std::FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
      char buffer[256];
      while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
      ::pclose(pipe);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
#endif
    return out.empty() ? std::string("unknown") : out;
  }();
  return kDescribe;
}

}  // namespace manet
