#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <system_error>

#include "support/error.hpp"

namespace manet {

/// Locale-independent number rendering and parsing (std::to_chars /
/// std::from_chars). The C locale's snprintf("%.17g") / std::strtod used
/// before silently switch to a comma decimal separator under e.g. de_DE —
/// which changes parsed parameters, JSON documents and the campaign store's
/// canonical content-address strings. These helpers are immune to the global
/// locale and byte-identical to the C-locale snprintf renderings (verified
/// exhaustively over random doubles, subnormals included), so existing store
/// keys and golden artifacts are unchanged.

/// Shortest-fitting 17-significant-digit rendering, the binary64 round-trip
/// guarantee: one double, one byte sequence, identical to C-locale "%.17g".
/// Requires a finite value.
inline std::string format_double_roundtrip(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value, std::chars_format::general, 17);
  if (ec != std::errc()) throw ConfigError("format_double_roundtrip: buffer exhausted");
  return std::string(buffer, ptr);
}

/// Integer rendering (no fraction, no exponent), identical to C-locale
/// "%.0f". Intended for integral doubles within the binary64-exact window
/// (|value| <= 2^53), where it is exact.
inline std::string format_double_integer(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value, std::chars_format::fixed, 0);
  if (ec != std::errc()) throw ConfigError("format_double_integer: buffer exhausted");
  return std::string(buffer, ptr);
}

/// Unsigned-integer rendering (plain decimal digits). Iostream insertion of
/// an *integer* is locale-sensitive too: a named locale's thousands grouping
/// renders 1000 as "1.000" under de_DE, which silently changed campaign
/// content-address strings on comma-locale hosts (caught by
/// locale_numeric_test's written-under-de_DE store round-trip).
inline std::string format_u64(std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) throw ConfigError("format_u64: buffer exhausted");
  return std::string(buffer, ptr);
}

/// Fixed-point rendering with exactly `precision` digits after the decimal
/// point, identical to C-locale "%.*f" (glibc and to_chars both round ties
/// to even): the locale-immune replacement for
/// `ostringstream << std::fixed << std::setprecision(precision)`, which
/// renders a decimal comma under e.g. de_DE. Used by TextTable::num so paper
/// tables and CSV exports are byte-identical on every host. Requires a
/// finite value and a non-negative precision.
inline std::string format_fixed(double value, int precision) {
  if (precision < 0) throw ConfigError("format_fixed: negative precision");
  char buffer[512];  // worst case: DBL_MAX has 309 integral digits
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value,
                                       std::chars_format::fixed, precision);
  if (ec != std::errc()) throw ConfigError("format_fixed: buffer exhausted");
  return std::string(buffer, ptr);
}

/// Strict full-string parse: the entire input must be one well-formed
/// number, or nullopt. Unlike std::stod / std::strtod this never consults
/// the global locale, does not skip leading whitespace, does not accept a
/// leading '+', and rejects magnitudes outside the binary64 range (overflow
/// to infinity, underflow below the smallest subnormal) instead of clamping.
/// "inf" / "nan" spellings parse to the corresponding non-finite values,
/// matching strtod; callers that need finiteness check it themselves.
inline std::optional<double> parse_double(std::string_view text) noexcept {
  double value = 0.0;
  const char* const first = text.data();
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace manet
