#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace manet {

/// Column-aligned text table used by the bench harness to print the series
/// that the paper's figures plot. Also exports CSV so results can be
/// re-plotted.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formats a numeric cell with `precision` significant decimal digits.
  static std::string num(double value, int precision = 4);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the aligned table (with a header separator) to `out`.
  void print(std::ostream& out) const;

  /// Renders as CSV (header row first).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace manet
