#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace manet {

/// Minimal command-line parser for the bench / example binaries.
///
/// Supports `--name value`, `--name=value` and boolean `--flag` forms. Unknown
/// options raise ConfigError so typos in experiment parameters never pass
/// silently. `--help` prints the registered options and is reported through
/// `help_requested()` so callers can exit cleanly.
class CliParser {
 public:
  /// `program_summary` is shown at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Registers an option; `help` is the description shown by --help.
  /// `default_value` is rendered in the help text.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Registers a boolean flag (present -> true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Throws ConfigError on unknown or malformed options.
  void parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_requested_; }

  /// Renders the help text.
  std::string help_text() const;

  /// True when the user passed the flag `name`.
  bool flag(const std::string& name) const;

  /// Raw string value of option `name` (user-provided or default).
  std::string string_value(const std::string& name) const;

  /// Typed accessors; throw ConfigError when the value does not parse.
  std::int64_t int_value(const std::string& name) const;
  std::uint64_t uint_value(const std::string& name) const;
  double double_value(const std::string& name) const;

  /// True when the user explicitly supplied the option on the command line.
  bool was_set(const std::string& name) const;

 private:
  struct Option {
    std::string help;
    std::string default_value;
    bool is_flag = false;
  };

  const Option& find(const std::string& name) const;

  std::string summary_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> set_flags_;
  bool help_requested_ = false;
};

}  // namespace manet
