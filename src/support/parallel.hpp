#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace manet {

/// Deterministic parallel Monte-Carlo engine.
///
/// Every trial loop in the library ("run k independent iterations, aggregate
/// the per-iteration values") runs through parallel_for_trials(). The engine
/// guarantees that the output is **bit-identical to the serial loop at any
/// thread count** (including 1), which it achieves with three rules:
///
///  1. **Substreams, not a shared stream**: trial i draws exclusively from
///     `substream(seed, i)` (support/rng.hpp), a pure function of the root
///     seed and the trial index. No trial's randomness depends on which
///     thread ran it, when it ran, or what the other trials consumed.
///  2. **Sharding**: trial indices are split into at most `threads`
///     contiguous chunks dispatched to a fixed-size pool; a chunk is just a
///     serial for-loop over its indices.
///  3. **Ordered reduction**: per-trial results are materialized into a
///     vector slot per trial and folded in trial-index order on the calling
///     thread after the batch completes — so even non-commutative /
///     non-associative reducers (floating-point sums included) see exactly
///     the serial evaluation order.
///
/// The thread count comes from, in priority order: the per-call
/// `ParallelOptions::threads`, the programmatic set_max_parallelism()
/// override, the `MANET_THREADS` environment variable, and finally
/// `std::thread::hardware_concurrency()`. A thread count of 1 forces the
/// legacy serial path (no pool, no task machinery at all).
///
/// Exceptions: when trials throw, the engine rethrows the exception of the
/// *smallest-index* throwing trial — the one the serial loop would have
/// surfaced — after the batch has drained (the pool is never deadlocked or
/// poisoned by a throwing trial). Trials with larger indices than a known
/// failure may be skipped, exactly like a serial loop never reaches them.
///
/// Nesting is allowed (e.g. a figure bench fans out data points and each
/// point fans out its iterations): a thread waiting for its batch helps
/// execute queued tasks instead of blocking, so nested batches make progress
/// even when every pool worker is itself a waiter.

/// Resolved degree of parallelism (see priority order above). Always >= 1.
std::size_t max_parallelism() noexcept;

/// Programmatic override of the thread count; 0 restores the
/// MANET_THREADS / hardware_concurrency() default. Values are clamped to
/// [1, 256] like the environment variable. Intended for tests and for CLI
/// `--threads` flags; not synchronized with in-flight batches.
void set_max_parallelism(std::size_t threads) noexcept;

/// Per-call knobs for parallel_for_trials / parallel_reduce_trials.
struct ParallelOptions {
  /// Concurrent runners for this call; 0 = max_parallelism().
  std::size_t threads = 0;
};

namespace detail {

/// Executes run_task(0) .. run_task(count - 1) on up to `threads` concurrent
/// runners (pool workers plus the calling thread, which helps while
/// waiting). `run_task` must not throw. Blocks until every task finished;
/// all task side effects happen-before the return.
void run_task_batch(std::size_t count, std::size_t threads,
                    const std::function<void(std::size_t)>& run_task);

/// Atomically lowers `current` to `candidate` when candidate is smaller.
void atomic_store_min(std::atomic<std::size_t>& current, std::size_t candidate) noexcept;

}  // namespace detail

/// Runs `fn(trial_index, rng)` for every trial in [0, trials), where `rng`
/// is `substream(seed, trial_index)`, and returns the per-trial results in
/// trial-index order. Bit-identical at any thread count; see the file-level
/// notes for the seeding/reduction/exception contract.
template <typename Fn>
auto parallel_for_trials(std::size_t trials, std::uint64_t seed, Fn&& fn,
                         const ParallelOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t, Rng&>> {
  using Result = std::invoke_result_t<Fn&, std::size_t, Rng&>;
  static_assert(!std::is_void_v<Result>,
                "parallel_for_trials requires a per-trial result; fold side "
                "effects into the returned value");

  std::vector<Result> results;
  if (trials == 0) return results;

  const std::size_t requested = options.threads != 0 ? options.threads : max_parallelism();
  const std::size_t threads = std::min(requested, trials);

  if (threads <= 1) {
    // Legacy serial path: same substreams, same order, no pool.
    results.reserve(trials);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      Rng trial_rng = substream(seed, trial);
      results.push_back(fn(trial, trial_rng));
    }
    return results;
  }

  std::vector<std::optional<Result>> slots(trials);
  std::vector<std::exception_ptr> errors(trials);
  // Smallest trial index that has thrown so far; trials beyond it are
  // skipped (a serial loop would never have reached them).
  std::atomic<std::size_t> first_error{trials};

  // Shard [0, trials) into `threads` contiguous chunks of near-equal size.
  const std::size_t base = trials / threads;
  const std::size_t extra = trials % threads;
  const auto chunk_begin = [base, extra](std::size_t chunk) {
    return chunk * base + std::min(chunk, extra);
  };

  detail::run_task_batch(threads, threads, [&](std::size_t chunk) {
    const std::size_t begin = chunk_begin(chunk);
    const std::size_t end = chunk_begin(chunk + 1);
    for (std::size_t trial = begin; trial < end; ++trial) {
      if (trial > first_error.load(std::memory_order_relaxed)) continue;
      try {
        Rng trial_rng = substream(seed, trial);
        slots[trial].emplace(fn(trial, trial_rng));
      } catch (...) {
        errors[trial] = std::current_exception();
        detail::atomic_store_min(first_error, trial);
      }
    }
  });

  const std::size_t failed = first_error.load(std::memory_order_acquire);
  if (failed < trials) std::rethrow_exception(errors[failed]);

  results.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    results.push_back(std::move(*slots[trial]));
  }
  return results;
}

/// Ordered Monte-Carlo reduction: evaluates the trials exactly like
/// parallel_for_trials and folds them on the calling thread in strict
/// trial-index order:
///
///   acc = reduce(std::move(acc), result_0); acc = reduce(std::move(acc), result_1); ...
///
/// Because the fold is the serial fold, the reducer may be non-commutative
/// and non-associative (floating-point accumulation, order statistics,
/// stateful merges) and still produce the bit-identical serial answer.
template <typename Fn, typename T, typename Reduce>
T parallel_reduce_trials(std::size_t trials, std::uint64_t seed, Fn&& fn, T init,
                         Reduce&& reduce, const ParallelOptions& options = {}) {
  auto results = parallel_for_trials(trials, seed, std::forward<Fn>(fn), options);
  T acc = std::move(init);
  for (auto& result : results) {
    acc = reduce(std::move(acc), std::move(result));
  }
  return acc;
}

}  // namespace manet
