#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string_view>

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace manet {

namespace {

const char* type_name(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return "bool";
    case JsonValue::Type::kNumber:
      return "number";
    case JsonValue::Type::kString:
      return "string";
    case JsonValue::Type::kArray:
      return "array";
    case JsonValue::Type::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void throw_type_error(const char* expected, JsonValue::Type actual) {
  throw ConfigError(std::string("JSON: expected ") + expected + ", got " +
                    type_name(actual));
}

/// Canonical number rendering: integers within the binary64-exact window as
/// plain integers, everything else with 17 significant digits (the binary64
/// round-trip guarantee). One double -> one byte sequence, via the
/// locale-independent support/numeric.hpp helpers — snprintf would render a
/// comma decimal separator under e.g. de_DE and corrupt every document.
std::string render_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) <= 9007199254740992.0 /* 2^53 */) {
    return format_double_integer(value);
  }
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; the simulation never produces them in persisted
    // quantities. Refuse loudly rather than emit an unreadable document.
    throw ConfigError("JSON: refusing to serialize a non-finite number");
  }
  return format_double_roundtrip(value);
}

void render_string(const std::string& text, std::string& out) {
  out += '"';
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (byte < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned>(byte));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream msg;
    msg << "JSON parse error at byte " << pos_ << ": " << what;
    throw ConfigError(msg.str());
  }

  bool at_end() const noexcept { return pos_ >= text_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_whitespace() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    // Depth guard: campaign documents are a few levels deep; a corrupt file
    // must not be able to overflow the stack through recursion.
    if (depth_ > 64) fail("nesting deeper than 64 levels");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    ++depth_;
    JsonValue value = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      take();
      --depth_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      value.set(std::move(key), parse_value());
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    --depth_;
    return value;
  }

  JsonValue parse_array() {
    expect('[');
    ++depth_;
    JsonValue value = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      take();
      --depth_;
      return value;
    }
    while (true) {
      skip_whitespace();
      value.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    --depth_;
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = take();
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_utf8(parse_hex4(), out);
          break;
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
    return out;
  }

  std::uint32_t parse_hex4() {
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape");
      }
    }
    return code;
  }

  /// BMP code points only; surrogate pairs never occur in this repo's
  /// documents (ASCII identifiers and numbers) and are rejected.
  void append_utf8(std::uint32_t code, std::string& out) {
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes unsupported");
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0u | (code >> 6));
      out += static_cast<char>(0x80u | (code & 0x3Fu));
    } else {
      out += static_cast<char>(0xE0u | (code >> 12));
      out += static_cast<char>(0x80u | ((code >> 6) & 0x3Fu));
      out += static_cast<char>(0x80u | (code & 0x3Fu));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a JSON value");
    // Locale-independent parse (support/numeric.hpp): strtod obeys the
    // global locale and would mis-parse "0.5" under a comma-decimal locale.
    // parse_double is also stricter than strtod was: a leading '+' and
    // magnitudes that underflow binary64 are malformed, as per the JSON
    // grammar. The token scan above admits no letters, so "inf"/"nan" can
    // never reach the isfinite check.
    const std::string_view token = text_.substr(start, pos_ - start);
    const std::optional<double> value = parse_double(token);
    if (!value.has_value() || !std::isfinite(*value)) {
      pos_ = start;
      fail("malformed number '" + std::string(token) + "'");
    }
    return JsonValue::number(*value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_value(const JsonValue& value, int indent, int level, std::string& out) {
  const auto newline_pad = [&out, indent](int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  };

  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber:
      out += render_number(value.as_double());
      return;
    case JsonValue::Type::kString:
      render_string(value.as_string(), out);
      return;
    case JsonValue::Type::kArray: {
      const JsonValue::Array& items = value.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(level + 1);
        dump_value(items[i], indent, level + 1, out);
      }
      newline_pad(level);
      out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      const JsonValue::Object& members = value.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(level + 1);
        render_string(members[i].first, out);
        out += indent > 0 ? ": " : ":";
        dump_value(members[i].second, indent, level + 1, out);
      }
      newline_pad(level);
      out += '}';
      return;
    }
  }
}

}  // namespace

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::number(std::size_t value) {
  return number(static_cast<double>(value));
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw_type_error("bool", type_);
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) throw_type_error("number", type_);
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  const double value = as_double();
  if (!(value >= 0.0) || value != std::floor(value) || value > 9007199254740992.0) {
    throw ConfigError("JSON: expected a non-negative integer <= 2^53");
  }
  return static_cast<std::uint64_t>(value);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw_type_error("string", type_);
  return string_;
}

const JsonValue::Array& JsonValue::items() const {
  if (type_ != Type::kArray) throw_type_error("array", type_);
  return array_;
}

const JsonValue::Object& JsonValue::members() const {
  if (type_ != Type::kObject) throw_type_error("object", type_);
  return object_;
}

void JsonValue::push_back(JsonValue value) {
  if (type_ != Type::kArray) throw_type_error("array", type_);
  array_.push_back(std::move(value));
}

void JsonValue::set(std::string key, JsonValue value) {
  if (type_ != Type::kObject) throw_type_error("object", type_);
  object_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) throw_type_error("object", type_);
  for (const auto& [name, member] : object_) {
    if (name == key) return &member;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* member = find(key);
  if (member == nullptr) {
    throw ConfigError("JSON: missing required key '" + std::string(key) + "'");
  }
  return *member;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  if (indent > 0) out += '\n';
  return out;
}

}  // namespace manet
