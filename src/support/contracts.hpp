#pragma once

#include <cstdio>
#include <cstdlib>

/// Runtime contract checks for internal invariants on hot paths.
///
/// Two tiers of checking coexist in this library:
///
///  * `MANET_EXPECTS` / `MANET_ENSURES` (support/error.hpp) guard the public
///    API surface. They throw `ContractViolation`, are always compiled in,
///    and protect long-running experiments from silently accepting bad input.
///
///  * `MANET_EXPECT` / `MANET_ENSURE` / `MANET_INVARIANT` (this header) guard
///    *internal* algorithmic invariants the paper's math depends on —
///    occupancy cell counts summing to n, probabilities staying inside
///    [0, 1], bisection brackets staying ordered, adjacency symmetry,
///    union-find size bookkeeping, mobility positions staying inside
///    [0, l]^d. They sit inside loops executed millions of times, so they
///    abort (debugger- and death-test-friendly) instead of throwing, are
///    active in Debug and sanitizer builds, and compile to *nothing* in
///    Release (verified by the contract-overhead benchmarks in
///    bench/perf_substrate.cpp).
///
/// Activation: CMake defines `MANET_ENABLE_CONTRACTS=1` whenever
/// `MANET_SANITIZE` is non-empty; otherwise the checks follow NDEBUG (on in
/// Debug, off in Release). Define `MANET_ENABLE_CONTRACTS=0` to force them
/// off everywhere.
#if !defined(MANET_ENABLE_CONTRACTS)
#if defined(NDEBUG)
#define MANET_ENABLE_CONTRACTS 0
#else
#define MANET_ENABLE_CONTRACTS 1
#endif
#endif

namespace manet::detail {

[[noreturn]] inline void contract_failed(const char* kind, const char* condition,
                                         const char* file, unsigned line) {
  // fprintf (not iostreams): usable from any build flavor, async-signal-ish,
  // and the message lands on stderr before abort() so gtest death tests and
  // sanitizer runtimes both capture it.
  std::fprintf(stderr, "%s:%u: MANET contract violated: %s (%s)\n", file, line, condition,
               kind);
  std::fflush(stderr);
  // manet-lint: allow(process-control) — a violated contract means corrupted
  // state; abort() is what gtest death tests and sanitizers expect to catch.
  std::abort();
}

}  // namespace manet::detail

#if MANET_ENABLE_CONTRACTS

#define MANET_CONTRACT_CHECK_(kind, cond)                                        \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::manet::detail::contract_failed(kind, #cond, __FILE__, __LINE__);         \
    }                                                                            \
  } while (false)

/// Internal precondition (checked entry state of a hot-path routine).
#define MANET_EXPECT(cond) MANET_CONTRACT_CHECK_("precondition", cond)
/// Internal postcondition (checked exit state / result of a routine).
#define MANET_ENSURE(cond) MANET_CONTRACT_CHECK_("postcondition", cond)
/// Mid-algorithm invariant (checked loop / data-structure consistency).
#define MANET_INVARIANT(cond) MANET_CONTRACT_CHECK_("invariant", cond)

#else  // contracts compiled out: the condition is parsed but never evaluated.

#define MANET_CONTRACT_NOOP_(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define MANET_EXPECT(cond) MANET_CONTRACT_NOOP_(cond)
#define MANET_ENSURE(cond) MANET_CONTRACT_NOOP_(cond)
#define MANET_INVARIANT(cond) MANET_CONTRACT_NOOP_(cond)

#endif  // MANET_ENABLE_CONTRACTS
