#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace manet {

/// Single-pass mean/variance accumulator (Welford's algorithm), numerically
/// stable over long simulation runs. Supports merging partial accumulators
/// (Chan et al. parallel update), used when aggregating per-iteration results.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Mean of the observations. Requires at least one observation.
  double mean() const;

  /// Population variance (divides by n). Requires at least one observation.
  double variance() const;

  /// Sample variance (divides by n-1). Requires at least two observations.
  double sample_variance() const;

  /// Sample standard deviation. Requires at least two observations.
  double stddev() const;

  /// Smallest / largest observation. Require at least one observation.
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided confidence interval around a mean.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const noexcept { return hi - lo; }
  bool contains(double x) const noexcept { return lo <= x && x <= hi; }
};

/// Normal-approximation confidence interval for the mean of `stats`.
/// `z` is the standard-normal quantile (1.96 -> 95%). Requires >= 2 samples.
ConfidenceInterval mean_confidence_interval(const RunningStats& stats, double z = 1.96);

/// Empirical q-quantile of `sorted` (ascending), with linear interpolation
/// between order statistics (R type-7, the numpy/R default).
/// Requires a non-empty sorted range and q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts, and evaluates several quantiles at once.
std::vector<double> quantiles(std::span<const double> values, std::span<const double> qs);

/// Fixed-width histogram over [lo, hi). Out-of-range samples are NOT folded
/// into the edge bins (that silently skewed the edge-bin frequencies); they
/// are tallied in explicit underflow() / overflow() counters instead, so the
/// in-range shape stays honest and the out-of-range mass stays visible.
/// Samples that fail `x >= lo` — NaN included, which fails every comparison
/// — count as underflow; samples with `x >= hi` count as overflow.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  /// Every sample ever added, in range or not.
  std::size_t total() const noexcept { return total_; }
  /// Samples below lo (or NaN) / at-or-above hi.
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  /// Samples that landed in a bin: total() - underflow() - overflow().
  std::size_t in_range() const noexcept { return total_ - underflow_ - overflow_; }

  /// Inclusive lower edge of `bin`.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of `bin`.
  double bin_hi(std::size_t bin) const;

  /// Fraction of ALL observed samples that landed in `bin`; 0 when the
  /// histogram is empty. Out-of-range samples count toward the denominator
  /// but toward no bin, so the bin frequencies sum to in_range() / total()
  /// (== 1 only when everything was in range).
  double frequency(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace manet
