#include "support/error.hpp"

#include <sstream>
#include <string>

namespace manet::detail {

void throw_contract_violation(const char* kind, const char* condition,
                              const std::source_location& where) {
  std::ostringstream msg;
  msg << where.file_name() << ':' << where.line() << ": " << kind << " failed: " << condition
      << " (in " << where.function_name() << ')';
  throw ContractViolation(msg.str());
}

}  // namespace manet::detail
