#include "support/metrics.hpp"

#if MANET_METRICS
#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <deque>
#include <map>
#include <mutex>
#endif

namespace manet::metrics {

std::uint64_t Snapshot::counter_value(std::string_view name) const noexcept {
  for (const SnapshotCounter& entry : counters) {
    if (entry.name == name) return entry.value;
  }
  return 0;
}

#if MANET_METRICS

namespace {

struct CounterSlot {
  std::string name;
  std::atomic<std::uint64_t> value{0};
};

struct GaugeSlot {
  std::string name;
  std::atomic<std::uint64_t> value{0};
};

struct TimerSlot {
  std::string name;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::array<std::atomic<std::uint64_t>, kTimingBuckets> buckets{};
};

/// Name -> id maps plus the value storage. Deques never move elements, so
/// ids stay valid and flushes touch the slots without holding the mutex;
/// the mutex only guards registration and snapshot/reset enumeration.
struct Registry {
  std::mutex mutex;
  std::deque<CounterSlot> counters;
  std::deque<GaugeSlot> gauges;
  std::deque<TimerSlot> timers;
  std::map<std::string, std::size_t, std::less<>> counter_ids;
  std::map<std::string, std::size_t, std::less<>> gauge_ids;
  std::map<std::string, std::size_t, std::less<>> timer_ids;
};

/// Constructed on first registration. Every path into the thread pool goes
/// through detail::run_task_batch, which registers its own counters before
/// ThreadPool::instance(); the registry is therefore constructed first and
/// destroyed last, so worker threads can still flush their sinks while the
/// pool joins them during static destruction.
Registry& registry() {
  static Registry instance;
  return instance;
}

/// Requires the registry mutex.
template <typename Slot>
std::size_t register_slot(std::map<std::string, std::size_t, std::less<>>& ids,
                          std::deque<Slot>& slots, std::string_view name) {
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  const std::size_t id = slots.size();
  slots.emplace_back();
  slots.back().name = std::string(name);
  ids.emplace(std::string(name), id);
  return id;
}

struct TimerLocal {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, kTimingBuckets> buckets{};
};

/// Per-thread sink: plain arrays indexed by metric id — no atomics, no
/// sharing on the hot path. Grown on first touch per thread (the one
/// allocation an increment can perform, covered by the warm-up the
/// allocation-discipline gates already require). The destructor flushes so
/// an exiting pool worker never strands pending increments.
struct ThreadSink {
  std::vector<std::uint64_t> counters;
  std::vector<TimerLocal> timers;

  ~ThreadSink() { flush(); }

  void flush() noexcept {
    Registry& reg = registry();
    for (std::size_t id = 0; id < counters.size(); ++id) {
      if (counters[id] == 0) continue;
      reg.counters[id].value.fetch_add(counters[id], std::memory_order_relaxed);
      counters[id] = 0;
    }
    for (std::size_t id = 0; id < timers.size(); ++id) {
      TimerLocal& local = timers[id];
      if (local.count == 0) continue;
      TimerSlot& slot = reg.timers[id];
      slot.count.fetch_add(local.count, std::memory_order_relaxed);
      slot.total_ns.fetch_add(local.total_ns, std::memory_order_relaxed);
      for (std::size_t bucket = 0; bucket < kTimingBuckets; ++bucket) {
        if (local.buckets[bucket] != 0) {
          slot.buckets[bucket].fetch_add(local.buckets[bucket], std::memory_order_relaxed);
        }
      }
      local = TimerLocal{};
    }
  }
};

ThreadSink& thread_sink() {
  thread_local ThreadSink sink;
  return sink;
}

}  // namespace

void Counter::add(std::uint64_t n) {
  if (n == 0) return;
  auto& counters = thread_sink().counters;
  if (counters.size() <= id_) counters.resize(id_ + 1, 0);
  counters[id_] += n;
}

void Gauge::set(std::uint64_t value) noexcept {
  registry().gauges[id_].value.store(value, std::memory_order_relaxed);
}

void Timer::record_ns(std::uint64_t ns) {
  auto& timers = thread_sink().timers;
  if (timers.size() <= id_) timers.resize(id_ + 1);
  TimerLocal& local = timers[id_];
  ++local.count;
  local.total_ns += ns;
  ++local.buckets[static_cast<std::size_t>(std::bit_width(ns))];
}

Counter counter(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return Counter(register_slot(reg.counter_ids, reg.counters, name));
}

Gauge gauge(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return Gauge(register_slot(reg.gauge_ids, reg.gauges, name));
}

Timer timer(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return Timer(register_slot(reg.timer_ids, reg.timers, name));
}

void flush_thread_sink() noexcept { thread_sink().flush(); }

Snapshot snapshot() {
  flush_thread_sink();
  Snapshot snap;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  // The id maps iterate in name order, which is what makes the snapshot —
  // and therefore to_json() — deterministically ordered.
  for (const auto& [name, id] : reg.counter_ids) {
    snap.counters.push_back(
        SnapshotCounter{name, reg.counters[id].value.load(std::memory_order_relaxed)});
  }
  for (const auto& [name, id] : reg.gauge_ids) {
    snap.gauges.push_back(
        SnapshotGauge{name, reg.gauges[id].value.load(std::memory_order_relaxed)});
  }
  for (const auto& [name, id] : reg.timer_ids) {
    const TimerSlot& slot = reg.timers[id];
    SnapshotTiming timing;
    timing.name = name;
    timing.count = slot.count.load(std::memory_order_relaxed);
    timing.total_ns = slot.total_ns.load(std::memory_order_relaxed);
    for (std::size_t bucket = 0; bucket < kTimingBuckets; ++bucket) {
      const std::uint64_t value = slot.buckets[bucket].load(std::memory_order_relaxed);
      if (value != 0) timing.buckets.push_back(TimingBucket{bucket, value});
    }
    snap.timings.push_back(std::move(timing));
  }
  return snap;
}

void reset() {
  ThreadSink& sink = thread_sink();
  std::fill(sink.counters.begin(), sink.counters.end(), std::uint64_t{0});
  for (TimerLocal& local : sink.timers) local = TimerLocal{};

  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (CounterSlot& slot : reg.counters) slot.value.store(0, std::memory_order_relaxed);
  for (GaugeSlot& slot : reg.gauges) slot.value.store(0, std::memory_order_relaxed);
  for (TimerSlot& slot : reg.timers) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.total_ns.store(0, std::memory_order_relaxed);
    for (std::size_t bucket = 0; bucket < kTimingBuckets; ++bucket) {
      slot.buckets[bucket].store(0, std::memory_order_relaxed);
    }
  }
}

#endif  // MANET_METRICS

JsonValue to_json(const Snapshot& snap) {
  JsonValue doc = JsonValue::object();
  doc.set("enabled", JsonValue::boolean(compiled_in()));
  JsonValue counters = JsonValue::object();
  for (const SnapshotCounter& entry : snap.counters) {
    counters.set(entry.name, JsonValue::number(static_cast<std::size_t>(entry.value)));
  }
  doc.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const SnapshotGauge& entry : snap.gauges) {
    gauges.set(entry.name, JsonValue::number(static_cast<std::size_t>(entry.value)));
  }
  doc.set("gauges", std::move(gauges));
  JsonValue timings = JsonValue::object();
  for (const SnapshotTiming& entry : snap.timings) {
    JsonValue timing = JsonValue::object();
    timing.set("count", JsonValue::number(static_cast<std::size_t>(entry.count)));
    timing.set("total_seconds",
               JsonValue::number(static_cast<double>(entry.total_ns) * 1e-9));
    JsonValue buckets = JsonValue::array();
    for (const TimingBucket& bucket : entry.buckets) {
      JsonValue item = JsonValue::object();
      item.set("log2_ns", JsonValue::number(bucket.log2_ns));
      item.set("count", JsonValue::number(static_cast<std::size_t>(bucket.count)));
      buckets.push_back(std::move(item));
    }
    timing.set("buckets", std::move(buckets));
    timings.set(entry.name, std::move(timing));
  }
  doc.set("timings", std::move(timings));
  return doc;
}

JsonValue collect_json() { return to_json(snapshot()); }

}  // namespace manet::metrics
