#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  MANET_EXPECTS(count_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  MANET_EXPECTS(count_ > 0);
  // Welford's M2 accumulates non-negative increments; a negative value means
  // the merge algebra was broken, not rounding noise.
  MANET_INVARIANT(m2_ >= 0.0);
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  MANET_EXPECTS(count_ > 1);
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(sample_variance()); }

double RunningStats::min() const {
  MANET_EXPECTS(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  MANET_EXPECTS(count_ > 0);
  return max_;
}

ConfidenceInterval mean_confidence_interval(const RunningStats& stats, double z) {
  MANET_EXPECTS(stats.count() >= 2);
  MANET_EXPECTS(z >= 0.0);
  const double half =
      z * std::sqrt(stats.sample_variance() / static_cast<double>(stats.count()));
  return {stats.mean() - half, stats.mean() + half};
}

double quantile_sorted(std::span<const double> sorted, double q) {
  MANET_EXPECTS(!sorted.empty());
  MANET_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t below = static_cast<std::size_t>(pos);
  if (below + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(below);
  return sorted[below] + frac * (sorted[below + 1] - sorted[below]);
}

std::vector<double> quantiles(std::span<const double> values, std::span<const double> qs) {
  MANET_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(sorted, q));
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  MANET_EXPECTS(lo < hi);
  MANET_EXPECTS(bins >= 1);
}

void Histogram::add(double x) noexcept {
  ++total_;
  // `!(x >= lo_)` rather than `x < lo_`: NaN fails every comparison and must
  // land in an out-of-range tally, never in a bin (the old clamping path
  // computed a bin index from NaN, which is undefined).
  if (!(x >= lo_)) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const std::size_t bin =
      std::min(static_cast<std::size_t>((x - lo_) / width_), counts_.size() - 1);
  ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
  MANET_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  MANET_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  MANET_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::frequency(std::size_t bin) const {
  MANET_EXPECTS(bin < counts_.size());
  if (total_ == 0) return 0.0;
  const double f = static_cast<double>(counts_[bin]) / static_cast<double>(total_);
  MANET_ENSURE(f >= 0.0 && f <= 1.0);
  return f;
}

}  // namespace manet
