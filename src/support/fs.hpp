#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace manet {

/// Reads a whole file into a string. Throws ConfigError (with the path in
/// the message) when the file does not exist or cannot be read.
std::string read_text_file(const std::filesystem::path& path);

/// Crash-safe whole-file write: creates the parent directories, writes the
/// content to a unique sibling temp file, flushes it to stable storage
/// (fsync where the platform provides it), and renames it over `path`.
///
/// The rename is atomic on POSIX filesystems, which gives the campaign
/// store its durability contract: a reader (including a resumed campaign
/// after a hard kill) observes either the complete previous file or the
/// complete new file — never a torn write. A crash between write and rename
/// leaves only a stray "<name>.tmp.*" sibling, which is ignored by readers
/// and by git (.gitignore). Throws ConfigError on any I/O failure.
void write_text_file_atomic(const std::filesystem::path& path, std::string_view content);

/// Atomic create-if-absent: like write_text_file_atomic, but the final step
/// only succeeds when `path` does not exist yet. Returns true when this call
/// created the file, false when it already existed (the content is then left
/// untouched). Exactly one of N concurrent callers — threads or *processes*
/// on the same filesystem — observes true, which is the mutual-exclusion
/// primitive the campaign lease protocol (src/service/lease.hpp) is built
/// on. On POSIX the claim step is a hard link of the durable temp file
/// (atomic, EEXIST on loss); elsewhere it degrades to an exclusive-mode
/// open, which keeps the winner unique but loses the temp+rename torn-write
/// guarantee. Throws ConfigError on any I/O failure other than "exists".
bool write_text_file_exclusive(const std::filesystem::path& path, std::string_view content);

}  // namespace manet
