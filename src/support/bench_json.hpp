#pragma once

#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace manet {

/// The one JSON schema every machine-readable performance / campaign
/// artifact in this repo is emitted through (bench/perf_*, the figure
/// campaigns' result.json, results/BENCH_*.json baselines):
///
///   {
///     "schema_version": 1,
///     "name": "<artifact name, e.g. emst_grid_vs_dense>",
///     "git_describe": "<git describe --always --dirty, or 'unknown'>",
///     "params": { ...workload / configuration knobs... },
///     "samples": [ { ...one measured point each... } ],
///     ...artifact-specific extra fields...
///   }
///
/// Keeping name/params/samples uniform is what makes the perf trajectory
/// machine-readable across PRs: a script can diff BENCH files from different
/// commits without per-bench parsers. `git_describe` records provenance; for
/// deterministic artifacts that must be byte-comparable across *runs of the
/// same build* (campaign result.json) it is constant, because the binary is.
class BenchReport {
 public:
  /// `name` identifies the artifact ("emst_grid_vs_dense", "campaign_fig7").
  explicit BenchReport(std::string name);

  /// Workload / configuration knobs (rendered under "params", insertion
  /// order preserved).
  void add_param(std::string key, JsonValue value);

  /// Appends one measured point (an object) to "samples".
  void add_sample(JsonValue sample);

  /// Artifact-specific top-level fields, rendered after "samples"
  /// (e.g. "bit_identical": true verdicts).
  void add_extra(std::string key, JsonValue value);

  /// Overrides the provenance string (defaults to git_describe()).
  void set_git_describe(std::string describe);

  /// Assembles the schema above as a document / renders it (2-space
  /// pretty-printed, deterministic given identical content).
  JsonValue to_json() const;
  std::string dump() const;

 private:
  std::string name_;
  std::string git_describe_;
  std::vector<std::pair<std::string, JsonValue>> params_;
  std::vector<JsonValue> samples_;
  std::vector<std::pair<std::string, JsonValue>> extra_;
};

/// `git describe --always --dirty` of the working tree, "unknown" when git
/// or the repository is unavailable. Cached after the first call.
const std::string& git_describe();

}  // namespace manet
