#include "support/rng.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace manet {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm();
}

Xoshiro256StarStar::Xoshiro256StarStar(const std::array<std::uint64_t, 4>& state)
    : state_(state) {
  MANET_EXPECTS(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0);
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;

  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);

  return result;
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
      0x39ABDC4529B1661Cull};

  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Rng::Rng(std::uint64_t seed) noexcept : engine_(seed) {}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double a, double b) {
  MANET_EXPECTS(a <= b);
  if (a == b) return a;
  const double x = a + (b - a) * uniform();
  // Guard against floating-point rounding pushing the result to b.
  return std::min(x, std::nextafter(b, a));
}

std::size_t Rng::uniform_index(std::size_t n) {
  MANET_EXPECTS(n > 0);
  if (n == 1) return 0;
  // Rejection sampling over the largest multiple of n below 2^64: unbiased.
  const std::uint64_t bound = n;
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % bound;
  std::uint64_t draw = engine_();
  while (draw >= limit) draw = engine_();
  return static_cast<std::size_t>(draw % bound);
}

bool Rng::bernoulli(double p) {
  MANET_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  // Marsaglia polar method: draw (u, v) uniformly in the square [-1, 1)^2
  // until the pair falls strictly inside the unit disk (excluding the
  // origin), then scale. Each accepted pair yields one normal deviate; the
  // second root the method produces is deliberately discarded so the draw
  // count per call stays a pure function of the stream (no hidden cache
  // that a copy of the Rng would duplicate).
  for (;;) {
    const double u = 2.0 * uniform() - 1.0;
    const double v = 2.0 * uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::normal(double mean, double stddev) {
  MANET_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

Rng Rng::split() noexcept {
  // Derive the child seed from fresh draws so parent and child streams are
  // decorrelated; mixing through SplitMix64 happens in the Rng constructor.
  const std::uint64_t child_seed = next_u64() ^ rotl(next_u64(), 32);
  return Rng(child_seed);
}

std::uint64_t substream_seed(std::uint64_t root_seed, std::uint64_t trial_index) noexcept {
  // Hash the root once, offset the resulting SplitMix64 state by the trial
  // index, and draw the seed through the finalizer. The finalizer is a
  // bijection, so for a fixed root distinct indices can never collide.
  SplitMix64 root_mix(root_seed);
  SplitMix64 trial_mix(root_mix() + trial_index);
  return trial_mix();
}

Rng substream(std::uint64_t root_seed, std::uint64_t trial_index) noexcept {
  return Rng(substream_seed(root_seed, trial_index));
}

}  // namespace manet
