#include "service/query.hpp"

#include <algorithm>
#include <utility>

#include "core/mtrm.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/numeric.hpp"

namespace manet::service {

namespace {

std::vector<double> doubles_from_json(const JsonValue& array) {
  std::vector<double> values;
  values.reserve(array.items().size());
  for (const JsonValue& item : array.items()) values.push_back(item.as_double());
  return values;
}

CampaignSample sample_from_json(const JsonValue& doc) {
  CampaignSample sample;
  sample.point = static_cast<std::size_t>(doc.at("point").as_uint());
  sample.node_count = doc.at("node_count").as_double();
  sample.side = doc.at("side").as_double();
  sample.mobility = doc.at("mobility").as_string();
  for (const auto& [key, value] : doc.at("mobility_params").members()) {
    sample.mobility_params.emplace_back(key, value.as_double());
  }
  sample.time_fractions = doubles_from_json(doc.at("time_fractions"));
  sample.component_fractions = doubles_from_json(doc.at("component_fractions"));
  sample.flattened = doubles_from_json(doc.at("flattened_result"));
  sample.result_checksum = doc.at("result_checksum").as_string();
  const std::size_t expected =
      flatten_mtrm_labels(sample.time_fractions.size(), sample.component_fractions.size())
          .size();
  if (sample.flattened.size() != expected) {
    throw ConfigError("campaign sample: flattened_result has " +
                      format_u64(sample.flattened.size()) + " values, expected " +
                      format_u64(expected));
  }
  return sample;
}

/// Piecewise-linear interpolation over knots sorted ascending by x, clamped
/// to the end values outside the knot range. Pure double arithmetic in a
/// fixed evaluation order — equal inputs, equal bits.
double interpolate(const std::vector<std::pair<double, double>>& knots, double x) {
  if (knots.empty()) throw ConfigError("interpolate: no knots");
  if (x <= knots.front().first) return knots.front().second;
  if (x >= knots.back().first) return knots.back().second;
  for (std::size_t i = 1; i < knots.size(); ++i) {
    const auto [x0, y0] = knots[i - 1];
    const auto [x1, y1] = knots[i];
    if (x <= x1) {
      if (!(x1 > x0)) return y1;  // duplicate knot: step, not divide-by-zero
      return y0 + (y1 - y0) * ((x - x0) / (x1 - x0));
    }
  }
  return knots.back().second;
}

const CampaignSample& sample_at(const CampaignData& campaign, const JsonValue& request) {
  const std::size_t point = static_cast<std::size_t>(request.at("point").as_uint());
  if (point >= campaign.samples.size()) {
    throw ConfigError("campaign '" + campaign.name + "' has " +
                      format_u64(campaign.samples.size()) + " points; point " +
                      format_u64(point) + " does not exist");
  }
  return campaign.samples[point];
}

/// The sweep-axis value of `sample` under axis name `param`.
double axis_value(const CampaignSample& sample, const std::string& param) {
  if (param == "node_count") return sample.node_count;
  if (param == "side") return sample.side;
  for (const auto& [key, value] : sample.mobility_params) {
    if (key == param) return value;
  }
  throw ConfigError("sample for point " + format_u64(sample.point) +
                    " has no sweep parameter '" + param + "'");
}

}  // namespace

void QueryEngine::load_campaign_dir(const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / "result.json";
  const JsonValue doc = JsonValue::parse(read_text_file(path));
  CampaignData campaign;
  campaign.name = doc.at("params").at("campaign").as_string();
  campaign.campaign_key = doc.at("params").at("campaign_key").as_string();
  for (const JsonValue& item : doc.at("samples").items()) {
    campaign.samples.push_back(sample_from_json(item));
  }
  for (const CampaignData& existing : campaigns_) {
    if (existing.name == campaign.name) {
      throw ConfigError("campaign '" + campaign.name + "' is already loaded (from " +
                        path.string() + ")");
    }
  }
  const auto position = std::lower_bound(
      campaigns_.begin(), campaigns_.end(), campaign,
      [](const CampaignData& a, const CampaignData& b) { return a.name < b.name; });
  campaigns_.insert(position, std::move(campaign));
}

std::size_t QueryEngine::load_campaigns_root(const std::filesystem::path& root) {
  std::vector<std::filesystem::path> dirs;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory() && std::filesystem::exists(it->path() / "result.json")) {
      dirs.push_back(it->path());
    }
  }
  if (ec) {
    throw ConfigError("cannot scan campaigns root " + root.string() + ": " + ec.message());
  }
  // Directory iteration order is filesystem-defined; sort so load order (and
  // with it every listing this engine serves) is reproducible.
  std::sort(dirs.begin(), dirs.end());
  for (const std::filesystem::path& dir : dirs) load_campaign_dir(dir);
  return dirs.size();
}

std::size_t QueryEngine::sample_count() const noexcept {
  std::size_t total = 0;
  for (const CampaignData& campaign : campaigns_) total += campaign.samples.size();
  return total;
}

const CampaignData& QueryEngine::campaign_for(const JsonValue& request) const {
  const std::string& name = request.at("campaign").as_string();
  for (const CampaignData& campaign : campaigns_) {
    if (campaign.name == name) return campaign;
  }
  throw ConfigError("no campaign named '" + name + "' is loaded");
}

JsonValue QueryEngine::handle(const JsonValue& request) const {
  try {
    const std::string& op = request.at("op").as_string();
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("op", JsonValue::string(op));

    if (op == "health") {
      response.set("campaigns", JsonValue::number(campaigns_.size()));
      response.set("samples", JsonValue::number(sample_count()));
      return response;
    }

    if (op == "campaigns") {
      JsonValue list = JsonValue::array();
      for (const CampaignData& campaign : campaigns_) {
        JsonValue entry = JsonValue::object();
        entry.set("name", JsonValue::string(campaign.name));
        entry.set("campaign_key", JsonValue::string(campaign.campaign_key));
        entry.set("points", JsonValue::number(campaign.samples.size()));
        list.push_back(std::move(entry));
      }
      response.set("campaigns", std::move(list));
      return response;
    }

    if (op == "mtrm") {
      const CampaignData& campaign = campaign_for(request);
      const CampaignSample& sample = sample_at(campaign, request);
      response.set("campaign", JsonValue::string(campaign.name));
      response.set("point", JsonValue::number(sample.point));
      response.set("node_count", JsonValue::number(sample.node_count));
      response.set("side", JsonValue::number(sample.side));
      response.set("mobility", JsonValue::string(sample.mobility));
      response.set("result_checksum", JsonValue::string(sample.result_checksum));
      const std::vector<std::string> labels = flatten_mtrm_labels(
          sample.time_fractions.size(), sample.component_fractions.size());
      JsonValue stats = JsonValue::object();
      for (std::size_t i = 0; i < labels.size(); ++i) {
        stats.set(labels[i], JsonValue::number(sample.flattened[i]));
      }
      response.set("stats", std::move(stats));
      return response;
    }

    if (op == "rquantile") {
      const CampaignData& campaign = campaign_for(request);
      const CampaignSample& sample = sample_at(campaign, request);
      const double fraction = request.at("fraction").as_double();
      if (!(fraction > 0.0 && fraction <= 1.0)) {
        throw ConfigError("rquantile: fraction must be in (0, 1]");
      }
      // Knots: (time fraction, mean r_f). range_for_time means sit at slots
      // 2i of the flattened layout.
      std::vector<std::pair<double, double>> knots;
      knots.reserve(sample.time_fractions.size());
      for (std::size_t i = 0; i < sample.time_fractions.size(); ++i) {
        knots.emplace_back(sample.time_fractions[i], sample.flattened[2 * i]);
      }
      std::sort(knots.begin(), knots.end());
      response.set("campaign", JsonValue::string(campaign.name));
      response.set("point", JsonValue::number(sample.point));
      response.set("fraction", JsonValue::number(fraction));
      response.set("range", JsonValue::number(interpolate(knots, fraction)));
      return response;
    }

    if (op == "phase") {
      const CampaignData& campaign = campaign_for(request);
      const std::string& param = request.at("param").as_string();
      const std::string& stat = request.at("stat").as_string();
      const double value = request.at("value").as_double();
      std::vector<std::pair<double, double>> knots;
      knots.reserve(campaign.samples.size());
      for (const CampaignSample& sample : campaign.samples) {
        const std::vector<std::string> labels = flatten_mtrm_labels(
            sample.time_fractions.size(), sample.component_fractions.size());
        const auto it = std::find(labels.begin(), labels.end(), stat);
        if (it == labels.end()) {
          throw ConfigError("unknown statistic '" + stat +
                            "' (see flatten_mtrm_labels for the available names)");
        }
        knots.emplace_back(axis_value(sample, param),
                           sample.flattened[static_cast<std::size_t>(it - labels.begin())]);
      }
      if (knots.empty()) throw ConfigError("campaign has no samples");
      std::stable_sort(knots.begin(), knots.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      response.set("campaign", JsonValue::string(campaign.name));
      response.set("param", JsonValue::string(param));
      response.set("value", JsonValue::number(value));
      response.set("stat", JsonValue::string(stat));
      response.set("result", JsonValue::number(interpolate(knots, value)));
      return response;
    }

    throw ConfigError("unknown op '" + op + "'");
  } catch (const ConfigError& error) {
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(false));
    response.set("error", JsonValue::string(error.what()));
    return response;
  }
}

std::string QueryEngine::cache_key(const JsonValue& request) {
  std::vector<std::pair<std::string, JsonValue>> members = request.members();
  std::sort(members.begin(), members.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  JsonValue canonical = JsonValue::object();
  for (auto& [key, value] : members) canonical.set(std::move(key), std::move(value));
  return canonical.dump();
}

}  // namespace manet::service
