#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace manet::service {

/// Whether this build has Unix-domain stream sockets. When false (non-POSIX
/// hosts), every entry point below throws ConfigError instead — the
/// simulation and campaign layers never depend on sockets, only manetd does.
bool unix_sockets_available() noexcept;

/// Ignores SIGPIPE process-wide. send_all already asks for MSG_NOSIGNAL
/// where the platform has it, but on hosts without that flag a peer that
/// hangs up before reading would otherwise kill the whole process instead
/// of surfacing EPIPE as a ConfigError — servers call this once before
/// their accept loop. No-op where Unix sockets are unavailable.
void ignore_sigpipe() noexcept;

/// RAII handle over one connected byte stream. Move-only; the descriptor is
/// closed on destruction. The only I/O shapes manetd needs are "send these
/// bytes" and "give me the next newline-terminated line", so that is the
/// whole interface — the socket syscalls themselves are confined to
/// socket.cpp by the manet-lint socket-confinement rule.
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected descriptor (listener side).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }

  /// Writes all of `data`, retrying short writes. Throws ConfigError on a
  /// closed or failing peer.
  void send_all(std::string_view data) const;

  /// Reads up to and including the next '\n'; `line` receives the bytes
  /// without the terminator. Returns false on clean end-of-stream before any
  /// byte of a new line. Throws ConfigError on I/O errors, on lines
  /// exceeding an 8 MiB sanity bound (a runaway or malicious peer), and
  /// when a receive timeout armed via set_receive_timeout expires.
  bool read_line(std::string& line);

  /// Arms SO_RCVTIMEO: a read_line that sits idle longer than `seconds`
  /// throws ConfigError instead of blocking forever (a stalled client must
  /// not wedge a sequential accept loop). Non-positive seconds restores the
  /// default blocking behaviour. Throws ConfigError on a closed socket.
  void set_receive_timeout(double seconds) const;

  /// Closes the descriptor early (idempotent).
  void close_stream() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< read-ahead past the last returned line
};

/// Listening Unix-domain stream socket bound to `socket_path`. The path is
/// unlinked on bind (stale socket files from a killed server) and again on
/// destruction.
class UnixListener {
 public:
  explicit UnixListener(std::filesystem::path socket_path);
  ~UnixListener();

  UnixListener(UnixListener&&) = delete;
  UnixListener& operator=(UnixListener&&) = delete;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Blocks until the next client connects. Throws ConfigError on listener
  /// failure.
  Socket wait_client() const;

 private:
  int fd_ = -1;
  std::filesystem::path path_;
};

/// Client side: connects to the Unix-domain socket at `socket_path`. Throws
/// ConfigError when nothing is listening there.
Socket dial_unix(const std::filesystem::path& socket_path);

}  // namespace manet::service
