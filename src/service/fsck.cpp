#include "service/fsck.hpp"

#include <algorithm>
#include <system_error>

#include "campaign/result_store.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

namespace manet::service {

namespace {

/// Validates one store entry. Returns an empty string when the entry is
/// sound, else the reason it is not.
std::string audit_entry(const std::filesystem::path& path) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(read_text_file(path));
  } catch (const ConfigError& error) {
    return std::string("unreadable or malformed JSON: ") + error.what();
  }
  try {
    if (doc.at("kind").as_string() != "manet-campaign-unit") {
      return "foreign file: kind is '" + doc.at("kind").as_string() +
             "', not 'manet-campaign-unit'";
    }
    if (doc.at("schema_version").as_uint() !=
        static_cast<std::uint64_t>(campaign::kUnitSchemaVersion)) {
      return "unsupported schema_version " + hex_u64(doc.at("schema_version").as_uint());
    }
    const std::string& canonical = doc.at("canonical").as_string();
    const std::string address = hex_u64(campaign::unit_key(canonical));
    if (doc.at("key").as_string() != address) {
      return "recorded key " + doc.at("key").as_string() +
             " does not re-hash from the canonical string (expected " + address + ")";
    }
    if (path.stem().string() != address) {
      return "file name does not match the content address " + address +
             " (entry renamed or copied by hand?)";
    }
    (void)doc.at("outcomes").items();
  } catch (const ConfigError& error) {
    return std::string("invalid unit document: ") + error.what();
  }
  return {};
}

}  // namespace

FsckReport fsck_store(const std::filesystem::path& store_dir, bool quarantine) {
  FsckReport report;

  // A store that was never written has nothing to audit — fsck before the
  // first campaign run is clean, not an error.
  std::error_code ec;
  if (!std::filesystem::is_directory(store_dir, ec) || ec) return report;

  std::vector<std::filesystem::path> entries;
  for (std::filesystem::directory_iterator it(store_dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file() && it->path().extension() == ".json") {
      entries.push_back(it->path());
    }
  }
  if (ec) {
    throw ConfigError("fsck: cannot scan store " + store_dir.string() + ": " + ec.message());
  }
  std::sort(entries.begin(), entries.end());

  for (const std::filesystem::path& path : entries) {
    ++report.scanned;
    std::string reason = audit_entry(path);
    if (reason.empty()) {
      ++report.ok;
      continue;
    }
    if (quarantine) {
      const std::filesystem::path pen = store_dir / "quarantine";
      std::error_code move_ec;
      std::filesystem::create_directories(pen, move_ec);
      if (!move_ec) std::filesystem::rename(path, pen / path.filename(), move_ec);
      if (move_ec) {
        reason += " (quarantine failed: " + move_ec.message() + ")";
      } else {
        ++report.quarantined;
      }
    }
    report.issues.push_back(FsckIssue{path, std::move(reason)});
  }
  return report;
}

}  // namespace manet::service
