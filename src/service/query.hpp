#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace manet::service {

/// One sweep point as recorded in a campaign's result.json.
struct CampaignSample {
  std::size_t point = 0;
  double node_count = 0.0;
  double side = 0.0;
  std::string mobility;
  /// The mobility model's parameters (insertion order from result.json) —
  /// candidate phase axes alongside node_count/side.
  std::vector<std::pair<std::string, double>> mobility_params;
  std::vector<double> time_fractions;
  std::vector<double> component_fractions;
  /// flatten_mtrm_result layout; addressed via flatten_mtrm_labels.
  std::vector<double> flattened;
  std::string result_checksum;
};

/// One loaded campaign.
struct CampaignData {
  std::string name;
  std::string campaign_key;
  std::vector<CampaignSample> samples;
};

/// Read-only query evaluator over completed campaign result.json files —
/// the manetd brain, separated from the socket/server shell so tests can
/// drive it directly. Loads each campaign once; every query is a pure
/// function of the loaded data and the request, so identical requests
/// produce identical response documents (and, one dump() later, identical
/// bytes — the invariant the server's LRU byte-cache is allowed to rely on,
/// DESIGN.md §16).
///
/// Supported ops (line-delimited JSON requests):
///   {"op":"health"}
///   {"op":"campaigns"}
///   {"op":"mtrm","campaign":C,"point":i}            full labeled statistics
///   {"op":"rquantile","campaign":C,"point":i,"fraction":f}
///       r_f at an arbitrary time fraction: piecewise-linear interpolation
///       of the mean MTRM range over the campaign's time-fraction knots,
///       clamped outside the solved range.
///   {"op":"phase","campaign":C,"param":p,"value":x,"stat":s}
///       a statistic s (a flatten_mtrm_labels name) interpolated over the
///       campaign's sweep axis p ("node_count", "side" or a mobility
///       parameter), samples sorted by p, clamped at the ends.
class QueryEngine {
 public:
  /// Loads `<dir>/result.json`. Throws ConfigError when absent/invalid or
  /// when a campaign with the same name is already loaded.
  void load_campaign_dir(const std::filesystem::path& dir);

  /// Scans `root`'s immediate subdirectories in sorted name order and loads
  /// every one holding a result.json. Returns the number loaded.
  std::size_t load_campaigns_root(const std::filesystem::path& root);

  std::size_t campaign_count() const noexcept { return campaigns_.size(); }
  std::size_t sample_count() const noexcept;

  /// Evaluates one request. Never throws: malformed requests and unknown
  /// campaigns/ops produce {"ok":false,"error":...} responses.
  JsonValue handle(const JsonValue& request) const;

  /// Canonical cache key of a request: its members re-serialized in sorted
  /// key order, so key order on the wire does not split cache entries.
  static std::string cache_key(const JsonValue& request);

 private:
  const CampaignData& campaign_for(const JsonValue& request) const;

  std::vector<CampaignData> campaigns_;  ///< sorted by name
};

}  // namespace manet::service
