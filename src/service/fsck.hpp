#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace manet::service {

/// One store entry fsck could not vouch for.
struct FsckIssue {
  std::filesystem::path path;
  std::string reason;
};

/// Outcome of one fsck pass over a store directory.
struct FsckReport {
  std::size_t scanned = 0;      ///< *.json entries examined
  std::size_t ok = 0;           ///< entries whose content re-hashes to their address
  std::size_t quarantined = 0;  ///< issues moved to <store>/quarantine/
  std::vector<FsckIssue> issues;

  bool clean() const noexcept { return issues.empty(); }
};

/// Integrity audit of a content-addressed campaign store (`manet-store
/// --fsck`): every `<hex>.json` entry must parse, carry the unit
/// kind/schema, and — the content-address invariant itself — its canonical
/// string must re-hash (FNV-1a 64) to both its recorded key and its file
/// name. Anything else is reported: torn or tampered files, entries renamed
/// by hand, foreign JSON dropped into the store. With `quarantine` set,
/// offending files are moved to `<store>/quarantine/` (preserving the file
/// name) so the next campaign run heals the store by recomputing them —
/// mirroring ResultStore::load's corrupt-entry-is-a-miss semantics, but
/// store-wide and without running a campaign. Scans entries in sorted name
/// order; `claims/` leases, `.tmp` siblings and the quarantine itself are
/// not store entries and are skipped.
FsckReport fsck_store(const std::filesystem::path& store_dir, bool quarantine);

}  // namespace manet::service
