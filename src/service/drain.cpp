#include "service/drain.hpp"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <utility>

#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"
#include "service/lease.hpp"
#include "support/bench_json.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/numeric.hpp"

namespace manet::service {

namespace {

/// Drain accounting, exported per worker to <campaign-dir>/metrics-<worker>.json
/// via metrics::collect_json (the shared result.json must stay free of it).
struct DrainMetrics {
  metrics::Counter units_claimed = metrics::counter("service.drain.units_claimed");
  metrics::Counter units_stolen = metrics::counter("service.drain.units_stolen");
  metrics::Counter units_store_hits = metrics::counter("service.drain.units_store_hits");
  metrics::Counter held_skips = metrics::counter("service.drain.held_skips");
  metrics::Counter idle_polls = metrics::counter("service.drain.idle_polls");
  metrics::Counter heartbeats = metrics::counter("service.drain.heartbeats");
  metrics::Timer unit_seconds = metrics::timer("service.drain.unit_seconds");
};

DrainMetrics& drain_metrics() {
  static DrainMetrics bundle;
  return bundle;
}

/// Blocking sleep between claim passes. ::nanosleep, not std::this_thread
/// (which the manet-lint thread-confinement rule reserves for the parallel
/// engine): drain workers are single-threaded by design, their concurrency
/// lives across processes.
void sleep_seconds(double seconds) {
  if (!(seconds > 0.0)) return;
  timespec request{};
  request.tv_sec = static_cast<time_t>(seconds);
  request.tv_nsec = static_cast<long>((seconds - static_cast<double>(request.tv_sec)) * 1e9);
  ::nanosleep(&request, nullptr);
}

}  // namespace

DistributedCampaignRunner::DistributedCampaignRunner(std::string name, DrainOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (name_.empty()) throw ConfigError("drain: campaign name must not be empty");
  if (options_.campaign.dir.empty()) {
    throw ConfigError("drain: a campaign directory is required (--campaign-dir)");
  }
  if (options_.worker.empty()) {
    throw ConfigError("drain: a worker id is required (--worker-id)");
  }
  if (!(options_.lease_ttl_seconds > 0.0)) {
    throw ConfigError("drain: --lease-ttl must be > 0 seconds");
  }
  if (!(options_.poll_seconds > 0.0)) {
    throw ConfigError("drain: --drain-poll must be > 0 seconds");
  }
  if (!(options_.max_wait_seconds > 0.0)) {
    throw ConfigError("drain: --drain-max-wait must be > 0 seconds");
  }
}

std::vector<MtrmResult> DistributedCampaignRunner::run_points(
    std::vector<MtrmSweepPoint> points) {
  report_ = DrainReport{};
  for (const MtrmSweepPoint& point : points) point.config.validate();

  const std::vector<campaign::UnitWork> units =
      campaign::decompose_sweep(points, options_.campaign.unit_iterations);
  report_.units_total = units.size();
  const std::uint64_t campaign_key = campaign::campaign_key_for(name_, units);

  const std::filesystem::path dir(options_.campaign.dir);
  const std::filesystem::path manifest_path = dir / "manifest.json";
  if (options_.campaign.resume) {
    campaign::validate_resume_manifest(manifest_path, campaign_key);
  }

  // Base manifest: identity + unit list, zeroed progress — a pure function
  // of the sweep, so N workers racing on this atomic write all write the
  // same bytes. Shared progress is deliberately NOT checkpointed by drain
  // workers (it would just be N writers fighting over one advisory block);
  // the store itself is the progress record, and each worker's own counters
  // go to its metrics-<worker>.json.
  {
    campaign::Manifest manifest;
    manifest.campaign = name_;
    manifest.campaign_key = campaign_key;
    manifest.points = points.size();
    manifest.units.reserve(units.size());
    for (const campaign::UnitWork& unit : units) {
      manifest.units.push_back(
          campaign::ManifestUnit{unit.point, unit.begin, unit.end, unit.key});
    }
    std::error_code ec;
    if (!std::filesystem::exists(manifest_path, ec) || ec) {
      campaign::save_manifest_atomic(manifest_path, manifest);
    }
  }

  const campaign::ResultStore store{std::filesystem::path(options_.campaign.store_dir)};
  const LeaseStore leases(store.dir() / "claims", options_.worker,
                          options_.lease_ttl_seconds);

  if (!options_.campaign.quiet) {
    std::fprintf(stderr, "[drain %s/%s] %zu points, %zu units -> %s\n", name_.c_str(),
                 options_.worker.c_str(), points.size(), units.size(),
                 options_.campaign.dir.c_str());
  }

  std::vector<std::vector<MtrmIterationOutcome>> unit_outcomes(units.size());
  std::vector<bool> done(units.size(), false);
  std::size_t remaining = units.size();
  std::size_t executed_for_kill = 0;
  // Stall horizon in *logical* wait: accumulated poll sleep since the last
  // completed unit. No clock reads — the drain's only time source is the
  // lease layer's mtime staleness.
  double waited_since_progress = 0.0;

  while (remaining > 0) {
    bool progressed = false;

    for (std::size_t i = 0; i < units.size(); ++i) {
      if (done[i]) continue;
      const campaign::UnitWork& unit = units[i];

      // (1) Store probe: someone (maybe a past run, maybe a neighbor worker
      // seconds ago) may have completed this unit already.
      auto cached = store.load(unit.canonical, unit.end - unit.begin);
      if (cached.has_value()) {
        unit_outcomes[i] = std::move(*cached);
        done[i] = true;
        --remaining;
        ++report_.store_hits;
        drain_metrics().units_store_hits.increment();
        progressed = true;
        continue;
      }

      // (2) Claim. kHeld means a live worker is on it — skip, re-probe next
      // pass (their completed unit then shows up as a store hit).
      const ClaimOutcome claim = leases.try_claim(unit.key);
      if (claim == ClaimOutcome::kHeld) {
        drain_metrics().held_skips.increment();
        continue;
      }
      if (claim == ClaimOutcome::kStolen) {
        ++report_.stolen;
        drain_metrics().units_stolen.increment();
      } else {
        drain_metrics().units_claimed.increment();
      }

      // (3) Compute under the lease, heartbeating every iteration so the
      // lease's mtime age never exceeds one iteration's runtime while this
      // worker is alive.
      std::vector<MtrmIterationOutcome> outcomes;
      {
        const metrics::Timer::Scope unit_timer = drain_metrics().unit_seconds.measure();
        outcomes = campaign::execute_unit(points[unit.point], unit, [&leases, &unit] {
          leases.refresh(unit.key);
          drain_metrics().heartbeats.increment();
        });
      }

      // Fault injection *before* the save: a worker killed here leaves a
      // dangling lease and no store entry — exactly the crash the stale-
      // steal path exists for, and what the 4-worker kill/resume test and
      // CI smoke exercise.
      ++executed_for_kill;
      if (options_.campaign.kill_after != 0 &&
          executed_for_kill == options_.campaign.kill_after) {
        if (!options_.campaign.quiet) {
          std::fprintf(stderr, "[drain %s/%s] --kill-after %zu: simulating a crash\n",
                       name_.c_str(), options_.worker.c_str(),
                       options_.campaign.kill_after);
        }
        campaign::detail::trigger_kill();
      }

      store.save(unit.canonical, outcomes);
      leases.release(unit.key);
      unit_outcomes[i] = std::move(outcomes);
      done[i] = true;
      --remaining;
      ++report_.executed;
      progressed = true;
    }

    if (remaining == 0) break;
    if (progressed) {
      waited_since_progress = 0.0;
      continue;
    }
    // Nothing claimable this pass: every remaining unit is leased to a live
    // worker. Wait a beat; their results arrive as store hits, or their
    // leases go stale and get stolen.
    ++report_.idle_polls;
    drain_metrics().idle_polls.increment();
    waited_since_progress += options_.poll_seconds;
    if (waited_since_progress > options_.max_wait_seconds) {
      throw ConfigError("drain: no unit completed within " +
                        format_fixed(options_.max_wait_seconds, 1) +
                        "s of waiting; campaign looks wedged (worker " + options_.worker +
                        ", " + format_u64(remaining) + " units outstanding)");
    }
    sleep_seconds(options_.poll_seconds);
  }

  std::vector<MtrmResult> results =
      campaign::merge_unit_outcomes(points, units, std::move(unit_outcomes));

  // Every finishing worker writes the same result.json bytes (atomic write;
  // last writer wins harmlessly) and its own metrics file.
  campaign::write_campaign_result(dir, name_, campaign_key, points, units, results);

  BenchReport metrics_report("campaign_" + name_ + "_drain_metrics");
  metrics_report.add_param("campaign", JsonValue::string(name_));
  metrics_report.add_param("worker", JsonValue::string(options_.worker));
  metrics_report.add_param("units_total", JsonValue::number(report_.units_total));
  metrics_report.add_param("store_hits", JsonValue::number(report_.store_hits));
  metrics_report.add_param("executed", JsonValue::number(report_.executed));
  metrics_report.add_param("stolen", JsonValue::number(report_.stolen));
  metrics_report.add_param("idle_polls", JsonValue::number(report_.idle_polls));
  metrics_report.add_extra("metrics", metrics::collect_json());
  write_text_file_atomic(dir / ("metrics-" + options_.worker + ".json"),
                         metrics_report.dump());

  if (!options_.campaign.quiet) {
    std::fprintf(stderr,
                 "[drain %s/%s] complete: %zu units (%zu executed, %zu stolen, %zu from "
                 "store) -> %s\n",
                 name_.c_str(), options_.worker.c_str(), report_.units_total,
                 report_.executed, report_.stolen, report_.store_hits,
                 (dir / "result.json").string().c_str());
  }
  return results;
}

}  // namespace manet::service
