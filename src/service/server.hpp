#pragma once

#include <cstddef>
#include <filesystem>
#include <string>

#include "service/lru_cache.hpp"
#include "service/query.hpp"

namespace manet::service {

/// Knobs of the manetd server shell.
struct ServerOptions {
  /// Unix-domain socket path to listen on. Required.
  std::filesystem::path socket_path;
  /// Response byte-cache capacity (entries).
  std::size_t cache_capacity = 256;
  /// Seconds a connected client may sit idle (no complete request line)
  /// before its session is dropped. The accept loop is sequential, so
  /// without this bound one stalled client would wedge every other client —
  /// including the {"op":"stop"} shutdown request. <= 0 disables the bound.
  double client_timeout_seconds = 30.0;
  /// Suppresses the stderr lifecycle lines (tests).
  bool quiet = false;
};

/// Per-process accounting of the server, exposed over the "stats" op
/// alongside the global metrics registry (manetd.* counters).
struct ServerReport {
  std::size_t connections = 0;
  std::size_t requests = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t parse_errors = 0;
};

/// The manetd front-end: a line-delimited JSON request/response loop over a
/// Unix-domain socket, wrapped around a QueryEngine. One request per line,
/// one response line per request, clients served sequentially in accept
/// order (the engine answers from preloaded in-memory data, so a query is
/// microseconds — concurrency would buy nothing and cost the determinism of
/// the request trace). Because the loop is sequential, each accepted client
/// runs under `client_timeout_seconds`: a client that stalls mid-line is
/// dropped so the clients queued behind it get served.
///
/// Responses to the pure query ops (campaigns/mtrm/rquantile/phase) flow
/// through a deterministic LRU byte-cache keyed on the canonicalized
/// request: a cache hit returns the exact bytes the miss produced, so
/// repeated identical queries are byte-identical by construction and the
/// hit/miss counters (manetd.cache_hits / manetd.cache_misses, also in the
/// "stats" response) make the cache observable. Control ops — "stats"
/// (accounting + metrics::collect_json), "stop" (clean shutdown) — bypass
/// the cache.
class ManetdServer {
 public:
  /// Takes ownership of a loaded engine. Throws ConfigError on an empty
  /// socket path or a zero cache capacity.
  ManetdServer(QueryEngine engine, ServerOptions options);

  /// Binds the socket and serves until a {"op":"stop"} request arrives.
  /// Returns the number of requests served. Throws ConfigError on listener
  /// failures (a failing *client* only ends that client's session).
  std::size_t serve();

  /// Evaluates one request line exactly as serve() would (cache included)
  /// and returns the response line without the trailing newline. Exposed so
  /// tests can drive the full request path without a socket.
  std::string respond(const std::string& line);

  const ServerReport& report() const noexcept { return report_; }
  bool stop_requested() const noexcept { return stop_requested_; }

 private:
  QueryEngine engine_;
  ServerOptions options_;
  LruCache<std::string> cache_;
  ServerReport report_;
  bool stop_requested_ = false;
};

}  // namespace manet::service
