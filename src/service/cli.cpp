#include "service/cli.hpp"

#include "campaign/cli.hpp"
#include "support/error.hpp"

namespace manet::service {

void add_drain_cli_options(CliParser& cli) {
  cli.add_flag("distributed",
               "drain the campaign cooperatively: claim unit leases in the shared "
               "store so N worker processes fill one campaign (implies --campaign)");
  cli.add_option("worker-id",
                 "lease owner id of this worker (required with --distributed; unique "
                 "per concurrent worker)",
                 "");
  cli.add_option("lease-ttl",
                 "seconds a lease may go without a heartbeat before other workers "
                 "may steal it",
                 "30");
  cli.add_option("drain-poll",
                 "seconds to sleep between claim passes when every remaining unit "
                 "is leased to another worker",
                 "0.05");
  cli.add_option("drain-max-wait",
                 "abort after this many seconds of accumulated waiting without any "
                 "unit completing",
                 "600");
}

bool drain_requested(const CliParser& cli) {
  return cli.flag("distributed") || cli.was_set("worker-id");
}

DrainOptions drain_options_from_cli(const CliParser& cli,
                                    const std::string& campaign_name) {
  DrainOptions options;
  options.campaign = campaign::campaign_options_from_cli(cli, campaign_name);
  options.worker = cli.string_value("worker-id");
  if (options.worker.empty()) {
    throw ConfigError("drain: --distributed needs a --worker-id unique to this worker");
  }
  options.lease_ttl_seconds = cli.double_value("lease-ttl");
  options.poll_seconds = cli.double_value("drain-poll");
  options.max_wait_seconds = cli.double_value("drain-max-wait");
  return options;
}

}  // namespace manet::service
