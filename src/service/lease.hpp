#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

namespace manet::service {

/// Result of a claim attempt on one unit lease.
enum class ClaimOutcome {
  kClaimed,  ///< this worker now holds a fresh lease
  kStolen,   ///< a stale lease was replaced; this worker now holds it
  kHeld,     ///< another worker holds a live lease — skip, revisit later
};

/// What a lease file says about its holder (diagnostics / tests).
struct LeaseInfo {
  std::string owner;
  double age_seconds = 0.0;
};

/// Lease-based work claiming over a shared campaign store directory
/// (DESIGN.md §16). Each work unit key maps to `<claims>/<key-hex>.lease`;
/// holding that file is holding the lease.
///
/// The protocol in one paragraph: *claim* is an atomic create-if-absent
/// (fs.hpp write_text_file_exclusive — exactly one of N racing workers,
/// threads or processes, wins); *heartbeat* is an atomic rewrite of the held
/// lease, which bumps its mtime; *staleness* is mtime age exceeding the TTL;
/// *steal* is a rename of a freshly written lease over a stale one. Two
/// workers can transiently both believe they hold a lease (steal races, or
/// a heartbeat landing after a steal) — that is deliberate. Leases are an
/// efficiency mechanism only: they keep workers off each other's units most
/// of the time. Correctness never depends on them, because units are
/// deterministic (equal canonical string ⇒ bit-identical outcomes) and
/// store writes are atomic, so duplicated execution merely overwrites a
/// store file with the same bytes. This split — liveness from leases,
/// safety from determinism — is what makes the protocol simple enough to
/// audit (no fencing tokens, no consensus).
class LeaseStore {
 public:
  /// `claims_dir` is created lazily on first claim. `owner` identifies this
  /// worker in lease files ("worker-3", "host:pid"); `ttl_seconds` is the
  /// staleness horizon — it must comfortably exceed the heartbeat period or
  /// live workers get robbed. Throws ConfigError on empty owner or a
  /// non-positive TTL.
  LeaseStore(std::filesystem::path claims_dir, std::string owner, double ttl_seconds);

  /// Tries to acquire the lease for `unit_key`. kClaimed / kStolen mean this
  /// worker holds it and must heartbeat until release; kHeld means someone
  /// else does.
  ClaimOutcome try_claim(std::uint64_t unit_key) const;

  /// Refreshes a held lease (atomic rewrite; bumps mtime). Call at least
  /// once per TTL while computing — execute_unit's per-iteration callback is
  /// the natural place.
  void refresh(std::uint64_t unit_key) const;

  /// Drops the lease after the unit's result is persisted. Releasing a lease
  /// that a stealer already replaced is harmless: the file is removed either
  /// way, and the stealer's re-probe of the store finds the completed unit.
  void release(std::uint64_t unit_key) const;

  /// Reads a lease file back (nullopt when absent or unreadable).
  std::optional<LeaseInfo> inspect(std::uint64_t unit_key) const;

  /// True when the lease file exists and its mtime age exceeds the TTL.
  bool is_stale(std::uint64_t unit_key) const;

  std::filesystem::path path_for(std::uint64_t unit_key) const;

  const std::string& owner() const noexcept { return owner_; }
  double ttl_seconds() const noexcept { return ttl_seconds_; }

 private:
  std::filesystem::path claims_dir_;
  std::string owner_;
  double ttl_seconds_;
};

}  // namespace manet::service
