#include "service/lease.hpp"

#include <chrono>
#include <system_error>
#include <utility>

#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

namespace manet::service {

namespace {

/// Mtime age of `path` in seconds; negative when the file is gone (a racing
/// release/steal) so callers treat it as "not stale, not held".
// manet-lint: allow(nondet-time) — lease staleness is *defined* by wall-clock
// mtime age (DESIGN.md §16). The clock only ever decides who computes a unit,
// never what the unit computes, so results stay time-free.
double mtime_age_seconds(const std::filesystem::path& path) {
  std::error_code ec;
  const std::filesystem::file_time_type mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return -1.0;
  const std::filesystem::file_time_type now = std::filesystem::file_time_type::clock::now();
  return std::chrono::duration<double>(now - mtime).count();
}

std::string lease_content(const std::string& owner) {
  JsonValue doc = JsonValue::object();
  doc.set("kind", JsonValue::string("manet-campaign-lease"));
  doc.set("owner", JsonValue::string(owner));
  return doc.dump(2);
}

}  // namespace

LeaseStore::LeaseStore(std::filesystem::path claims_dir, std::string owner,
                       double ttl_seconds)
    : claims_dir_(std::move(claims_dir)), owner_(std::move(owner)), ttl_seconds_(ttl_seconds) {
  if (owner_.empty()) throw ConfigError("lease: owner id must not be empty");
  if (!(ttl_seconds_ > 0.0)) throw ConfigError("lease: TTL must be > 0 seconds");
}

std::filesystem::path LeaseStore::path_for(std::uint64_t unit_key) const {
  return claims_dir_ / (hex_u64(unit_key) + ".lease");
}

ClaimOutcome LeaseStore::try_claim(std::uint64_t unit_key) const {
  const std::filesystem::path path = path_for(unit_key);
  if (write_text_file_exclusive(path, lease_content(owner_))) {
    return ClaimOutcome::kClaimed;
  }
  // Lost the exclusive create: someone holds (or held) the lease. Steal only
  // past the TTL. The age can read negative when the holder releases between
  // our create attempt and this stat — that is a plain kHeld; the next pass
  // over the unit list re-probes the store and the claim.
  const double age = mtime_age_seconds(path);
  if (age > ttl_seconds_) {
    // Rename-over: atomic replacement of the stale lease. Two stealers can
    // race here and both proceed to compute the unit — safe by the
    // determinism argument in the class comment, and the second store.save
    // rewrites identical bytes.
    write_text_file_atomic(path, lease_content(owner_));
    return ClaimOutcome::kStolen;
  }
  return ClaimOutcome::kHeld;
}

void LeaseStore::refresh(std::uint64_t unit_key) const {
  write_text_file_atomic(path_for(unit_key), lease_content(owner_));
}

void LeaseStore::release(std::uint64_t unit_key) const {
  std::error_code ignored;
  std::filesystem::remove(path_for(unit_key), ignored);
}

std::optional<LeaseInfo> LeaseStore::inspect(std::uint64_t unit_key) const {
  const std::filesystem::path path = path_for(unit_key);
  const double age = mtime_age_seconds(path);
  if (age < 0.0) return std::nullopt;
  try {
    const JsonValue doc = JsonValue::parse(read_text_file(path));
    LeaseInfo info;
    info.owner = doc.at("owner").as_string();
    info.age_seconds = age;
    return info;
  } catch (const ConfigError&) {
    return std::nullopt;
  }
}

bool LeaseStore::is_stale(std::uint64_t unit_key) const {
  return mtime_age_seconds(path_for(unit_key)) > ttl_seconds_;
}

}  // namespace manet::service
