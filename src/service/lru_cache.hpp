#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <string>
#include <utility>

#include "support/error.hpp"

namespace manet::service {

/// Bounded most-recently-used cache with deterministic eviction: entries
/// evict strictly in least-recently-used order, and recency is defined only
/// by the find()/insert() call sequence — no clocks, no hashing (std::map,
/// per the nondet-ordering rule), so a replayed request stream always
/// produces the same hit/miss/eviction trace. manetd fronts its query
/// evaluation with one of these; the cache stores rendered response *bytes*,
/// which is what makes "repeated identical queries return identical bytes"
/// trivially auditable.
template <typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw ConfigError("LruCache: capacity must be >= 1");
  }

  /// Looks `key` up and, on a hit, marks it most recently used. The pointer
  /// stays valid until the next insert().
  const Value* find(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    recency_.splice(recency_.begin(), recency_, it->second);
    return &it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// when full.
  void insert(std::string key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      recency_.splice(recency_.begin(), recency_, it->second);
      return;
    }
    if (index_.size() >= capacity_) {
      index_.erase(recency_.back().first);
      recency_.pop_back();
    }
    recency_.emplace_front(std::move(key), std::move(value));
    index_[recency_.front().first] = recency_.begin();
  }

  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<std::string, Value>> recency_;  ///< front = most recent
  std::map<std::string, typename std::list<std::pair<std::string, Value>>::iterator>
      index_;
};

}  // namespace manet::service
