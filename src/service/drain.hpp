#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/experiments.hpp"
#include "core/mtrm.hpp"

namespace manet::service {

/// Knobs of one distributed drain worker (CLI mapping in service/cli.hpp).
struct DrainOptions {
  /// The underlying campaign knobs: directory, store, resume, kill-after,
  /// unit size. checkpoint_every is unused here (workers do not checkpoint
  /// shared progress — the store itself is the progress record).
  campaign::CampaignOptions campaign;
  /// Owner id stamped into claimed leases ("worker-0", "host:pid"). Must be
  /// unique among concurrently draining workers; required.
  std::string worker;
  /// Lease staleness horizon. A lease untouched for longer than this is
  /// presumed abandoned (holder crashed) and may be stolen. Heartbeats fire
  /// every iteration, so the TTL only needs to exceed one iteration's
  /// runtime with margin.
  double lease_ttl_seconds = 30.0;
  /// Sleep between passes when every remaining unit is leased to someone
  /// else — the only waiting this worker ever does.
  double poll_seconds = 0.05;
  /// Abort (ConfigError) after this much accumulated poll sleep without any
  /// unit completing — the campaign is wedged (all holders dead *and* the
  /// TTL never expiring would take a clock going backwards, so in practice
  /// this fires only on misconfiguration).
  double max_wait_seconds = 600.0;
};

/// Accounting of the last run_points() call on one worker. Unlike
/// CampaignReport this is per-worker, not per-campaign: N workers partition
/// `executed` among themselves and each counts the rest as store hits.
struct DrainReport {
  std::size_t units_total = 0;
  /// Units this worker loaded complete from the store (including units other
  /// workers finished while this one waited).
  std::size_t store_hits = 0;
  /// Units this worker computed under a fresh claim.
  std::size_t executed = 0;
  /// Units this worker computed under a stolen (stale) lease.
  std::size_t stolen = 0;
  /// Passes that ended with nothing claimable (slept poll_seconds).
  std::size_t idle_polls = 0;
};

/// Lease-coordinated campaign executor: N independent DistributedCampaignRunner
/// processes pointed at the same campaign + store directories drain one
/// manifest cooperatively, and every finisher writes the same result.json —
/// byte-identical to CampaignRunner's single-process file (DESIGN.md §16).
///
/// Per pass, each incomplete unit is (1) probed in the store — complete
/// units are taken as-is, the same replay path CampaignRunner resume uses —
/// then (2) claimed via LeaseStore. A claimed unit is computed serially
/// (worker-level parallelism comes from running N workers, so results never
/// depend on intra-worker thread count), heartbeated every iteration,
/// persisted atomically, and only then released. Units leased to live
/// workers are skipped and re-probed next pass; stale leases are stolen.
/// The worker finishes when all units are complete, then merges through the
/// same fold as every other execution path.
class DistributedCampaignRunner final : public MtrmSweepExecutor {
 public:
  /// Throws ConfigError on inconsistent options (empty dir/worker,
  /// non-positive TTL or poll).
  DistributedCampaignRunner(std::string name, DrainOptions options);

  /// Drains the campaign as described above and returns the merged results
  /// in point order. Throws ConfigError on resume-validation failures and
  /// on a wedged campaign (max_wait_seconds of no progress).
  std::vector<MtrmResult> run_points(std::vector<MtrmSweepPoint> points) override;

  const std::string& name() const noexcept { return name_; }
  const DrainOptions& options() const noexcept { return options_; }
  /// Accounting of the last run_points() call.
  const DrainReport& report() const noexcept { return report_; }

 private:
  std::string name_;
  DrainOptions options_;
  DrainReport report_;
};

}  // namespace manet::service
