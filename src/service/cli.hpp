#pragma once

#include <string>

#include "service/drain.hpp"
#include "support/cli.hpp"

namespace manet::service {

/// Registers the distributed-drain flag family on a CliParser (alongside
/// campaign::add_campaign_cli_options, whose flags supply the underlying
/// CampaignOptions):
///
///   --distributed        drain the campaign cooperatively via unit leases
///   --worker-id ID       this worker's lease owner id (required with
///                        --distributed, unique per concurrent worker)
///   --lease-ttl SECONDS  staleness horizon before a lease may be stolen
///   --drain-poll SECONDS sleep between passes when all units are held
///   --drain-max-wait SECONDS give up after this much progress-free waiting
void add_drain_cli_options(CliParser& cli);

/// True when the registered flags ask for distributed mode.
bool drain_requested(const CliParser& cli);

/// Materializes DrainOptions from parsed flags; the campaign sub-options
/// come from campaign_options_from_cli (so every --campaign-* flag keeps
/// its meaning in distributed mode). Throws ConfigError on inconsistent
/// values (missing --worker-id, non-positive TTL/poll/max-wait).
DrainOptions drain_options_from_cli(const CliParser& cli, const std::string& campaign_name);

}  // namespace manet::service
