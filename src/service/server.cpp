#include "service/server.hpp"

#include <cstdio>
#include <utility>

#include "service/socket.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

namespace manet::service {

namespace {

struct ServerMetrics {
  metrics::Counter connections = metrics::counter("manetd.connections");
  metrics::Counter requests = metrics::counter("manetd.requests");
  metrics::Counter cache_hits = metrics::counter("manetd.cache_hits");
  metrics::Counter cache_misses = metrics::counter("manetd.cache_misses");
  metrics::Counter parse_errors = metrics::counter("manetd.parse_errors");
};

ServerMetrics& server_metrics() {
  static ServerMetrics bundle;
  return bundle;
}

std::string error_line(const std::string& message) {
  JsonValue response = JsonValue::object();
  response.set("ok", JsonValue::boolean(false));
  response.set("error", JsonValue::string(message));
  return response.dump();
}

}  // namespace

ManetdServer::ManetdServer(QueryEngine engine, ServerOptions options)
    : engine_(std::move(engine)),
      options_(std::move(options)),
      cache_(options_.cache_capacity) {
  if (options_.socket_path.empty()) {
    throw ConfigError("manetd: a socket path is required (--socket)");
  }
}

std::string ManetdServer::respond(const std::string& line) {
  ++report_.requests;
  server_metrics().requests.increment();

  JsonValue request;
  try {
    request = JsonValue::parse(line);
    (void)request.members();  // must be an object
  } catch (const ConfigError& error) {
    ++report_.parse_errors;
    server_metrics().parse_errors.increment();
    return error_line(std::string("bad request: ") + error.what());
  }

  // Control-op dispatch must not throw out of respond(): a non-string "op"
  // falls through to the engine, whose handle() turns it into an error
  // response.
  std::string op_name;
  if (const JsonValue* op = request.find("op")) {
    try {
      op_name = op->as_string();
    } catch (const ConfigError&) {
    }
  }
  if (op_name == "stop") {
    stop_requested_ = true;
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("op", JsonValue::string("stop"));
    return response.dump();
  }
  if (op_name == "stats") {
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("op", JsonValue::string("stats"));
    response.set("connections", JsonValue::number(report_.connections));
    response.set("requests", JsonValue::number(report_.requests));
    response.set("cache_hits", JsonValue::number(report_.cache_hits));
    response.set("cache_misses", JsonValue::number(report_.cache_misses));
    response.set("cache_size", JsonValue::number(cache_.size()));
    response.set("cache_capacity", JsonValue::number(cache_.capacity()));
    response.set("parse_errors", JsonValue::number(report_.parse_errors));
    response.set("metrics", metrics::collect_json());
    return response.dump();
  }

  // Pure query: serve from the byte-cache when the canonical request was
  // seen before. Error responses are cached too — they are just as
  // deterministic as successes, and a client retrying a bad query in a loop
  // should not re-run the lookup machinery.
  const std::string key = QueryEngine::cache_key(request);
  if (const std::string* cached = cache_.find(key)) {
    ++report_.cache_hits;
    server_metrics().cache_hits.increment();
    return *cached;
  }
  ++report_.cache_misses;
  server_metrics().cache_misses.increment();
  std::string rendered = engine_.handle(request).dump();
  cache_.insert(key, rendered);
  return rendered;
}

std::size_t ManetdServer::serve() {
  // send_all already uses MSG_NOSIGNAL where available; this covers the
  // platforms that lack the flag, so a client hanging up before reading its
  // response always surfaces as EPIPE -> ConfigError below, never SIGPIPE.
  ignore_sigpipe();
  UnixListener listener(options_.socket_path);
  if (!options_.quiet) {
    std::fprintf(stderr, "[manetd] serving %zu campaigns on %s\n",
                 engine_.campaign_count(), options_.socket_path.string().c_str());
  }

  while (!stop_requested_) {
    Socket client = listener.wait_client();
    ++report_.connections;
    server_metrics().connections.increment();
    try {
      if (options_.client_timeout_seconds > 0.0) {
        client.set_receive_timeout(options_.client_timeout_seconds);
      }
      std::string line;
      while (!stop_requested_ && client.read_line(line)) {
        std::string response = respond(line);
        response.push_back('\n');
        client.send_all(response);
      }
    } catch (const ConfigError& error) {
      // A misbehaving client (oversized line, mid-line hangup, dead pipe,
      // idle past the receive timeout) ends its own session only; the
      // server keeps accepting.
      if (!options_.quiet) {
        std::fprintf(stderr, "[manetd] client error: %s\n", error.what());
      }
    }
  }

  if (!options_.quiet) {
    std::fprintf(stderr, "[manetd] stop: served %zu requests (%zu cache hits) over %zu "
                 "connections\n",
                 report_.requests, report_.cache_hits, report_.connections);
  }
  return report_.requests;
}

}  // namespace manet::service
