#include "service/socket.hpp"

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <system_error>
#include <utility>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#define MANET_HAVE_UNIX_SOCKETS 1
#else
#define MANET_HAVE_UNIX_SOCKETS 0
#endif

namespace manet::service {

namespace {

/// One line is one JSON request/response; anything bigger than this is a
/// protocol violation, not a query.
constexpr std::size_t kMaxLineBytes = 8u * 1024u * 1024u;

[[noreturn]] void throw_errno(const std::string& what) {
  throw ConfigError(what + ": " + std::string(std::strerror(errno)));
}

#if !MANET_HAVE_UNIX_SOCKETS
[[noreturn]] void throw_unsupported() {
  throw ConfigError("unix-domain sockets are not available on this platform");
}
#endif

}  // namespace

bool unix_sockets_available() noexcept { return MANET_HAVE_UNIX_SOCKETS != 0; }

void ignore_sigpipe() noexcept {
#if MANET_HAVE_UNIX_SOCKETS
  ::signal(SIGPIPE, SIG_IGN);
#endif
}

Socket::~Socket() { close_stream(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_stream();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Socket::close_stream() noexcept {
#if MANET_HAVE_UNIX_SOCKETS
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

void Socket::send_all(std::string_view data) const {
#if MANET_HAVE_UNIX_SOCKETS
  if (fd_ < 0) throw ConfigError("send_all on a closed socket");
  std::size_t offset = 0;
  while (offset < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE -> ConfigError,
    // not raise SIGPIPE and take down the whole process. Platforms without
    // the flag (macOS) rely on ignore_sigpipe() having been called.
#if defined(MSG_NOSIGNAL)
    const ssize_t n =
        ::send(fd_, data.data() + offset, data.size() - offset, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd_, data.data() + offset, data.size() - offset);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket write failed");
    }
    offset += static_cast<std::size_t>(n);
  }
#else
  (void)data;
  throw_unsupported();
#endif
}

void Socket::set_receive_timeout(double seconds) const {
#if MANET_HAVE_UNIX_SOCKETS
  if (fd_ < 0) throw ConfigError("set_receive_timeout on a closed socket");
  timeval window{};
  if (seconds > 0.0) {
    window.tv_sec = static_cast<time_t>(seconds);
    window.tv_usec = static_cast<suseconds_t>(
        std::lround((seconds - static_cast<double>(window.tv_sec)) * 1e6));
    if (window.tv_usec >= 1000000) {
      ++window.tv_sec;
      window.tv_usec = 0;
    }
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &window, sizeof window) != 0) {
    throw_errno("cannot set socket receive timeout");
  }
#else
  (void)seconds;
  throw_unsupported();
#endif
}

bool Socket::read_line(std::string& line) {
#if MANET_HAVE_UNIX_SOCKETS
  if (fd_ < 0) throw ConfigError("read_line on a closed socket");
  line.clear();
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (buffer_.size() > kMaxLineBytes) {
      throw ConfigError("socket line exceeds the 8 MiB protocol bound");
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw ConfigError("socket read timed out (idle peer)");
      }
      throw_errno("socket read failed");
    }
    if (n == 0) {
      // Clean end-of-stream. A partial trailing line (no '\n') is a peer
      // protocol error; surface it rather than silently dropping bytes.
      if (!buffer_.empty()) {
        throw ConfigError("peer closed mid-line (" + std::string(buffer_, 0, 64) + "...)");
      }
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
#else
  (void)line;
  throw_unsupported();
#endif
}

#if MANET_HAVE_UNIX_SOCKETS
namespace {

sockaddr_un address_for(const std::filesystem::path& socket_path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  const std::string text = socket_path.string();
  if (text.size() >= sizeof(address.sun_path)) {
    throw ConfigError("socket path too long for sun_path (" + text + ")");
  }
  std::memcpy(address.sun_path, text.c_str(), text.size() + 1);
  return address;
}

}  // namespace
#endif

UnixListener::UnixListener(std::filesystem::path socket_path)
    : path_(std::move(socket_path)) {
#if MANET_HAVE_UNIX_SOCKETS
  const sockaddr_un address = address_for(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("cannot create unix socket");
  // Replace a stale socket file from a previous (killed) server; a *live*
  // server would still hold the old inode, so clients of the old path fail
  // fast instead of splitting traffic.
  std::error_code ignored;
  std::filesystem::remove(path_, ignored);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("cannot bind " + path_.string());
  }
  if (::listen(fd_, 16) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("cannot listen on " + path_.string());
  }
#else
  throw_unsupported();
#endif
}

UnixListener::~UnixListener() {
#if MANET_HAVE_UNIX_SOCKETS
  if (fd_ >= 0) ::close(fd_);
  std::error_code ignored;
  std::filesystem::remove(path_, ignored);
#endif
}

Socket UnixListener::wait_client() const {
#if MANET_HAVE_UNIX_SOCKETS
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Socket(client);
    if (errno == EINTR) continue;
    throw_errno("accept failed on " + path_.string());
  }
#else
  throw_unsupported();
#endif
}

Socket dial_unix(const std::filesystem::path& socket_path) {
#if MANET_HAVE_UNIX_SOCKETS
  const sockaddr_un address = address_for(socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("cannot create unix socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot connect to " + socket_path.string());
  }
  return Socket(fd);
#else
  (void)socket_path;
  throw_unsupported();
#endif
}

}  // namespace manet::service
