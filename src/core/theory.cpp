#include "core/theory.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace manet::theory {

double connectivity_threshold_range_1d(double l, double n, double c) {
  MANET_EXPECTS(l > 1.0);
  MANET_EXPECTS(n >= 1.0);
  MANET_EXPECTS(c > 0.0);
  return c * l * std::log(l) / n;
}

double worst_case_range(double l, int d) {
  MANET_EXPECTS(l > 0.0);
  MANET_EXPECTS(d >= 1 && d <= 3);
  return l * std::sqrt(static_cast<double>(d));
}

double best_case_range_1d(double l, double n) {
  MANET_EXPECTS(l > 0.0);
  MANET_EXPECTS(n >= 1.0);
  return l / n;
}

const char* regime_name(Regime1D regime) {
  switch (regime) {
    case Regime1D::kSubcritical:
      return "subcritical";
    case Regime1D::kGapRegime:
      return "gap-regime";
    case Regime1D::kCritical:
      return "critical";
    case Regime1D::kSupercritical:
      return "supercritical";
  }
  return "?";
}

Regime1D classify_regime_1d(double l, double n, double r, double band) {
  MANET_EXPECTS(l > 1.0);
  MANET_EXPECTS(n >= 1.0);
  MANET_EXPECTS(r > 0.0);
  MANET_EXPECTS(band >= 1.0);

  const double rn = r * n;
  const double threshold = l * std::log(l);
  if (rn <= l / band) return Regime1D::kSubcritical;
  if (rn < threshold / band) return Regime1D::kGapRegime;
  if (rn <= threshold * band) return Regime1D::kCritical;
  return Regime1D::kSupercritical;
}

double theorem4_epsilon(double delta) {
  MANET_EXPECTS(delta > 0.0 && delta <= 2.0 * std::numbers::pi);
  return delta / (2.0 * std::numbers::pi);
}

double relative_energy(double r_base, double r_reduced, double alpha) {
  MANET_EXPECTS(r_base > 0.0);
  MANET_EXPECTS(r_reduced >= 0.0);
  MANET_EXPECTS(alpha >= 1.0);
  return std::pow(r_reduced / r_base, alpha);
}

}  // namespace manet::theory
