#include "core/availability.hpp"

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

AvailabilityReport evaluate_availability(const MobileConnectivityTrace& trace, double range,
                                         double phi) {
  MANET_EXPECTS(range >= 0.0);
  MANET_EXPECTS(phi > 0.0 && phi <= 1.0);

  AvailabilityReport report;
  report.range = range;
  report.phi = phi;
  report.full_availability = trace.fraction_of_time_connected(range);
  report.degraded_availability = trace.fraction_of_time_component_at_least(range, phi);
  report.mean_component_when_down = trace.mean_largest_fraction_when_disconnected(range);
  // Degraded-mode availability dominates full availability: a connected graph
  // always has its largest component at phi * n or more.
  MANET_ENSURE(report.degraded_availability >= report.full_availability);
  MANET_ENSURE(report.degraded_availability <= 1.0);
  return report;
}

}  // namespace manet
