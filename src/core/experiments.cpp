#include "core/experiments.hpp"

#include <cmath>

#include "core/energy.hpp"
#include "sim/stationary_sample.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace manet {

const char* preset_name(Preset preset) {
  switch (preset) {
    case Preset::kQuick:
      return "quick";
    case Preset::kDefault:
      return "default";
    case Preset::kPaper:
      return "paper";
  }
  return "?";
}

Preset parse_preset(const std::string& text) {
  if (text == "quick") return Preset::kQuick;
  if (text == "default") return Preset::kDefault;
  if (text == "paper") return Preset::kPaper;
  throw ConfigError("unknown preset '" + text + "' (expected quick|default|paper)");
}

ScaleParams scale_for(Preset preset) {
  switch (preset) {
    case Preset::kQuick:
      return {/*iterations=*/4, /*steps=*/500, /*stationary_trials=*/100};
    case Preset::kDefault:
      return {/*iterations=*/10, /*steps=*/2000, /*stationary_trials=*/250};
    case Preset::kPaper:
      return {/*iterations=*/50, /*steps=*/10000, /*stationary_trials=*/1000};
  }
  throw ConfigError("unknown preset");
}

namespace experiments {

std::vector<MtrmResult> solve_mtrm_sweep(const std::vector<MtrmConfig>& configs,
                                         std::uint64_t seed,
                                         MtrmSweepExecutor* executor) {
  if (executor != nullptr) {
    // Same derivation as the legacy path below: point i's substream is
    // substream(seed, i) and solve_mtrm consumes exactly one draw from it
    // for the trial root — so the executor sees the identical roots and its
    // results are bit-identical to the in-process sweep.
    std::vector<MtrmSweepPoint> points;
    points.reserve(configs.size());
    for (std::size_t point = 0; point < configs.size(); ++point) {
      Rng point_rng = substream(seed, point);
      points.push_back(MtrmSweepPoint{configs[point], point_rng.next_u64()});
    }
    return executor->run_points(std::move(points));
  }
  return parallel_for_trials(configs.size(), seed,
                             [&configs](std::size_t point, Rng& point_rng) {
                               return solve_mtrm<2>(configs[point], point_rng);
                             });
}

std::vector<double> figure_l_values() { return {256.0, 1024.0, 4096.0, 16384.0}; }

std::size_t paper_node_count(double l) {
  MANET_EXPECTS(l >= 1.0);
  return static_cast<std::size_t>(std::floor(std::sqrt(l)));
}

namespace {

MtrmConfig base_config(double l, Preset preset) {
  const ScaleParams scale = scale_for(preset);
  MtrmConfig config;
  config.node_count = paper_node_count(l);
  config.side = l;
  config.steps = scale.steps;
  config.iterations = scale.iterations;
  return config;
}

}  // namespace

MtrmConfig waypoint_experiment(double l, Preset preset) {
  MtrmConfig config = base_config(l, preset);
  config.mobility = MobilityConfig::paper_waypoint(l);
  return config;
}

MtrmConfig drunkard_experiment(double l, Preset preset) {
  MtrmConfig config = base_config(l, preset);
  config.mobility = MobilityConfig::paper_drunkard(l);
  return config;
}

MtrmConfig sweep_base_config(Preset preset) {
  // Section 4.3: "the random waypoint model with l = 4096 and n = sqrt(l) =
  // 64. The default values of the mobility parameters were set as above."
  return waypoint_experiment(4096.0, preset);
}

std::vector<double> figure7_pstationary_values() {
  std::vector<double> values = {0.0, 0.2};
  for (double p = 0.4; p <= 0.6 + 1e-9; p += 0.02) values.push_back(p);
  values.push_back(0.8);
  values.push_back(1.0);
  return values;
}

std::vector<double> figure8_tpause_values() {
  std::vector<double> values;
  for (double t = 0.0; t <= 10000.0 + 1e-9; t += 1000.0) values.push_back(t);
  return values;
}

std::vector<double> figure9_vmax_fractions() {
  return {0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
}

void LinkModelTradeoffConfig::validate() const {
  if (node_count < 2) throw ConfigError("LinkModelTradeoffConfig: node_count must be >= 2");
  if (!(side > 0.0)) throw ConfigError("LinkModelTradeoffConfig: side must be > 0");
  if (trials == 0) throw ConfigError("LinkModelTradeoffConfig: trials must be >= 1");
  if (!(alpha >= 1.0)) throw ConfigError("LinkModelTradeoffConfig: alpha must be >= 1");
  if (!(p_full > 0.0 && p_full <= 1.0)) {
    throw ConfigError("LinkModelTradeoffConfig: p_full must lie in (0, 1]");
  }
  if (!(p_tolerant > 0.0 && p_tolerant <= p_full)) {
    throw ConfigError("LinkModelTradeoffConfig: p_tolerant must lie in (0, p_full]");
  }
  search.validate();
}

std::vector<LinkModelTradeoffRow> link_model_energy_tradeoff(
    const LinkModelTradeoffConfig& config, const std::vector<const LinkModelFamily*>& families,
    std::uint64_t seed) {
  config.validate();
  for (const LinkModelFamily* family : families) {
    if (family == nullptr) throw ConfigError("link_model_energy_tradeoff: null family");
  }

  const EnergyModel energy(config.alpha);
  const Box<2> region(config.side);
  std::vector<LinkModelTradeoffRow> rows;
  rows.reserve(families.size());
  for (std::size_t f = 0; f < families.size(); ++f) {
    // One substream root per family: rows are pure functions of (seed, f),
    // independent of how many families the sweep includes or their order.
    Rng family_rng = substream(seed, f);
    const StationaryRangeSample sample = sample_link_model_critical_ranges<2>(
        config.node_count, region, config.trials, family_rng, *families[f], config.search);

    LinkModelTradeoffRow row;
    row.model = families[f]->name();
    row.r_full = sample.range_for_probability(config.p_full);
    row.r_tolerant = sample.range_for_probability(config.p_tolerant);
    row.mean_critical_range = sample.mean_critical_range();
    // Order statistics are monotone in p, so r_tolerant <= r_full; both are
    // positive for n >= 2 nodes at distinct positions, but guard the
    // degenerate all-coincident sample rather than divide by zero.
    if (row.r_full > 0.0) {
      row.range_reduction = 1.0 - row.r_tolerant / row.r_full;
      row.energy_savings = energy.savings(row.r_full, row.r_tolerant);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace experiments
}  // namespace manet
