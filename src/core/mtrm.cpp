#include "core/mtrm.hpp"

#include "support/error.hpp"

namespace manet {

void MtrmConfig::validate() const {
  if (node_count < 2) throw ConfigError("MtrmConfig: node_count must be >= 2");
  if (!(side > 0.0)) throw ConfigError("MtrmConfig: side must be > 0");
  if (steps == 0) throw ConfigError("MtrmConfig: steps must be >= 1");
  if (iterations == 0) throw ConfigError("MtrmConfig: iterations must be >= 1");
  if (time_fractions.empty() && component_fractions.empty()) {
    throw ConfigError("MtrmConfig: nothing to solve (no fractions requested)");
  }
  for (double f : time_fractions) {
    if (!(f > 0.0 && f <= 1.0)) {
      throw ConfigError("MtrmConfig: time fractions must be in (0, 1]");
    }
  }
  for (double phi : component_fractions) {
    if (!(phi > 0.0 && phi <= 1.0)) {
      throw ConfigError("MtrmConfig: component fractions must be in (0, 1]");
    }
  }
}

}  // namespace manet
