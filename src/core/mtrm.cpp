#include "core/mtrm.hpp"

#include <string>

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace manet {

MtrmResult fold_mtrm_outcomes(const MtrmConfig& config,
                              std::span<const MtrmIterationOutcome> outcomes) {
  MtrmResult result;
  result.time_fractions = config.time_fractions;
  result.component_fractions = config.component_fractions;
  result.range_for_time.resize(config.time_fractions.size());
  result.range_for_component.resize(config.component_fractions.size());
  result.lcc_at_range_for_time.resize(config.time_fractions.size());
  result.min_lcc_at_range_for_time.resize(config.time_fractions.size());

  for (const MtrmIterationOutcome& outcome : outcomes) {
    for (std::size_t i = 0; i < config.time_fractions.size(); ++i) {
      result.range_for_time[i].add(outcome.range_for_time[i]);
      result.lcc_at_range_for_time[i].add(outcome.lcc_at_range_for_time[i]);
      result.min_lcc_at_range_for_time[i].add(outcome.min_lcc_at_range_for_time[i]);
    }
    result.range_never_connected.add(outcome.range_never_connected);
    result.lcc_at_range_never.add(outcome.lcc_at_range_never);
    for (std::size_t j = 0; j < config.component_fractions.size(); ++j) {
      result.range_for_component[j].add(outcome.range_for_component[j]);
    }
    result.mean_critical_range.add(outcome.mean_critical_range);
  }
  return result;
}

std::vector<double> flatten_mtrm_result(const MtrmResult& result) {
  std::vector<double> values;
  for (const RunningStats& stats : result.range_for_time) {
    values.push_back(stats.mean());
    values.push_back(stats.variance());
  }
  values.push_back(result.range_never_connected.mean());
  values.push_back(result.lcc_at_range_never.mean());
  for (const RunningStats& stats : result.range_for_component) values.push_back(stats.mean());
  for (const RunningStats& stats : result.lcc_at_range_for_time) values.push_back(stats.mean());
  for (const RunningStats& stats : result.min_lcc_at_range_for_time) {
    values.push_back(stats.mean());
  }
  values.push_back(result.mean_critical_range.mean());
  return values;
}

std::vector<std::string> flatten_mtrm_labels(std::size_t time_fraction_count,
                                             std::size_t component_fraction_count) {
  // Must mirror flatten_mtrm_result's push order exactly — both are pinned
  // against each other by MtrmTest.FlattenLabelsMatchFlattenLayout.
  std::vector<std::string> labels;
  const auto indexed = [](const char* base, std::size_t i, const char* stat) {
    return std::string(base) + "[" + format_u64(i) + "]." + stat;
  };
  for (std::size_t i = 0; i < time_fraction_count; ++i) {
    labels.push_back(indexed("range_for_time", i, "mean"));
    labels.push_back(indexed("range_for_time", i, "variance"));
  }
  labels.push_back("range_never_connected.mean");
  labels.push_back("lcc_at_range_never.mean");
  for (std::size_t j = 0; j < component_fraction_count; ++j) {
    labels.push_back(indexed("range_for_component", j, "mean"));
  }
  for (std::size_t i = 0; i < time_fraction_count; ++i) {
    labels.push_back(indexed("lcc_at_range_for_time", i, "mean"));
  }
  for (std::size_t i = 0; i < time_fraction_count; ++i) {
    labels.push_back(indexed("min_lcc_at_range_for_time", i, "mean"));
  }
  labels.push_back("mean_critical_range.mean");
  return labels;
}

void MtrmConfig::validate() const {
  if (node_count < 2) throw ConfigError("MtrmConfig: node_count must be >= 2");
  if (!(side > 0.0)) throw ConfigError("MtrmConfig: side must be > 0");
  if (steps == 0) throw ConfigError("MtrmConfig: steps must be >= 1");
  if (iterations == 0) throw ConfigError("MtrmConfig: iterations must be >= 1");
  if (time_fractions.empty() && component_fractions.empty()) {
    throw ConfigError("MtrmConfig: nothing to solve (no fractions requested)");
  }
  for (double f : time_fractions) {
    if (!(f > 0.0 && f <= 1.0)) {
      throw ConfigError("MtrmConfig: time fractions must be in (0, 1]");
    }
  }
  for (double phi : component_fractions) {
    if (!(phi > 0.0 && phi <= 1.0)) {
      throw ConfigError("MtrmConfig: component fractions must be in (0, 1]");
    }
  }
}

}  // namespace manet
