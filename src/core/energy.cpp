#include "core/energy.hpp"

#include <cmath>

namespace manet {

double EnergyModel::transmit_power(double range) const {
  if (!(range >= 0.0)) throw ConfigError("EnergyModel::transmit_power: range must be >= 0");
  return std::pow(range, alpha_);
}

double EnergyModel::network_power(std::size_t node_count, double range) const {
  return static_cast<double>(node_count) * transmit_power(range);
}

double EnergyModel::savings(double r_base, double r_reduced) const {
  if (!(r_base > 0.0)) throw ConfigError("EnergyModel::savings: r_base must be > 0");
  if (!(r_reduced >= 0.0 && r_reduced <= r_base)) {
    throw ConfigError("EnergyModel::savings: r_reduced must lie in [0, r_base]");
  }
  return 1.0 - std::pow(r_reduced / r_base, alpha_);
}

}  // namespace manet
