#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/trace_workspace.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace manet {

/// Configuration of a MINIMUM TRANSMITTING RANGE MOBILE experiment: n nodes
/// in [0, side]^D, moved by `mobility` for `steps` steps, repeated over
/// `iterations` independent runs (the paper uses 50 iterations of 10 000
/// steps).
struct MtrmConfig {
  std::size_t node_count = 0;
  double side = 0.0;
  std::size_t steps = 1000;
  std::size_t iterations = 10;
  MobilityConfig mobility{};

  /// The time fractions f whose minimum range r_f is solved (the paper's
  /// r100 / r90 / r10).
  std::vector<double> time_fractions{1.0, 0.9, 0.1};

  /// The component fractions phi whose minimum range rl_phi (mean largest
  /// component >= phi * n) is solved (the paper's rl90 / rl75 / rl50).
  std::vector<double> component_fractions{0.9, 0.75, 0.5};

  /// Throws ConfigError when inconsistent.
  void validate() const;
};

/// Aggregated MTRM solution: one RunningStats per requested quantity,
/// accumulated across iterations (each iteration contributes the exact value
/// computed from its own trace, as the paper averages per-simulation values).
struct MtrmResult {
  std::vector<double> time_fractions;
  std::vector<double> component_fractions;

  /// r_f per time fraction (aligned with time_fractions).
  std::vector<RunningStats> range_for_time;
  /// r0: largest range with zero connected steps.
  RunningStats range_never_connected;
  /// rl_phi per component fraction (aligned with component_fractions).
  std::vector<RunningStats> range_for_component;

  /// Mean largest-component fraction over *disconnected* steps, evaluated at
  /// the iteration's own r_f (aligned with time_fractions) and at its r0 —
  /// the Figures 4-5 series.
  std::vector<RunningStats> lcc_at_range_for_time;
  RunningStats lcc_at_range_never;

  /// Minimum largest-component fraction over all steps at the iteration's
  /// own r_f.
  std::vector<RunningStats> min_lcc_at_range_for_time;

  /// Mean per-step critical radius.
  RunningStats mean_critical_range;
};

/// The per-iteration measurements folded into an MtrmResult: one value per
/// requested quantity, extracted from a single mobile trace.
struct MtrmIterationOutcome {
  std::vector<double> range_for_time;
  std::vector<double> lcc_at_range_for_time;
  std::vector<double> min_lcc_at_range_for_time;
  double range_never_connected = 0.0;
  double lcc_at_range_never = 0.0;
  std::vector<double> range_for_component;
  double mean_critical_range = 0.0;
};

/// One MTRM iteration: runs a single mobile trace seeded by `iteration_rng`
/// and extracts every requested quantity. The per-iteration unit of work of
/// solve_mtrm, exposed so the campaign runner (src/campaign/) can execute
/// exactly this code for a trial block and cache the outcomes — a replayed
/// unit is bit-identical to a freshly computed one because both are this
/// function of the same substream.
template <int D>
MtrmIterationOutcome run_mtrm_iteration(const MtrmConfig& config, Rng& iteration_rng) {
  const Box<D> region(config.side);
  const auto model = make_mobility_model<D>(config.mobility, region);
  // Per-iteration workspace: the step loop reuses its grid/edge/curve
  // buffers across all `steps` EMST solves, and because every iteration
  // owns its workspace nothing is shared across worker threads. The trace
  // runs the kinetic engine by default (MANET_KINETIC / kinetic_enabled());
  // either engine yields bit-identical curves, so the golden MTRM checksums
  // hold regardless of the selection.
  TraceWorkspace<D> workspace;
  const MobileConnectivityTrace trace = run_mobile_trace<D>(
      config.node_count, region, config.steps, *model, iteration_rng, &workspace);

  MtrmIterationOutcome outcome;
  outcome.range_for_time.reserve(config.time_fractions.size());
  outcome.lcc_at_range_for_time.reserve(config.time_fractions.size());
  outcome.min_lcc_at_range_for_time.reserve(config.time_fractions.size());
  for (double f : config.time_fractions) {
    const double r_f = trace.range_for_time_fraction(f);
    outcome.range_for_time.push_back(r_f);
    outcome.lcc_at_range_for_time.push_back(trace.mean_largest_fraction_when_disconnected(r_f));
    outcome.min_lcc_at_range_for_time.push_back(trace.min_largest_fraction_at(r_f));
  }

  const double r0 = trace.largest_never_connected_range();
  outcome.range_never_connected = r0;
  outcome.lcc_at_range_never = trace.mean_largest_fraction_when_disconnected(r0);

  outcome.range_for_component.reserve(config.component_fractions.size());
  for (double phi : config.component_fractions) {
    outcome.range_for_component.push_back(trace.range_for_mean_component_fraction(phi));
  }

  outcome.mean_critical_range = trace.mean_critical_range();
  return outcome;
}

/// Folds per-iteration outcomes into the aggregate result, strictly in the
/// order given (= iteration-index order everywhere in this repo). The
/// RunningStats updates are order-sensitive floating point, so any path that
/// aggregates outcomes — solve_mtrm and the campaign runner's cached-unit
/// merge alike — must fold through this one function to stay bit-identical.
MtrmResult fold_mtrm_outcomes(const MtrmConfig& config,
                              std::span<const MtrmIterationOutcome> outcomes);

/// Flattens a result into the fixed vector layout digested by the golden
/// checksums (tests/determinism_test.cpp) and the campaign result.json
/// per-point checksum: means/variances of r_f, then r0 / lcc@r0, component
/// ranges, lcc and min-lcc series, mean critical range.
std::vector<double> flatten_mtrm_result(const MtrmResult& result);

/// Names each slot of flatten_mtrm_result's layout, in the same order
/// ("range_for_time[0].mean", ... , "mean_critical_range.mean") for the
/// given fraction counts. The manetd query engine uses these labels to
/// address individual statistics inside a campaign's flattened_result
/// vectors; tests pin that the label list and the flattened vector always
/// have equal length.
std::vector<std::string> flatten_mtrm_labels(std::size_t time_fraction_count,
                                             std::size_t component_fraction_count);

/// Solves MTRM by simulation: runs `iterations` independent mobile traces and
/// extracts every requested range exactly from the per-step critical radii
/// and component curves (DESIGN.md §2).
///
/// Iterations run through the deterministic parallel engine
/// (support/parallel.hpp): one draw from `rng` seeds an order-independent
/// substream per iteration, the iterations fan out over up to
/// `MANET_THREADS` threads, and the per-iteration outcomes are folded into
/// the RunningStats in iteration order — so the result is bit-identical at
/// any thread count, and `rng` always advances by exactly one draw.
template <int D>
MtrmResult solve_mtrm(const MtrmConfig& config, Rng& rng) {
  config.validate();
  const std::uint64_t trial_root = rng.next_u64();

  const auto outcomes = parallel_for_trials(
      config.iterations, trial_root, [&config](std::size_t, Rng& iteration_rng) {
        return run_mtrm_iteration<D>(config, iteration_rng);
      });
  return fold_mtrm_outcomes(config, outcomes);
}

}  // namespace manet
