#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/mobile_trace.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace manet {

/// Configuration of a MINIMUM TRANSMITTING RANGE MOBILE experiment: n nodes
/// in [0, side]^D, moved by `mobility` for `steps` steps, repeated over
/// `iterations` independent runs (the paper uses 50 iterations of 10 000
/// steps).
struct MtrmConfig {
  std::size_t node_count = 0;
  double side = 0.0;
  std::size_t steps = 1000;
  std::size_t iterations = 10;
  MobilityConfig mobility{};

  /// The time fractions f whose minimum range r_f is solved (the paper's
  /// r100 / r90 / r10).
  std::vector<double> time_fractions{1.0, 0.9, 0.1};

  /// The component fractions phi whose minimum range rl_phi (mean largest
  /// component >= phi * n) is solved (the paper's rl90 / rl75 / rl50).
  std::vector<double> component_fractions{0.9, 0.75, 0.5};

  /// Throws ConfigError when inconsistent.
  void validate() const;
};

/// Aggregated MTRM solution: one RunningStats per requested quantity,
/// accumulated across iterations (each iteration contributes the exact value
/// computed from its own trace, as the paper averages per-simulation values).
struct MtrmResult {
  std::vector<double> time_fractions;
  std::vector<double> component_fractions;

  /// r_f per time fraction (aligned with time_fractions).
  std::vector<RunningStats> range_for_time;
  /// r0: largest range with zero connected steps.
  RunningStats range_never_connected;
  /// rl_phi per component fraction (aligned with component_fractions).
  std::vector<RunningStats> range_for_component;

  /// Mean largest-component fraction over *disconnected* steps, evaluated at
  /// the iteration's own r_f (aligned with time_fractions) and at its r0 —
  /// the Figures 4-5 series.
  std::vector<RunningStats> lcc_at_range_for_time;
  RunningStats lcc_at_range_never;

  /// Minimum largest-component fraction over all steps at the iteration's
  /// own r_f.
  std::vector<RunningStats> min_lcc_at_range_for_time;

  /// Mean per-step critical radius.
  RunningStats mean_critical_range;
};

/// Solves MTRM by simulation: runs `iterations` independent mobile traces and
/// extracts every requested range exactly from the per-step critical radii
/// and component curves (DESIGN.md §2). Each iteration draws its randomness
/// from an independent substream of `rng`.
template <int D>
MtrmResult solve_mtrm(const MtrmConfig& config, Rng& rng) {
  config.validate();
  const Box<D> region(config.side);

  MtrmResult result;
  result.time_fractions = config.time_fractions;
  result.component_fractions = config.component_fractions;
  result.range_for_time.resize(config.time_fractions.size());
  result.range_for_component.resize(config.component_fractions.size());
  result.lcc_at_range_for_time.resize(config.time_fractions.size());
  result.min_lcc_at_range_for_time.resize(config.time_fractions.size());

  for (std::size_t iteration = 0; iteration < config.iterations; ++iteration) {
    Rng iteration_rng = rng.split();
    const auto model = make_mobility_model<D>(config.mobility, region);
    const MobileConnectivityTrace trace =
        run_mobile_trace<D>(config.node_count, region, config.steps, *model, iteration_rng);

    for (std::size_t i = 0; i < config.time_fractions.size(); ++i) {
      const double r_f = trace.range_for_time_fraction(config.time_fractions[i]);
      result.range_for_time[i].add(r_f);
      result.lcc_at_range_for_time[i].add(trace.mean_largest_fraction_when_disconnected(r_f));
      result.min_lcc_at_range_for_time[i].add(trace.min_largest_fraction_at(r_f));
    }

    const double r0 = trace.largest_never_connected_range();
    result.range_never_connected.add(r0);
    result.lcc_at_range_never.add(trace.mean_largest_fraction_when_disconnected(r0));

    for (std::size_t j = 0; j < config.component_fractions.size(); ++j) {
      result.range_for_component[j].add(
          trace.range_for_mean_component_fraction(config.component_fractions[j]));
    }

    result.mean_critical_range.add(trace.mean_critical_range());
  }
  return result;
}

}  // namespace manet
