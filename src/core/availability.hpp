#pragma once

#include <vector>

#include "core/mtrm.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/outage.hpp"
#include "support/stats.hpp"

namespace manet {

/// Availability view of a mobile network (the paper's Section 1 framing):
/// "assuming that a network is 'up' if all nodes are connected and 'down'
/// otherwise, the percentage of time it is connected is an estimate of
/// network availability"; applications that tolerate partial connectivity
/// instead count the time a sufficiently large component exists.
struct AvailabilityReport {
  double range = 0.0;
  /// Fraction of time the network is fully connected at `range`.
  double full_availability = 0.0;
  /// Fraction of time the largest component holds >= phi * n nodes.
  double degraded_availability = 0.0;
  /// The degraded-mode component fraction used.
  double phi = 0.0;
  /// Mean largest-component fraction over the disconnected intervals.
  double mean_component_when_down = 0.0;
};

/// Evaluates availability of a recorded trace at a given transmitting range.
/// Requires range >= 0 and phi in (0, 1].
AvailabilityReport evaluate_availability(const MobileConnectivityTrace& trace, double range,
                                         double phi);

/// Temporal outage structure of a mobile configuration when operated at its
/// own r_f, aggregated across iterations: the same fraction of downtime can
/// be many one-step glitches or one long blackout, which the paper's
/// fraction-of-time availability estimate cannot distinguish.
struct OutageAggregate {
  /// The time fraction f whose per-iteration range r_f the network ran at.
  double time_fraction = 0.0;
  RunningStats operating_range;
  RunningStats availability;
  RunningStats outage_count;
  RunningStats longest_outage;
  RunningStats mean_outage_length;
  RunningStats longest_uptime;
};

/// Runs `config.iterations` independent traces; within each, solves r_f for
/// every f in config.time_fractions and analyses the outage intervals of
/// that same trace operated at r_f. config.component_fractions is ignored.
template <int D>
std::vector<OutageAggregate> solve_outage_structure(const MtrmConfig& config, Rng& rng) {
  config.validate();
  const Box<D> region(config.side);

  std::vector<OutageAggregate> aggregates(config.time_fractions.size());
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    aggregates[i].time_fraction = config.time_fractions[i];
  }

  for (std::size_t iteration = 0; iteration < config.iterations; ++iteration) {
    Rng iteration_rng = rng.split();
    const auto model = make_mobility_model<D>(config.mobility, region);
    const MobileConnectivityTrace trace =
        run_mobile_trace<D>(config.node_count, region, config.steps, *model, iteration_rng);

    for (OutageAggregate& aggregate : aggregates) {
      const double r_f = trace.range_for_time_fraction(aggregate.time_fraction);
      const OutageStats stats = analyze_outages(trace.critical_radius_timeline(), r_f);
      aggregate.operating_range.add(r_f);
      aggregate.availability.add(stats.availability);
      aggregate.outage_count.add(static_cast<double>(stats.outage_count));
      aggregate.longest_outage.add(static_cast<double>(stats.longest_outage));
      aggregate.mean_outage_length.add(stats.mean_outage_length);
      aggregate.longest_uptime.add(static_cast<double>(stats.longest_uptime));
    }
  }
  return aggregates;
}

}  // namespace manet
