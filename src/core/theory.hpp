#pragma once

namespace manet {

/// Closed-form results of the paper's Sections 2-3 for stationary networks.
namespace theory {

/// Theorem 5's threshold shape for d = 1: the communication graph of n
/// uniform nodes on [0, l] is a.a.s. connected iff r·n ∈ Ω(l log l), i.e.
/// the critical range scales as c · l · ln(l) / n. `c` is the (theory-free)
/// leading constant; the benches fit it empirically. Requires l > 1, n >= 1.
double connectivity_threshold_range_1d(double l, double n, double c = 1.0);

/// Worst-case range for adversarial placements in [0, l]^d: nodes may sit at
/// opposite corners, so r must reach the region diagonal l * sqrt(d)
/// (Section 2). Requires l > 0, 1 <= d <= 3.
double worst_case_range(double l, int d);

/// Best-case range for d = 1: nodes equally spaced at intervals of l/n need
/// only r = l/n (Section 3's closing remark). Requires l > 0, n >= 1.
double best_case_range_1d(double l, double n);

/// The asymptotic regimes of the pair (r, n) against the Theorem 5 threshold
/// in one dimension, mirroring the occupancy domains through C = l / r.
enum class Regime1D {
  kSubcritical,   ///< r n << l : even E[#empty cells] ~ C, heavily disconnected
  kGapRegime,     ///< l << r n << l log l : Theorem 4's regime — NOT a.a.s. connected
  kCritical,      ///< r n = Theta(l log l) : the threshold band
  kSupercritical, ///< r n >> l log l : a.a.s. connected with margin
};

const char* regime_name(Regime1D regime);

/// Heuristic finite-size classification of (l, n, r) into a Regime1D, using
/// a factor-of-`band` window around the defining scales (default band = 2).
/// Requires l > 1, n >= 1, r > 0.
Regime1D classify_regime_1d(double l, double n, double r, double band = 2.0);

/// Theorem 4's positive limit: choosing r = delta * l / e^{f(l)} (with
/// 1 << f(l) << log l) gives lim P(mu = k̄) = delta / (2*pi) > 0 — the
/// epsilon that defeats a.a.s. connectivity in the gap regime. Requires
/// delta in (0, 2*pi].
double theorem4_epsilon(double delta);

/// Energy-oriented corollary used throughout Section 4: transmit power grows
/// with the square (or a higher power, the path-loss exponent alpha) of the
/// range, so the relative energy of operating at range `r_reduced` instead of
/// `r_base` is (r_reduced / r_base)^alpha. Requires positive ranges and
/// alpha >= 1.
double relative_energy(double r_base, double r_reduced, double alpha = 2.0);

}  // namespace theory
}  // namespace manet
