#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mtrm.hpp"
#include "graph/link_model.hpp"
#include "topology/link_critical_range.hpp"

namespace manet {

/// Simulation scale presets. `kPaper` is the paper's exact configuration
/// (50 iterations x 10 000 mobility steps per data point); the smaller
/// presets run the identical code path with fewer samples, which preserves
/// the figures' shapes at a fraction of the runtime (DESIGN.md §2).
enum class Preset { kQuick, kDefault, kPaper };

const char* preset_name(Preset preset);

/// Parses "quick" / "default" / "paper"; throws ConfigError otherwise.
Preset parse_preset(const std::string& text);

/// Sample counts attached to a preset.
struct ScaleParams {
  std::size_t iterations = 0;
  std::size_t steps = 0;
  /// Deployments used to estimate r_stationary.
  std::size_t stationary_trials = 0;
};

ScaleParams scale_for(Preset preset);

/// One data point of an MTRM sweep after seed derivation: the experiment
/// config plus the 64-bit root of its per-iteration substreams. The solved
/// result is a pure function of this pair (iteration i draws from
/// substream(trial_root, i)), which is what lets an executor decompose,
/// cache and replay points without reference to the enclosing sweep.
struct MtrmSweepPoint {
  MtrmConfig config;
  std::uint64_t trial_root = 0;
};

/// Strategy seam for executing a figure sweep's data points. The default
/// (in-process) path lives in experiments::solve_mtrm_sweep; the campaign
/// runner (src/campaign/campaign.hpp) implements this interface to add
/// crash-safe persistence and resume on top of the identical per-point
/// computation. Implementations must return results in point order,
/// bit-identical to the in-process path.
class MtrmSweepExecutor {
 public:
  MtrmSweepExecutor() = default;
  MtrmSweepExecutor(const MtrmSweepExecutor&) = delete;
  MtrmSweepExecutor& operator=(const MtrmSweepExecutor&) = delete;
  virtual ~MtrmSweepExecutor() = default;

  virtual std::vector<MtrmResult> run_points(std::vector<MtrmSweepPoint> points) = 0;
};

/// Experiment definitions mirroring the paper's Section 4 setups.
namespace experiments {

/// Solves one MTRM experiment per config — a figure's data points — through
/// the deterministic parallel engine (support/parallel.hpp). Data point i
/// draws from the order-independent substream of (seed, i) and the results
/// come back in config order, so a sweep is bit-identical at any thread
/// count; the per-point iteration fan-out nests inside the same thread pool.
///
/// When `executor` is non-null the sweep is *registered* with it instead of
/// being solved inline: the same (seed, i) substream roots are derived and
/// handed over as MtrmSweepPoints, so e.g. a campaign-backed run returns
/// bit-identical results to the legacy one-shot path (verified by
/// tests/campaign_test.cpp). Null keeps the legacy path, which remains the
/// default throughout the figure drivers.
std::vector<MtrmResult> solve_mtrm_sweep(const std::vector<MtrmConfig>& configs,
                                         std::uint64_t seed,
                                         MtrmSweepExecutor* executor = nullptr);

/// The system sizes of Figures 2-6: l in {256, 1K, 4K, 16K}.
std::vector<double> figure_l_values();

/// The paper's node count rule for Section 4: n = floor(sqrt(l)).
std::size_t paper_node_count(double l);

/// Figures 2/4/6 configuration: random waypoint with the paper's moderate-
/// mobility defaults over a side-l region.
MtrmConfig waypoint_experiment(double l, Preset preset);

/// Figures 3/5 configuration: drunkard model with the paper's defaults.
MtrmConfig drunkard_experiment(double l, Preset preset);

/// Section 4.3 base configuration: random waypoint, l = 4096, n = 64,
/// default mobility parameters (individual sweeps override one parameter).
MtrmConfig sweep_base_config(Preset preset);

/// Figure 7 sweep: p_stationary from 0 to 1 in steps of 0.2, refined to
/// steps of 0.02 inside [0.4, 0.6] where the paper found the threshold.
std::vector<double> figure7_pstationary_values();

/// Figure 8 sweep: t_pause from 0 to 10 000 mobility steps.
std::vector<double> figure8_tpause_values();

/// Figure 9 sweep: v_max from 0.01*l to 0.5*l, expressed as fractions of l.
std::vector<double> figure9_vmax_fractions();

/// Configuration of the per-link-model energy/savings trade-off sweep: the
/// paper's Section 4 question — how much transmit energy does tolerating a
/// small disconnection probability save? — re-asked under each link model.
struct LinkModelTradeoffConfig {
  std::size_t node_count = 64;  ///< paper's n = sqrt(l) at l = 4096
  double side = 4096.0;         ///< deployment region side l
  std::size_t trials = 100;     ///< independent deployments per model
  double alpha = 2.0;           ///< path-loss exponent of the energy model
  double p_full = 0.99;         ///< "always connected" target probability
  double p_tolerant = 0.90;     ///< relaxed connectivity target
  LinkRangeSearchOptions search;

  /// Throws ConfigError on inconsistent values (empty sweep, probabilities
  /// outside (0, 1], p_tolerant > p_full, alpha < 1, non-positive side).
  void validate() const;
};

/// One row of the trade-off table: the critical scales meeting the full and
/// tolerant connectivity targets under one link model, and the fractional
/// energy saved by relaxing from the former to the latter.
struct LinkModelTradeoffRow {
  std::string model;
  double r_full = 0.0;            ///< scale for P(connected) >= p_full
  double r_tolerant = 0.0;        ///< scale for P(connected) >= p_tolerant
  double mean_critical_range = 0.0;
  double range_reduction = 0.0;   ///< 1 - r_tolerant / r_full
  double energy_savings = 0.0;    ///< EnergyModel(alpha).savings(r_full, r_tolerant)
};

/// Runs the energy/savings trade-off once per family in `families` (2-D
/// deployments): samples the critical-scale distribution with
/// sample_link_model_critical_ranges, reads both targets off its exact
/// order statistics, and prices the relaxation with EnergyModel.
///
/// Family f draws everything from the substream (seed, f), so rows are
/// independent of each other and of sweep order, and the whole table is
/// bit-identical at any thread count (tests/parallel_determinism_test.cpp).
/// Null family pointers are rejected with ConfigError.
std::vector<LinkModelTradeoffRow> link_model_energy_tradeoff(
    const LinkModelTradeoffConfig& config, const std::vector<const LinkModelFamily*>& families,
    std::uint64_t seed);

}  // namespace experiments
}  // namespace manet
