#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/mtrm.hpp"

namespace manet {

/// Simulation scale presets. `kPaper` is the paper's exact configuration
/// (50 iterations x 10 000 mobility steps per data point); the smaller
/// presets run the identical code path with fewer samples, which preserves
/// the figures' shapes at a fraction of the runtime (DESIGN.md §2).
enum class Preset { kQuick, kDefault, kPaper };

const char* preset_name(Preset preset);

/// Parses "quick" / "default" / "paper"; throws ConfigError otherwise.
Preset parse_preset(const std::string& text);

/// Sample counts attached to a preset.
struct ScaleParams {
  std::size_t iterations = 0;
  std::size_t steps = 0;
  /// Deployments used to estimate r_stationary.
  std::size_t stationary_trials = 0;
};

ScaleParams scale_for(Preset preset);

/// One data point of an MTRM sweep after seed derivation: the experiment
/// config plus the 64-bit root of its per-iteration substreams. The solved
/// result is a pure function of this pair (iteration i draws from
/// substream(trial_root, i)), which is what lets an executor decompose,
/// cache and replay points without reference to the enclosing sweep.
struct MtrmSweepPoint {
  MtrmConfig config;
  std::uint64_t trial_root = 0;
};

/// Strategy seam for executing a figure sweep's data points. The default
/// (in-process) path lives in experiments::solve_mtrm_sweep; the campaign
/// runner (src/campaign/campaign.hpp) implements this interface to add
/// crash-safe persistence and resume on top of the identical per-point
/// computation. Implementations must return results in point order,
/// bit-identical to the in-process path.
class MtrmSweepExecutor {
 public:
  MtrmSweepExecutor() = default;
  MtrmSweepExecutor(const MtrmSweepExecutor&) = delete;
  MtrmSweepExecutor& operator=(const MtrmSweepExecutor&) = delete;
  virtual ~MtrmSweepExecutor() = default;

  virtual std::vector<MtrmResult> run_points(std::vector<MtrmSweepPoint> points) = 0;
};

/// Experiment definitions mirroring the paper's Section 4 setups.
namespace experiments {

/// Solves one MTRM experiment per config — a figure's data points — through
/// the deterministic parallel engine (support/parallel.hpp). Data point i
/// draws from the order-independent substream of (seed, i) and the results
/// come back in config order, so a sweep is bit-identical at any thread
/// count; the per-point iteration fan-out nests inside the same thread pool.
///
/// When `executor` is non-null the sweep is *registered* with it instead of
/// being solved inline: the same (seed, i) substream roots are derived and
/// handed over as MtrmSweepPoints, so e.g. a campaign-backed run returns
/// bit-identical results to the legacy one-shot path (verified by
/// tests/campaign_test.cpp). Null keeps the legacy path, which remains the
/// default throughout the figure drivers.
std::vector<MtrmResult> solve_mtrm_sweep(const std::vector<MtrmConfig>& configs,
                                         std::uint64_t seed,
                                         MtrmSweepExecutor* executor = nullptr);

/// The system sizes of Figures 2-6: l in {256, 1K, 4K, 16K}.
std::vector<double> figure_l_values();

/// The paper's node count rule for Section 4: n = floor(sqrt(l)).
std::size_t paper_node_count(double l);

/// Figures 2/4/6 configuration: random waypoint with the paper's moderate-
/// mobility defaults over a side-l region.
MtrmConfig waypoint_experiment(double l, Preset preset);

/// Figures 3/5 configuration: drunkard model with the paper's defaults.
MtrmConfig drunkard_experiment(double l, Preset preset);

/// Section 4.3 base configuration: random waypoint, l = 4096, n = 64,
/// default mobility parameters (individual sweeps override one parameter).
MtrmConfig sweep_base_config(Preset preset);

/// Figure 7 sweep: p_stationary from 0 to 1 in steps of 0.2, refined to
/// steps of 0.02 inside [0.4, 0.6] where the paper found the threshold.
std::vector<double> figure7_pstationary_values();

/// Figure 8 sweep: t_pause from 0 to 10 000 mobility steps.
std::vector<double> figure8_tpause_values();

/// Figure 9 sweep: v_max from 0.01*l to 0.5*l, expressed as fractions of l.
std::vector<double> figure9_vmax_fractions();

}  // namespace experiments
}  // namespace manet
