#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/trace_workspace.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace manet {

/// A faithful facade of the simulator described in Section 4.1 of the paper:
///
///   "The simulator distributes n nodes in [0,l]^d according to the uniform
///    distribution, then generates the communication graph assuming that all
///    nodes have the same transmitting range r. Parameters r, n, l and d are
///    given as input to the simulator, along with the number of iterations
///    to run and the number, #steps, of mobility steps for each iteration.
///    Setting #steps = 1 corresponds to the stationary case. The simulator
///    returns the percentage of connected graphs generated, the average size
///    of the largest connected component (averaged over the runs that yield
///    a disconnected graph) and the minimum size of the largest connected
///    component. All of these parameters are reported with reference both to
///    a single iteration (in this case, the averages are over all the
///    mobility steps) and to all the iterations."
///
/// Unlike the exact-threshold engine (core/mtrm.hpp), this interface takes
/// the transmitting range as an *input*, exactly like the 2002 tool.
struct PaperSimulatorInput {
  double r = 0.0;              ///< common transmitting range
  std::size_t n = 0;           ///< number of nodes
  double l = 0.0;              ///< region side
  std::size_t iterations = 1;  ///< independent runs
  std::size_t steps = 1;       ///< mobility steps per run (1 = stationary)
  MobilityConfig mobility{};   ///< mobility model and parameters

  void validate() const;
};

/// The three per-scope quantities the paper's simulator reports.
struct PaperSimulatorReport {
  /// Percentage (in [0, 1]) of generated graphs that were connected.
  double connected_fraction = 0.0;
  /// Mean largest-component size over the *disconnected* graphs only, in
  /// nodes; equals n when no graph was disconnected (the paper leaves this
  /// case unreported; we use the natural limit).
  double mean_largest_when_disconnected = 0.0;
  /// Minimum largest-component size over all graphs, in nodes.
  double min_largest = 0.0;
};

/// Full output: one report per iteration plus the all-iterations aggregate.
struct PaperSimulatorOutput {
  std::vector<PaperSimulatorReport> per_iteration;
  PaperSimulatorReport overall;
};

/// Runs the Section 4.1 simulator in D dimensions (the paper's runs use
/// D = 2). Iterations fan out through the deterministic parallel engine
/// (support/parallel.hpp) — one draw from `rng` seeds an order-independent
/// substream per iteration and the per-iteration reports aggregate in
/// iteration order, so the output is bit-identical at any thread count.
template <int D>
PaperSimulatorOutput run_paper_simulator(const PaperSimulatorInput& input, Rng& rng) {
  input.validate();
  const Box<D> region(input.l);
  const double n_as_double = static_cast<double>(input.n);
  const std::uint64_t trial_root = rng.next_u64();

  PaperSimulatorOutput output;
  output.per_iteration = parallel_for_trials(
      input.iterations, trial_root, [&input, &region, n_as_double](std::size_t, Rng& iteration_rng) {
        const auto model = make_mobility_model<D>(input.mobility, region);
        // Per-iteration workspace: buffer reuse across the step loop without
        // sharing anything between worker threads. The trace runs the
        // kinetic engine by default (kinetic_enabled()); both engines are
        // bit-identical, so the choice never shows in the report.
        TraceWorkspace<D> workspace;
        const MobileConnectivityTrace trace = run_mobile_trace<D>(
            input.n, region, input.steps, *model, iteration_rng, &workspace);

        PaperSimulatorReport report;
        report.connected_fraction = trace.fraction_of_time_connected(input.r);
        report.mean_largest_when_disconnected =
            trace.mean_largest_fraction_when_disconnected(input.r) * n_as_double;
        report.min_largest = trace.min_largest_fraction_at(input.r) * n_as_double;
        return report;
      });

  double overall_connected = 0.0;
  double overall_disconnected_lcc_sum = 0.0;
  std::size_t overall_disconnected_count = 0;
  double overall_min_largest = n_as_double;
  std::size_t overall_graphs = 0;

  for (const PaperSimulatorReport& report : output.per_iteration) {
    const auto steps = static_cast<double>(input.steps);
    const double disconnected_steps = steps * (1.0 - report.connected_fraction);
    overall_connected += report.connected_fraction * steps;
    if (disconnected_steps > 0.5) {  // at least one disconnected step
      overall_disconnected_lcc_sum +=
          report.mean_largest_when_disconnected * disconnected_steps;
      overall_disconnected_count += static_cast<std::size_t>(disconnected_steps + 0.5);
    }
    overall_min_largest = std::min(overall_min_largest, report.min_largest);
    overall_graphs += input.steps;
  }

  output.overall.connected_fraction =
      overall_connected / static_cast<double>(overall_graphs);
  output.overall.mean_largest_when_disconnected =
      overall_disconnected_count > 0
          ? overall_disconnected_lcc_sum / static_cast<double>(overall_disconnected_count)
          : n_as_double;
  output.overall.min_largest = overall_min_largest;
  return output;
}

}  // namespace manet
