#pragma once

#include <cstddef>

#include "geometry/box.hpp"
#include "sim/stationary_sample.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {

/// Options for the stationary MINIMUM TRANSMITTING RANGE estimator.
struct MtrOptions {
  /// Number of independent deployments sampled.
  std::size_t trials = 200;
  /// The "high probability" level defining r_stationary: the returned range
  /// connects at least this fraction of random deployments (DESIGN.md
  /// convention 1).
  double target_probability = 0.99;

  void validate() const {
    if (trials == 0) throw ConfigError("MtrOptions: trials must be >= 1");
    if (!(target_probability > 0.0 && target_probability <= 1.0)) {
      throw ConfigError("MtrOptions: target_probability must be in (0, 1]");
    }
  }
};

/// Solution of the stationary MTR problem for one (n, l, d) triple.
struct MtrEstimate {
  /// r_stationary: minimum range connecting >= target_probability of
  /// deployments.
  double range = 0.0;
  /// Mean critical radius across the sample (the "typical" deployment).
  double mean_critical_range = 0.0;
  std::size_t trials = 0;
  double target_probability = 0.0;
};

/// Estimates the stationary MTR — "suppose n nodes are placed in [0,l]^d;
/// what is the minimum value of r such that the resulting communication
/// graph is connected?" — in the probabilistic sense of the paper: the
/// minimum r that connects a target fraction of random uniform deployments.
template <int D>
MtrEstimate estimate_mtr(std::size_t n, const Box<D>& box, const MtrOptions& options,
                         Rng& rng) {
  options.validate();
  MANET_EXPECTS(n >= 1);
  const StationaryRangeSample sample =
      sample_stationary_critical_ranges<D>(n, box, options.trials, rng);
  MtrEstimate estimate;
  estimate.range = sample.range_for_probability(options.target_probability);
  estimate.mean_critical_range = sample.mean_critical_range();
  estimate.trials = options.trials;
  estimate.target_probability = options.target_probability;
  return estimate;
}

}  // namespace manet
