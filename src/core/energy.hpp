#pragma once

#include <cstddef>

#include "support/error.hpp"

namespace manet {

/// Radio energy model: "transmitting power is proportional to the square
/// (or, depending on environmental conditions, to a higher power) of the
/// transmitting range" (Section 1). Quantifies the paper's headline
/// energy-vs-communication-quality trade-off.
class EnergyModel {
 public:
  /// `alpha` is the path-loss exponent (2 in free space, up to ~4-6 indoors).
  /// Requires alpha >= 1.
  explicit EnergyModel(double alpha = 2.0) : alpha_(alpha) {
    if (!(alpha >= 1.0)) throw ConfigError("EnergyModel: alpha must be >= 1");
  }

  double alpha() const noexcept { return alpha_; }

  /// Per-node transmit power at range r, in units of power(r = 1).
  /// Throws ConfigError (in every build mode) unless range >= 0.
  double transmit_power(double range) const;

  /// Total network transmit power with n nodes at common range r.
  double network_power(std::size_t node_count, double range) const;

  /// Fractional energy saved by operating at `r_reduced` instead of
  /// `r_base`: 1 - (r_reduced / r_base)^alpha. Throws ConfigError (in every
  /// build mode) unless r_base > 0 and 0 <= r_reduced <= r_base — these are
  /// user-facing quantities (measured ranges), not internal invariants.
  double savings(double r_base, double r_reduced) const;

 private:
  double alpha_;
};

}  // namespace manet
