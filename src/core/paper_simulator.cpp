#include "core/paper_simulator.hpp"

namespace manet {

void PaperSimulatorInput::validate() const {
  if (!(r > 0.0)) throw ConfigError("PaperSimulatorInput: r must be > 0");
  if (n < 1) throw ConfigError("PaperSimulatorInput: n must be >= 1");
  if (!(l > 0.0)) throw ConfigError("PaperSimulatorInput: l must be > 0");
  if (iterations < 1) throw ConfigError("PaperSimulatorInput: iterations must be >= 1");
  if (steps < 1) throw ConfigError("PaperSimulatorInput: steps must be >= 1");
}

}  // namespace manet
