#pragma once

#include <algorithm>
#include <cstddef>

#include "geometry/box.hpp"
#include "sim/stationary_sample.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {

/// The paper's alternate MTR formulation (Section 2): "for a given
/// transmitter technology, how many nodes must be distributed over a given
/// region to ensure connectedness with high probability?" — the primary
/// question in network dimensioning when the radio range r is fixed by
/// hardware.
struct DimensioningOptions {
  /// Deployments sampled per candidate node count.
  std::size_t trials = 200;
  /// Required connection probability.
  std::size_t max_nodes = 1 << 16;  ///< search ceiling (throws if insufficient)
  double target_probability = 0.95;

  void validate() const {
    if (trials == 0) throw ConfigError("DimensioningOptions: trials must be >= 1");
    if (max_nodes < 2) throw ConfigError("DimensioningOptions: max_nodes must be >= 2");
    if (!(target_probability > 0.0 && target_probability <= 1.0)) {
      throw ConfigError("DimensioningOptions: target_probability must be in (0, 1]");
    }
  }
};

struct DimensioningResult {
  std::size_t node_count = 0;          ///< minimal n meeting the target
  double achieved_probability = 0.0;   ///< empirical P(connected) at that n
  std::size_t evaluations = 0;         ///< candidate n values simulated
};

/// Finds the minimum n such that n uniform nodes in `box` with common range
/// `range` form a connected graph with probability >= target, by exponential
/// search followed by bisection over n (P(connected) is nondecreasing in n
/// for fixed r — more nodes only add edges... more precisely, adding a node
/// can only help coverage of gaps; empirically monotone, which the property
/// tests check statistically).
///
/// Requires range > 0. Throws ConfigError when even max_nodes nodes do not
/// reach the target (range too small for the region).
template <int D>
DimensioningResult minimum_node_count(double range, const Box<D>& box,
                                      const DimensioningOptions& options, Rng& rng) {
  options.validate();
  MANET_EXPECTS(range > 0.0);

  DimensioningResult result;
  const auto probability_at = [&](std::size_t n) {
    ++result.evaluations;
    Rng trial_rng = rng.split();
    const auto sample =
        sample_stationary_critical_ranges<D>(n, box, options.trials, trial_rng);
    return sample.probability_connected(range);
  };

  // Exponential search for an upper bracket.
  std::size_t lo = 1;  // n = 1 is vacuously connected only when target <= 1 trial...
  std::size_t hi = 2;
  double hi_probability = probability_at(hi);
  while (hi_probability < options.target_probability) {
    if (hi >= options.max_nodes) {
      throw ConfigError(
          "minimum_node_count: target probability unreachable within max_nodes "
          "(range too small for the region)");
    }
    lo = hi;
    hi = std::min(hi * 2, options.max_nodes);
    hi_probability = probability_at(hi);
  }

  // Bisection: smallest n in (lo, hi] meeting the target.
  double achieved = hi_probability;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const double p = probability_at(mid);
    if (p >= options.target_probability) {
      hi = mid;
      achieved = p;
    } else {
      lo = mid;
    }
  }
  result.node_count = hi;
  result.achieved_probability = achieved;
  return result;
}

}  // namespace manet
