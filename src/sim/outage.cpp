#include "sim/outage.hpp"

#include <algorithm>
#include <vector>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

OutageStats analyze_outages(std::span<const double> critical_radius_timeline, double range) {
  MANET_EXPECTS(!critical_radius_timeline.empty());
  MANET_EXPECTS(range >= 0.0);

  OutageStats stats;
  stats.steps = critical_radius_timeline.size();

  std::size_t current_outage = 0;
  std::size_t current_uptime = 0;
  std::size_t total_outage_steps = 0;
  std::vector<std::size_t> outage_starts;

  for (std::size_t t = 0; t < critical_radius_timeline.size(); ++t) {
    const bool connected = critical_radius_timeline[t] <= range;
    if (connected) {
      ++stats.connected_steps;
      ++current_uptime;
      stats.longest_uptime = std::max(stats.longest_uptime, current_uptime);
      current_outage = 0;
    } else {
      if (current_outage == 0) {
        ++stats.outage_count;
        outage_starts.push_back(t);
      }
      ++current_outage;
      ++total_outage_steps;
      stats.longest_outage = std::max(stats.longest_outage, current_outage);
      current_uptime = 0;
    }
  }

  // Connected and outage steps partition the timeline.
  MANET_ENSURE(stats.connected_steps + total_outage_steps == stats.steps);
  stats.availability =
      static_cast<double>(stats.connected_steps) / static_cast<double>(stats.steps);
  MANET_ENSURE(stats.availability >= 0.0 && stats.availability <= 1.0);
  if (stats.outage_count > 0) {
    stats.mean_outage_length =
        static_cast<double>(total_outage_steps) / static_cast<double>(stats.outage_count);
  }
  if (outage_starts.size() >= 2) {
    stats.mean_steps_between_outages =
        static_cast<double>(outage_starts.back() - outage_starts.front()) /
        static_cast<double>(outage_starts.size() - 1);
  }
  return stats;
}

}  // namespace manet
