#include "sim/threshold_search.hpp"

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

BisectionResult bisect_min_range(const BisectionOptions& options,
                                 const std::function<bool(double)>& satisfied) {
  MANET_EXPECTS(options.lo < options.hi);
  MANET_EXPECTS(options.tolerance > 0.0);
  MANET_EXPECTS(options.max_iterations > 0);

  BisectionResult result;
  double lo = options.lo;
  double hi = options.hi;

  ++result.evaluations;
  if (!satisfied(hi)) {
    throw ContractViolation("bisect_min_range: predicate is false at hi");
  }

  // Invariant: satisfied(hi) == true; satisfied(lo) unknown-or-false.
  for (std::size_t i = 0; i < options.max_iterations && hi - lo > options.tolerance; ++i) {
    const double mid = lo + (hi - lo) / 2.0;
    MANET_INVARIANT(lo <= mid && mid <= hi);  // bracket stays ordered
    ++result.evaluations;
    if (satisfied(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  MANET_ENSURE(options.lo <= hi && hi <= options.hi);
  result.range = hi;
  return result;
}

}  // namespace manet
