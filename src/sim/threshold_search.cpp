#include "sim/threshold_search.hpp"

#include "support/contracts.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace manet {

BisectionResult bisect_min_range(const BisectionOptions& options,
                                 const std::function<bool(double)>& satisfied) {
  MANET_EXPECTS(options.lo < options.hi);
  MANET_EXPECTS(options.tolerance > 0.0);
  MANET_EXPECTS(options.max_iterations > 0);
  static metrics::Counter searches = metrics::counter("threshold.searches");
  static metrics::Counter evaluations = metrics::counter("threshold.evaluations");
  searches.increment();

  BisectionResult result;
  double lo = options.lo;
  double hi = options.hi;

  ++result.evaluations;
  if (!satisfied(hi)) {
    throw ContractViolation("bisect_min_range: predicate is false at hi");
  }

  // Invariant: satisfied(hi) == true; satisfied(lo) unknown-or-false.
  for (std::size_t i = 0; i < options.max_iterations && hi - lo > options.tolerance; ++i) {
    const double mid = lo + (hi - lo) / 2.0;
    MANET_INVARIANT(lo <= mid && mid <= hi);  // bracket stays ordered
    ++result.evaluations;
    if (satisfied(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  MANET_ENSURE(options.lo <= hi && hi <= options.hi);
  evaluations.add(result.evaluations);
  result.range = hi;
  return result;
}

void McPredicateOptions::validate() const {
  MANET_EXPECTS(trials > 0);
  MANET_EXPECTS(target_mean >= 0.0 && target_mean <= 1.0);
}

BisectionResult bisect_min_range_mc(const BisectionOptions& options,
                                    const McPredicateOptions& mc,
                                    const TrialStatistic& statistic) {
  mc.validate();
  static metrics::Counter mc_trials = metrics::counter("threshold.mc_trials");
  // The evaluation index keys each candidate's substream root, so the
  // randomness a candidate sees depends only on *when in the search* it is
  // evaluated — which bisection fixes — never on thread scheduling.
  std::size_t evaluation = 0;
  return bisect_min_range(options, [&](double range) {
    mc_trials.add(mc.trials);
    const std::uint64_t evaluation_root = substream_seed(mc.seed, evaluation++);
    const double sum = parallel_reduce_trials(
        mc.trials, evaluation_root,
        [&statistic, range](std::size_t trial, Rng& trial_rng) {
          return statistic(range, trial, trial_rng);
        },
        0.0, [](double acc, double value) { return acc + value; });
    return sum / static_cast<double>(mc.trials) >= mc.target_mean;
  });
}

}  // namespace manet
