#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "support/rng.hpp"

namespace manet {

/// Places n nodes independently and uniformly at random in the region — the
/// paper's deployment model ("nodes are spread from a moving vehicle"), used
/// for both the stationary analysis and the initial placement of every mobile
/// simulation.
template <int D>
std::vector<Point<D>> uniform_deployment(std::size_t n, const Box<D>& box, Rng& rng) {
  std::vector<Point<D>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back(box.sample(rng));
  return points;
}

/// In-place form: fills `out` (cleared first, capacity reused) with the same
/// draws in the same order as the returning overload — a pooled workspace
/// buffer deploys allocation-free once it has seen its working size.
template <int D>
void uniform_deployment(std::size_t n, const Box<D>& box, Rng& rng,
                        std::vector<Point<D>>& out) {
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(box.sample(rng));
}

}  // namespace manet
