#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "support/rng.hpp"

namespace manet {

/// Places n nodes independently and uniformly at random in the region — the
/// paper's deployment model ("nodes are spread from a moving vehicle"), used
/// for both the stationary analysis and the initial placement of every mobile
/// simulation.
template <int D>
std::vector<Point<D>> uniform_deployment(std::size_t n, const Box<D>& box, Rng& rng) {
  std::vector<Point<D>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back(box.sample(rng));
  return points;
}

}  // namespace manet
