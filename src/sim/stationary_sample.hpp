#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "graph/link_model.hpp"
#include "sim/deployment.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"
#include "topology/link_critical_range.hpp"

namespace manet {

/// Empirical distribution of the critical transmission radius over
/// independent uniform deployments of a *stationary* network. Because a
/// deployment is connected at range r iff r >= its critical radius, this one
/// sample answers every stationary-MTR question:
///   P(connected at r)        = empirical CDF at r,
///   minimum r for P >= p     = p-th order statistic (r_stationary).
class StationaryRangeSample {
 public:
  /// Takes ownership of per-deployment critical radii. Requires a non-empty
  /// sample.
  explicit StationaryRangeSample(std::vector<double> critical_radii);

  std::size_t trials() const noexcept { return radii_.size(); }

  /// Empirical probability that a random deployment is connected at `range`.
  double probability_connected(double range) const;

  /// Smallest range r such that at least ceil(p * trials) deployments are
  /// connected at r (exact order statistic, no interpolation). Requires
  /// p in (0, 1].
  double range_for_probability(double p) const;

  /// Mean critical radius across the sample.
  double mean_critical_range() const;

  /// Sorted per-deployment critical radii (ascending).
  std::span<const double> sorted_radii() const noexcept { return radii_; }

 private:
  std::vector<double> radii_;  // sorted ascending
};

/// Runs `trials` independent uniform deployments of n nodes and returns the
/// critical-radius sample.
///
/// Deployments run through the deterministic parallel engine
/// (support/parallel.hpp): one draw from `rng` seeds an order-independent
/// substream per trial and the radii are collected in trial order, so the
/// sample is bit-identical at any thread count. Each trial's critical radius
/// comes from the grid-accelerated EMST (topology/emst_grid.hpp), which is
/// bit-identical to the dense path.
template <int D>
StationaryRangeSample sample_stationary_critical_ranges(std::size_t n, const Box<D>& box,
                                                        std::size_t trials, Rng& rng) {
  const std::uint64_t trial_root = rng.next_u64();
  std::vector<double> radii =
      parallel_for_trials(trials, trial_root, [n, &box](std::size_t, Rng& trial_rng) {
        const auto points = uniform_deployment(n, box, trial_rng);
        return critical_range<D>(points, box);
      });
  return StationaryRangeSample(std::move(radii));
}

/// Link-model generalization of sample_stationary_critical_ranges: each
/// trial's critical scale comes from link_model_critical_range under
/// `family` instead of the unit-disk EMST bottleneck (to which it reduces
/// bit-for-bit when the family declares exact_bottleneck()).
///
/// Two draws from `rng` seed two independent substream roots: one for the
/// per-trial deployments, one for the per-trial fading seeds — both pure
/// functions of the trial index, so the sample is bit-identical at any
/// thread count (pinned by tests/parallel_determinism_test.cpp). Distinct
/// trials see distinct fading realizations, matching the paper's
/// methodology of redrawing everything random per trial.
template <int D>
StationaryRangeSample sample_link_model_critical_ranges(
    std::size_t n, const Box<D>& box, std::size_t trials, Rng& rng,
    const LinkModelFamily& family, const LinkRangeSearchOptions& options = {}) {
  options.validate();
  const std::uint64_t trial_root = rng.next_u64();
  const std::uint64_t fading_root = rng.next_u64();
  std::vector<double> radii = parallel_for_trials(
      trials, trial_root, [n, &box, &family, &options, fading_root](std::size_t trial, Rng& trial_rng) {
        const auto points = uniform_deployment(n, box, trial_rng);
        return link_model_critical_range<D>(points, box, family,
                                            substream_seed(fading_root, trial), options);
      });
  return StationaryRangeSample(std::move(radii));
}

}  // namespace manet
