#include "sim/mobile_trace.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

MobileConnectivityTrace::MobileConnectivityTrace(
    std::size_t node_count, std::vector<LargestComponentCurve> per_step_curves)
    : n_(node_count), curves_(std::move(per_step_curves)) {
  std::vector<CurveMergeEvent> events;
  build(events);
}

MobileConnectivityTrace::MobileConnectivityTrace(
    std::size_t node_count, std::vector<LargestComponentCurve> per_step_curves,
    std::vector<CurveMergeEvent>& event_scratch)
    : n_(node_count), curves_(std::move(per_step_curves)) {
  build(event_scratch);
}

void MobileConnectivityTrace::build(std::vector<CurveMergeEvent>& events) {
  MANET_EXPECTS(!curves_.empty());
  for (const auto& curve : curves_) MANET_EXPECTS(curve.node_count() == n_);

  timeline_rc_.reserve(curves_.size());
  for (const auto& curve : curves_) timeline_rc_.push_back(curve.critical_range());
  sorted_rc_ = timeline_rc_;
  std::sort(sorted_rc_.begin(), sorted_rc_.end());

  // Merge the per-step breakpoint curves into the mean largest-component
  // curve: each step contributes +delta node at each of its breakpoints.
  events.clear();
  double base_total = 0.0;
  for (const auto& curve : curves_) {
    const auto breakpoints = curve.breakpoints();
    base_total += static_cast<double>(breakpoints.front().size);
    for (std::size_t i = 1; i < breakpoints.size(); ++i) {
      events.push_back({breakpoints[i].range,
                        static_cast<double>(breakpoints[i].size) -
                            static_cast<double>(breakpoints[i - 1].size)});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const CurveMergeEvent& a, const CurveMergeEvent& b) { return a.range < b.range; });

  const double steps = static_cast<double>(curves_.size());
  double total = base_total;
  mean_curve_.push_back({0.0, total / steps});
  for (const CurveMergeEvent& event : events) {
    total += event.delta;
    if (mean_curve_.back().range == event.range) {
      mean_curve_.back().mean_size = total / steps;
    } else {
      mean_curve_.push_back({event.range, total / steps});
    }
  }
}

double MobileConnectivityTrace::fraction_of_time_connected(double range) const {
  const auto it = std::upper_bound(sorted_rc_.begin(), sorted_rc_.end(), range);
  const double f = static_cast<double>(it - sorted_rc_.begin()) /
                   static_cast<double>(sorted_rc_.size());
  MANET_ENSURE(f >= 0.0 && f <= 1.0);
  return f;
}

double MobileConnectivityTrace::range_for_time_fraction(double f) const {
  MANET_EXPECTS(f > 0.0 && f <= 1.0);
  const auto needed =
      static_cast<std::size_t>(std::ceil(f * static_cast<double>(sorted_rc_.size())));
  const std::size_t index = std::max<std::size_t>(needed, 1) - 1;
  return sorted_rc_[std::min(index, sorted_rc_.size() - 1)];
}

double MobileConnectivityTrace::largest_never_connected_range() const {
  return sorted_rc_.front();
}

double MobileConnectivityTrace::range_for_mean_component_fraction(double phi) const {
  MANET_EXPECTS(phi > 0.0 && phi <= 1.0);
  const double target = phi * static_cast<double>(n_);
  const auto it = std::lower_bound(
      mean_curve_.begin(), mean_curve_.end(), target,
      [](const MeanEvent& event, double t) { return event.mean_size < t; });
  MANET_ENSURES(it != mean_curve_.end());  // mean reaches n at the largest breakpoint
  return it->range;
}

double MobileConnectivityTrace::mean_largest_fraction_at(double range) const {
  MANET_EXPECTS(range >= 0.0);
  const auto it = std::upper_bound(
      mean_curve_.begin(), mean_curve_.end(), range,
      [](double r, const MeanEvent& event) { return r < event.range; });
  MANET_ENSURES(it != mean_curve_.begin());
  const double mean_size = std::prev(it)->mean_size;
  if (n_ == 0) return 1.0;
  return mean_size / static_cast<double>(n_);
}

double MobileConnectivityTrace::mean_largest_fraction_when_disconnected(double range) const {
  double sum = 0.0;
  std::size_t disconnected = 0;
  for (const auto& curve : curves_) {
    if (curve.critical_range() > range) {
      sum += curve.largest_fraction_at(range);
      ++disconnected;
    }
  }
  if (disconnected == 0) return 1.0;
  const double mean = sum / static_cast<double>(disconnected);
  MANET_ENSURE(mean >= 0.0 && mean <= 1.0);
  return mean;
}

double MobileConnectivityTrace::min_largest_fraction_at(double range) const {
  double min_fraction = 1.0;
  for (const auto& curve : curves_) {
    min_fraction = std::min(min_fraction, curve.largest_fraction_at(range));
  }
  return min_fraction;
}

double MobileConnectivityTrace::fraction_of_time_component_at_least(double range,
                                                                    double phi) const {
  MANET_EXPECTS(phi > 0.0 && phi <= 1.0);
  std::size_t satisfied = 0;
  for (const auto& curve : curves_) {
    if (curve.largest_fraction_at(range) >= phi) ++satisfied;
  }
  return static_cast<double>(satisfied) / static_cast<double>(curves_.size());
}

double MobileConnectivityTrace::mean_critical_range() const {
  double sum = 0.0;
  for (double rc : sorted_rc_) sum += rc;
  return sum / static_cast<double>(sorted_rc_.size());
}

}  // namespace manet
