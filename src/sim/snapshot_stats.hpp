#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "graph/metrics.hpp"
#include "graph/proximity.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/deployment.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace manet {

/// Per-snapshot structural statistics of a mobile network operated at a
/// fixed range, aggregated over a trace. Where MobileConnectivityTrace
/// answers "what range do I need", this answers "what does the graph look
/// like while I operate": degrees, isolated nodes (the paper's observed
/// disconnection mode), component counts and hop diameters.
struct SnapshotAggregate {
  std::size_t steps = 0;
  double range = 0.0;

  RunningStats mean_degree;
  RunningStats min_degree;
  RunningStats isolated_count;
  RunningStats component_count;
  RunningStats largest_fraction;
  /// Hop diameter of the largest component (per connected-enough snapshot).
  RunningStats largest_component_diameter;
  /// Fraction of snapshots whose graph is connected.
  double connected_fraction = 0.0;
  /// Fraction of disconnected snapshots where removing the isolated nodes
  /// would restore connectivity — quantifies the paper's "disconnection is
  /// caused by only a few isolated nodes".
  double disconnection_by_isolates_fraction = 0.0;
};

/// Runs a mobility trace of `steps` steps and aggregates snapshot statistics
/// at transmitting range `range`. Requires steps >= 1, range > 0, and at
/// least one node.
template <int D>
SnapshotAggregate collect_snapshot_stats(std::size_t node_count, const Box<D>& region,
                                         std::size_t steps, double range,
                                         MobilityModel<D>& model, Rng& rng) {
  MANET_EXPECTS(steps >= 1);
  MANET_EXPECTS(range > 0.0);
  MANET_EXPECTS(node_count >= 1);

  SnapshotAggregate aggregate;
  aggregate.steps = steps;
  aggregate.range = range;

  auto positions = uniform_deployment(node_count, region, rng);
  model.initialize(positions, rng);

  std::size_t connected_snapshots = 0;
  std::size_t disconnected_snapshots = 0;
  std::size_t healed_by_isolate_removal = 0;

  for (std::size_t s = 0; s < steps; ++s) {
    if (s > 0) model.step(positions, rng);

    const AdjacencyGraph graph = build_communication_graph<D>(positions, region, range);
    const DegreeStats degrees = degree_stats(graph);
    const auto sizes = component_sizes(graph);

    aggregate.mean_degree.add(degrees.mean_degree);
    aggregate.min_degree.add(static_cast<double>(degrees.min_degree));
    aggregate.isolated_count.add(static_cast<double>(degrees.isolated_count));
    aggregate.component_count.add(static_cast<double>(sizes.size()));
    aggregate.largest_fraction.add(static_cast<double>(sizes.front()) /
                                   static_cast<double>(node_count));

    // Diameter of the largest component (find one of its members).
    std::size_t member = 0;
    for (std::size_t v = 0; v < node_count; ++v) {
      if (reachable_count(graph, v) == sizes.front()) {
        member = v;
        break;
      }
    }
    aggregate.largest_component_diameter.add(
        static_cast<double>(component_diameter(graph, member)));

    if (sizes.size() <= 1) {
      ++connected_snapshots;
    } else {
      ++disconnected_snapshots;
      // "Healed by removing isolates": every non-largest component is a
      // singleton.
      bool only_singletons = true;
      for (std::size_t c = 1; c < sizes.size(); ++c) {
        if (sizes[c] > 1) {
          only_singletons = false;
          break;
        }
      }
      if (only_singletons) ++healed_by_isolate_removal;
    }
  }

  aggregate.connected_fraction =
      static_cast<double>(connected_snapshots) / static_cast<double>(steps);
  if (disconnected_snapshots > 0) {
    aggregate.disconnection_by_isolates_fraction =
        static_cast<double>(healed_by_isolate_removal) /
        static_cast<double>(disconnected_snapshots);
  }
  return aggregate;
}

}  // namespace manet
