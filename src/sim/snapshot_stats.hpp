#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "graph/link_model.hpp"
#include "graph/metrics.hpp"
#include "graph/proximity.hpp"
#include "graph/scc.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/deployment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace manet {

/// Per-snapshot structural statistics of a mobile network operated at a
/// fixed range, aggregated over a trace. Where MobileConnectivityTrace
/// answers "what range do I need", this answers "what does the graph look
/// like while I operate": degrees, isolated nodes (the paper's observed
/// disconnection mode), component counts and hop diameters.
///
/// Under a directed link model (graph/link_model.hpp) the degree/component
/// statistics describe the *bidirectional* (symmetric-closure) subgraph and
/// `strongly_connected_fraction` censuses the directed graph; for symmetric
/// models it equals `connected_fraction`.
struct SnapshotAggregate {
  std::size_t steps = 0;
  double range = 0.0;

  RunningStats mean_degree;
  RunningStats min_degree;
  RunningStats isolated_count;
  RunningStats component_count;
  RunningStats largest_fraction;
  /// Hop diameter of the largest component (per connected-enough snapshot).
  RunningStats largest_component_diameter;
  /// Fraction of snapshots whose (bidirectional) graph is connected.
  double connected_fraction = 0.0;
  /// Fraction of snapshots whose directed graph is strongly connected.
  double strongly_connected_fraction = 0.0;
  /// Fraction of disconnected snapshots where removing the isolated nodes
  /// would restore connectivity — quantifies the paper's "disconnection is
  /// caused by only a few isolated nodes".
  double disconnection_by_isolates_fraction = 0.0;
};

/// Runs a mobility trace of `steps` steps and aggregates snapshot statistics
/// of the communication graph under `link` (any LinkModel). Throws
/// ConfigError — in every build mode, these are user-facing simulation
/// parameters — unless steps >= 1 and node_count >= 1; empty deployments
/// are rejected rather than producing an all-zero aggregate whose
/// per-snapshot averages would be 0/0.
template <int D>
SnapshotAggregate collect_snapshot_stats(std::size_t node_count, const Box<D>& region,
                                         std::size_t steps, const LinkModel& link,
                                         MobilityModel<D>& model, Rng& rng) {
  if (steps < 1) throw ConfigError("collect_snapshot_stats: steps must be >= 1");
  if (node_count < 1) throw ConfigError("collect_snapshot_stats: node_count must be >= 1");
  link.validate_for(node_count);

  SnapshotAggregate aggregate;
  aggregate.steps = steps;
  aggregate.range = link.max_link_distance();

  auto positions = uniform_deployment(node_count, region, rng);
  model.initialize(positions, rng);

  const bool directed = link.symmetry() == LinkSymmetry::kDirected;
  std::size_t connected_snapshots = 0;
  std::size_t strongly_connected_snapshots = 0;
  std::size_t disconnected_snapshots = 0;
  std::size_t healed_by_isolate_removal = 0;

  for (std::size_t s = 0; s < steps; ++s) {
    if (s > 0) model.step(positions, rng);

    const AdjacencyGraph graph = build_link_communication_graph<D>(positions, region, link);
    const DegreeStats degrees = degree_stats(graph);
    const auto sizes = component_sizes(graph);

    aggregate.mean_degree.add(degrees.mean_degree);
    aggregate.min_degree.add(static_cast<double>(degrees.min_degree));
    aggregate.isolated_count.add(static_cast<double>(degrees.isolated_count));
    aggregate.component_count.add(static_cast<double>(sizes.size()));
    aggregate.largest_fraction.add(static_cast<double>(sizes.front()) /
                                   static_cast<double>(node_count));

    // Diameter of the largest component (find one of its members).
    std::size_t member = 0;
    for (std::size_t v = 0; v < node_count; ++v) {
      if (reachable_count(graph, v) == sizes.front()) {
        member = v;
        break;
      }
    }
    aggregate.largest_component_diameter.add(
        static_cast<double>(component_diameter(graph, member)));

    if (sizes.size() <= 1) {
      ++connected_snapshots;
    } else {
      ++disconnected_snapshots;
      // "Healed by removing isolates": every non-largest component is a
      // singleton.
      bool only_singletons = true;
      for (std::size_t c = 1; c < sizes.size(); ++c) {
        if (sizes[c] > 1) {
          only_singletons = false;
          break;
        }
      }
      if (only_singletons) ++healed_by_isolate_removal;
    }

    if (!directed) {
      // Symmetric: strong and weak connectivity coincide; no extra work.
      if (sizes.size() <= 1) ++strongly_connected_snapshots;
    } else {
      const auto arcs = link_model_arcs<D>(positions, region, link);
      if (strongly_connected_components(node_count, arcs).strongly_connected()) {
        ++strongly_connected_snapshots;
      }
    }
  }

  aggregate.connected_fraction =
      static_cast<double>(connected_snapshots) / static_cast<double>(steps);
  aggregate.strongly_connected_fraction =
      static_cast<double>(strongly_connected_snapshots) / static_cast<double>(steps);
  if (disconnected_snapshots > 0) {
    aggregate.disconnection_by_isolates_fraction =
        static_cast<double>(healed_by_isolate_removal) /
        static_cast<double>(disconnected_snapshots);
  }
  return aggregate;
}

/// Unit-disk convenience overload (the historical signature): statistics at
/// common transmitting range `range`. Throws ConfigError unless steps >= 1,
/// range > 0 (via UnitDiskLinkModel) and node_count >= 1. Bit-identical to
/// the LinkModel overload under UnitDiskLinkModel(range) — it *is* that
/// call.
template <int D>
SnapshotAggregate collect_snapshot_stats(std::size_t node_count, const Box<D>& region,
                                         std::size_t steps, double range,
                                         MobilityModel<D>& model, Rng& rng) {
  const UnitDiskLinkModel link(range);
  return collect_snapshot_stats<D>(node_count, region, steps, link, model, rng);
}

}  // namespace manet
