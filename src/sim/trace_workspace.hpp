#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "graph/union_find.hpp"
#include "topology/critical_range.hpp"
#include "topology/emst_grid.hpp"
#include "topology/emst_kinetic.hpp"

namespace manet {

/// One breakpoint-merge event of the mean largest-component curve: a step
/// gains `delta` nodes in its largest component at `range`. Lives here (not
/// inside MobileConnectivityTrace) so the merge buffer can be pooled in a
/// TraceWorkspace.
struct CurveMergeEvent {
  double range;
  double delta;
};

/// Reusable scratch for one mobile-simulation iteration: everything the
/// 10 000-step loop of run_mobile_trace needs besides the retained per-step
/// breakpoint curves. After the first few steps have grown the buffers
/// (warm-up), a mobility step performs O(1) heap allocations — the exact-size
/// breakpoint copy the trace keeps — instead of a fresh grid, edge list,
/// union-find and curve per step.
///
/// Reuse contract:
///   - reused across calls: the EMST engines' cell grids, candidate-edge and
///     tree buffers, the union-find, the breakpoint scratch, and the
///     mean-curve merge-event buffer (capacity only);
///   - the BATCH engine carries no information between steps: every buffer
///     is cleared/overwritten before being read, so a step's result is a
///     pure function of that step's positions;
///   - the KINETIC engine deliberately carries its candidate set, cell grid
///     and previous positions between the steps of one trace — that reuse is
///     the speedup — but its repair invariant makes every step's output
///     provably bit-identical to a from-scratch batch solve
///     (topology/emst_kinetic.hpp), so results still never depend on which
///     engine ran or on prior traces (start() re-baselines everything);
///   - threading: a workspace is single-threaded state. The parallel MTRM
///     engine gives each iteration its own workspace (core/mtrm.hpp); never
///     share one across concurrent traces.
template <int D>
struct TraceWorkspace {
  EmstEngine<D> emst;
  KineticEmstEngine<D> kinetic;
  UnionFind dsu{0};
  std::vector<LargestComponentCurve::Breakpoint> breakpoints;
  std::vector<CurveMergeEvent> merge_events;
  /// Pooled position buffer run_mobile_trace deploys into and steps the
  /// mobility model through — reusing it across the traces of a sweep saves
  /// one n-point allocation per trace. Overwritten by every deployment, so
  /// no state leaks between traces.
  std::vector<Point<D>> positions;
};

/// Grid-accelerated component curve of `points` (inside `box`) using pooled
/// workspace buffers: the hot-path form of largest_component_curve. The
/// returned curve is bit-identical to the dense builder's.
template <int D>
LargestComponentCurve largest_component_curve(std::span<const Point<D>> points,
                                              const Box<D>& box, TraceWorkspace<D>& workspace) {
  const auto edges = workspace.emst.euclidean(points, box);
  return LargestComponentCurve(points.size(), edges, workspace.dsu, workspace.breakpoints);
}

/// Kinetic-engine form of the step curve: `first_step` starts a new trace
/// (full build + re-baseline), subsequent calls repair incrementally. The
/// returned curve is bit-identical to largest_component_curve's
/// (topology/emst_kinetic.hpp explains why); run_mobile_trace selects
/// between the two per the TraceEngine policy.
template <int D>
LargestComponentCurve kinetic_component_curve(std::span<const Point<D>> points,
                                              const Box<D>& box, TraceWorkspace<D>& workspace,
                                              bool first_step) {
  const auto edges = first_step ? workspace.kinetic.start(points, box)
                                : workspace.kinetic.advance(points);
  return LargestComponentCurve(points.size(), edges, workspace.dsu, workspace.breakpoints);
}

}  // namespace manet
