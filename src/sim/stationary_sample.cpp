#include "sim/stationary_sample.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

StationaryRangeSample::StationaryRangeSample(std::vector<double> critical_radii)
    : radii_(std::move(critical_radii)) {
  MANET_EXPECTS(!radii_.empty());
  std::sort(radii_.begin(), radii_.end());
}

double StationaryRangeSample::probability_connected(double range) const {
  const auto it = std::upper_bound(radii_.begin(), radii_.end(), range);
  const double p =
      static_cast<double>(it - radii_.begin()) / static_cast<double>(radii_.size());
  MANET_ENSURE(p >= 0.0 && p <= 1.0);
  return p;
}

double StationaryRangeSample::range_for_probability(double p) const {
  MANET_EXPECTS(p > 0.0 && p <= 1.0);
  const auto needed = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(radii_.size())));
  const std::size_t index = std::max<std::size_t>(needed, 1) - 1;
  return radii_[std::min(index, radii_.size() - 1)];
}

double StationaryRangeSample::mean_critical_range() const {
  double sum = 0.0;
  for (double r : radii_) sum += r;
  return sum / static_cast<double>(radii_.size());
}

}  // namespace manet
