#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "support/rng.hpp"

namespace manet {

/// Options for bisecting a monotone range predicate.
struct BisectionOptions {
  double lo = 0.0;              ///< known-unsatisfying (or minimal) range
  double hi = 1.0;              ///< known-satisfying range
  double tolerance = 1e-3;      ///< absolute width at which to stop
  std::size_t max_iterations = 64;
};

/// Result of a bisection search.
struct BisectionResult {
  double range = 0.0;           ///< smallest satisfying range found (<= hi)
  std::size_t evaluations = 0;  ///< number of predicate calls
};

/// Finds the smallest range r in [lo, hi] with satisfied(r) == true, for a
/// predicate that is monotone in r (false below some threshold, true above).
///
/// This is the classical simulate-per-candidate-r approach of the paper's
/// original toolchain; the library's exact critical-radius machinery makes it
/// unnecessary on the main paths, but it is kept (a) to solve thresholds for
/// quantities with no closed curve and (b) as an independent cross-check of
/// the exact method (see tests/integration_test.cpp).
///
/// Requires lo < hi, tolerance > 0 and satisfied(hi) == true (checked).
BisectionResult bisect_min_range(const BisectionOptions& options,
                                 const std::function<bool(double)>& satisfied);

/// A Monte-Carlo predicate for bisect_min_range_mc: the per-trial statistic
/// (e.g. 1.0 when this trial's deployment is connected at `range`, else 0.0)
/// evaluated on the trial's own substream.
using TrialStatistic = std::function<double(double range, std::size_t trial, Rng& rng)>;

/// Options of the Monte-Carlo predicate: the candidate range satisfies the
/// search when the mean of `trials` statistics reaches `target_mean`.
struct McPredicateOptions {
  std::size_t trials = 100;
  std::uint64_t seed = Rng::kDefaultSeed;
  double target_mean = 0.9;

  /// Throws ContractViolation when inconsistent (trials == 0).
  void validate() const;
};

/// Bisects over a predicate that is itself a trial average — the paper's
/// simulate-per-candidate-range methodology, batched through the
/// deterministic parallel engine (support/parallel.hpp).
///
/// At the k-th predicate evaluation (candidate range r), the engine derives
/// a per-evaluation root `substream_seed(mc.seed, k)` and evaluates
/// `statistic(r, trial, rng_trial)` over `mc.trials` order-independent
/// substreams in parallel, summing the statistics in trial order. The
/// predicate holds when `sum / trials >= mc.target_mean`. Because the trial
/// fan-out reduces in trial order and the evaluation index (not wall-clock
/// scheduling) keys the substreams, the whole search — every predicate
/// decision and the final range — is bit-identical at any thread count.
///
/// Requirements of bisect_min_range apply; the predicate must hold at
/// options.hi (checked).
BisectionResult bisect_min_range_mc(const BisectionOptions& options,
                                    const McPredicateOptions& mc,
                                    const TrialStatistic& statistic);

}  // namespace manet
