#pragma once

#include <cstddef>
#include <functional>

namespace manet {

/// Options for bisecting a monotone range predicate.
struct BisectionOptions {
  double lo = 0.0;              ///< known-unsatisfying (or minimal) range
  double hi = 1.0;              ///< known-satisfying range
  double tolerance = 1e-3;      ///< absolute width at which to stop
  std::size_t max_iterations = 64;
};

/// Result of a bisection search.
struct BisectionResult {
  double range = 0.0;           ///< smallest satisfying range found (<= hi)
  std::size_t evaluations = 0;  ///< number of predicate calls
};

/// Finds the smallest range r in [lo, hi] with satisfied(r) == true, for a
/// predicate that is monotone in r (false below some threshold, true above).
///
/// This is the classical simulate-per-candidate-r approach of the paper's
/// original toolchain; the library's exact critical-radius machinery makes it
/// unnecessary on the main paths, but it is kept (a) to solve thresholds for
/// quantities with no closed curve and (b) as an independent cross-check of
/// the exact method (see tests/integration_test.cpp).
///
/// Requires lo < hi, tolerance > 0 and satisfied(hi) == true (checked).
BisectionResult bisect_min_range(const BisectionOptions& options,
                                 const std::function<bool(double)>& satisfied);

}  // namespace manet
