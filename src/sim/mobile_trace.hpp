#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <algorithm>

#include "geometry/box.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/deployment.hpp"
#include "sim/trace_workspace.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "topology/critical_range.hpp"

namespace manet {

/// The connectivity record of one mobile-simulation iteration: the largest-
/// component-vs-range curve of every mobility step. Because a step is
/// connected at range r iff r >= its critical radius, this record answers
/// every MTRM question of the paper exactly, with no per-candidate-range
/// re-simulation:
///   - r_f ("connected during fraction f of the time", Figures 2-3, 7-9) is
///     an order statistic of the per-step critical radii;
///   - r0 ("largest range that yields no connected graphs") is their minimum;
///   - rl_phi ("mean largest component = phi * n", Figure 6) comes from the
///     merged mean component curve;
///   - mean/min largest-component sizes at any range (Figures 4-5) are curve
///     lookups.
class MobileConnectivityTrace {
 public:
  /// Takes one LargestComponentCurve per mobility step (>= 1 steps; every
  /// curve must be over `node_count` nodes).
  MobileConnectivityTrace(std::size_t node_count,
                          std::vector<LargestComponentCurve> per_step_curves);

  /// Workspace variant: the mean-curve merge runs in `event_scratch`
  /// (cleared first, capacity reused across traces) instead of a fresh
  /// buffer — the form run_mobile_trace uses.
  MobileConnectivityTrace(std::size_t node_count,
                          std::vector<LargestComponentCurve> per_step_curves,
                          std::vector<CurveMergeEvent>& event_scratch);

  std::size_t node_count() const noexcept { return n_; }
  std::size_t steps() const noexcept { return curves_.size(); }

  /// Fraction of steps whose graph is connected at range r.
  double fraction_of_time_connected(double range) const;

  /// Minimum range such that at least ceil(f * steps) steps are connected
  /// (exact order statistic). f = 1 gives r100, f = 0.9 gives r90, ...
  /// Requires f in (0, 1].
  double range_for_time_fraction(double f) const;

  /// r0: the supremum of ranges at which *no* step is connected — the
  /// minimum per-step critical radius (at exactly this range the first step
  /// connects; see DESIGN.md convention 2).
  double largest_never_connected_range() const;

  /// Minimum range at which the mean (over all steps) largest-component size
  /// reaches phi * n (the paper's rl90/rl75/rl50). Requires phi in (0, 1].
  double range_for_mean_component_fraction(double phi) const;

  /// Mean largest-component fraction at range r over all steps.
  double mean_largest_fraction_at(double range) const;

  /// Mean largest-component fraction at range r over the *disconnected*
  /// steps only — the quantity plotted in Figures 4-5 ("averaged over the
  /// runs that yield a disconnected graph"). Returns 1.0 when every step is
  /// connected at r.
  double mean_largest_fraction_when_disconnected(double range) const;

  /// Minimum largest-component fraction at range r over all steps (the
  /// paper's "minimum size of the largest connected component").
  double min_largest_fraction_at(double range) const;

  /// Fraction of steps whose largest component holds at least phi * n nodes
  /// at range r — the degraded-mode availability of Section 1 ("the
  /// percentage of time for which a sufficiently large number of nodes are
  /// connected"). Requires phi in (0, 1].
  double fraction_of_time_component_at_least(double range, double phi) const;

  /// Mean of the per-step critical radii.
  double mean_critical_range() const;

  /// Ascending per-step critical radii.
  std::span<const double> sorted_critical_radii() const noexcept { return sorted_rc_; }

  /// Per-step critical radii in simulation order (step 0 first) — the
  /// timeline consumed by the outage-interval analysis (sim/outage.hpp).
  std::span<const double> critical_radius_timeline() const noexcept { return timeline_rc_; }

 private:
  /// Shared constructor body; `events` is merge scratch (cleared first).
  void build(std::vector<CurveMergeEvent>& events);

  std::size_t n_;
  std::vector<LargestComponentCurve> curves_;
  std::vector<double> sorted_rc_;
  std::vector<double> timeline_rc_;

  /// Merged mean largest-component curve: after all events with
  /// event.range <= r, the mean largest-component size is event.mean_size.
  struct MeanEvent {
    double range;
    double mean_size;
  };
  std::vector<MeanEvent> mean_curve_;
};

/// Runs one mobile iteration: deploys n nodes uniformly, initializes the
/// mobility model, and records the component curve of the initial placement
/// and of every subsequent step (`steps` curves in total; steps = 1 is the
/// stationary case). Requires steps >= 1.
///
/// The per-step curves are computed through `workspace` by one of two
/// bit-identical engines: the kinetic engine (topology/emst_kinetic.hpp,
/// incremental repair exploiting temporal coherence — the default) or the
/// batch EMST engine (full solve per step). `engine` selects explicitly;
/// TraceEngine::kAuto defers to the process-wide kinetic_enabled() switch
/// (MANET_KINETIC, default on). The choice can never change a result — the
/// kinetic engine's repair invariant makes every step's tree bit-identical
/// to the batch solve — only how fast the trace runs.
///
/// Pass a workspace to reuse its buffers across multiple traces — e.g. a
/// bench sweeping iterations serially — or leave it null for a per-call one.
/// Workspaces are single-threaded: concurrent traces need one each (see
/// core/mtrm.hpp).
template <int D>
MobileConnectivityTrace run_mobile_trace(std::size_t n, const Box<D>& box, std::size_t steps,
                                         MobilityModel<D>& model, Rng& rng,
                                         TraceWorkspace<D>* workspace = nullptr,
                                         TraceEngine engine = TraceEngine::kAuto) {
  MANET_EXPECTS(steps >= 1);
  TraceWorkspace<D> local_workspace;
  TraceWorkspace<D>& ws = workspace != nullptr ? *workspace : local_workspace;
  const bool kinetic = engine == TraceEngine::kKinetic ||
                       (engine == TraceEngine::kAuto && kinetic_enabled());
  uniform_deployment(n, box, rng, ws.positions);
  std::vector<Point<D>>& positions = ws.positions;
  model.initialize(positions, rng);

  std::vector<LargestComponentCurve> curves;
  curves.reserve(steps);
  curves.push_back(kinetic ? kinetic_component_curve<D>(positions, box, ws, /*first_step=*/true)
                           : largest_component_curve<D>(positions, box, ws));
  for (std::size_t s = 1; s < steps; ++s) {
    model.step(positions, rng);
    // Whatever the model did, the trace must stay inside the deployment
    // region: every downstream occupancy / connectivity argument assumes it.
    MANET_INVARIANT(std::all_of(positions.begin(), positions.end(),
                                [&box](const Point<D>& p) { return box.contains(p); }));
    curves.push_back(kinetic
                         ? kinetic_component_curve<D>(positions, box, ws, /*first_step=*/false)
                         : largest_component_curve<D>(positions, box, ws));
  }
  return MobileConnectivityTrace(n, std::move(curves), ws.merge_events);
}

}  // namespace manet
