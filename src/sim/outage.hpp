#pragma once

#include <cstddef>
#include <optional>
#include <span>

namespace manet {

/// Interval-level availability analysis of a mobile trace at a fixed
/// transmitting range. The paper estimates availability as the *fraction* of
/// time the network is connected (Section 1); operators also care about the
/// temporal structure of the downtime — many one-step glitches and one long
/// blackout have the same fraction but very different dependability.
struct OutageStats {
  std::size_t steps = 0;              ///< timeline length
  std::size_t connected_steps = 0;    ///< steps with the graph connected
  std::size_t outage_count = 0;       ///< maximal runs of disconnected steps
  std::size_t longest_outage = 0;     ///< length of the worst run (steps)
  double mean_outage_length = 0.0;    ///< 0 when there is no outage
  std::size_t longest_uptime = 0;     ///< longest run of connected steps
  double availability = 0.0;          ///< connected_steps / steps

  /// Mean time between the starts of consecutive outages, the MTBF
  /// analogue. Empty when fewer than two outages occur: with zero or one
  /// outage there is no between-interval at all. (This used to be 0.0 in
  /// that case, indistinguishable from genuinely back-to-back outages.)
  std::optional<double> mean_steps_between_outages;
};

/// Computes outage statistics from a time-ordered per-step critical-radius
/// sequence (MobileConnectivityTrace::critical_radius_timeline()): step t is
/// connected iff timeline[t] <= range. Requires a non-empty timeline and
/// range >= 0.
OutageStats analyze_outages(std::span<const double> critical_radius_timeline, double range);

}  // namespace manet
