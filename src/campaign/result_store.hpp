#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"

namespace manet::campaign {

/// Schema version of the persisted unit files. Bump on any change to the
/// canonical string or the outcome layout; old entries then read as misses
/// and are recomputed, never misinterpreted.
inline constexpr int kUnitSchemaVersion = 1;

/// Canonical, schema-versioned serialization of everything a unit's result
/// depends on: dimension, the experiment parameters that reach
/// run_mtrm_iteration, the trial-substream root and the iteration block
/// [begin, end). Two units with equal canonical strings compute bit-identical
/// outcome vectors, so the FNV-1a of this string is the unit's content
/// address. Deliberately *excluded*: config.iterations (a unit only depends
/// on its own block, so a quick 4-iteration campaign shares store entries
/// with a 50-iteration paper campaign over the same parameters) and
/// anything about the enclosing sweep (point index, seed) — the root alone
/// pins the streams.
std::string canonical_unit_string(const MtrmSweepPoint& point, std::size_t begin,
                                  std::size_t end);

/// Content address of a unit: FNV-1a 64 of its canonical string.
std::uint64_t unit_key(const std::string& canonical);

/// Content-addressed, crash-safe store of completed campaign units:
/// `<dir>/<fnv1a-hex>.json`, each file written atomically (temp + rename,
/// support/fs.hpp) so a reader never observes a torn entry. The store is
/// shared by all campaigns pointed at the same directory — equal work is
/// fetched, not recomputed, across reruns, resumes and even different
/// sweeps containing the same parameter point.
class ResultStore {
 public:
  explicit ResultStore(std::filesystem::path dir);

  const std::filesystem::path& dir() const noexcept { return dir_; }

  /// File that does / would hold the unit with this canonical string.
  std::filesystem::path path_for(const std::string& canonical) const;

  /// Fetches a completed unit. Returns nullopt on a miss — absent file,
  /// unparsable JSON, schema mismatch, canonical-string mismatch (hash
  /// collision or tampering) or wrong outcome count. A corrupt-but-present
  /// entry also sets `*corrupt` (when given) so callers can report it; it
  /// is still just a miss, so a damaged store heals by recompute-and-rewrite
  /// rather than failing the campaign.
  std::optional<std::vector<MtrmIterationOutcome>> load(const std::string& canonical,
                                                        std::size_t expected_outcomes,
                                                        bool* corrupt = nullptr) const;

  /// Persists a completed unit atomically. Doubles are serialized with the
  /// binary64 round-trip guarantee (support/json.hpp), so load() returns
  /// bit-identical outcomes.
  void save(const std::string& canonical,
            std::span<const MtrmIterationOutcome> outcomes) const;

 private:
  std::filesystem::path dir_;
};

}  // namespace manet::campaign
