#pragma once

#include <string>

#include "campaign/campaign.hpp"
#include "support/cli.hpp"

namespace manet::campaign {

/// Registers the campaign flag family on a CliParser:
///
///   --campaign            run the sweep through the campaign runner
///   --campaign-dir DIR    manifest/result directory
///                         (default results/campaigns/<name>)
///   --store-dir DIR       content-addressed unit store (default results/store)
///   --resume              replay the manifest, continue from the first
///                         missing unit (implies --campaign)
///   --kill-after N        fault injection: hard-exit (code 42) after N
///                         executed units (implies --campaign)
///   --unit-iterations N   iterations per work unit (0 = auto)
///   --checkpoint-every N  manifest flush period in completed units
///   --campaign-quiet      suppress the stderr progress stream
void add_campaign_cli_options(CliParser& cli);

/// True when any of the registered flags asks for campaign mode
/// (--campaign, --resume, --kill-after, or an explicit --campaign-dir).
bool campaign_requested(const CliParser& cli);

/// Materializes CampaignOptions from parsed flags. `campaign_name` supplies
/// the default --campaign-dir (results/campaigns/<name>). Throws ConfigError
/// on inconsistent values (e.g. --checkpoint-every 0).
CampaignOptions campaign_options_from_cli(const CliParser& cli,
                                          const std::string& campaign_name);

}  // namespace manet::campaign
