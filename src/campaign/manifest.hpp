#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace manet::campaign {

/// Schema version of the run manifest. Bump on layout changes; --resume
/// rejects manifests from other versions with a ConfigError rather than
/// guessing.
inline constexpr int kManifestSchemaVersion = 1;

/// One work unit as recorded in the manifest: iterations [begin, end) of
/// sweep point `point`, stored under content address `key`.
struct ManifestUnit {
  std::size_t point = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t key = 0;
};

/// Progress/telemetry block, refreshed by the periodic checkpoint flushes
/// while a campaign runs and finalized on completion. Advisory only: resume
/// correctness never depends on it (the store is the source of truth for
/// which units are done), so a crash between flushes loses no work.
struct ManifestProgress {
  std::size_t units_done = 0;
  std::size_t cache_hits = 0;
  std::size_t executed = 0;
  std::size_t invalid_store_entries = 0;
  double unit_seconds_total = 0.0;
  bool complete = false;
};

/// The run manifest persisted at `<campaign-dir>/manifest.json`. Identifies
/// the campaign (name + content key over every unit's canonical string),
/// lists the unit decomposition, and carries the progress block. --resume
/// replays it: the manifest must parse, carry the expected schema version
/// and match the requested campaign's key, otherwise the run is rejected
/// with a clear ConfigError.
struct Manifest {
  std::string campaign;
  std::uint64_t campaign_key = 0;
  std::size_t points = 0;
  std::vector<ManifestUnit> units;
  ManifestProgress progress;

  /// Renders the manifest as pretty-printed JSON (deterministic given equal
  /// content; see support/json.hpp).
  std::string dump() const;

  /// Parses and validates a manifest document. `origin` (a path, typically)
  /// prefixes every error message. Throws ConfigError on malformed JSON,
  /// wrong kind/schema version or missing fields.
  static Manifest parse(const std::string& text, const std::string& origin);
};

/// Reads and parses `<path>`; ConfigError (naming the path) when absent,
/// unreadable or invalid.
Manifest load_manifest(const std::filesystem::path& path);

/// Atomically writes the manifest (temp + rename, support/fs.hpp).
void save_manifest_atomic(const std::filesystem::path& path, const Manifest& manifest);

}  // namespace manet::campaign
