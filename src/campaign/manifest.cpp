#include "campaign/manifest.hpp"

#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

namespace manet::campaign {

std::string Manifest::dump() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version",
          JsonValue::number(static_cast<std::size_t>(kManifestSchemaVersion)));
  doc.set("kind", JsonValue::string("manet-campaign-manifest"));
  doc.set("campaign", JsonValue::string(campaign));
  doc.set("campaign_key", JsonValue::string(hex_u64(campaign_key)));
  doc.set("points", JsonValue::number(points));

  JsonValue units_json = JsonValue::array();
  for (const ManifestUnit& unit : units) {
    JsonValue unit_json = JsonValue::object();
    unit_json.set("point", JsonValue::number(unit.point));
    unit_json.set("begin", JsonValue::number(unit.begin));
    unit_json.set("end", JsonValue::number(unit.end));
    unit_json.set("key", JsonValue::string(hex_u64(unit.key)));
    units_json.push_back(std::move(unit_json));
  }
  doc.set("units", std::move(units_json));

  JsonValue progress_json = JsonValue::object();
  progress_json.set("units_done", JsonValue::number(progress.units_done));
  progress_json.set("cache_hits", JsonValue::number(progress.cache_hits));
  progress_json.set("executed", JsonValue::number(progress.executed));
  progress_json.set("invalid_store_entries",
                    JsonValue::number(progress.invalid_store_entries));
  progress_json.set("unit_seconds_total", JsonValue::number(progress.unit_seconds_total));
  progress_json.set("complete", JsonValue::boolean(progress.complete));
  doc.set("progress", std::move(progress_json));
  return doc.dump(2);
}

Manifest Manifest::parse(const std::string& text, const std::string& origin) {
  try {
    const JsonValue doc = JsonValue::parse(text);
    if (doc.at("kind").as_string() != "manet-campaign-manifest") {
      throw ConfigError("not a campaign manifest (kind mismatch)");
    }
    const std::uint64_t version = doc.at("schema_version").as_uint();
    if (version != static_cast<std::uint64_t>(kManifestSchemaVersion)) {
      throw ConfigError("unsupported manifest schema_version " + std::to_string(version) +
                        " (this build reads v" + std::to_string(kManifestSchemaVersion) +
                        ")");
    }

    Manifest manifest;
    manifest.campaign = doc.at("campaign").as_string();
    manifest.campaign_key = parse_hex_u64(doc.at("campaign_key").as_string());
    manifest.points = doc.at("points").as_uint();
    for (const JsonValue& unit_json : doc.at("units").items()) {
      ManifestUnit unit;
      unit.point = unit_json.at("point").as_uint();
      unit.begin = unit_json.at("begin").as_uint();
      unit.end = unit_json.at("end").as_uint();
      unit.key = parse_hex_u64(unit_json.at("key").as_string());
      if (unit.begin >= unit.end) throw ConfigError("unit with empty iteration block");
      manifest.units.push_back(unit);
    }
    const JsonValue& progress_json = doc.at("progress");
    manifest.progress.units_done = progress_json.at("units_done").as_uint();
    manifest.progress.cache_hits = progress_json.at("cache_hits").as_uint();
    manifest.progress.executed = progress_json.at("executed").as_uint();
    manifest.progress.invalid_store_entries =
        progress_json.at("invalid_store_entries").as_uint();
    manifest.progress.unit_seconds_total =
        progress_json.at("unit_seconds_total").as_double();
    manifest.progress.complete = progress_json.at("complete").as_bool();
    return manifest;
  } catch (const ConfigError& error) {
    throw ConfigError(origin + ": invalid campaign manifest: " + error.what());
  }
}

Manifest load_manifest(const std::filesystem::path& path) {
  return Manifest::parse(read_text_file(path), path.string());
}

void save_manifest_atomic(const std::filesystem::path& path, const Manifest& manifest) {
  write_text_file_atomic(path, manifest.dump());
}

}  // namespace manet::campaign
