#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <utility>

#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"
#include "support/bench_json.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace manet::campaign {

namespace {

std::mutex g_kill_hook_mutex;
detail::KillHook g_kill_hook;  // NOLINT(cert-err58-cpp)

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Mobility parameters as a JSON object mirroring canonical_unit_string's
/// per-kind field set — the sweep axis the manetd phase queries interpolate
/// over. Insertion order is fixed, so the rendering is deterministic.
JsonValue mobility_params_json(const MobilityConfig& mobility) {
  JsonValue params = JsonValue::object();
  switch (mobility.kind) {
    case MobilityKind::kStationary:
      break;
    case MobilityKind::kRandomWaypoint:
      params.set("v_min", JsonValue::number(mobility.waypoint.v_min));
      params.set("v_max", JsonValue::number(mobility.waypoint.v_max));
      params.set("pause_steps", JsonValue::number(mobility.waypoint.pause_steps));
      params.set("p_stationary", JsonValue::number(mobility.waypoint.p_stationary));
      break;
    case MobilityKind::kDrunkard:
      params.set("p_stationary", JsonValue::number(mobility.drunkard.p_stationary));
      params.set("p_pause", JsonValue::number(mobility.drunkard.p_pause));
      params.set("step_radius", JsonValue::number(mobility.drunkard.step_radius));
      break;
    case MobilityKind::kRandomDirection:
      params.set("v_min", JsonValue::number(mobility.direction.v_min));
      params.set("v_max", JsonValue::number(mobility.direction.v_max));
      params.set("p_turn", JsonValue::number(mobility.direction.p_turn));
      params.set("p_stationary", JsonValue::number(mobility.direction.p_stationary));
      break;
  }
  return params;
}

/// Campaign accounting, exported to <campaign-dir>/metrics.json. Replaces the
/// old per-unit stderr telemetry as the machine-readable progress record; the
/// counters are process totals across every run_points call.
struct CampaignMetrics {
  metrics::Counter units_planned = metrics::counter("campaign.units_planned");
  metrics::Counter units_cached = metrics::counter("campaign.units_cached");
  metrics::Counter units_computed = metrics::counter("campaign.units_computed");
  metrics::Counter units_recomputed_after_corruption =
      metrics::counter("campaign.units_recomputed_after_corruption");
  metrics::Counter checkpoint_flushes = metrics::counter("campaign.checkpoint_flushes");
  metrics::Timer unit_seconds = metrics::timer("campaign.unit_seconds");
};

CampaignMetrics& campaign_metrics() {
  static CampaignMetrics bundle;
  return bundle;
}

}  // namespace

namespace detail {

void set_kill_hook(KillHook hook) {
  const std::lock_guard<std::mutex> lock(g_kill_hook_mutex);
  g_kill_hook = std::move(hook);
}

void trigger_kill() {
  KillHook hook;
  {
    const std::lock_guard<std::mutex> lock(g_kill_hook_mutex);
    hook = g_kill_hook;
  }
  if (hook) {
    hook();
    return;
  }
  std::_Exit(kKillExitCode);
}

}  // namespace detail

std::vector<UnitWork> decompose_sweep(const std::vector<MtrmSweepPoint>& points,
                                      std::size_t unit_iterations) {
  std::vector<UnitWork> units;
  for (std::size_t point = 0; point < points.size(); ++point) {
    const std::size_t iterations = points[point].config.iterations;
    std::size_t block = unit_iterations;
    if (block == 0) block = std::max<std::size_t>(1, iterations / 8);
    block = std::min(block, iterations);
    for (std::size_t begin = 0; begin < iterations; begin += block) {
      const std::size_t end = std::min(begin + block, iterations);
      UnitWork unit;
      unit.point = point;
      unit.begin = begin;
      unit.end = end;
      unit.canonical = canonical_unit_string(points[point], begin, end);
      unit.key = unit_key(unit.canonical);
      units.push_back(std::move(unit));
    }
  }
  return units;
}

std::uint64_t campaign_key_for(const std::string& name, const std::vector<UnitWork>& units) {
  std::uint64_t campaign_key = fnv1a(name);
  campaign_key = fnv1a("\n", campaign_key);
  for (const UnitWork& unit : units) {
    campaign_key = fnv1a(unit.canonical, campaign_key);
    campaign_key = fnv1a("\n", campaign_key);
  }
  return campaign_key;
}

void validate_resume_manifest(const std::filesystem::path& manifest_path,
                              std::uint64_t campaign_key) {
  std::error_code ec;
  if (!std::filesystem::exists(manifest_path, ec) || ec) {
    throw ConfigError("campaign --resume: no manifest at " + manifest_path.string() +
                      " (run without --resume to start this campaign)");
  }
  const Manifest previous = load_manifest(manifest_path);
  if (previous.campaign_key != campaign_key) {
    throw ConfigError("campaign --resume: manifest at " + manifest_path.string() +
                      " describes campaign '" + previous.campaign + "' (key " +
                      hex_u64(previous.campaign_key) + "), not the requested sweep (key " +
                      hex_u64(campaign_key) + "); use a fresh --campaign-dir");
  }
}

std::vector<MtrmIterationOutcome> execute_unit(
    const MtrmSweepPoint& point, const UnitWork& unit,
    const std::function<void()>& on_iteration) {
  std::vector<MtrmIterationOutcome> outcomes;
  outcomes.reserve(unit.end - unit.begin);
  for (std::size_t iteration = unit.begin; iteration < unit.end; ++iteration) {
    Rng iteration_rng = substream(point.trial_root, iteration);
    outcomes.push_back(run_mtrm_iteration<2>(point.config, iteration_rng));
    if (on_iteration) on_iteration();
  }
  return outcomes;
}

std::vector<MtrmResult> merge_unit_outcomes(
    const std::vector<MtrmSweepPoint>& points, const std::vector<UnitWork>& units,
    std::vector<std::vector<MtrmIterationOutcome>>&& unit_outcomes) {
  std::vector<std::vector<MtrmIterationOutcome>> per_point(points.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    auto& destination = per_point[units[i].point];
    for (MtrmIterationOutcome& outcome : unit_outcomes[i]) {
      destination.push_back(std::move(outcome));
    }
  }
  std::vector<MtrmResult> results;
  results.reserve(points.size());
  for (std::size_t point = 0; point < points.size(); ++point) {
    results.push_back(fold_mtrm_outcomes(points[point].config, per_point[point]));
  }
  return results;
}

void write_campaign_result(const std::filesystem::path& dir, const std::string& name,
                           std::uint64_t campaign_key,
                           const std::vector<MtrmSweepPoint>& points,
                           const std::vector<UnitWork>& units,
                           const std::vector<MtrmResult>& results) {
  BenchReport result_report("campaign_" + name);
  result_report.add_param("campaign", JsonValue::string(name));
  result_report.add_param("campaign_key", JsonValue::string(hex_u64(campaign_key)));
  result_report.add_param("points", JsonValue::number(points.size()));
  result_report.add_param("units", JsonValue::number(units.size()));
  for (std::size_t point = 0; point < points.size(); ++point) {
    const MtrmConfig& config = points[point].config;
    JsonValue sample = JsonValue::object();
    sample.set("point", JsonValue::number(point));
    sample.set("node_count", JsonValue::number(config.node_count));
    sample.set("side", JsonValue::number(config.side));
    sample.set("steps", JsonValue::number(config.steps));
    sample.set("iterations", JsonValue::number(config.iterations));
    sample.set("mobility", JsonValue::string(mobility_kind_name(config.mobility.kind)));
    sample.set("mobility_params", mobility_params_json(config.mobility));
    JsonValue time_fractions = JsonValue::array();
    for (const double f : config.time_fractions) {
      time_fractions.push_back(JsonValue::number(f));
    }
    sample.set("time_fractions", std::move(time_fractions));
    JsonValue component_fractions = JsonValue::array();
    for (const double phi : config.component_fractions) {
      component_fractions.push_back(JsonValue::number(phi));
    }
    sample.set("component_fractions", std::move(component_fractions));
    sample.set("trial_root", JsonValue::string(hex_u64(points[point].trial_root)));
    const std::vector<double> flattened = flatten_mtrm_result(results[point]);
    sample.set("result_checksum", JsonValue::string(hex_u64(fnv1a_bits(flattened))));
    JsonValue values = JsonValue::array();
    for (const double value : flattened) values.push_back(JsonValue::number(value));
    sample.set("flattened_result", std::move(values));
    result_report.add_sample(std::move(sample));
  }
  write_text_file_atomic(dir / "result.json", result_report.dump());
}

CampaignRunner::CampaignRunner(std::string name, CampaignOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (name_.empty()) throw ConfigError("campaign: name must not be empty");
  if (options_.dir.empty()) {
    throw ConfigError("campaign: a campaign directory is required (--campaign-dir)");
  }
  if (options_.checkpoint_every == 0) {
    throw ConfigError("campaign: --checkpoint-every must be >= 1");
  }
}

std::vector<MtrmResult> CampaignRunner::run_points(std::vector<MtrmSweepPoint> points) {
  report_ = CampaignReport{};
  for (const MtrmSweepPoint& point : points) point.config.validate();

  // Decompose each point's iteration budget into blocks. The unit list is a
  // pure function of (points, options.unit_iterations): the same sweep
  // always decomposes identically, which is what lets a resumed process
  // recognize its predecessor's work.
  std::vector<UnitWork> units = decompose_sweep(points, options_.unit_iterations);
  report_.units_total = units.size();
  campaign_metrics().units_planned.add(units.size());

  const std::uint64_t campaign_key = campaign_key_for(name_, units);

  const std::filesystem::path dir(options_.dir);
  const std::filesystem::path manifest_path = dir / "manifest.json";

  if (options_.resume) validate_resume_manifest(manifest_path, campaign_key);

  Manifest manifest;
  manifest.campaign = name_;
  manifest.campaign_key = campaign_key;
  manifest.points = points.size();
  manifest.units.reserve(units.size());
  for (const UnitWork& unit : units) {
    manifest.units.push_back(ManifestUnit{unit.point, unit.begin, unit.end, unit.key});
  }

  const ResultStore store{std::filesystem::path(options_.store_dir)};

  // Replay: probe the store for every unit. Completed units load back
  // bit-identically; the pending list (in unit order) starts at the first
  // missing unit.
  std::vector<std::vector<MtrmIterationOutcome>> unit_outcomes(units.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < units.size(); ++i) {
    bool corrupt = false;
    auto cached = store.load(units[i].canonical, units[i].end - units[i].begin, &corrupt);
    if (corrupt) ++report_.invalid_store_entries;
    if (cached.has_value()) {
      unit_outcomes[i] = std::move(*cached);
      ++report_.cache_hits;
    } else {
      if (corrupt) campaign_metrics().units_recomputed_after_corruption.increment();
      pending.push_back(i);
    }
  }
  campaign_metrics().units_cached.add(report_.cache_hits);

  manifest.progress.units_done = report_.cache_hits;
  manifest.progress.cache_hits = report_.cache_hits;
  manifest.progress.invalid_store_entries = report_.invalid_store_entries;
  save_manifest_atomic(manifest_path, manifest);

  if (!options_.quiet) {
    std::fprintf(stderr,
                 "[campaign %s] %zu points, %zu units (%zu cached, %zu to run) -> %s\n",
                 name_.c_str(), points.size(), units.size(), report_.cache_hits,
                 pending.size(), options_.dir.c_str());
  }

  // Execute the missing units on the deterministic parallel engine. Each
  // unit is persisted (atomically) before it counts as done, so a crash at
  // any instant loses at most the in-flight units.
  if (!pending.empty()) {
    std::mutex progress_mutex;
    std::size_t executed_done = 0;
    double exec_seconds_total = 0.0;
    std::atomic<std::size_t> executed_for_kill{0};

    auto executed = parallel_for_trials(
        pending.size(), /*seed=*/0,
        [&](std::size_t job, Rng& /*unused*/) {
          const UnitWork& unit = units[pending[job]];
          const MtrmSweepPoint& point = points[unit.point];

          const double start = now_seconds();
          std::vector<MtrmIterationOutcome> outcomes;
          {
            const metrics::Timer::Scope unit_timer =
                campaign_metrics().unit_seconds.measure();
            outcomes = execute_unit(point, unit);
          }
          store.save(unit.canonical, outcomes);
          campaign_metrics().units_computed.increment();
          const double seconds = now_seconds() - start;

          {
            const std::lock_guard<std::mutex> lock(progress_mutex);
            ++executed_done;
            exec_seconds_total += seconds;
            // Progress reporting rides the checkpoint cadence (the old code
            // printed a line per unit — at campaign scale that is thousands
            // of stderr lines nobody can read; the per-unit record now lives
            // in the metrics: campaign.units_computed / campaign.unit_seconds).
            if (executed_done % options_.checkpoint_every == 0) {
              manifest.progress.units_done = report_.cache_hits + executed_done;
              manifest.progress.executed = executed_done;
              manifest.progress.unit_seconds_total = exec_seconds_total;
              save_manifest_atomic(manifest_path, manifest);
              campaign_metrics().checkpoint_flushes.increment();
              if (!options_.quiet) {
                const double mean =
                    exec_seconds_total / static_cast<double>(executed_done);
                const double eta =
                    mean * static_cast<double>(pending.size() - executed_done);
                std::fprintf(stderr,
                             "[campaign %s] checkpoint: %zu/%zu units done "
                             "(%zu cached, mean %.3fs/unit, eta %.1fs)\n",
                             name_.c_str(), report_.cache_hits + executed_done,
                             units.size(), report_.cache_hits, mean, eta);
              }
            }
          }

          if (options_.kill_after != 0 &&
              executed_for_kill.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                  options_.kill_after) {
            if (!options_.quiet) {
              std::fprintf(stderr, "[campaign %s] --kill-after %zu: simulating a crash\n",
                           name_.c_str(), options_.kill_after);
            }
            detail::trigger_kill();
          }
          return outcomes;
        });

    for (std::size_t job = 0; job < pending.size(); ++job) {
      unit_outcomes[pending[job]] = std::move(executed[job]);
    }
    report_.executed = pending.size();
    report_.unit_seconds_total = exec_seconds_total;
  }

  // Merge: concatenate each point's outcomes in iteration order (the unit
  // list is point-major, block-ascending) and fold through the same
  // order-sensitive fold as solve_mtrm — the step that makes the campaign
  // result bit-identical to the in-process sweep.
  std::vector<MtrmResult> results =
      merge_unit_outcomes(points, units, std::move(unit_outcomes));

  manifest.progress.units_done = units.size();
  manifest.progress.cache_hits = report_.cache_hits;
  manifest.progress.executed = report_.executed;
  manifest.progress.invalid_store_entries = report_.invalid_store_entries;
  manifest.progress.unit_seconds_total = report_.unit_seconds_total;
  manifest.progress.complete = true;
  save_manifest_atomic(manifest_path, manifest);

  // Final results artifact — shared with the distributed drain path, which
  // must reproduce the exact same bytes (the CI smoke `cmp`s the two).
  write_campaign_result(dir, name_, campaign_key, points, units, results);

  // Run metrics are a *separate* artifact on purpose: result.json must stay
  // byte-identical across interrupted/resumed runs of the same sweep, while
  // the metrics legitimately differ (a resumed run reports cache hits where
  // the original reported compute). metrics.json carries the accounting the
  // result file must not: cache behavior, per-unit timing, engine counters.
  BenchReport metrics_report("campaign_" + name_ + "_metrics");
  metrics_report.add_param("campaign", JsonValue::string(name_));
  metrics_report.add_param("units_total", JsonValue::number(report_.units_total));
  metrics_report.add_param("cache_hits", JsonValue::number(report_.cache_hits));
  metrics_report.add_param("executed", JsonValue::number(report_.executed));
  metrics_report.add_param("invalid_store_entries",
                           JsonValue::number(report_.invalid_store_entries));
  metrics_report.add_extra("metrics", metrics::collect_json());
  write_text_file_atomic(dir / "metrics.json", metrics_report.dump());

  if (!options_.quiet) {
    std::fprintf(stderr,
                 "[campaign %s] complete: %zu units (%zu cached, %zu executed, %.3fs "
                 "unit time) -> %s\n",
                 name_.c_str(), report_.units_total, report_.cache_hits, report_.executed,
                 report_.unit_seconds_total, (dir / "result.json").string().c_str());
  }
  return results;
}

}  // namespace manet::campaign
