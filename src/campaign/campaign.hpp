#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"

namespace manet::campaign {

/// Exit code of the --kill-after fault-injection hook: the process dies via
/// std::_Exit with this code, skipping every destructor and buffer flush —
/// the closest portable stand-in for a hard crash. The CI smoke job and the
/// campaign tests assert on it.
inline constexpr int kKillExitCode = 42;

/// Knobs of a campaign run (CLI mapping in campaign/cli.hpp).
struct CampaignOptions {
  /// Campaign directory: manifest.json + result.json live here. Required.
  std::string dir;
  /// Content-addressed unit store, shared across campaigns/runs by default.
  std::string store_dir = "results/store";
  /// Replay an existing manifest: it must be present and describe this very
  /// campaign, else the run is rejected with a ConfigError. Completed units
  /// are served from the store bit-identically; execution continues from the
  /// first missing unit.
  bool resume = false;
  /// Fault injection: hard-kill the process (std::_Exit(kKillExitCode))
  /// after this many units were *executed* (cache hits don't count).
  /// 0 disables.
  std::size_t kill_after = 0;
  /// Iterations per work unit; 0 = auto (about an eighth of each point's
  /// iteration budget, at least 1 — small enough that an interrupt loses
  /// little, large enough that store/manifest traffic stays negligible).
  std::size_t unit_iterations = 0;
  /// Manifest progress flush period, in completed units. Advisory telemetry
  /// only — resume correctness never depends on flush timing.
  std::size_t checkpoint_every = 8;
  /// Suppresses the stderr progress stream (tests).
  bool quiet = false;
};

/// Outcome accounting of the last run_points() call, also persisted in the
/// manifest's progress block.
struct CampaignReport {
  std::size_t units_total = 0;
  std::size_t cache_hits = 0;
  std::size_t executed = 0;
  /// Present-but-unusable store entries (corrupt / colliding); recomputed.
  std::size_t invalid_store_entries = 0;
  double unit_seconds_total = 0.0;
};

/// One decomposed work unit: iterations [begin, end) of sweep point `point`.
/// The `canonical` string is the unit's full identity (result_store.hpp) and
/// `key` its content address — shared by the in-process runner, the
/// distributed drain workers (src/service/drain.hpp) and `manet-store fsck`.
struct UnitWork {
  std::size_t point = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string canonical;
  std::uint64_t key = 0;
};

/// Decomposes each point's iteration budget into [begin, end) blocks of
/// `unit_iterations` (0 = auto: about an eighth of the point's budget, at
/// least 1). A pure function of its arguments: every process that sees the
/// same sweep derives the same unit list in the same order, which is the
/// ground truth that lets independent drain workers and resumed runs agree
/// on what the work *is* without coordinating.
std::vector<UnitWork> decompose_sweep(const std::vector<MtrmSweepPoint>& points,
                                      std::size_t unit_iterations);

/// Campaign identity: FNV-1a over the name plus every unit's canonical
/// string. Two invocations with equal sweeps agree on this key; anything
/// else (other figure, other seed, other preset/overrides) does not.
std::uint64_t campaign_key_for(const std::string& name, const std::vector<UnitWork>& units);

/// Enforces the --resume contract: the manifest must exist and describe the
/// campaign identified by `campaign_key`, else throws ConfigError.
void validate_resume_manifest(const std::filesystem::path& manifest_path,
                              std::uint64_t campaign_key);

/// Computes one unit: iterations [unit.begin, unit.end) of `point`, each
/// seeded by its order-independent substream. `on_iteration` (when set) runs
/// after every finished iteration — the distributed drain worker refreshes
/// its lease heartbeat there so a unit can never outlive its lease TTL
/// silently. The outcome vector is bit-identical regardless of who executes
/// the unit, which is the safety anchor of the whole lease protocol.
std::vector<MtrmIterationOutcome> execute_unit(
    const MtrmSweepPoint& point, const UnitWork& unit,
    const std::function<void()>& on_iteration = {});

/// Merges per-unit outcome vectors (indexed like `units`) into one result
/// per point: concatenates each point's outcomes in iteration order (the
/// unit list is point-major, block-ascending) and folds through
/// fold_mtrm_outcomes — the order-sensitive step every aggregation path must
/// share to stay bit-identical. Consumes `unit_outcomes`.
std::vector<MtrmResult> merge_unit_outcomes(
    const std::vector<MtrmSweepPoint>& points, const std::vector<UnitWork>& units,
    std::vector<std::vector<MtrmIterationOutcome>>&& unit_outcomes);

/// Writes `<dir>/result.json` (support/bench_json schema): one sample per
/// sweep point with the flattened result, its FNV-1a checksum, and the
/// parameter fields (node_count, side, mobility_params, time/component
/// fractions) the manetd query engine interpolates over. Deliberately free
/// of timestamps, timings and cache accounting: every path that completes
/// the same campaign — single process, resumed, or N distributed workers —
/// must produce this file byte-for-byte.
void write_campaign_result(const std::filesystem::path& dir, const std::string& name,
                           std::uint64_t campaign_key,
                           const std::vector<MtrmSweepPoint>& points,
                           const std::vector<UnitWork>& units,
                           const std::vector<MtrmResult>& results);

/// Crash-safe, resumable executor for Monte-Carlo figure sweeps.
///
/// A sweep is decomposed into deterministic work units — (parameter point,
/// iteration block) pairs keyed by the order-independent substream seeding
/// of support/rng.hpp — so the unit set, each unit's result, and the final
/// fold are all independent of execution order, thread count and of which
/// process computed what. Units execute on the deterministic parallel
/// engine; each completed unit is persisted atomically to the
/// content-addressed ResultStore before it counts as done. The merged sweep
/// result is therefore bit-identical to experiments::solve_mtrm_sweep's
/// in-process path, whether the campaign ran uninterrupted, was killed and
/// resumed, or was served entirely from cache (tests/campaign_test.cpp pins
/// all three, including the PR-2 golden MTRM checksums).
///
/// On completion the runner writes `<dir>/result.json` (support/bench_json
/// schema) with one sample per sweep point, including a per-point FNV-1a
/// checksum of the flattened result — the file two runs of the same
/// campaign must match byte-for-byte.
class CampaignRunner final : public MtrmSweepExecutor {
 public:
  /// `name` identifies the campaign in the manifest, telemetry and
  /// result.json ("fig7_pstationary"). Throws ConfigError on inconsistent
  /// options (empty dir, zero checkpoint period).
  CampaignRunner(std::string name, CampaignOptions options);

  /// Executes the sweep as described above and returns the merged results
  /// in point order. Throws ConfigError on resume-validation failures.
  std::vector<MtrmResult> run_points(std::vector<MtrmSweepPoint> points) override;

  const std::string& name() const noexcept { return name_; }
  const CampaignOptions& options() const noexcept { return options_; }
  /// Accounting of the last run_points() call.
  const CampaignReport& report() const noexcept { return report_; }

 private:
  std::string name_;
  CampaignOptions options_;
  CampaignReport report_;
};

namespace detail {

/// Test seam for the --kill-after fault injection: when a hook is set it is
/// invoked instead of std::_Exit(kKillExitCode), letting tests simulate the
/// kill with an exception and then exercise resume in-process. An empty
/// function restores the default hard-exit behavior.
using KillHook = std::function<void()>;
void set_kill_hook(KillHook hook);

/// Fault injection: by default die the way a crash would — std::_Exit, no
/// destructors, no stream flushes. Tests install a throwing hook instead.
/// Shared by CampaignRunner and the distributed drain's --kill-after.
void trigger_kill();

}  // namespace detail
}  // namespace manet::campaign
