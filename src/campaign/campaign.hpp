#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"

namespace manet::campaign {

/// Exit code of the --kill-after fault-injection hook: the process dies via
/// std::_Exit with this code, skipping every destructor and buffer flush —
/// the closest portable stand-in for a hard crash. The CI smoke job and the
/// campaign tests assert on it.
inline constexpr int kKillExitCode = 42;

/// Knobs of a campaign run (CLI mapping in campaign/cli.hpp).
struct CampaignOptions {
  /// Campaign directory: manifest.json + result.json live here. Required.
  std::string dir;
  /// Content-addressed unit store, shared across campaigns/runs by default.
  std::string store_dir = "results/store";
  /// Replay an existing manifest: it must be present and describe this very
  /// campaign, else the run is rejected with a ConfigError. Completed units
  /// are served from the store bit-identically; execution continues from the
  /// first missing unit.
  bool resume = false;
  /// Fault injection: hard-kill the process (std::_Exit(kKillExitCode))
  /// after this many units were *executed* (cache hits don't count).
  /// 0 disables.
  std::size_t kill_after = 0;
  /// Iterations per work unit; 0 = auto (about an eighth of each point's
  /// iteration budget, at least 1 — small enough that an interrupt loses
  /// little, large enough that store/manifest traffic stays negligible).
  std::size_t unit_iterations = 0;
  /// Manifest progress flush period, in completed units. Advisory telemetry
  /// only — resume correctness never depends on flush timing.
  std::size_t checkpoint_every = 8;
  /// Suppresses the stderr progress stream (tests).
  bool quiet = false;
};

/// Outcome accounting of the last run_points() call, also persisted in the
/// manifest's progress block.
struct CampaignReport {
  std::size_t units_total = 0;
  std::size_t cache_hits = 0;
  std::size_t executed = 0;
  /// Present-but-unusable store entries (corrupt / colliding); recomputed.
  std::size_t invalid_store_entries = 0;
  double unit_seconds_total = 0.0;
};

/// Crash-safe, resumable executor for Monte-Carlo figure sweeps.
///
/// A sweep is decomposed into deterministic work units — (parameter point,
/// iteration block) pairs keyed by the order-independent substream seeding
/// of support/rng.hpp — so the unit set, each unit's result, and the final
/// fold are all independent of execution order, thread count and of which
/// process computed what. Units execute on the deterministic parallel
/// engine; each completed unit is persisted atomically to the
/// content-addressed ResultStore before it counts as done. The merged sweep
/// result is therefore bit-identical to experiments::solve_mtrm_sweep's
/// in-process path, whether the campaign ran uninterrupted, was killed and
/// resumed, or was served entirely from cache (tests/campaign_test.cpp pins
/// all three, including the PR-2 golden MTRM checksums).
///
/// On completion the runner writes `<dir>/result.json` (support/bench_json
/// schema) with one sample per sweep point, including a per-point FNV-1a
/// checksum of the flattened result — the file two runs of the same
/// campaign must match byte-for-byte.
class CampaignRunner final : public MtrmSweepExecutor {
 public:
  /// `name` identifies the campaign in the manifest, telemetry and
  /// result.json ("fig7_pstationary"). Throws ConfigError on inconsistent
  /// options (empty dir, zero checkpoint period).
  CampaignRunner(std::string name, CampaignOptions options);

  /// Executes the sweep as described above and returns the merged results
  /// in point order. Throws ConfigError on resume-validation failures.
  std::vector<MtrmResult> run_points(std::vector<MtrmSweepPoint> points) override;

  const std::string& name() const noexcept { return name_; }
  const CampaignOptions& options() const noexcept { return options_; }
  /// Accounting of the last run_points() call.
  const CampaignReport& report() const noexcept { return report_; }

 private:
  std::string name_;
  CampaignOptions options_;
  CampaignReport report_;
};

namespace detail {

/// Test seam for the --kill-after fault injection: when a hook is set it is
/// invoked instead of std::_Exit(kKillExitCode), letting tests simulate the
/// kill with an exception and then exercise resume in-process. An empty
/// function restores the default hard-exit behavior.
using KillHook = std::function<void()>;
void set_kill_hook(KillHook hook);

}  // namespace detail
}  // namespace manet::campaign
