#include "campaign/result_store.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"
#include "support/numeric.hpp"

namespace manet::campaign {

namespace {

/// Binary64 round-trip rendering (17 significant digits): one double, one
/// byte sequence — the canonical string must be a pure function of the
/// values it encodes, *including* being independent of the global locale
/// (support/numeric.hpp; a comma decimal separator would silently change
/// every content-address key). Byte-identical to the C-locale "%.17g" the
/// store was seeded with, so existing entries stay addressable.
std::string fmt_double(double value) { return format_double_roundtrip(value); }

/// Decimal rendering of the canonical string's integer fields. Built on
/// plain string appends, NOT an ostringstream: a stream imbues the global
/// C++ locale, whose thousands grouping turns 1000 into "1.000" under de_DE
/// — which would silently change every unit's content address on a
/// comma-locale host (regression-pinned by locale_numeric_test).
std::string fmt_uint(std::uint64_t value) { return format_u64(value); }

void append_fractions(std::string& out, const char* label,
                      const std::vector<double>& fractions) {
  out += label;
  out += '=';
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (i > 0) out += ',';
    out += fmt_double(fractions[i]);
  }
  out += '\n';
}

JsonValue doubles_to_json(const std::vector<double>& values) {
  JsonValue array = JsonValue::array();
  for (const double value : values) array.push_back(JsonValue::number(value));
  return array;
}

std::vector<double> doubles_from_json(const JsonValue& array) {
  std::vector<double> values;
  values.reserve(array.items().size());
  for (const JsonValue& item : array.items()) values.push_back(item.as_double());
  return values;
}

JsonValue outcome_to_json(const MtrmIterationOutcome& outcome) {
  JsonValue doc = JsonValue::object();
  doc.set("range_for_time", doubles_to_json(outcome.range_for_time));
  doc.set("lcc_at_range_for_time", doubles_to_json(outcome.lcc_at_range_for_time));
  doc.set("min_lcc_at_range_for_time", doubles_to_json(outcome.min_lcc_at_range_for_time));
  doc.set("range_never_connected", JsonValue::number(outcome.range_never_connected));
  doc.set("lcc_at_range_never", JsonValue::number(outcome.lcc_at_range_never));
  doc.set("range_for_component", doubles_to_json(outcome.range_for_component));
  doc.set("mean_critical_range", JsonValue::number(outcome.mean_critical_range));
  return doc;
}

MtrmIterationOutcome outcome_from_json(const JsonValue& doc) {
  MtrmIterationOutcome outcome;
  outcome.range_for_time = doubles_from_json(doc.at("range_for_time"));
  outcome.lcc_at_range_for_time = doubles_from_json(doc.at("lcc_at_range_for_time"));
  outcome.min_lcc_at_range_for_time = doubles_from_json(doc.at("min_lcc_at_range_for_time"));
  outcome.range_never_connected = doc.at("range_never_connected").as_double();
  outcome.lcc_at_range_never = doc.at("lcc_at_range_never").as_double();
  outcome.range_for_component = doubles_from_json(doc.at("range_for_component"));
  outcome.mean_critical_range = doc.at("mean_critical_range").as_double();
  return outcome;
}

}  // namespace

std::string canonical_unit_string(const MtrmSweepPoint& point, std::size_t begin,
                                  std::size_t end) {
  const MtrmConfig& config = point.config;
  std::string out;
  const auto field = [&out](const char* label, const std::string& value) {
    out += label;
    out += '=';
    out += value;
    out += '\n';
  };
  out += "manet-campaign-unit/v";
  out += fmt_uint(static_cast<std::uint64_t>(kUnitSchemaVersion));
  out += '\n';
  out += "d=2\n";
  field("node_count", fmt_uint(config.node_count));
  field("side", fmt_double(config.side));
  field("steps", fmt_uint(config.steps));
  field("mobility", mobility_kind_name(config.mobility.kind));
  switch (config.mobility.kind) {
    case MobilityKind::kStationary:
      break;
    case MobilityKind::kRandomWaypoint: {
      const RandomWaypointParams& p = config.mobility.waypoint;
      field("v_min", fmt_double(p.v_min));
      field("v_max", fmt_double(p.v_max));
      field("pause_steps", fmt_uint(p.pause_steps));
      field("p_stationary", fmt_double(p.p_stationary));
      break;
    }
    case MobilityKind::kDrunkard: {
      const DrunkardParams& p = config.mobility.drunkard;
      field("p_stationary", fmt_double(p.p_stationary));
      field("p_pause", fmt_double(p.p_pause));
      field("step_radius", fmt_double(p.step_radius));
      break;
    }
    case MobilityKind::kRandomDirection: {
      const RandomDirectionParams& p = config.mobility.direction;
      field("v_min", fmt_double(p.v_min));
      field("v_max", fmt_double(p.v_max));
      field("p_turn", fmt_double(p.p_turn));
      field("p_stationary", fmt_double(p.p_stationary));
      break;
    }
  }
  append_fractions(out, "time_fractions", config.time_fractions);
  append_fractions(out, "component_fractions", config.component_fractions);
  field("trial_root", hex_u64(point.trial_root));
  out += "iterations=[";
  out += fmt_uint(begin);
  out += ',';
  out += fmt_uint(end);
  out += ")\n";
  return out;
}

std::uint64_t unit_key(const std::string& canonical) { return fnv1a(canonical); }

ResultStore::ResultStore(std::filesystem::path dir) : dir_(std::move(dir)) {}

std::filesystem::path ResultStore::path_for(const std::string& canonical) const {
  return dir_ / (hex_u64(unit_key(canonical)) + ".json");
}

std::optional<std::vector<MtrmIterationOutcome>> ResultStore::load(
    const std::string& canonical, std::size_t expected_outcomes, bool* corrupt) const {
  const std::filesystem::path path = path_for(canonical);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;

  try {
    const JsonValue doc = JsonValue::parse(read_text_file(path));
    if (doc.at("schema_version").as_uint() != static_cast<std::uint64_t>(kUnitSchemaVersion) ||
        doc.at("kind").as_string() != "manet-campaign-unit" ||
        doc.at("canonical").as_string() != canonical) {
      if (corrupt != nullptr) *corrupt = true;
      return std::nullopt;
    }
    const JsonValue& outcomes_json = doc.at("outcomes");
    if (outcomes_json.items().size() != expected_outcomes) {
      if (corrupt != nullptr) *corrupt = true;
      return std::nullopt;
    }
    std::vector<MtrmIterationOutcome> outcomes;
    outcomes.reserve(expected_outcomes);
    for (const JsonValue& item : outcomes_json.items()) {
      outcomes.push_back(outcome_from_json(item));
    }
    return outcomes;
  } catch (const ConfigError&) {
    // Unreadable / unparsable / wrong shape: a miss, to be recomputed.
    if (corrupt != nullptr) *corrupt = true;
    return std::nullopt;
  }
}

void ResultStore::save(const std::string& canonical,
                       std::span<const MtrmIterationOutcome> outcomes) const {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", JsonValue::number(static_cast<std::size_t>(kUnitSchemaVersion)));
  doc.set("kind", JsonValue::string("manet-campaign-unit"));
  doc.set("key", JsonValue::string(hex_u64(unit_key(canonical))));
  doc.set("canonical", JsonValue::string(canonical));
  JsonValue outcomes_json = JsonValue::array();
  for (const MtrmIterationOutcome& outcome : outcomes) {
    outcomes_json.push_back(outcome_to_json(outcome));
  }
  doc.set("outcomes", std::move(outcomes_json));
  write_text_file_atomic(path_for(canonical), doc.dump(2));
}

}  // namespace manet::campaign
