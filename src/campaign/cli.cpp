#include "campaign/cli.hpp"

#include "support/error.hpp"

namespace manet::campaign {

void add_campaign_cli_options(CliParser& cli) {
  cli.add_flag("campaign",
               "run the sweep as a resumable campaign (crash-safe work units, "
               "content-addressed result store)");
  cli.add_option("campaign-dir",
                 "campaign directory holding manifest.json and result.json "
                 "(default: results/campaigns/<figure>)",
                 "");
  cli.add_option("store-dir", "content-addressed unit store, shared across campaigns",
                 "results/store");
  cli.add_flag("resume",
               "replay the campaign manifest: completed units load from the store "
               "bit-identically, execution continues from the first missing unit");
  cli.add_option("kill-after",
                 "fault injection: hard-exit the process (exit code 42) after this "
                 "many executed units; 0 disables",
                 "0");
  cli.add_option("unit-iterations",
                 "iterations per campaign work unit (0 = auto, about 1/8 of each "
                 "point's budget)",
                 "0");
  cli.add_option("checkpoint-every",
                 "manifest progress flush period, in completed units", "8");
  cli.add_flag("campaign-quiet", "suppress the campaign progress stream on stderr");
}

bool campaign_requested(const CliParser& cli) {
  return cli.flag("campaign") || cli.flag("resume") || cli.was_set("campaign-dir") ||
         cli.uint_value("kill-after") != 0;
}

CampaignOptions campaign_options_from_cli(const CliParser& cli,
                                          const std::string& campaign_name) {
  if (campaign_name.empty()) {
    throw ConfigError("campaign: campaign name must not be empty");
  }
  CampaignOptions options;
  options.dir = cli.string_value("campaign-dir");
  if (options.dir.empty()) options.dir = "results/campaigns/" + campaign_name;
  options.store_dir = cli.string_value("store-dir");
  if (options.store_dir.empty()) {
    throw ConfigError("campaign: --store-dir must not be empty");
  }
  options.resume = cli.flag("resume");
  options.kill_after = static_cast<std::size_t>(cli.uint_value("kill-after"));
  options.unit_iterations = static_cast<std::size_t>(cli.uint_value("unit-iterations"));
  options.checkpoint_every = static_cast<std::size_t>(cli.uint_value("checkpoint-every"));
  if (options.checkpoint_every == 0) {
    throw ConfigError("campaign: --checkpoint-every must be >= 1");
  }
  options.quiet = cli.flag("campaign-quiet");
  return options;
}

}  // namespace manet::campaign
