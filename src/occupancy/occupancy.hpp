#pragma once

#include <cstdint>
#include <vector>

namespace manet {

/// Occupancy theory of Kolchin, Sevast'yanov & Chistyakov (the paper's
/// Section 2 machinery): n balls thrown independently and uniformly into C
/// cells; µ(n, C) is the number of empty cells.
///
/// Exact formulas are evaluated in log space (they involve binomials of
/// astronomically large magnitude) with care for the alternating signs of the
/// inclusion-exclusion series. All functions require n >= 0 and C >= 1.
namespace occupancy {

/// ln C(n, k); 0 when k == 0 or k == n. Requires k <= n.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Exact P(µ(n,C) = k): the probability that exactly k cells remain empty.
/// Mathematically this is the paper's inclusion-exclusion series
///   P(µ=k) = C(C,k) * sum_{j=0}^{C-k} (-1)^j C(C-k,j) (1 - (k+j)/C)^n,
/// but that alternating sum suffers catastrophic cancellation in floating
/// point, so it is evaluated through the equivalent positive-term Markov
/// recurrence on the occupied-cell count (see empty_cells_distribution).
/// Requires k <= C.
double empty_cells_pmf(std::uint64_t n, std::uint64_t C, std::uint64_t k);

/// The full distribution of µ(n,C): entry k is P(µ = k). Computed in
/// O(n*C) by evolving the occupied-cell count m ball by ball:
///   P_i(m) = P_{i-1}(m) * m/C + P_{i-1}(m-1) * (C-m+1)/C.
/// Every term is positive, so the result is exact to double precision —
/// prefer this over per-k calls when sweeping k.
std::vector<double> empty_cells_distribution(std::uint64_t n, std::uint64_t C);

/// Exact E[µ(n,C)] = C (1 - 1/C)^n.
double expected_empty_cells(std::uint64_t n, std::uint64_t C);

/// Exact Var[µ(n,C)] = C(C-1)(1 - 2/C)^n + C(1 - 1/C)^n - C^2 (1 - 1/C)^{2n}.
double variance_empty_cells(std::uint64_t n, std::uint64_t C);

/// Theorem 1 asymptotic mean: C e^{-alpha}, alpha = n/C. Also the proof's
/// choice of k in Theorem 4.
double expected_empty_cells_asymptotic(std::uint64_t n, std::uint64_t C);

/// Theorem 1 asymptotic variance: C e^{-alpha} (1 - (1 + alpha) e^{-alpha}).
double variance_empty_cells_asymptotic(std::uint64_t n, std::uint64_t C);

/// Theorem 1 bound: E[µ(n,C)] <= C e^{-alpha} for every n, C.
double expected_empty_cells_upper_bound(std::uint64_t n, std::uint64_t C);

/// The five asymptotic growth domains of (n, C) distinguished by the paper
/// (Section 2), ordered from sparse to dense occupancy.
enum class Domain {
  kLeftHand,           ///< n = Theta(sqrt(C))
  kLeftIntermediate,   ///< n = O(C) but n >> sqrt(C)
  kCentral,            ///< n = Theta(C)
  kRightIntermediate,  ///< n = Omega(C) but n << C log C  — Theorem 4's regime
  kRightHand,          ///< n = Theta(C log C)              — Theorem 3's regime
};

const char* domain_name(Domain domain);

/// Heuristic classification of a *finite* (n, C) pair into the asymptotic
/// domain whose defining relation it is closest to. The domains are
/// asymptotic classes, so any finite classification draws concrete
/// boundaries; we use the geometric midpoints between the defining scales
/// sqrt(C), C and C log C. Requires C >= 2.
Domain classify_domain(std::uint64_t n, std::uint64_t C);

/// Limit distribution of µ(n,C) per Theorem 2.
struct LimitLaw {
  enum class Kind {
    kNormal,          ///< CD / RHID / LHID: Normal(E[µ], sqrt(Var[µ]))
    kPoisson,         ///< RHD: Poisson(lambda = lim E[µ])
    kShiftedPoisson,  ///< LHD: µ - (C - n) ~ Poisson(rho = lim Var[µ])
  };
  Kind kind;
  /// Normal: mean; Poisson: lambda; ShiftedPoisson: rho.
  double location;
  /// Normal: standard deviation; otherwise 0.
  double scale;
  /// ShiftedPoisson: the shift C - n; otherwise 0.
  double shift;
};

/// The Theorem 2 limit law for the domain of (n, C), parameterized with the
/// exact finite-size moments.
LimitLaw limit_law(std::uint64_t n, std::uint64_t C);

}  // namespace occupancy
}  // namespace manet
