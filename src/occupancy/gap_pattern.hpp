#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point.hpp"
#include "support/rng.hpp"

namespace manet {

/// Lemma 1 / Lemma 2 machinery: the occupancy bit-string view of a 1-D node
/// placement. A line of length l is cut into C cells of length l/C; bit i
/// records whether cell i holds at least one node. A substring of the form
/// `1 0+ 1` (an empty cell strictly between two occupied ones) certifies a
/// disconnected communication graph at transmitting range r = l/C.
namespace gap_pattern {

/// The occupancy bit string of a placement: bit i is true iff some node lies
/// in cell i = [i*l/C, (i+1)*l/C). Nodes at the right boundary x == l fall in
/// the last cell. Requires l > 0 and C >= 1; every coordinate must be in
/// [0, l].
std::vector<bool> occupancy_bits(std::span<const Point1> nodes, double l, std::size_t C);

/// True iff `bits` contains the pattern {1 0* 1} with at least one 0 — the
/// sufficient condition of Lemma 1 for disconnection.
bool has_gap_pattern(const std::vector<bool>& bits);

/// True iff all set bits of `bits` are consecutive (the complement event of
/// Lemma 2's proof). Vacuously true when fewer than two bits are set.
bool ones_are_consecutive(const std::vector<bool>& bits);

/// Lemma 2's conditional probability: given that exactly k of C cells are
/// empty, the probability that NO {1 0* 1} pattern occurs is
///   P(consecutive ones | µ = k) = (k + 1) / C(C, k),
/// because exactly k+1 of the C(C,k) equally-likely empty-cell patterns keep
/// the C-k occupied cells contiguous. Requires k <= C and C >= 1.
/// Returns the complement, P(pattern | µ = k). The k == C case (no occupied
/// cells) has no pattern by convention.
double pattern_probability_given_empty(std::uint64_t C, std::uint64_t k);

/// Exact unconditional probability of the {1 0* 1} pattern for n uniform
/// nodes in C cells, by conditioning on µ (Equation (1) of the paper):
///   P(pattern) = sum_k P(pattern | µ = k) P(µ(n,C) = k).
double pattern_probability(std::uint64_t n, std::uint64_t C);

/// Monte-Carlo estimate of the same probability from `trials` random
/// placements of n nodes on a line of length l with C = l/r cells; used to
/// validate the closed forms and Theorem 4's positive-epsilon claim.
double pattern_probability_monte_carlo(std::uint64_t n, std::size_t C, std::size_t trials,
                                       Rng& rng);

}  // namespace gap_pattern
}  // namespace manet
