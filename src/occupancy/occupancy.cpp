#include "occupancy/occupancy.hpp"

#include <cmath>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet::occupancy {
namespace {

double alpha_of(std::uint64_t n, std::uint64_t C) {
  return static_cast<double>(n) / static_cast<double>(C);
}

}  // namespace

double log_binomial(std::uint64_t n, std::uint64_t k) {
  MANET_EXPECTS(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

std::vector<double> empty_cells_distribution(std::uint64_t n, std::uint64_t C) {
  MANET_EXPECTS(C >= 1);
  const auto cells = static_cast<std::size_t>(C);
  const long double c = static_cast<long double>(C);

  // occupied[m] = P(exactly m distinct cells occupied) after i balls. Each
  // ball either lands in an occupied cell (prob m/C) or opens a new one.
  std::vector<long double> occupied(cells + 1, 0.0L);
  occupied[0] = 1.0L;
  for (std::uint64_t ball = 1; ball <= n; ++ball) {
    const std::size_t reachable = static_cast<std::size_t>(std::min<std::uint64_t>(ball, C));
    for (std::size_t m = reachable; m >= 1; --m) {
      occupied[m] = occupied[m] * (static_cast<long double>(m) / c) +
                    occupied[m - 1] * (static_cast<long double>(C - m + 1) / c);
    }
    occupied[0] = 0.0L;
  }

  std::vector<double> pmf(cells + 1, 0.0);
  long double mass = 0.0L;
  for (std::size_t k = 0; k <= cells; ++k) {
    pmf[k] = static_cast<double>(occupied[cells - k]);
    MANET_INVARIANT(pmf[k] >= 0.0 && pmf[k] <= 1.0);
    mass += occupied[cells - k];
  }
  // The recurrence conserves probability exactly up to rounding: the ball
  // either lands in an occupied cell or opens a new one, so every (n, C)
  // distribution must carry total mass 1.
  MANET_ENSURE(std::abs(static_cast<double>(mass) - 1.0) < 1e-9);
  return pmf;
}

double empty_cells_pmf(std::uint64_t n, std::uint64_t C, std::uint64_t k) {
  MANET_EXPECTS(C >= 1);
  MANET_EXPECTS(k <= C);
  return empty_cells_distribution(n, C)[static_cast<std::size_t>(k)];
}

double expected_empty_cells(std::uint64_t n, std::uint64_t C) {
  MANET_EXPECTS(C >= 1);
  const double c = static_cast<double>(C);
  return c * std::pow(1.0 - 1.0 / c, static_cast<double>(n));
}

double variance_empty_cells(std::uint64_t n, std::uint64_t C) {
  MANET_EXPECTS(C >= 1);
  const double c = static_cast<double>(C);
  const double nn = static_cast<double>(n);
  if (C == 1) return 0.0;
  const double var = c * (c - 1.0) * std::pow(1.0 - 2.0 / c, nn) +
                     c * std::pow(1.0 - 1.0 / c, nn) -
                     c * c * std::pow(1.0 - 1.0 / c, 2.0 * nn);
  return var < 0.0 ? 0.0 : var;  // guard rounding for extreme n
}

double expected_empty_cells_asymptotic(std::uint64_t n, std::uint64_t C) {
  MANET_EXPECTS(C >= 1);
  return static_cast<double>(C) * std::exp(-alpha_of(n, C));
}

double variance_empty_cells_asymptotic(std::uint64_t n, std::uint64_t C) {
  MANET_EXPECTS(C >= 1);
  const double alpha = alpha_of(n, C);
  const double ea = std::exp(-alpha);
  const double var = static_cast<double>(C) * ea * (1.0 - (1.0 + alpha) * ea);
  return var < 0.0 ? 0.0 : var;
}

double expected_empty_cells_upper_bound(std::uint64_t n, std::uint64_t C) {
  return expected_empty_cells_asymptotic(n, C);
}

const char* domain_name(Domain domain) {
  switch (domain) {
    case Domain::kLeftHand:
      return "LHD";
    case Domain::kLeftIntermediate:
      return "LHID";
    case Domain::kCentral:
      return "CD";
    case Domain::kRightIntermediate:
      return "RHID";
    case Domain::kRightHand:
      return "RHD";
  }
  return "?";
}

Domain classify_domain(std::uint64_t n, std::uint64_t C) {
  MANET_EXPECTS(C >= 2);
  const double nn = static_cast<double>(n);
  const double c = static_cast<double>(C);
  const double sqrt_c = std::sqrt(c);
  const double c_log_c = c * std::log(c);

  // A finite pair belongs to the domain whose defining relation it satisfies
  // within a constant factor `band`; the intermediate domains absorb
  // everything between the bands.
  constexpr double band = 2.0;
  if (nn >= c_log_c / band) return Domain::kRightHand;           // n ~ C log C
  if (nn > band * c) return Domain::kRightIntermediate;          // C << n << C log C
  if (nn >= c / band) return Domain::kCentral;                   // n ~ C
  if (nn > band * sqrt_c) return Domain::kLeftIntermediate;      // sqrt(C) << n << C
  return Domain::kLeftHand;                                      // n ~ sqrt(C) or below
}

LimitLaw limit_law(std::uint64_t n, std::uint64_t C) {
  const Domain domain = classify_domain(n, C);
  const double mean = expected_empty_cells(n, C);
  const double var = variance_empty_cells(n, C);

  switch (domain) {
    case Domain::kRightHand:
      return {LimitLaw::Kind::kPoisson, mean, 0.0, 0.0};
    case Domain::kLeftHand: {
      const double shift =
          static_cast<double>(C) - static_cast<double>(n);
      return {LimitLaw::Kind::kShiftedPoisson, var, 0.0, shift};
    }
    case Domain::kCentral:
    case Domain::kRightIntermediate:
    case Domain::kLeftIntermediate:
      return {LimitLaw::Kind::kNormal, mean, std::sqrt(var), 0.0};
  }
  return {LimitLaw::Kind::kNormal, mean, std::sqrt(var), 0.0};
}

}  // namespace manet::occupancy
