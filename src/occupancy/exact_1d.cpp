#include "occupancy/exact_1d.hpp"

#include <algorithm>
#include <cmath>

#include "occupancy/occupancy.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet::exact_1d {
namespace {

/// Compensated (Kahan) accumulator in long double: the series alternates,
/// and for n in the hundreds the leading binomials are astronomically large
/// in log space; we therefore keep every term in log form and only sum the
/// signed exponentials, which stay within [0, C(n-1, j)] * 1 and decay once
/// j r / l approaches 1.
struct KahanSum {
  long double sum = 0.0L;
  long double compensation = 0.0L;

  void add(long double value) {
    const long double y = value - compensation;
    const long double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
};

}  // namespace

double probability_connected(std::uint64_t n, double r, double l) {
  MANET_EXPECTS(n >= 1);
  MANET_EXPECTS(l > 0.0);
  MANET_EXPECTS(r >= 0.0);

  if (n == 1) return 1.0;  // a single node is vacuously connected
  if (r >= l) return 1.0;  // every gap fits
  if (r <= 0.0) return 0.0;

  const double ratio = r / l;
  const auto gaps = n - 1;  // interior spacings
  KahanSum sum;
  long double max_term = 0.0L;
  for (std::uint64_t j = 0; ; ++j) {
    const double remaining = 1.0 - static_cast<double>(j) * ratio;
    if (remaining <= 0.0 || j > gaps) break;
    const double log_term = occupancy::log_binomial(gaps, j) +
                            static_cast<double>(n) * std::log(remaining);
    const long double term = std::exp(static_cast<long double>(log_term));
    max_term = std::max(max_term, term);
    sum.add(j % 2 == 0 ? term : -term);
  }
  // Cancellation guards. Intermediate terms larger than 1 only occur in the
  // subcritical regime (for r at or above the coverage scale l ln(n)/n every
  // term is bounded by 1), where the true probability is numerically zero.
  // Beyond ~1e15 the alternating sum cannot resolve a value in [0, 1] at
  // all; below that, anything smaller than the accumulated rounding noise is
  // indistinguishable from zero.
  const long double p = sum.sum;
  if (max_term > 1e15L) return 0.0;
  if (p < max_term * 1e-12L) return 0.0;
  if (p > 1.0L) return 1.0;
  MANET_ENSURE(p >= 0.0L && p <= 1.0L);  // a probability survived the cancellation guards
  return static_cast<double>(p);
}

double range_for_probability(std::uint64_t n, double p, double l) {
  MANET_EXPECTS(n >= 2);
  MANET_EXPECTS(p > 0.0 && p < 1.0);
  MANET_EXPECTS(l > 0.0);

  double lo = 0.0;
  double hi = l;
  // 64 halvings: resolution l * 2^-64, far below double noise on any l used.
  for (int iteration = 0; iteration < 64 && hi - lo > 1e-15 * l; ++iteration) {
    const double mid = lo + (hi - lo) / 2.0;
    MANET_INVARIANT(lo <= mid && mid <= hi);  // bracket stays ordered
    if (probability_connected(n, mid, l) >= p) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  MANET_ENSURE(hi >= 0.0 && hi <= l);
  return hi;
}

double expected_critical_range(std::uint64_t n, double l) {
  MANET_EXPECTS(n >= 2);
  MANET_EXPECTS(l > 0.0);

  // E[max gap] = integral_0^l (1 - CDF(r)) dr, with the integrand smooth and
  // monotone; composite Simpson on a fixed fine grid is plenty (the result
  // feeds comparisons, not further analysis).
  const int intervals = 2048;  // even
  const double h = l / intervals;
  double total = 0.0;
  for (int i = 0; i <= intervals; ++i) {
    const double r = h * i;
    const double integrand = 1.0 - probability_connected(n, r, l);
    const double weight = (i == 0 || i == intervals) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    total += weight * integrand;
  }
  return total * h / 3.0;
}

}  // namespace manet::exact_1d
