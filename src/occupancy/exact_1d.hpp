#pragma once

#include <cstdint>

namespace manet {

/// Exact finite-size connectivity law for 1-dimensional networks — the
/// non-asymptotic companion of the paper's Theorem 5.
///
/// For n points placed independently and uniformly on [0, l], the n-1 gaps
/// between consecutive order statistics follow a Dirichlet law, and the
/// classical spacings inclusion-exclusion (Whitworth) gives
///
///   P(max gap <= r) = sum_{j=0}^{n-1} (-1)^j C(n-1, j) (1 - j r / l)_+^{n}
///
/// which is precisely the probability that the communication graph at
/// common transmitting range r is connected. This closed form lets the
/// benches print exact curves next to Monte-Carlo ones and pins down the
/// threshold constant that Theorem 5 only gives up to Theta().
namespace exact_1d {

/// P(connected): the probability that n uniform nodes on [0, l] form a
/// connected graph at range r. Requires n >= 1, l > 0, r >= 0. Evaluated
/// with extended-precision compensated summation; the alternating series is
/// benign here because the terms decay factorially once j r > l.
double probability_connected(std::uint64_t n, double r, double l);

/// The exact minimum range giving P(connected) >= p, found by bisection on
/// the closed form (monotone in r). Requires n >= 2 and p in (0, 1).
double range_for_probability(std::uint64_t n, double p, double l);

/// Expected critical range E[max gap] of n uniform nodes on [0, l],
/// integrated from the closed-form CDF. Requires n >= 2.
double expected_critical_range(std::uint64_t n, double l);

}  // namespace exact_1d
}  // namespace manet
