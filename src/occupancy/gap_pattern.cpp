#include "occupancy/gap_pattern.hpp"

#include <algorithm>
#include <cmath>

#include "occupancy/occupancy.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet::gap_pattern {

std::vector<bool> occupancy_bits(std::span<const Point1> nodes, double l, std::size_t C) {
  MANET_EXPECTS(l > 0.0);
  MANET_EXPECTS(C >= 1);
  std::vector<bool> bits(C, false);
  std::size_t occupied = 0;
  const double cell_len = l / static_cast<double>(C);
  for (const Point1& p : nodes) {
    const double x = p.coords[0];
    MANET_EXPECTS(x >= 0.0 && x <= l);
    const auto cell = std::min(static_cast<std::size_t>(x / cell_len), C - 1);
    if (!bits[cell]) ++occupied;
    bits[cell] = true;
  }
  // Every node landed in exactly one cell: the number of occupied cells is
  // bounded by both the node count and the cell count (Theorem 5's n vs C
  // bookkeeping).
  MANET_ENSURE(occupied <= nodes.size() && occupied <= C);
  return bits;
}

bool has_gap_pattern(const std::vector<bool>& bits) {
  bool seen_one = false;
  bool gap_open = false;
  for (bool bit : bits) {
    if (bit) {
      if (gap_open) return true;  // 1 ... 0+ ... 1
      seen_one = true;
    } else if (seen_one) {
      gap_open = true;
    }
  }
  return false;
}

bool ones_are_consecutive(const std::vector<bool>& bits) { return !has_gap_pattern(bits); }

double pattern_probability_given_empty(std::uint64_t C, std::uint64_t k) {
  MANET_EXPECTS(C >= 1);
  MANET_EXPECTS(k <= C);
  if (k == 0) return 0.0;  // no empty cell, no pattern
  if (k == C) return 0.0;  // no occupied cell, no pattern
  // log((k+1) / C(C,k)), evaluated in log space for large C.
  const double log_p_consecutive =
      std::log(static_cast<double>(k) + 1.0) - occupancy::log_binomial(C, k);
  const double p_consecutive = std::exp(log_p_consecutive);
  return 1.0 - std::min(1.0, p_consecutive);
}

double pattern_probability(std::uint64_t n, std::uint64_t C) {
  MANET_EXPECTS(C >= 1);
  const auto pmf = occupancy::empty_cells_distribution(n, C);
  double total = 0.0;
  for (std::uint64_t k = 0; k <= C; ++k) {
    const double p = pmf[static_cast<std::size_t>(k)];
    if (p == 0.0) continue;
    const double conditional = pattern_probability_given_empty(C, k);
    MANET_INVARIANT(conditional >= 0.0 && conditional <= 1.0);
    total += conditional * p;
  }
  MANET_ENSURE(total >= -1e-12 && total <= 1.0 + 1e-12);
  return std::clamp(total, 0.0, 1.0);
}

double pattern_probability_monte_carlo(std::uint64_t n, std::size_t C, std::size_t trials,
                                       Rng& rng) {
  MANET_EXPECTS(C >= 1);
  MANET_EXPECTS(trials >= 1);
  // Cell membership of a uniform point on [0, l) is a uniform cell index, so
  // the line length cancels; draw cell indices directly.
  std::size_t hits = 0;
  std::vector<bool> bits(C);
  for (std::size_t t = 0; t < trials; ++t) {
    std::fill(bits.begin(), bits.end(), false);
    for (std::uint64_t i = 0; i < n; ++i) bits[rng.uniform_index(C)] = true;
    if (has_gap_pattern(bits)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace manet::gap_pattern
