#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/sampling.hpp"
#include "mobility/mobility_model.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

/// EXTENSION (not in the paper): the random direction model. Nodes pick a
/// uniform direction and speed, travel in a straight line reflecting off the
/// region boundary, and re-draw direction/speed with probability p_turn per
/// step. Included to stress the paper's claim that connectivity depends on
/// the "quantity of mobility" rather than the specific motion pattern.
struct RandomDirectionParams {
  double v_min = 0.1;
  double v_max = 1.0;
  double p_turn = 0.01;       ///< per-step probability of re-drawing course
  double p_stationary = 0.0;  ///< probability a node never moves

  /// Throws ConfigError when the parameters are inconsistent.
  void validate() const;
};

template <int D>
class RandomDirectionModel final : public MobilityModel<D> {
 public:
  RandomDirectionModel(const Box<D>& region, const RandomDirectionParams& params)
      : region_(region), params_(params) {
    params_.validate();
  }

  void initialize(std::span<const Point<D>> positions, Rng& rng) override {
    nodes_.assign(positions.size(), NodeState{});
    for (NodeState& node : nodes_) {
      node.permanently_stationary = rng.bernoulli(params_.p_stationary);
      if (!node.permanently_stationary) draw_course(node, rng);
    }
  }

  void step(std::span<Point<D>> positions, Rng& rng) override {
    MANET_EXPECTS(positions.size() == nodes_.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      NodeState& node = nodes_[i];
      if (node.permanently_stationary) continue;
      if (rng.bernoulli(params_.p_turn)) draw_course(node, rng);

      Point<D>& pos = positions[i];
      pos += node.velocity;
      reflect(pos, node.velocity);
      MANET_ENSURE(region_.contains(pos));  // reflection restored the position
    }
  }

  std::string name() const override { return "random-direction"; }
  std::size_t node_count() const override { return nodes_.size(); }

 private:
  struct NodeState {
    bool permanently_stationary = false;
    Point<D> velocity{};
  };

  void draw_course(NodeState& node, Rng& rng) {
    const double speed = rng.uniform(params_.v_min, params_.v_max);
    node.velocity = uniform_direction<D>(rng) * speed;
  }

  /// Mirrors the position back into the region, flipping the velocity
  /// component on each reflected axis. A single pass suffices because one
  /// step never exceeds the region size (enforced by params validation
  /// against typical v_max << l; we still loop for robustness).
  void reflect(Point<D>& pos, Point<D>& velocity) const {
    for (int axis = 0; axis < D; ++axis) {
      double& x = pos.coords[axis];
      while (x < 0.0 || x > region_.side()) {
        if (x < 0.0) {
          x = -x;
          velocity.coords[axis] = -velocity.coords[axis];
        } else {
          x = 2.0 * region_.side() - x;
          velocity.coords[axis] = -velocity.coords[axis];
        }
      }
    }
  }

  Box<D> region_;
  RandomDirectionParams params_;
  std::vector<NodeState> nodes_;
};

}  // namespace manet
