#pragma once

#include <memory>
#include <string>

#include "geometry/box.hpp"
#include "mobility/drunkard.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/stationary.hpp"
#include "support/error.hpp"

namespace manet {

/// Which mobility model to instantiate.
enum class MobilityKind {
  kStationary,
  kRandomWaypoint,
  kDrunkard,
  kRandomDirection,  ///< extension, not in the paper
};

const char* mobility_kind_name(MobilityKind kind);

/// Parses "stationary" / "waypoint" / "drunkard" / "direction"; throws
/// ConfigError otherwise. Used by the bench/example command lines.
MobilityKind parse_mobility_kind(const std::string& text);

/// Union of all model parameters plus the model selector; the single
/// value-type handle used by the experiment layer so entire experiment
/// configurations stay copyable and printable.
struct MobilityConfig {
  MobilityKind kind = MobilityKind::kStationary;
  RandomWaypointParams waypoint{};
  DrunkardParams drunkard{};
  RandomDirectionParams direction{};

  /// The paper's "moderate mobility" random waypoint defaults (Section 4.2):
  /// p_stationary = 0, v_min = 0.1, v_max = 0.01*l, t_pause = 2000.
  static MobilityConfig paper_waypoint(double l);

  /// The paper's drunkard defaults (Section 4.2): p_stationary = 0.1,
  /// p_pause = 0.3, m = 0.01*l.
  static MobilityConfig paper_drunkard(double l);

  static MobilityConfig stationary();
};

/// Instantiates the configured model over `region`.
template <int D>
std::unique_ptr<MobilityModel<D>> make_mobility_model(const MobilityConfig& config,
                                                      const Box<D>& region) {
  switch (config.kind) {
    case MobilityKind::kStationary:
      return std::make_unique<StationaryModel<D>>();
    case MobilityKind::kRandomWaypoint:
      return std::make_unique<RandomWaypointModel<D>>(region, config.waypoint);
    case MobilityKind::kDrunkard:
      return std::make_unique<DrunkardModel<D>>(region, config.drunkard);
    case MobilityKind::kRandomDirection:
      return std::make_unique<RandomDirectionModel<D>>(region, config.direction);
  }
  throw ConfigError("unknown mobility kind");
}

}  // namespace manet
