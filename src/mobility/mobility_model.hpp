#pragma once

#include <span>
#include <string>

#include "geometry/point.hpp"
#include "support/rng.hpp"

namespace manet {

/// A node mobility pattern over the deployment region. One simulator step
/// moves every (mobile, non-paused) node once, matching the paper's
/// step-indexed models: "t_pause is expressed as the number of mobility steps
/// for which the node must remain stationary"; "if a node is moving at step
/// i, its position in step i+1 is chosen ...".
///
/// Models hold per-node state (destinations, pause counters, the permanently
/// stationary subset); `initialize` must be called with the initial placement
/// before the first `step`.
template <int D>
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Sets up per-node state for `positions.size()` nodes. Draws (e.g. the
  /// permanently-stationary subset) come from `rng`.
  virtual void initialize(std::span<const Point<D>> positions, Rng& rng) = 0;

  /// Advances every node by one mobility step, updating `positions` in
  /// place. All resulting positions remain inside the deployment region.
  virtual void step(std::span<Point<D>> positions, Rng& rng) = 0;

  /// Human-readable model name for logs and bench output.
  virtual std::string name() const = 0;

  /// Number of nodes this model was initialized for (0 before initialize).
  virtual std::size_t node_count() const = 0;
};

}  // namespace manet
