#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/distance_kernels.hpp"
#include "geometry/point_store.hpp"
#include "mobility/mobility_model.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

/// Parameters of the random waypoint model [Johnson & Maltz 1996], as used in
/// the paper's Section 4.1: "every node chooses uniformly at random a
/// destination in [0,l]^d, and moves toward it with a velocity chosen
/// uniformly at random in [v_min, v_max]. When it reaches the destination, it
/// remains stationary for a predefined pause time t_pause, then starts moving
/// again"; additionally each node is permanently stationary with probability
/// p_stationary. Velocities are in units of distance per mobility step.
struct RandomWaypointParams {
  double v_min = 0.1;
  double v_max = 1.0;
  std::size_t pause_steps = 0;     ///< t_pause
  double p_stationary = 0.0;       ///< probability a node never moves

  /// Throws ConfigError when the parameters are inconsistent.
  void validate() const;
};

/// Random waypoint mobility (intentional movement).
///
/// State is stored structure-of-arrays and a step runs in three phases so
/// the elementwise position arithmetic vectorizes without touching the RNG
/// draw order:
///   1. one batched kernel computes every node's distance-to-destination
///      (bit-identical to the scalar `distance` per lane — sqrt is IEEE
///      correctly rounded),
///   2. a scalar pass in node-index order makes all decisions — pause
///      countdowns, arrivals, new-leg draws. This is the ONLY phase that
///      touches the Rng, and it performs exactly the draws the original
///      per-node loop performed, in the same order, so every trace is
///      bit-identical to the AoS implementation (the golden FNV-1a
///      checksums in determinism_test pin this),
///   3. one batched kernel advances the still-moving nodes:
///      pos += (dest - pos) * (speed / dist), a masked select that leaves
///      every other lane bit-untouched.
/// (The drunkard model cannot be phase-split like this: every mover's
/// update IS an RNG draw — rejection-sampled in uniform_in_ball_in_box — so
/// it stays scalar; see mobility/drunkard.hpp.)
template <int D>
class RandomWaypointModel final : public MobilityModel<D> {
 public:
  RandomWaypointModel(const Box<D>& region, const RandomWaypointParams& params)
      : region_(region), params_(params) {
    params_.validate();
  }

  void initialize(std::span<const Point<D>> positions, Rng& rng) override {
    const std::size_t n = positions.size();
    permanently_stationary_.assign(n, 0);
    destination_.resize(n);
    speed_.assign(n, 0.0);
    pause_remaining_.assign(n, 0);
    pos_.reserve(n);
    dist_.resize(n);
    scale_.resize(n);
    advance_mask_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      permanently_stationary_[i] = rng.bernoulli(params_.p_stationary) ? 1 : 0;
      if (permanently_stationary_[i] == 0) start_new_leg(i, rng);
    }
  }

  void step(std::span<Point<D>> positions, Rng& rng) override {
    MANET_EXPECTS(positions.size() == permanently_stationary_.size());
    const std::size_t n = positions.size();
    pos_.assign(positions);

    // Phase 1: distance to destination for every node in one batched sweep.
    // Lanes of paused/stationary nodes compute against a stale destination
    // and are never read — the decision pass below only consults dist_[i]
    // for nodes that are actually moving this step.
    kernels::batch_pair_distance<D>(pos_.axes(), destination_.axes(), n, dist_.data());

    // Phase 2: decisions + RNG draws, scalar, in node-index order.
    for (std::size_t i = 0; i < n; ++i) {
      advance_mask_[i] = 0;
      if (permanently_stationary_[i] != 0) continue;

      if (pause_remaining_[i] > 0) {
        --pause_remaining_[i];
        if (pause_remaining_[i] == 0) start_new_leg(i, rng);
        continue;
      }

      const double dist = dist_[i];
      if (dist <= speed_[i]) {
        // Arrive this step, then pause (possibly 0 steps).
        for (int a = 0; a < D; ++a) pos_.axis(a)[i] = destination_.axis(a)[i];
        if (params_.pause_steps > 0) {
          pause_remaining_[i] = params_.pause_steps;
        } else {
          start_new_leg(i, rng);
        }
        MANET_ENSURE(region_.contains(pos_.get(i)));
      } else {
        scale_[i] = speed_[i] / dist;
        advance_mask_[i] = 1;
      }
    }

    // Phase 3: masked elementwise advance of the movers —
    // pos += (dest - pos) * scale, the scalar leg arithmetic lane by lane.
    kernels::batch_masked_advance<D>(pos_.mutable_axes(), destination_.axes(), scale_.data(),
                                     advance_mask_.data(), n);
    // Both endpoints of a leg lie in the region, so every intermediate
    // position must too — the paper's trajectories never leave [0, l]^d.
    for (std::size_t i = 0; i < n; ++i) {
      if (advance_mask_[i] != 0) MANET_ENSURE(region_.contains(pos_.get(i)));
    }

    pos_.scatter_to(positions);
  }

  std::string name() const override { return "random-waypoint"; }
  std::size_t node_count() const override { return permanently_stationary_.size(); }

  /// Number of nodes drawn as permanently stationary (for tests and the
  /// Figure 7 p_stationary sweeps).
  std::size_t stationary_node_count() const {
    std::size_t count = 0;
    for (const std::uint8_t flag : permanently_stationary_) {
      if (flag != 0) ++count;
    }
    return count;
  }

 private:
  void start_new_leg(std::size_t i, Rng& rng) {
    // A zero-length leg (destination == current position) degenerates into
    // arrival on the next step, which the step() logic already handles.
    destination_.set(i, region_.sample(rng));
    speed_[i] = rng.uniform(params_.v_min, params_.v_max);
    pause_remaining_[i] = 0;
  }

  Box<D> region_;
  RandomWaypointParams params_;

  // Per-node state, structure-of-arrays.
  std::vector<std::uint8_t> permanently_stationary_;
  PointStore<D> destination_;
  std::vector<double> speed_;
  std::vector<std::size_t> pause_remaining_;

  // Per-step scratch (capacity-only growth; steps are allocation-free once
  // initialize() has sized them).
  PointStore<D> pos_;
  std::vector<double> dist_;
  std::vector<double> scale_;
  std::vector<std::uint8_t> advance_mask_;
};

}  // namespace manet
