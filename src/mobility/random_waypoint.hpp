#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "mobility/mobility_model.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

/// Parameters of the random waypoint model [Johnson & Maltz 1996], as used in
/// the paper's Section 4.1: "every node chooses uniformly at random a
/// destination in [0,l]^d, and moves toward it with a velocity chosen
/// uniformly at random in [v_min, v_max]. When it reaches the destination, it
/// remains stationary for a predefined pause time t_pause, then starts moving
/// again"; additionally each node is permanently stationary with probability
/// p_stationary. Velocities are in units of distance per mobility step.
struct RandomWaypointParams {
  double v_min = 0.1;
  double v_max = 1.0;
  std::size_t pause_steps = 0;     ///< t_pause
  double p_stationary = 0.0;       ///< probability a node never moves

  /// Throws ConfigError when the parameters are inconsistent.
  void validate() const;
};

/// Random waypoint mobility (intentional movement).
template <int D>
class RandomWaypointModel final : public MobilityModel<D> {
 public:
  RandomWaypointModel(const Box<D>& region, const RandomWaypointParams& params)
      : region_(region), params_(params) {
    params_.validate();
  }

  void initialize(std::span<const Point<D>> positions, Rng& rng) override {
    nodes_.assign(positions.size(), NodeState{});
    for (std::size_t i = 0; i < positions.size(); ++i) {
      NodeState& node = nodes_[i];
      node.permanently_stationary = rng.bernoulli(params_.p_stationary);
      if (!node.permanently_stationary) {
        start_new_leg(node, positions[i], rng);
      }
    }
  }

  void step(std::span<Point<D>> positions, Rng& rng) override {
    MANET_EXPECTS(positions.size() == nodes_.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      NodeState& node = nodes_[i];
      if (node.permanently_stationary) continue;

      if (node.pause_remaining > 0) {
        --node.pause_remaining;
        if (node.pause_remaining == 0) start_new_leg(node, positions[i], rng);
        continue;
      }

      Point<D>& pos = positions[i];
      const double dist = distance(pos, node.destination);
      if (dist <= node.speed) {
        // Arrive this step, then pause (possibly 0 steps).
        pos = node.destination;
        if (params_.pause_steps > 0) {
          node.pause_remaining = params_.pause_steps;
        } else {
          start_new_leg(node, pos, rng);
        }
      } else {
        const double scale = node.speed / dist;
        pos += (node.destination - pos) * scale;
      }
      // Both endpoints of a leg lie in the region, so every intermediate
      // position must too — the paper's trajectories never leave [0, l]^d.
      MANET_ENSURE(region_.contains(pos));
    }
  }

  std::string name() const override { return "random-waypoint"; }
  std::size_t node_count() const override { return nodes_.size(); }

  /// Number of nodes drawn as permanently stationary (for tests and the
  /// Figure 7 p_stationary sweeps).
  std::size_t stationary_node_count() const {
    std::size_t count = 0;
    for (const NodeState& node : nodes_) {
      if (node.permanently_stationary) ++count;
    }
    return count;
  }

 private:
  struct NodeState {
    bool permanently_stationary = false;
    Point<D> destination{};
    double speed = 0.0;
    std::size_t pause_remaining = 0;
  };

  void start_new_leg(NodeState& node, const Point<D>& from, Rng& rng) {
    node.destination = region_.sample(rng);
    node.speed = rng.uniform(params_.v_min, params_.v_max);
    node.pause_remaining = 0;
    // A zero-length leg (destination == current position) degenerates into
    // arrival on the next step, which the step() logic already handles.
    (void)from;
  }

  Box<D> region_;
  RandomWaypointParams params_;
  std::vector<NodeState> nodes_;
};

}  // namespace manet
