#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/sampling.hpp"
#include "mobility/mobility_model.hpp"
#include "support/error.hpp"

namespace manet {

/// Parameters of the paper's drunkard (non-intentional) model, Section 4.1:
/// a node is permanently stationary with probability p_stationary; a mobile
/// node stays put at any given step with probability p_pause; otherwise its
/// next position "is chosen uniformly at random in the disk of radius m
/// centered at the current node location" (restricted to the deployment
/// region; see DESIGN.md convention 3).
struct DrunkardParams {
  double p_stationary = 0.0;
  double p_pause = 0.0;
  double step_radius = 1.0;  ///< m

  /// Throws ConfigError when the parameters are inconsistent.
  void validate() const;
};

/// Drunkard mobility (random, non-intentional movement).
///
/// Unlike the waypoint model (SoA + batched kernels, mobility/
/// random_waypoint.hpp), this step loop stays scalar by necessity: every
/// mover's position update IS an RNG draw — uniform_in_ball_in_box rejection-
/// samples a variable number of uniforms per call — so there is no
/// elementwise arithmetic phase to split out without changing the draw
/// order, and the draw order is pinned by the golden trace checksums.
template <int D>
class DrunkardModel final : public MobilityModel<D> {
 public:
  DrunkardModel(const Box<D>& region, const DrunkardParams& params)
      : region_(region), params_(params) {
    params_.validate();
  }

  void initialize(std::span<const Point<D>> positions, Rng& rng) override {
    permanently_stationary_.assign(positions.size(), false);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      permanently_stationary_[i] = rng.bernoulli(params_.p_stationary);
    }
  }

  void step(std::span<Point<D>> positions, Rng& rng) override {
    MANET_EXPECTS(positions.size() == permanently_stationary_.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (permanently_stationary_[i]) continue;
      if (rng.bernoulli(params_.p_pause)) continue;
      positions[i] = uniform_in_ball_in_box(positions[i], params_.step_radius, region_, rng);
    }
  }

  std::string name() const override { return "drunkard"; }
  std::size_t node_count() const override { return permanently_stationary_.size(); }

  std::size_t stationary_node_count() const {
    std::size_t count = 0;
    for (bool s : permanently_stationary_) {
      if (s) ++count;
    }
    return count;
  }

 private:
  Box<D> region_;
  DrunkardParams params_;
  std::vector<bool> permanently_stationary_;
};

}  // namespace manet
