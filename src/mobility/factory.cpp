#include "mobility/factory.hpp"

namespace manet {

void RandomWaypointParams::validate() const {
  if (!(v_min > 0.0)) throw ConfigError("random waypoint: v_min must be > 0");
  if (!(v_max >= v_min)) throw ConfigError("random waypoint: v_max must be >= v_min");
  if (!(p_stationary >= 0.0 && p_stationary <= 1.0)) {
    throw ConfigError("random waypoint: p_stationary must be in [0, 1]");
  }
}

void DrunkardParams::validate() const {
  if (!(step_radius > 0.0)) throw ConfigError("drunkard: step radius m must be > 0");
  if (!(p_stationary >= 0.0 && p_stationary <= 1.0)) {
    throw ConfigError("drunkard: p_stationary must be in [0, 1]");
  }
  if (!(p_pause >= 0.0 && p_pause <= 1.0)) {
    throw ConfigError("drunkard: p_pause must be in [0, 1]");
  }
}

void RandomDirectionParams::validate() const {
  if (!(v_min > 0.0)) throw ConfigError("random direction: v_min must be > 0");
  if (!(v_max >= v_min)) throw ConfigError("random direction: v_max must be >= v_min");
  if (!(p_turn >= 0.0 && p_turn <= 1.0)) {
    throw ConfigError("random direction: p_turn must be in [0, 1]");
  }
  if (!(p_stationary >= 0.0 && p_stationary <= 1.0)) {
    throw ConfigError("random direction: p_stationary must be in [0, 1]");
  }
}

const char* mobility_kind_name(MobilityKind kind) {
  switch (kind) {
    case MobilityKind::kStationary:
      return "stationary";
    case MobilityKind::kRandomWaypoint:
      return "random-waypoint";
    case MobilityKind::kDrunkard:
      return "drunkard";
    case MobilityKind::kRandomDirection:
      return "random-direction";
  }
  return "?";
}

MobilityKind parse_mobility_kind(const std::string& text) {
  if (text == "stationary") return MobilityKind::kStationary;
  if (text == "waypoint" || text == "random-waypoint") return MobilityKind::kRandomWaypoint;
  if (text == "drunkard") return MobilityKind::kDrunkard;
  if (text == "direction" || text == "random-direction") {
    return MobilityKind::kRandomDirection;
  }
  throw ConfigError("unknown mobility model '" + text +
                    "' (expected stationary|waypoint|drunkard|direction)");
}

MobilityConfig MobilityConfig::paper_waypoint(double l) {
  MobilityConfig config;
  config.kind = MobilityKind::kRandomWaypoint;
  config.waypoint.p_stationary = 0.0;
  config.waypoint.v_min = 0.1;
  config.waypoint.v_max = 0.01 * l;
  config.waypoint.pause_steps = 2000;
  return config;
}

MobilityConfig MobilityConfig::paper_drunkard(double l) {
  MobilityConfig config;
  config.kind = MobilityKind::kDrunkard;
  config.drunkard.p_stationary = 0.1;
  config.drunkard.p_pause = 0.3;
  config.drunkard.step_radius = 0.01 * l;
  return config;
}

MobilityConfig MobilityConfig::stationary() { return MobilityConfig{}; }

}  // namespace manet
