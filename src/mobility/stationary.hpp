#pragma once

#include <cstddef>

#include "mobility/mobility_model.hpp"

namespace manet {

/// The degenerate no-movement model: the paper's stationary case
/// ("setting #steps = 1 corresponds to the stationary case"). Useful for
/// running the mobile pipeline on stationary networks and in tests.
template <int D>
class StationaryModel final : public MobilityModel<D> {
 public:
  void initialize(std::span<const Point<D>> positions, Rng&) override {
    node_count_ = positions.size();
  }

  void step(std::span<Point<D>>, Rng&) override {}

  std::string name() const override { return "stationary"; }
  std::size_t node_count() const override { return node_count_; }

 private:
  std::size_t node_count_ = 0;
};

}  // namespace manet
