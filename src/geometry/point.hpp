#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <ostream>

#include "geometry/distance_kernels.hpp"

namespace manet {

/// A point in D-dimensional Euclidean space. D is a compile-time constant:
/// the paper analyses d=1 (Section 3) and simulates d=2 (Section 4); d=3 is
/// supported throughout as an extension.
template <int D>
struct Point {
  static_assert(D >= 1 && D <= 3, "the library supports 1-, 2- and 3-dimensional regions");

  std::array<double, D> coords{};

  static constexpr int dimension = D;

  constexpr double& operator[](std::size_t axis) { return coords[axis]; }
  constexpr double operator[](std::size_t axis) const { return coords[axis]; }

  friend constexpr bool operator==(const Point& a, const Point& b) = default;

  constexpr Point& operator+=(const Point& o) {
    for (int i = 0; i < D; ++i) coords[i] += o.coords[i];
    return *this;
  }
  constexpr Point& operator-=(const Point& o) {
    for (int i = 0; i < D; ++i) coords[i] -= o.coords[i];
    return *this;
  }
  constexpr Point& operator*=(double s) {
    for (int i = 0; i < D; ++i) coords[i] *= s;
    return *this;
  }

  friend constexpr Point operator+(Point a, const Point& b) { return a += b; }
  friend constexpr Point operator-(Point a, const Point& b) { return a -= b; }
  friend constexpr Point operator*(Point a, double s) { return a *= s; }
  friend constexpr Point operator*(double s, Point a) { return a *= s; }
};

using Point1 = Point<1>;
using Point2 = Point<2>;
using Point3 = Point<3>;

/// Squared Euclidean distance (avoids the sqrt in hot loops; the point-graph
/// edge test `dist <= r` is done as `dist2 <= r*r`). Delegates to the shared
/// scalar core in geometry/distance_kernels.hpp — the single definition the
/// batched SIMD kernels are pinned bit-identical to.
template <int D>
constexpr double squared_distance(const Point<D>& a, const Point<D>& b) {
  return kernels::squared_distance_scalar<D>(a.coords.data(), b.coords.data());
}

/// Euclidean distance.
template <int D>
double distance(const Point<D>& a, const Point<D>& b) {
  return std::sqrt(squared_distance(a, b));
}

/// Squared Euclidean norm.
template <int D>
constexpr double squared_norm(const Point<D>& p) {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) sum += p.coords[i] * p.coords[i];
  return sum;
}

/// Euclidean norm.
template <int D>
double norm(const Point<D>& p) {
  return std::sqrt(squared_norm(p));
}

/// The smallest double r with r*r >= d2: converts a squared distance into a
/// transmitting range that provably includes the pair under the library's
/// `dist2 <= r*r` edge test. Plain sqrt can round down by one ulp, making
/// "connected at exactly the critical range" false; every range derived from
/// a distance (MST edge weights, critical radii) goes through this.
inline double covering_radius(double squared) {
  double r = std::sqrt(squared);
  while (r * r < squared) {
    r = std::nextafter(r, std::numeric_limits<double>::infinity());
  }
  return r;
}

template <int D>
std::ostream& operator<<(std::ostream& out, const Point<D>& p) {
  out << '(';
  for (int i = 0; i < D; ++i) {
    if (i > 0) out << ", ";
    out << p.coords[i];
  }
  return out << ')';
}

}  // namespace manet
