#pragma once

#include <cmath>

#include "geometry/distance_kernels.hpp"
#include "geometry/point.hpp"
#include "support/error.hpp"

namespace manet {

/// EXTENSION (not in the paper): the flat torus metric on [0, l]^D —
/// distances wrap around the region edges. Comparing critical ranges under
/// the Euclidean and torus metrics isolates the *boundary effect*: on the
/// torus there are no sparse corners, so the gap between the two quantifies
/// how much of the required transmitting range is spent bridging
/// border-induced voids (see bench/ablation_boundary).
template <int D>
double torus_squared_distance(const Point<D>& a, const Point<D>& b, double side) {
  MANET_EXPECTS(side > 0.0);
  // Shared scalar core (geometry/distance_kernels.hpp): the one definition
  // of the wrap-around metric that the batched SIMD kernels are pinned
  // bit-identical to. The precondition stays here, at the public API.
  return kernels::torus_squared_distance_scalar<D>(a.coords.data(), b.coords.data(), side);
}

template <int D>
double torus_distance(const Point<D>& a, const Point<D>& b, double side) {
  return std::sqrt(torus_squared_distance(a, b, side));
}

}  // namespace manet
