#pragma once

#include <algorithm>
#include <cmath>

#include "geometry/point.hpp"
#include "support/error.hpp"

namespace manet {

/// EXTENSION (not in the paper): the flat torus metric on [0, l]^D —
/// distances wrap around the region edges. Comparing critical ranges under
/// the Euclidean and torus metrics isolates the *boundary effect*: on the
/// torus there are no sparse corners, so the gap between the two quantifies
/// how much of the required transmitting range is spent bridging
/// border-induced voids (see bench/ablation_boundary).
template <int D>
double torus_squared_distance(const Point<D>& a, const Point<D>& b, double side) {
  MANET_EXPECTS(side > 0.0);
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    double d = std::abs(a.coords[i] - b.coords[i]);
    d = std::min(d, side - d);
    sum += d * d;
  }
  return sum;
}

template <int D>
double torus_distance(const Point<D>& a, const Point<D>& b, double side) {
  return std::sqrt(torus_squared_distance(a, b, side));
}

}  // namespace manet
