#pragma once

// Batched distance kernels over structure-of-arrays coordinates.
//
// This header is the single source of truth for the library's two metrics:
// `squared_distance` (point.hpp) and `torus_squared_distance` (torus.hpp)
// both delegate to the scalar cores below, and every batched (one candidate
// against a contiguous SoA run) kernel reproduces the scalar core's exact
// floating-point operation sequence PER ELEMENT:
//
//   sum = 0; for each axis i in 0..D-1: d = a_i - b_i; sum += d * d
//
// The accumulation order is per-axis, fixed, and identical in the scalar,
// portable-batch, and AVX2 paths, so every pair's d2 is bit-identical no
// matter which path computed it. The AVX2 kernels are lane-wise translations
// of the same sequence — subtract, multiply, add as separate correctly-
// rounded IEEE-754 operations. Fused multiply-add is deliberately never
// used (it would change the rounding of d*d + sum), and the build compiles
// with -ffp-contract=off so the compiler cannot introduce contractions
// behind our back either (see DESIGN.md §15 for the full bit-identity
// argument, including why andnot-abs and min_pd match std::abs/std::min
// on this domain).
//
// This is the ONLY file in src/ allowed to include SIMD intrinsics headers
// or query CPU features (enforced by the manet-lint `simd-confinement`
// rule): every other layer calls these kernels and stays ISA-agnostic.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#define MANET_KERNELS_X86 1
#include <immintrin.h>  // manet-lint: allow(simd-confinement) — this is the confinement point
#else
#define MANET_KERNELS_X86 0
#endif

namespace manet::kernels {

/// One `const double*` per axis of a structure-of-arrays coordinate block.
template <int D>
using AxisPointers = std::array<const double*, static_cast<std::size_t>(D)>;

/// Mutable variant, for kernels that update coordinates in place.
template <int D>
using MutableAxisPointers = std::array<double*, static_cast<std::size_t>(D)>;

// ---------------------------------------------------------------------------
// Scalar cores — the definition of the metric. Everything else matches these.
// ---------------------------------------------------------------------------

/// Squared Euclidean distance between two D-tuples stored contiguously.
template <int D>
constexpr double squared_distance_scalar(const double* a, const double* b) noexcept {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Squared distance on the flat torus [0, side]^D. The caller validates
/// side > 0 (torus.hpp keeps the MANET_EXPECTS contract at the public API).
template <int D>
double torus_squared_distance_scalar(const double* a, const double* b, double side) noexcept {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    double d = std::abs(a[i] - b[i]);
    d = std::min(d, side - d);
    sum += d * d;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Portable batch kernels — plain loops in the same per-element order, written
// over SoA axes so the auto-vectorizer can work even without the AVX2 path.
// ---------------------------------------------------------------------------

/// out[k] = squared_distance(axes[.][k], q) for k in [0, count).
template <int D>
void batch_squared_distance_portable(const AxisPointers<D>& axes, std::size_t count,
                                     const double* q, double* out) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      const double d = axes[static_cast<std::size_t>(i)][k] - q[i];
      sum += d * d;
    }
    out[k] = sum;
  }
}

/// out[k] = torus_squared_distance(axes[.][k], q, side) for k in [0, count).
template <int D>
void batch_torus_squared_distance_portable(const AxisPointers<D>& axes, std::size_t count,
                                           const double* q, double side, double* out) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      double d = std::abs(axes[static_cast<std::size_t>(i)][k] - q[i]);
      d = std::min(d, side - d);
      sum += d * d;
    }
    out[k] = sum;
  }
}

// ---------------------------------------------------------------------------
// AVX2 batch kernels. Lane-wise translation of the scalar core: every lane
// performs the identical scalar operation sequence, so results are bitwise
// equal. No FMA — see the header comment.
// ---------------------------------------------------------------------------

#if MANET_KERNELS_X86

template <int D>
__attribute__((target("avx2"))) void batch_squared_distance_avx2(
    const AxisPointers<D>& axes, std::size_t count, const double* q, double* out) noexcept {
  const __m256d q0 = _mm256_set1_pd(q[0]);
  const __m256d q1 = _mm256_set1_pd(D >= 2 ? q[1] : 0.0);
  const __m256d q2 = _mm256_set1_pd(D >= 3 ? q[2] : 0.0);
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    __m256d d = _mm256_sub_pd(_mm256_loadu_pd(axes[0] + k), q0);
    __m256d sum = _mm256_mul_pd(d, d);
    if constexpr (D >= 2) {
      d = _mm256_sub_pd(_mm256_loadu_pd(axes[1] + k), q1);
      sum = _mm256_add_pd(sum, _mm256_mul_pd(d, d));
    }
    if constexpr (D >= 3) {
      d = _mm256_sub_pd(_mm256_loadu_pd(axes[2] + k), q2);
      sum = _mm256_add_pd(sum, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + k, sum);
  }
  for (; k < count; ++k) {
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      const double d = axes[static_cast<std::size_t>(i)][k] - q[i];
      sum += d * d;
    }
    out[k] = sum;
  }
}

/// |x| via clearing the sign bit matches std::abs bit-for-bit on every
/// non-NaN double; min_pd(side-d, d) picks d on ties exactly like
/// std::min(d, side-d), and d == side-d never mixes +0/-0 here (d >= 0 and
/// side > 0, so side-d == 0 only when d == side > 0).
template <int D>
__attribute__((target("avx2"))) void batch_torus_squared_distance_avx2(
    const AxisPointers<D>& axes, std::size_t count, const double* q, double side,
    double* out) noexcept {
  const __m256d q0 = _mm256_set1_pd(q[0]);
  const __m256d q1 = _mm256_set1_pd(D >= 2 ? q[1] : 0.0);
  const __m256d q2 = _mm256_set1_pd(D >= 3 ? q[2] : 0.0);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d side_v = _mm256_set1_pd(side);
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    __m256d d = _mm256_andnot_pd(sign_mask, _mm256_sub_pd(_mm256_loadu_pd(axes[0] + k), q0));
    d = _mm256_min_pd(_mm256_sub_pd(side_v, d), d);
    __m256d sum = _mm256_mul_pd(d, d);
    if constexpr (D >= 2) {
      d = _mm256_andnot_pd(sign_mask, _mm256_sub_pd(_mm256_loadu_pd(axes[1] + k), q1));
      d = _mm256_min_pd(_mm256_sub_pd(side_v, d), d);
      sum = _mm256_add_pd(sum, _mm256_mul_pd(d, d));
    }
    if constexpr (D >= 3) {
      d = _mm256_andnot_pd(sign_mask, _mm256_sub_pd(_mm256_loadu_pd(axes[2] + k), q2));
      d = _mm256_min_pd(_mm256_sub_pd(side_v, d), d);
      sum = _mm256_add_pd(sum, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + k, sum);
  }
  for (; k < count; ++k) {
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      double d = std::abs(axes[static_cast<std::size_t>(i)][k] - q[i]);
      d = std::min(d, side - d);
      sum += d * d;
    }
    out[k] = sum;
  }
}

#endif  // MANET_KERNELS_X86

// ---------------------------------------------------------------------------
// Runtime dispatch. One cached CPUID probe; falls back to the portable path
// on non-x86 builds or pre-AVX2 hardware.
// ---------------------------------------------------------------------------

inline bool cpu_has_avx2() noexcept {
#if MANET_KERNELS_X86
  static const bool supported = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return supported;
#else
  return false;
#endif
}

/// out[k] = squared_distance(axes[.][k], q); bit-identical to the scalar core.
template <int D>
inline void batch_squared_distance(const AxisPointers<D>& axes, std::size_t count,
                                   const double* q, double* out) noexcept {
#if MANET_KERNELS_X86
  if (cpu_has_avx2()) {
    batch_squared_distance_avx2<D>(axes, count, q, out);
    return;
  }
#endif
  batch_squared_distance_portable<D>(axes, count, q, out);
}

/// out[k] = torus_squared_distance(axes[.][k], q, side); bit-identical to the
/// scalar core.
template <int D>
inline void batch_torus_squared_distance(const AxisPointers<D>& axes, std::size_t count,
                                         const double* q, double side, double* out) noexcept {
#if MANET_KERNELS_X86
  if (cpu_has_avx2()) {
    batch_torus_squared_distance_avx2<D>(axes, count, q, side, out);
    return;
  }
#endif
  batch_torus_squared_distance_portable<D>(axes, count, q, side, out);
}

// ---------------------------------------------------------------------------
// Elementwise trace kernels for the mobility / kinetic layers.
// ---------------------------------------------------------------------------

/// out[k] = 1 when the k-th tuples of `a` and `b` differ in any axis
/// (IEEE `!=` per coordinate, exactly `!(Point == Point)`), else 0. Used by
/// the kinetic engine's moved-node detection.
template <int D>
void batch_tuple_not_equal_portable(const AxisPointers<D>& a, const AxisPointers<D>& b,
                                    std::size_t count, std::uint8_t* out) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    bool neq = false;
    for (int i = 0; i < D; ++i) {
      neq = neq || (a[static_cast<std::size_t>(i)][k] != b[static_cast<std::size_t>(i)][k]);
    }
    out[k] = neq ? std::uint8_t{1} : std::uint8_t{0};
  }
}

#if MANET_KERNELS_X86

template <int D>
__attribute__((target("avx2"))) void batch_tuple_not_equal_avx2(const AxisPointers<D>& a,
                                                                const AxisPointers<D>& b,
                                                                std::size_t count,
                                                                std::uint8_t* out) noexcept {
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    // _CMP_NEQ_UQ matches the semantics of scalar `!=` (unordered => true).
    __m256d neq = _mm256_cmp_pd(_mm256_loadu_pd(a[0] + k), _mm256_loadu_pd(b[0] + k),
                                _CMP_NEQ_UQ);
    if constexpr (D >= 2) {
      neq = _mm256_or_pd(neq, _mm256_cmp_pd(_mm256_loadu_pd(a[1] + k),
                                            _mm256_loadu_pd(b[1] + k), _CMP_NEQ_UQ));
    }
    if constexpr (D >= 3) {
      neq = _mm256_or_pd(neq, _mm256_cmp_pd(_mm256_loadu_pd(a[2] + k),
                                            _mm256_loadu_pd(b[2] + k), _CMP_NEQ_UQ));
    }
    const int mask = _mm256_movemask_pd(neq);
    out[k + 0] = static_cast<std::uint8_t>(mask & 1);
    out[k + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    out[k + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    out[k + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
  }
  for (; k < count; ++k) {
    bool neq = false;
    for (int i = 0; i < D; ++i) {
      neq = neq || (a[static_cast<std::size_t>(i)][k] != b[static_cast<std::size_t>(i)][k]);
    }
    out[k] = neq ? std::uint8_t{1} : std::uint8_t{0};
  }
}

#endif  // MANET_KERNELS_X86

/// Moved-node detection over two SoA snapshots; see the portable variant for
/// the exact semantics.
template <int D>
inline void batch_tuple_not_equal(const AxisPointers<D>& a, const AxisPointers<D>& b,
                                  std::size_t count, std::uint8_t* out) noexcept {
#if MANET_KERNELS_X86
  if (cpu_has_avx2()) {
    batch_tuple_not_equal_avx2<D>(a, b, count, out);
    return;
  }
#endif
  batch_tuple_not_equal_portable<D>(a, b, count, out);
}

/// out[k] = distance between the k-th tuples of `a` and `b`:
/// sqrt(sum_i (a_i - b_i)^2) in the fixed per-axis order. sqrt is an IEEE
/// correctly-rounded operation, so the vectorized form (vsqrtpd) is
/// bit-identical to std::sqrt lane by lane. Used by the waypoint model's
/// leg-progress pass.
template <int D>
void batch_pair_distance_portable(const AxisPointers<D>& a, const AxisPointers<D>& b,
                                  std::size_t count, double* out) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      const double d = a[static_cast<std::size_t>(i)][k] - b[static_cast<std::size_t>(i)][k];
      sum += d * d;
    }
    out[k] = std::sqrt(sum);
  }
}

#if MANET_KERNELS_X86

template <int D>
__attribute__((target("avx2"))) void batch_pair_distance_avx2(const AxisPointers<D>& a,
                                                              const AxisPointers<D>& b,
                                                              std::size_t count,
                                                              double* out) noexcept {
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a[0] + k), _mm256_loadu_pd(b[0] + k));
    __m256d sum = _mm256_mul_pd(d, d);
    if constexpr (D >= 2) {
      d = _mm256_sub_pd(_mm256_loadu_pd(a[1] + k), _mm256_loadu_pd(b[1] + k));
      sum = _mm256_add_pd(sum, _mm256_mul_pd(d, d));
    }
    if constexpr (D >= 3) {
      d = _mm256_sub_pd(_mm256_loadu_pd(a[2] + k), _mm256_loadu_pd(b[2] + k));
      sum = _mm256_add_pd(sum, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + k, _mm256_sqrt_pd(sum));
  }
  for (; k < count; ++k) {
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      const double d = a[static_cast<std::size_t>(i)][k] - b[static_cast<std::size_t>(i)][k];
      sum += d * d;
    }
    out[k] = std::sqrt(sum);
  }
}

#endif  // MANET_KERNELS_X86

/// Pairwise Euclidean distance over two SoA blocks; bit-identical to
/// `distance(a_k, b_k)` per element.
template <int D>
inline void batch_pair_distance(const AxisPointers<D>& a, const AxisPointers<D>& b,
                                std::size_t count, double* out) noexcept {
#if MANET_KERNELS_X86
  if (cpu_has_avx2()) {
    batch_pair_distance_avx2<D>(a, b, count, out);
    return;
  }
#endif
  batch_pair_distance_portable<D>(a, b, count, out);
}

/// Masked leg advance for the waypoint model: where mask[k] != 0,
///   pos_i[k] += (dest_i[k] - pos_i[k]) * scale[k]   for each axis i,
/// exactly the scalar `pos += (dest - pos) * scale`; other lanes are left
/// untouched (a select, not a multiply-by-zero, so masked lanes cannot pick
/// up -0.0 or NaN from a garbage scale).
template <int D>
void batch_masked_advance_portable(const MutableAxisPointers<D>& pos, const AxisPointers<D>& dest,
                                   const double* scale, const std::uint8_t* mask,
                                   std::size_t count) noexcept {
  for (int i = 0; i < D; ++i) {
    double* p = pos[static_cast<std::size_t>(i)];
    const double* t = dest[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < count; ++k) {
      const double advanced = p[k] + (t[k] - p[k]) * scale[k];
      p[k] = mask[k] != 0 ? advanced : p[k];
    }
  }
}

#if MANET_KERNELS_X86

template <int D>
__attribute__((target("avx2"))) void batch_masked_advance_avx2(
    const MutableAxisPointers<D>& pos, const AxisPointers<D>& dest, const double* scale,
    const std::uint8_t* mask, std::size_t count) noexcept {
  for (int i = 0; i < D; ++i) {
    double* p = pos[static_cast<std::size_t>(i)];
    const double* t = dest[static_cast<std::size_t>(i)];
    std::size_t k = 0;
    for (; k + 4 <= count; k += 4) {
      // Widen the 4 mask bytes to qword lanes; is_zero lanes keep the old pos.
      const __m128i bytes = _mm_cvtsi32_si128(static_cast<int>(
          static_cast<unsigned>(mask[k]) | (static_cast<unsigned>(mask[k + 1]) << 8) |
          (static_cast<unsigned>(mask[k + 2]) << 16) |
          (static_cast<unsigned>(mask[k + 3]) << 24)));
      const __m256i wide = _mm256_cvtepu8_epi64(bytes);
      const __m256i is_zero = _mm256_cmpeq_epi64(wide, _mm256_setzero_si256());
      const __m256d pv = _mm256_loadu_pd(p + k);
      const __m256d delta = _mm256_sub_pd(_mm256_loadu_pd(t + k), pv);
      const __m256d advanced =
          _mm256_add_pd(pv, _mm256_mul_pd(delta, _mm256_loadu_pd(scale + k)));
      _mm256_storeu_pd(p + k, _mm256_blendv_pd(advanced, pv, _mm256_castsi256_pd(is_zero)));
    }
    for (; k < count; ++k) {
      const double advanced = p[k] + (t[k] - p[k]) * scale[k];
      p[k] = mask[k] != 0 ? advanced : p[k];
    }
  }
}

#endif  // MANET_KERNELS_X86

/// Masked waypoint advance; see the portable variant for exact semantics.
template <int D>
inline void batch_masked_advance(const MutableAxisPointers<D>& pos, const AxisPointers<D>& dest,
                                 const double* scale, const std::uint8_t* mask,
                                 std::size_t count) noexcept {
#if MANET_KERNELS_X86
  if (cpu_has_avx2()) {
    batch_masked_advance_avx2<D>(pos, dest, scale, mask, count);
    return;
  }
#endif
  batch_masked_advance_portable<D>(pos, dest, scale, mask, count);
}

}  // namespace manet::kernels
