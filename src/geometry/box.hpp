#pragma once

#include <algorithm>

#include "geometry/point.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {

/// The deployment region [0, l]^D of the paper ("the d-dimensional cube of
/// side l"). All placements and mobility trajectories are confined to it.
template <int D>
class Box {
 public:
  /// Requires side > 0.
  explicit Box(double side) : side_(side) { MANET_EXPECTS(side > 0.0); }

  double side() const noexcept { return side_; }

  /// Hyper-volume l^D.
  double volume() const noexcept {
    double v = 1.0;
    for (int i = 0; i < D; ++i) v *= side_;
    return v;
  }

  /// Length of the main diagonal, sqrt(D) * l — the worst-case transmitting
  /// range needed when node positions are adversarial (Section 2).
  double diagonal() const noexcept {
    double s = 0.0;
    for (int i = 0; i < D; ++i) s += side_ * side_;
    return std::sqrt(s);
  }

  bool contains(const Point<D>& p) const noexcept {
    for (int i = 0; i < D; ++i) {
      if (p.coords[i] < 0.0 || p.coords[i] > side_) return false;
    }
    return true;
  }

  /// Projects p onto the box (component-wise clamp).
  Point<D> clamp(Point<D> p) const noexcept {
    for (int i = 0; i < D; ++i) p.coords[i] = std::clamp(p.coords[i], 0.0, side_);
    return p;
  }

  /// Samples a point uniformly at random in the box — the paper's node
  /// placement model ("nodes are distributed independently and uniformly at
  /// random in the placement region").
  Point<D> sample(Rng& rng) const {
    Point<D> p;
    for (int i = 0; i < D; ++i) p.coords[i] = rng.uniform(0.0, side_);
    return p;
  }

 private:
  double side_;
};

using Box1 = Box<1>;
using Box2 = Box<2>;
using Box3 = Box<3>;

}  // namespace manet
