#pragma once

#include <algorithm>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace manet {

/// Samples a point uniformly in the D-ball of radius `radius` centered at
/// `center`, by rejection from the bounding cube (acceptance >= pi/6 for
/// D<=3). Requires radius > 0.
template <int D>
Point<D> uniform_in_ball(const Point<D>& center, double radius, Rng& rng) {
  MANET_EXPECTS(radius > 0.0);
  const double r2 = radius * radius;
  for (;;) {
    Point<D> offset;
    for (int i = 0; i < D; ++i) offset.coords[i] = rng.uniform(-radius, radius);
    if (squared_norm(offset) <= r2) return center + offset;
  }
}

/// Samples a point uniformly in (ball of radius `radius` around `center`)
/// intersected with `box`. This is the drunkard-model step distribution: the
/// next position "is chosen uniformly at random in the disk of radius m
/// centered at the current node location", restricted to the deployment
/// region.
///
/// Requires radius > 0 and center inside the box; the intersection is then
/// non-empty and rejection sampling from the clipped bounding cube terminates
/// quickly (the intersection covers at least the center's orthant fraction of
/// the clipped cube).
template <int D>
Point<D> uniform_in_ball_in_box(const Point<D>& center, double radius, const Box<D>& box,
                                Rng& rng) {
  MANET_EXPECTS(radius > 0.0);
  MANET_EXPECTS(box.contains(center));

  Point<D> lo;
  Point<D> hi;
  for (int i = 0; i < D; ++i) {
    lo.coords[i] = std::max(0.0, center.coords[i] - radius);
    hi.coords[i] = std::min(box.side(), center.coords[i] + radius);
  }

  const double r2 = radius * radius;
  for (;;) {
    Point<D> p;
    for (int i = 0; i < D; ++i) p.coords[i] = rng.uniform(lo.coords[i], hi.coords[i]);
    if (squared_distance(p, center) <= r2) {
      MANET_ENSURE(box.contains(p));
      return p;
    }
  }
}

/// Samples a unit vector uniformly on the (D-1)-sphere. Used by the
/// random-direction mobility extension.
template <int D>
Point<D> uniform_direction(Rng& rng) {
  for (;;) {
    Point<D> v;
    for (int i = 0; i < D; ++i) v.coords[i] = rng.uniform(-1.0, 1.0);
    const double n2 = squared_norm(v);
    if (n2 > 1e-12 && n2 <= 1.0) {
      const double inv = 1.0 / std::sqrt(n2);
      return v * inv;
    }
  }
}

}  // namespace manet
