#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/distance_kernels.hpp"
#include "geometry/point.hpp"
#include "geometry/point_store.hpp"
#include "geometry/torus.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

/// Uniform spatial hash grid over a Box<D>, used to enumerate all node pairs
/// within a transmission radius in (near-)linear time instead of O(n^2).
///
/// Cells have side >= the query radius, so any pair within the radius lies in
/// the same or an axis-adjacent cell; `for_each_pair_within` visits each
/// unordered pair exactly once.
///
/// The grid is rebuildable in place: `rebuild` re-runs the counting sort into
/// the existing buffers, so a caller that rebins every mobility step (or every
/// doubling round of the adaptive EMST engine, topology/emst_grid.hpp) performs
/// no steady-state heap allocations once the buffers have grown to size.
template <int D>
class CellGrid {
 public:
  /// An empty grid; call `rebuild` before querying.
  CellGrid() = default;

  /// Builds the grid over `points`, all of which must lie inside `box`.
  /// `cell_size` is clamped up so the grid never exceeds kMaxCellsPerAxis
  /// per axis (tiny radii would otherwise allocate huge empty grids).
  CellGrid(std::span<const Point<D>> points, const Box<D>& box, double cell_size) {
    rebuild(points, box, cell_size);
  }

  /// Rebuilds the grid over a (possibly different) point set, reusing the
  /// internal buffers. Same contract as the constructor. After the call,
  /// `cell_size() >= requested cell_size`, so any query radius up to the
  /// requested cell size satisfies the `for_each_pair_within` precondition.
  void rebuild(std::span<const Point<D>> points, const Box<D>& box, double cell_size) {
    MANET_EXPECTS(cell_size > 0.0);
    side_ = box.side();
    // Cap the cell count at ~4x the point count: finer grids only add empty
    // cells without reducing the number of candidate pairs.
    std::size_t max_per_axis = kMaxCellsPerAxis;
    const double budget = 4.0 * static_cast<double>(points.size()) + 64.0;
    const auto per_axis_budget =
        static_cast<std::size_t>(std::pow(budget, 1.0 / static_cast<double>(D)));
    max_per_axis = std::min(max_per_axis, std::max<std::size_t>(1, per_axis_budget));

    cells_per_axis_ = static_cast<std::size_t>(side_ / cell_size);
    cells_per_axis_ = std::max<std::size_t>(1, std::min(cells_per_axis_, max_per_axis));
    cell_size_ = side_ / static_cast<double>(cells_per_axis_);
    // The clamping above only ever coarsens the grid, which is what makes the
    // rebuild-to-raise-the-radius pattern of the adaptive EMST engine safe.
    MANET_ENSURE(cells_per_axis_ == 1 || cell_size_ >= cell_size * (1.0 - 1e-12));

    std::size_t total_cells = 1;
    for (int i = 0; i < D; ++i) total_cells *= cells_per_axis_;

    // Counting sort of point ids by flattened cell index, entirely in reused
    // buffers: counts accumulate in cell_start_[c + 1], the placement pass
    // advances cell_start_[c] to the end of cell c, and the final shift
    // restores the start offsets — no cursor scratch vector.
    cell_start_.assign(total_cells + 1, 0);
    cell_of_.resize(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      cell_of_[p] = flat_index(cell_coords(points[p]));
      ++cell_start_[cell_of_[p] + 1];
    }
    for (std::size_t c = 1; c <= total_cells; ++c) cell_start_[c] += cell_start_[c - 1];
    // The paper's occupancy argument needs every node accounted for: the
    // per-cell counts must sum to exactly n after the prefix scan.
    MANET_INVARIANT(cell_start_[total_cells] == points.size());
    point_ids_.resize(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) point_ids_[cell_start_[cell_of_[p]]++] = p;
    for (std::size_t c = total_cells; c > 0; --c) cell_start_[c] = cell_start_[c - 1];
    cell_start_[0] = 0;
    MANET_INVARIANT(cell_start_[total_cells] == points.size());

    // Record the non-empty cells so queries never touch the (potentially
    // huge) set of empty ones.
    occupied_.clear();
    occupied_.reserve(std::min(points.size(), total_cells));
    for (std::size_t c = 0; c < total_cells; ++c) {
      if (cell_start_[c + 1] > cell_start_[c]) occupied_.push_back(c);
    }

    // SoA snapshot of the coordinates in CSR slot order: every cell's points
    // are one contiguous run per axis, so the pair scans below hand whole
    // runs to the batched kernels (geometry/distance_kernels.hpp) instead of
    // chasing Point structs pair by pair. Capacity-only growth, like every
    // other buffer here.
    slot_coords_.assign_gather(points, point_ids_);
    d2_scratch_.resize(points.size());

    points_ = points;
  }

  std::size_t cells_per_axis() const noexcept { return cells_per_axis_; }
  double cell_size() const noexcept { return cell_size_; }
  double side() const noexcept { return side_; }

  /// The largest radius the pair queries accept without a rebuild: adjacent
  /// cells are only guaranteed to cover a pair when the radius does not
  /// exceed the cell side (a single-cell grid compares every pair, so any
  /// radius is valid there). Callers that need a larger radius must
  /// `rebuild` with `cell_size = radius` first (see topology/emst_grid.cpp).
  double max_query_radius() const noexcept {
    if (cells_per_axis_ == 1) return std::numeric_limits<double>::infinity();
    return cell_size_ * (1.0 + 1e-9);
  }

  /// Invokes `fn(i, j, dist2)` once for every unordered pair (i < j) of
  /// points with squared Euclidean distance <= radius*radius. Requires
  /// radius <= max_query_radius() (the construction-time guarantee that
  /// adjacent cells suffice).
  template <typename Fn>
  void for_each_pair_within(double radius, Fn&& fn) const {
    MANET_EXPECTS(radius > 0.0);
    MANET_EXPECTS(radius <= max_query_radius());
    const double r2 = radius * radius;
    for (std::size_t flat : occupied_) scan_cell</*Wrap=*/false>(unflatten(flat), r2, fn);
  }

  /// Invokes `fn(i, j, dist2)` once for every unordered pair (i < j) of
  /// points with squared *torus* distance <= radius*radius, where the torus
  /// period is the construction box side (geometry/torus.hpp). Neighbor
  /// cells wrap around the region edges, so pairs straddling opposite
  /// borders are found without widening the radius. Requires
  /// radius <= max_query_radius(); grids with fewer than three cells per
  /// axis (where wrapped neighbor offsets would alias) fall back to an
  /// exhaustive pair scan.
  template <typename Fn>
  void for_each_torus_pair_within(double radius, Fn&& fn) const {
    MANET_EXPECTS(radius > 0.0);
    if (cells_per_axis_ < 3) {
      // +1 and -1 offsets reach the same cell (mod 2) or the cell itself
      // (mod 1): the forward-offset dedup breaks down, so compare all pairs.
      const double r2 = radius * radius;
      for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
        for (std::size_t j = i + 1; j < points_.size(); ++j) {
          const double d2 = torus_squared_distance(points_[i], points_[j], side_);
          if (d2 <= r2) fn(i, j, d2);
        }
      }
      return;
    }
    MANET_EXPECTS(radius <= max_query_radius());
    const double r2 = radius * radius;
    for (std::size_t flat : occupied_) scan_cell</*Wrap=*/true>(unflatten(flat), r2, fn);
  }

 private:
  static constexpr std::size_t kMaxCellsPerAxis = 1u << 12;

  std::array<std::size_t, D> cell_coords(const Point<D>& p) const noexcept {
    std::array<std::size_t, D> c{};
    for (int i = 0; i < D; ++i) {
      const double x = p.coords[i] / cell_size_;
      auto idx = static_cast<std::size_t>(x < 0.0 ? 0.0 : x);
      c[i] = std::min(idx, cells_per_axis_ - 1);
    }
    return c;
  }

  std::size_t flat_index(const std::array<std::size_t, D>& c) const noexcept {
    std::size_t idx = 0;
    for (int i = D - 1; i >= 0; --i) idx = idx * cells_per_axis_ + c[i];
    return idx;
  }

  std::array<std::size_t, D> unflatten(std::size_t flat) const noexcept {
    std::array<std::size_t, D> c{};
    for (int i = 0; i < D; ++i) {
      c[i] = flat % cells_per_axis_;
      flat /= cells_per_axis_;
    }
    return c;
  }

  template <bool Wrap, typename Fn>
  void scan_cell(const std::array<std::size_t, D>& cell, double r2, Fn&& fn) const {
    const std::size_t flat = flat_index(cell);
    const std::size_t own_begin = cell_start_[flat];
    const std::size_t own_end = cell_start_[flat + 1];
    if (own_begin == own_end) return;

    // Pairs inside the cell itself: slot a against the contiguous run after
    // it — the same (a, b) visit order as the scalar double loop.
    for (std::size_t a = own_begin; a + 1 < own_end; ++a) {
      emit_run<Wrap>(a, a + 1, own_end, r2, fn);
    }

    // Pairs with lexicographically-forward neighbor cells: each unordered
    // cell pair is processed exactly once (with >= 3 cells per axis, wrapped
    // +1/-1 offsets never alias, so the forward dedup still holds on the
    // torus).
    std::array<int, D> offset{};
    offset.fill(-1);
    for (;;) {
      // Advance odometer over {-1,0,1}^D.
      int axis = 0;
      while (axis < D) {
        if (++offset[axis] <= 1) break;
        offset[axis] = -1;
        ++axis;
      }
      if (axis == D) break;
      if (!is_forward(offset)) continue;

      std::array<std::size_t, D> other = cell;
      bool in_grid = true;
      for (int i = 0; i < D; ++i) {
        auto shifted = static_cast<long long>(cell[i]) + offset[i];
        if constexpr (Wrap) {
          const auto cells = static_cast<long long>(cells_per_axis_);
          if (shifted < 0) shifted += cells;
          if (shifted >= cells) shifted -= cells;
        } else {
          if (shifted < 0 || shifted >= static_cast<long long>(cells_per_axis_)) {
            in_grid = false;
            break;
          }
        }
        other[i] = static_cast<std::size_t>(shifted);
      }
      if (!in_grid) continue;

      const std::size_t other_flat = flat_index(other);
      const std::size_t other_begin = cell_start_[other_flat];
      const std::size_t other_end = cell_start_[other_flat + 1];
      if (other_begin == other_end) continue;
      for (std::size_t a = own_begin; a < own_end; ++a) {
        emit_run<Wrap>(a, other_begin, other_end, r2, fn);
      }
    }
  }

  /// True when `offset` is lexicographically positive (first nonzero
  /// component, scanning from the highest axis, is +1).
  static bool is_forward(const std::array<int, D>& offset) noexcept {
    for (int i = D - 1; i >= 0; --i) {
      if (offset[i] > 0) return true;
      if (offset[i] < 0) return false;
    }
    return false;  // all-zero offset = own cell, handled separately
  }

  /// Batched replacement of the old per-pair emit: squared distances of the
  /// candidate in `candidate_slot` against the contiguous slot run
  /// [run_begin, run_end) in one kernel call, then the in-radius filter in
  /// run order. Every d2 is bit-identical to the scalar metric (the kernels
  /// reproduce the scalar cores' per-axis operation sequence), and pairs are
  /// emitted in the exact order the scalar double loop used.
  template <bool Wrap, typename Fn>
  void emit_run(std::size_t candidate_slot, std::size_t run_begin, std::size_t run_end,
                double r2, Fn&& fn) const {
    const std::size_t count = run_end - run_begin;
    std::array<double, static_cast<std::size_t>(D)> q;
    kernels::AxisPointers<D> axes;
    for (int i = 0; i < D; ++i) {
      const double* axis = slot_coords_.axis(i);
      q[static_cast<std::size_t>(i)] = axis[candidate_slot];
      axes[static_cast<std::size_t>(i)] = axis + run_begin;
    }
    double* d2 = d2_scratch_.data();
    if constexpr (Wrap) {
      kernels::batch_torus_squared_distance<D>(axes, count, q.data(), side_, d2);
    } else {
      kernels::batch_squared_distance<D>(axes, count, q.data(), d2);
    }
    const std::size_t candidate_id = point_ids_[candidate_slot];
    for (std::size_t k = 0; k < count; ++k) {
      if (d2[k] <= r2) {
        std::size_t i = candidate_id;
        std::size_t j = point_ids_[run_begin + k];
        if (i > j) std::swap(i, j);
        fn(i, j, d2[k]);
      }
    }
  }

  std::span<const Point<D>> points_;
  double side_ = 0.0;
  double cell_size_ = 0.0;
  std::size_t cells_per_axis_ = 0;
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> point_ids_;
  std::vector<std::size_t> occupied_;
  std::vector<std::size_t> cell_of_;  // counting-sort scratch, reused by rebuild
  PointStore<D> slot_coords_;         // SoA coordinates in CSR slot order
  mutable std::vector<double> d2_scratch_;  // per-run kernel output (queries are const)
};

}  // namespace manet
