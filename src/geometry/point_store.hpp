#pragma once

// Structure-of-arrays point storage: one contiguous double array per axis.
//
// The AoS `std::vector<Point<D>>` layout interleaves coordinates, which
// defeats vectorization of the hot loops (distance kernels, mobility
// advance) and wastes a third to two thirds of every cache line when a scan
// only needs one axis. PointStore keeps each axis contiguous so the batched
// kernels in geometry/distance_kernels.hpp can stream it directly.
//
// Growth discipline matches the rest of the library's zero-steady-state-
// allocation contract (DESIGN.md §14): capacity only ever grows, so once a
// store has seen its working size, assign()/resize() never touch the heap
// again (alloc_discipline_test pins this).
//
// Public simulation APIs keep accepting `std::span<const Point<D>>`; the
// store is an internal bridge — assign() gathers from AoS, scatter_to()
// writes back.

#include <array>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "geometry/distance_kernels.hpp"
#include "geometry/point.hpp"
#include "support/contracts.hpp"

namespace manet {

template <int D>
class PointStore {
 public:
  static_assert(D >= 1 && D <= 3, "the library supports 1-, 2- and 3-dimensional regions");

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Grows capacity (never shrinks) so later assign()/resize() up to
  /// `capacity` points are allocation-free.
  void reserve(std::size_t capacity) {
    for (auto& axis : axes_) axis.reserve(capacity);
  }

  /// Sets the logical size; new elements (if any) are value-initialized.
  /// Capacity-only growth: shrinking keeps the buffers.
  void resize(std::size_t n) {
    for (auto& axis : axes_) axis.resize(n);
    size_ = n;
  }

  void clear() noexcept { resize(0); }

  /// Gathers an AoS span into the per-axis arrays (capacity-only growth).
  void assign(std::span<const Point<D>> points) {
    resize(points.size());
    for (int i = 0; i < D; ++i) {
      double* axis = axes_[static_cast<std::size_t>(i)].data();
      for (std::size_t k = 0; k < points.size(); ++k) axis[k] = points[k].coords[static_cast<std::size_t>(i)];
    }
  }

  /// Gathers `points[ids[s]]` into slot s — the permuted bridge the cell
  /// grid uses to lay coordinates out in CSR slot order, so every cell's
  /// points form one contiguous run per axis.
  void assign_gather(std::span<const Point<D>> points, std::span<const std::size_t> ids) {
    resize(ids.size());
    for (int i = 0; i < D; ++i) {
      double* axis = axes_[static_cast<std::size_t>(i)].data();
      for (std::size_t s = 0; s < ids.size(); ++s) {
        axis[s] = points[ids[s]].coords[static_cast<std::size_t>(i)];
      }
    }
  }

  /// Same permuted gather, but from another store (SoA → SoA): slot s takes
  /// src's tuple ids[s]. Used for per-step CSR coordinate snapshots.
  void assign_gather(const PointStore& src, std::span<const std::uint32_t> ids) {
    resize(ids.size());
    for (int i = 0; i < D; ++i) {
      double* axis = axes_[static_cast<std::size_t>(i)].data();
      const double* from = src.axis(i);
      for (std::size_t s = 0; s < ids.size(); ++s) axis[s] = from[ids[s]];
    }
  }

  /// Scatters the store back to an AoS span of the same size.
  void scatter_to(std::span<Point<D>> out) const {
    MANET_EXPECT(out.size() == size_);
    for (int i = 0; i < D; ++i) {
      const double* axis = axes_[static_cast<std::size_t>(i)].data();
      for (std::size_t k = 0; k < size_; ++k) out[k].coords[static_cast<std::size_t>(i)] = axis[k];
    }
  }

  [[nodiscard]] double* axis(int i) noexcept { return axes_[static_cast<std::size_t>(i)].data(); }
  [[nodiscard]] const double* axis(int i) const noexcept {
    return axes_[static_cast<std::size_t>(i)].data();
  }

  /// Per-axis base pointers in the form the batched kernels consume.
  [[nodiscard]] kernels::AxisPointers<D> axes() const noexcept {
    kernels::AxisPointers<D> out;
    for (int i = 0; i < D; ++i) out[static_cast<std::size_t>(i)] = axis(i);
    return out;
  }

  [[nodiscard]] kernels::MutableAxisPointers<D> mutable_axes() noexcept {
    kernels::MutableAxisPointers<D> out;
    for (int i = 0; i < D; ++i) out[static_cast<std::size_t>(i)] = axis(i);
    return out;
  }

  [[nodiscard]] Point<D> get(std::size_t k) const noexcept {
    MANET_EXPECT(k < size_);
    Point<D> p;
    for (int i = 0; i < D; ++i) {
      p.coords[static_cast<std::size_t>(i)] = axes_[static_cast<std::size_t>(i)][k];
    }
    return p;
  }

  void set(std::size_t k, const Point<D>& p) noexcept {
    MANET_EXPECT(k < size_);
    for (int i = 0; i < D; ++i) {
      axes_[static_cast<std::size_t>(i)][k] = p.coords[static_cast<std::size_t>(i)];
    }
  }

  friend void swap(PointStore& a, PointStore& b) noexcept {
    a.axes_.swap(b.axes_);
    std::swap(a.size_, b.size_);
  }

 private:
  std::array<std::vector<double>, static_cast<std::size_t>(D)> axes_{};
  std::size_t size_ = 0;
};

using PointStore1 = PointStore<1>;
using PointStore2 = PointStore<2>;
using PointStore3 = PointStore<3>;

}  // namespace manet
