#include "topology/critical_range.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace manet {

void LargestComponentCurve::build_from_sorted(std::size_t n,
                                              std::span<const WeightedEdge> sorted_edges,
                                              UnionFind& dsu,
                                              std::vector<Breakpoint>& out) {
  MANET_EXPECTS(sorted_edges.size() + 1 == n || (n <= 1 && sorted_edges.empty()));
  MANET_INVARIANT(std::is_sorted(
      sorted_edges.begin(), sorted_edges.end(),
      [](const WeightedEdge& a, const WeightedEdge& b) { return a.weight < b.weight; }));

  out.clear();
  out.push_back({0.0, n == 0 ? std::size_t{0} : std::size_t{1}});
  if (sorted_edges.empty()) return;

  dsu.reset(n);
  for (const WeightedEdge& e : sorted_edges) {
    const std::size_t before = dsu.largest_component_size();
    const bool merged = dsu.unite(e.u, e.v);
    MANET_ENSURES(merged);  // MST edges never form cycles
    const std::size_t after = dsu.largest_component_size();
    if (after > before) {
      if (out.back().range == e.weight) {
        // Several merges at the same range (e.g. equally spaced points):
        // keep one breakpoint with the final size.
        out.back().size = after;
      } else {
        out.push_back({e.weight, after});
      }
    }
  }
  MANET_ENSURES(dsu.all_connected());
  MANET_ENSURES(out.back().size == n);
  // The curve is a nondecreasing step function: ranges and sizes both ascend.
  MANET_INVARIANT(std::is_sorted(
      out.begin(), out.end(),
      [](const Breakpoint& a, const Breakpoint& b) { return a.range < b.range; }));
  MANET_INVARIANT(std::is_sorted(
      out.begin(), out.end(),
      [](const Breakpoint& a, const Breakpoint& b) { return a.size < b.size; }));
}

LargestComponentCurve::LargestComponentCurve(std::size_t n, std::vector<WeightedEdge> mst_edges)
    : n_(n) {
  std::sort(mst_edges.begin(), mst_edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) { return a.weight < b.weight; });
  UnionFind dsu(n);
  build_from_sorted(n, mst_edges, dsu, breakpoints_);
}

LargestComponentCurve::LargestComponentCurve(std::size_t n,
                                             std::span<const WeightedEdge> sorted_mst_edges,
                                             UnionFind& dsu, std::vector<Breakpoint>& scratch)
    : n_(n) {
  build_from_sorted(n, sorted_mst_edges, dsu, scratch);
  // Exact-size copy: the single retained allocation of a mobility step.
  breakpoints_ = scratch;
}

std::size_t LargestComponentCurve::largest_component_at(double range) const {
  MANET_EXPECTS(range >= 0.0);
  // Last breakpoint with breakpoint.range <= range.
  auto it = std::upper_bound(
      breakpoints_.begin(), breakpoints_.end(), range,
      [](double r, const Breakpoint& b) { return r < b.range; });
  MANET_ENSURES(it != breakpoints_.begin());
  return std::prev(it)->size;
}

double LargestComponentCurve::largest_fraction_at(double range) const {
  if (n_ == 0) return 1.0;
  return static_cast<double>(largest_component_at(range)) / static_cast<double>(n_);
}

double LargestComponentCurve::range_for_size(std::size_t target_size) const {
  MANET_EXPECTS(target_size > 0 && target_size <= n_);
  const auto it = std::lower_bound(
      breakpoints_.begin(), breakpoints_.end(), target_size,
      [](const Breakpoint& b, std::size_t target) { return b.size < target; });
  MANET_ENSURES(it != breakpoints_.end());
  return it->range;
}

double LargestComponentCurve::critical_range() const {
  if (n_ <= 1) return 0.0;
  return breakpoints_.back().range;
}

}  // namespace manet
