#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/torus.hpp"
#include "graph/union_find.hpp"
#include "support/error.hpp"
#include "topology/emst_grid.hpp"
#include "topology/mst.hpp"

namespace manet {

/// Critical transmission radius rc(P) of a point set P: the minimum common
/// range r such that the induced communication graph is connected. The graph
/// is connected at range r iff r >= rc(P), which turns every "connected
/// during fraction f of the time" question into a quantile of per-step
/// critical radii (see DESIGN.md §2).
///
/// rc equals the bottleneck (longest edge) of the Euclidean MST. Returns 0
/// for n <= 1 point sets (vacuously connected).
template <int D>
double critical_range(std::span<const Point<D>> points) {
  if constexpr (D == 1) {
    // 1-D specialization: the graph is connected iff no gap between
    // consecutive sorted positions exceeds r, so rc is the largest gap.
    if (points.size() <= 1) return 0.0;
    std::vector<double> xs;
    xs.reserve(points.size());
    for (const auto& p : points) xs.push_back(p.coords[0]);
    std::sort(xs.begin(), xs.end());
    double max_gap = 0.0;
    for (std::size_t i = 1; i < xs.size(); ++i) max_gap = std::max(max_gap, xs[i] - xs[i - 1]);
    return max_gap;
  } else {
    const auto mst = euclidean_mst(points);
    return tree_bottleneck(mst);
  }
}

/// Grid-accelerated critical range for points inside `box` (the deployment
/// region): expected O(n log n) via the adaptive EMST engine
/// (topology/emst_grid.hpp), bit-identical to the dense overload above.
template <int D>
double critical_range(std::span<const Point<D>> points, const Box<D>& box) {
  if constexpr (D == 1) {
    return critical_range<1>(points);  // the sort specialization is already O(n log n)
  } else {
    EmstEngine<D> engine;
    return tree_bottleneck(engine.euclidean(points, box));
  }
}

/// The largest-connected-component size of a point graph as a function of
/// the transmitting range r: a right-continuous nondecreasing step function.
///
/// As r grows, components merge exactly at MST edge weights (Kruskal's merge
/// process), so the whole curve has at most n-1 breakpoints and is computed
/// once per point set from its EMST — expected O(n log n) through the grid
/// engine (topology/emst_grid.hpp), O(n^2) on the dense Prim fallback the
/// engine selects for tiny n. It answers, with no further simulation:
///   - largest component size at any range r,
///   - the minimum range making the largest component >= a target size
///     (the paper's rl90 / rl75 / rl50 quantities),
///   - the critical range (target size = n).
class LargestComponentCurve {
 public:
  /// A point at which the largest component grows to `size` (at range
  /// `range`, inclusive).
  struct Breakpoint {
    double range;
    std::size_t size;
  };

  /// Builds the curve from MST edges (any order). `n` is the point count.
  LargestComponentCurve(std::size_t n, std::vector<WeightedEdge> mst_edges);

  /// Workspace variant for the mobile hot path: takes MST edges already
  /// sorted ascending by weight (the EmstEngine output contract), a reusable
  /// union-find and a reusable breakpoint scratch buffer. The only heap
  /// allocation is the exact-size copy of the breakpoints retained by the
  /// curve itself, so one mobility step costs O(1) allocations.
  LargestComponentCurve(std::size_t n, std::span<const WeightedEdge> sorted_mst_edges,
                        UnionFind& dsu, std::vector<Breakpoint>& scratch);

  std::size_t node_count() const noexcept { return n_; }

  /// Largest component size at transmitting range r (>= 0).
  std::size_t largest_component_at(double range) const;

  /// Largest component size as a fraction of n at range r; 1.0 when n == 0.
  double largest_fraction_at(double range) const;

  /// Minimum range at which the largest component reaches at least
  /// `target_size` nodes. Requires 0 < target_size <= n.
  double range_for_size(std::size_t target_size) const;

  /// Minimum range making the graph connected (= critical range).
  double critical_range() const;

  std::span<const Breakpoint> breakpoints() const noexcept { return breakpoints_; }

 private:
  /// Kruskal merge process over weight-sorted MST edges, appending the
  /// resulting step function to `out` (cleared first).
  static void build_from_sorted(std::size_t n, std::span<const WeightedEdge> sorted_edges,
                                UnionFind& dsu, std::vector<Breakpoint>& out);

  std::size_t n_;
  // Ascending in range and in size; first entry is {0, min(1,n)}.
  std::vector<Breakpoint> breakpoints_;
};

/// Convenience builder: curve of the communication graph over `points`,
/// via the dense EMST path (no deployment box required).
template <int D>
LargestComponentCurve largest_component_curve(std::span<const Point<D>> points) {
  return LargestComponentCurve(points.size(), euclidean_mst(points));
}

/// Grid-accelerated builder for points inside `box`: same curve, bit for
/// bit, at expected O(n log n). The hot loop of the mobile simulator uses
/// the workspace form in sim/trace_workspace.hpp instead, which also reuses
/// the engine's buffers across steps.
template <int D>
LargestComponentCurve largest_component_curve(std::span<const Point<D>> points,
                                              const Box<D>& box) {
  EmstEngine<D> engine;
  UnionFind dsu(points.size());
  std::vector<LargestComponentCurve::Breakpoint> scratch;
  return LargestComponentCurve(points.size(), engine.euclidean(points, box), dsu, scratch);
}

/// The minimum transmitting range at which NO node is isolated: the largest
/// nearest-neighbor distance, max_i min_{j != i} dist(i, j). Always a lower
/// bound on the critical range; the two coincide exactly when the last
/// obstacle to connectivity is a lone node (the paper's observed
/// disconnection mode, and asymptotically almost always in random geometric
/// graphs — Penrose's theorem). Returns 0 for n <= 1. Expected O(n log n)
/// via the adaptive-radius CellGrid nearest-neighbor query.
template <int D>
double isolation_range(std::span<const Point<D>> points, const Box<D>& box) {
  EmstEngine<D> engine;
  return engine.max_nearest_neighbor_range(points, box);
}

/// Overload for point sets without a known deployment box: derives the
/// enclosing [0, side]^D region. Point sets with negative coordinates (not
/// produced by any deployment in this library) take a dense O(n^2) scan.
template <int D>
double isolation_range(std::span<const Point<D>> points) {
  const std::size_t n = points.size();
  if (n <= 1) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    for (int axis = 0; axis < D; ++axis) {
      lo = std::min(lo, p.coords[axis]);
      hi = std::max(hi, p.coords[axis]);
    }
  }
  if (lo >= 0.0) {
    return isolation_range(points, Box<D>(hi > 0.0 ? hi : 1.0));
  }
  double worst_nn2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double nn2 = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) nn2 = std::min(nn2, squared_distance(points[i], points[j]));
    }
    worst_nn2 = std::max(worst_nn2, nn2);
  }
  return covering_radius(worst_nn2);
}

/// EXTENSION: critical transmission radius under the flat-torus metric on
/// [0, side]^D (wrap-around distances). The Euclidean-vs-torus gap measures
/// the boundary effect on the required range (bench/ablation_boundary).
/// Requires all points inside [0, side]^D; grid-accelerated with wrap-aware
/// neighbor cells (topology/emst_grid.hpp).
template <int D>
double torus_critical_range(std::span<const Point<D>> points, double side) {
  EmstEngine<D> engine;
  return tree_bottleneck(engine.torus(points, side));
}

}  // namespace manet
