#include "topology/mst.hpp"

#include <algorithm>

namespace manet {

double tree_bottleneck(std::span<const WeightedEdge> tree) {
  double bottleneck = 0.0;
  for (const WeightedEdge& e : tree) bottleneck = std::max(bottleneck, e.weight);
  return bottleneck;
}

double tree_total_weight(std::span<const WeightedEdge> tree) {
  double total = 0.0;
  for (const WeightedEdge& e : tree) total += e.weight;
  return total;
}

}  // namespace manet
