#include "topology/emst_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/contracts.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"

namespace manet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Counters shared by every EmstEngine<D> instantiation. One bundle behind a
/// function-local static so the names are registered exactly once, and the
/// hot loops below touch nothing heavier than a thread-local add. These are
/// pure *work* counters — how many rounds/rebuilds the input demanded — so
/// they are deterministic for a fixed input regardless of thread count.
struct EmstMetrics {
  metrics::Counter solves = metrics::counter("emst.solves");
  metrics::Counter rounds = metrics::counter("emst.doubling_rounds");
  metrics::Counter dense = metrics::counter("emst.dense_fallbacks");
  metrics::Counter rebuilds = metrics::counter("emst.grid_rebuilds");
};

EmstMetrics& emst_metrics() {
  static EmstMetrics bundle;
  return bundle;
}

}  // namespace

template <int D>
double EmstEngine<D>::initial_radius(std::size_t n, double side) {
  return emst_initial_radius<D>(n, side);
}

template <int D>
template <bool Torus>
void EmstEngine<D>::dense_prim(std::span<const Point<D>> points, double side) {
  // Same relaxation order and the same squared-distance -> covering_radius
  // arithmetic as mst_with_metric (topology/mst.hpp), into pooled scratch.
  const std::size_t n = points.size();
  stats_.dense_fallback = true;
  emst_metrics().dense.increment();
  best_d2_.assign(n, kInf);
  best_from_.assign(n, 0);
  in_tree_.assign(n, 0);

  std::size_t current = 0;
  in_tree_[0] = 1;
  for (std::size_t added = 1; added < n; ++added) {
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree_[v] != 0) continue;
      const double d2 = Torus ? torus_squared_distance(points[current], points[v], side)
                              : squared_distance(points[current], points[v]);
      if (d2 < best_d2_[v]) {
        best_d2_[v] = d2;
        best_from_[v] = current;
      }
    }
    std::size_t next = n;
    double next_d2 = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree_[v] == 0 && best_d2_[v] < next_d2) {
        next_d2 = best_d2_[v];
        next = v;
      }
    }
    MANET_ENSURES(next < n);
    in_tree_[next] = 1;
    mst_.push_back({best_from_[next], next, covering_radius(next_d2)});
    current = next;
  }
  // The engine's output contract is weight-ascending order (Prim emits in
  // tree-growth order); ties break on endpoints for determinism.
  std::sort(mst_.begin(), mst_.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
}

template <int D>
template <bool Torus>
std::span<const WeightedEdge> EmstEngine<D>::solve(std::span<const Point<D>> points,
                                                   double side) {
  MANET_EXPECTS(side > 0.0);
  stats_ = {};
  mst_.clear();
  const std::size_t n = points.size();
  if (n <= 1) return mst_;
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw ConfigError("EmstEngine: more than 2^32 points are not supported");
  }
  emst_metrics().solves.increment();

  // The farthest any pair can be: at this radius the candidate graph is
  // complete, so the doubling search always terminates.
  const double r_max = Torus ? 0.5 * side * std::sqrt(static_cast<double>(D))
                             : side * std::sqrt(static_cast<double>(D));
  const double r0 = initial_radius(n, side);
  if (n < kDenseCutoff || r0 >= 0.5 * side) {
    // Tiny inputs or near-complete candidate graphs: the grid cannot prune
    // enough pairs to pay for itself.
    dense_prim<Torus>(points, side);
    return mst_;
  }

  const Box<D> box(side);
  double radius = std::min(r0, r_max);
  for (;;) {
    ++stats_.rounds;
    emst_metrics().rounds.increment();
    // Rebin at the current radius: rebuild only ever coarsens the cell size
    // upward, so the query below always satisfies radius <= cell_size and
    // never trips the CellGrid precondition, no matter how far the doubling
    // has pushed the radius.
    grid_.rebuild(points, box, radius);
    emst_metrics().rebuilds.increment();
    MANET_INVARIANT(radius <= grid_.max_query_radius());

    candidates_.clear();
    const auto collect = [this](std::size_t i, std::size_t j, double d2) {
      candidates_.push_back(
          {d2, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
    };
    if constexpr (Torus) {
      grid_.for_each_torus_pair_within(radius, collect);
    } else {
      grid_.for_each_pair_within(radius, collect);
    }
    stats_.candidate_edges = candidates_.size();
    stats_.final_radius = radius;

    // Filtered Kruskal over the candidates. If the radius-r graph spans, its
    // MST is a genuine MST of the complete graph: every full-MST edge weighs
    // at most the bottleneck <= r, so all of them are among the candidates.
    std::sort(candidates_.begin(), candidates_.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.d2 != b.d2) return a.d2 < b.d2;
                if (a.u != b.u) return a.u < b.u;
                return a.v < b.v;
              });
    dsu_.reset(n);
    mst_.clear();
    for (const Candidate& c : candidates_) {
      if (dsu_.unite(c.u, c.v)) {
        mst_.push_back({c.u, c.v, covering_radius(c.d2)});
        if (mst_.size() + 1 == n) break;
      }
    }
    if (mst_.size() + 1 == n) break;
    MANET_INVARIANT(radius < r_max);  // the complete graph always spans
    radius = std::min(radius * 2.0, r_max);
  }
  MANET_ENSURES(mst_.size() + 1 == n);
  return mst_;
}

template <int D>
std::span<const WeightedEdge> EmstEngine<D>::euclidean(std::span<const Point<D>> points,
                                                       const Box<D>& box) {
  return solve<false>(points, box.side());
}

template <int D>
std::span<const WeightedEdge> EmstEngine<D>::torus(std::span<const Point<D>> points,
                                                   double side) {
  return solve<true>(points, side);
}

template <int D>
double EmstEngine<D>::max_nearest_neighbor_range(std::span<const Point<D>> points,
                                                 const Box<D>& box) {
  const std::size_t n = points.size();
  if (n <= 1) return 0.0;
  stats_ = {};

  nn2_.assign(n, kInf);
  if (n < kDenseCutoff) {
    stats_.dense_fallback = true;
    emst_metrics().dense.increment();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d2 = squared_distance(points[i], points[j]);
        nn2_[i] = std::min(nn2_[i], d2);
        nn2_[j] = std::min(nn2_[j], d2);
      }
    }
  } else {
    const double side = box.side();
    const double r_max = side * std::sqrt(static_cast<double>(D));
    double radius = std::min(initial_radius(n, side), r_max);
    for (;;) {
      ++stats_.rounds;
      emst_metrics().rounds.increment();
      grid_.rebuild(points, box, radius);
      emst_metrics().rebuilds.increment();
      nn2_.assign(n, kInf);
      grid_.for_each_pair_within(radius, [this](std::size_t i, std::size_t j, double d2) {
        nn2_[i] = std::min(nn2_[i], d2);
        nn2_[j] = std::min(nn2_[j], d2);
      });
      stats_.final_radius = radius;
      // A neighbor found within the radius is the exact nearest neighbor
      // (anything closer would also be within the radius); only points that
      // saw nothing force a wider search.
      if (std::none_of(nn2_.begin(), nn2_.end(), [](double d2) { return d2 == kInf; })) {
        break;
      }
      MANET_INVARIANT(radius < r_max);  // at the diagonal every pair is in range
      radius = std::min(radius * 2.0, r_max);
    }
  }

  double worst_nn2 = 0.0;
  for (double d2 : nn2_) worst_nn2 = std::max(worst_nn2, d2);
  MANET_ENSURES(worst_nn2 < kInf);
  return covering_radius(worst_nn2);
}

template class EmstEngine<1>;
template class EmstEngine<2>;
template class EmstEngine<3>;

}  // namespace manet
